//! Crash-safety integration tests: checkpoint + journal + warm restart.
//!
//! The contract under test: `snapshot + journal tail` reconstructs scope
//! state *exactly* — a crashed-and-recovered session continues just as an
//! uninterrupted one would — and no corruption of the on-disk artefacts
//! (truncated tails, flipped bytes, missing files) can panic recovery or
//! double-count a byte.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::types::{Pci, Rnti};
use nr_scope::scope::observe::{Capture, Observer};
use nr_scope::scope::persist::{
    append_journal_entry, encode_batch, read_journal_bytes, DurabilityRung, FaultKind,
    FaultyBackend, JournalEntry, PersistConfig, PersistentSession, SessionStore,
    StorageFaultSchedule,
};
use nr_scope::scope::{
    ClockLock, ClockObservable, Counter, Gauge, NrScope, ScopeConfig, StoragePolicy, SyncState,
};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("nrscope-persist-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Deterministic capture tape: 2 backlogged UEs on the srsRAN cell.
fn capture_tape(slots: u64) -> (Vec<Capture>, Pci) {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 17);
    for i in 1..=2u64 {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: 1 << 30,
                },
                i,
            ),
            0.05 * i as f64,
            600.0,
            i,
        ));
    }
    let mut obs = Observer::new(&cell, 35.0, false, 9);
    let slot_s = cell.slot_s();
    let caps = (0..slots)
        .map(|s| {
            let out = gnb.step();
            obs.capture(&out, s as f64 * slot_s)
        })
        .collect();
    (caps, cell.pci)
}

/// The pieces of session state whose exact reconstruction is the whole
/// point (metrics intentionally excluded: the recovered run legitimately
/// has extra persist-layer counter activity).
fn comparable_state(scope: &NrScope) -> String {
    comparable_session_state(&scope.session_state())
}

fn comparable_session_state(state: &nr_scope::scope::persist::SessionState) -> String {
    let mut s = state.clone();
    // Wall-clock-derived load stats differ legitimately between any two
    // live runs (a slow fs or a busy core is not a replay bug); the
    // contract covers the deterministic decode state.
    s.stats.deadline_misses = 0;
    s.stats.rung_demotions = 0;
    s.stats.rung_promotions = 0;
    s.stats.slots_at_rung = Default::default();
    s.stats.worker_stalls = 0;
    s.stats.stuck_workers = 0;
    s.stats.shed_jobs = 0;
    s.stats.priority_sheds = 0;
    s.stats.pruned_candidates = 0;
    format!(
        "slot={} cell={} sync={} streak={} stats={} tracker={} throughput={}",
        s.slot,
        serde_json::to_string(&s.cell).unwrap(),
        serde_json::to_string(&s.sync).unwrap(),
        s.unhealthy_streak,
        serde_json::to_string(&s.stats).unwrap(),
        serde_json::to_string(&s.tracker).unwrap(),
        serde_json::to_string(&s.throughput).unwrap(),
    )
}

#[test]
fn crash_and_recovery_matches_uninterrupted_run() {
    const TOTAL: u64 = 2_500;
    const CRASH_AT: u64 = 1_700; // not checkpoint-aligned
    let (caps, pci) = capture_tape(TOTAL);

    // Reference: one uninterrupted scope.
    let mut reference = NrScope::new(ScopeConfig::default(), Some(pci));
    for cap in &caps {
        reference.process_capture(cap);
    }

    // Durable run, crashed at CRASH_AT (dropped without finalize — no
    // final checkpoint, journal tail only flushed to the OS).
    let dir = tmp_dir("crash-replay");
    {
        let (mut session, report) =
            PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
                .unwrap();
        assert!(!report.resumed, "fresh directory starts cold");
        for cap in &caps[..CRASH_AT as usize] {
            session.process_capture(cap);
        }
    }

    // Warm restart: journal was flushed per slot, so not one processed
    // slot may be lost.
    let (mut session, report) =
        PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
            .unwrap();
    assert!(report.resumed);
    assert_eq!(report.resumed_slot, CRASH_AT, "no acknowledged slot lost");
    assert!(
        report.snapshot_slot.is_some(),
        "cadence checkpoints existed"
    );
    assert!(report.replayed_entries > 0, "journal tail replayed");
    assert_eq!(report.journal_entries_discarded, 0, "clean tail");
    for cap in &caps[CRASH_AT as usize..] {
        session.process_capture(cap);
    }

    assert_eq!(
        comparable_state(session.scope()),
        comparable_state(&reference),
        "crash + recovery + continuation must equal the uninterrupted run"
    );
    // Byte accounting in particular: exact, not approximate.
    for rnti in reference.tracked_rntis() {
        assert_eq!(
            session.scope().estimated_bits(rnti, 0..TOTAL),
            reference.estimated_bits(rnti, 0..TOTAL),
            "UE {rnti}: replay double-counted or dropped bytes"
        );
    }
    session.finalize().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_recovery_is_idempotent() {
    const TOTAL: u64 = 1_400;
    let (caps, pci) = capture_tape(TOTAL);
    let dir = tmp_dir("double-recovery");
    {
        let (mut session, _) =
            PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
                .unwrap();
        for cap in &caps {
            session.process_capture(cap);
        }
        // Crash: no finalize.
    }
    let store = SessionStore::new(&dir).unwrap();
    let (a, ra) = store.recover(ScopeConfig::default(), Some(pci));
    let (b, rb) = store.recover(ScopeConfig::default(), Some(pci));
    assert_eq!(ra.resumed_slot, rb.resumed_slot);
    assert_eq!(ra.replayed_entries, rb.replayed_entries);
    assert_eq!(
        comparable_state(&a),
        comparable_state(&b),
        "recovery must be a pure function of the on-disk artefacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_newer_than_journal_is_a_defined_state() {
    const TOTAL: u64 = 1_300;
    let (caps, pci) = capture_tape(TOTAL);
    let dir = tmp_dir("snap-newer");
    let mut expected_state;
    {
        let (mut session, _) =
            PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
                .unwrap();
        for cap in &caps {
            session.process_capture(cap);
        }
        expected_state = session.scope().session_state();
        session.finalize().unwrap(); // checkpoint at TOTAL
    }
    // Snapshot-only recovery rebases each UE's activity clock to the
    // restored watermark (there are no journal records to restore the
    // exact value, and a stale clock would expire live UEs) — fold that
    // into the expectation.
    for ue in &mut expected_state.tracker.ues {
        ue.last_active_slot = ue.last_active_slot.max(TOTAL);
    }
    // Delete every journal file: the snapshot now post-dates all journal
    // evidence. Recovery must come up at the snapshot watermark with
    // nothing replayed — not panic, not rewind.
    let store = SessionStore::new(&dir).unwrap();
    for start in store.journal_starts() {
        std::fs::remove_file(store.journal_path(start)).unwrap();
    }
    let (scope, report) = store.recover(ScopeConfig::default(), Some(pci));
    assert_eq!(report.snapshot_slot, Some(TOTAL));
    assert_eq!(report.resumed_slot, TOTAL);
    assert_eq!(report.replayed_entries, 0);
    assert_eq!(
        comparable_state(&scope),
        comparable_session_state(&expected_state)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_ues_survive_a_restart_gap_without_expiring() {
    const TOTAL: u64 = 1_500;
    let (caps, pci) = capture_tape(TOTAL);
    let dir = tmp_dir("expiry-rebase");
    let tracked_before;
    {
        let (mut session, _) =
            PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
                .unwrap();
        for cap in &caps {
            session.process_capture(cap);
        }
        tracked_before = session.scope().tracked_rntis();
        assert!(!tracked_before.is_empty());
    }
    let (mut session, _) =
        PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
            .unwrap();
    // Dead air while the supervisor was restarting: idle slots must not
    // expire UEs whose activity clock predates the restored watermark.
    for _ in 0..200 {
        session.process_capture(&Capture::Dropped(
            nr_scope::scope::observe::DropReason::Stall,
        ));
    }
    let mut after = session.scope().tracked_rntis();
    let mut before = tracked_before.clone();
    before.sort_unstable();
    after.sort_unstable();
    assert_eq!(before, after, "restart gap expired recovered UEs");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One real journal file's bytes, built once (proptest runs many cases).
fn journal_fixture() -> &'static (Vec<u8>, usize) {
    static FIXTURE: OnceLock<(Vec<u8>, usize)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (caps, pci) = capture_tape(700);
        let dir = tmp_dir("journal-fixture");
        let (mut session, _) = PersistentSession::open(
            PersistConfig {
                // No rotation: everything lands in one journal file.
                checkpoint_every_slots: 10_000,
                ..PersistConfig::new(&dir)
            },
            ScopeConfig::default(),
            Some(pci),
        )
        .unwrap();
        for cap in &caps {
            session.process_capture(cap);
        }
        drop(session);
        let store = SessionStore::new(&dir).unwrap();
        let starts = store.journal_starts();
        assert_eq!(starts.len(), 1);
        let bytes = std::fs::read(store.journal_path(starts[0])).unwrap();
        let (entries, bad) = read_journal_bytes(&bytes);
        assert_eq!(bad, 0);
        let n = entries.len();
        assert_eq!(n, 700);
        let _ = std::fs::remove_dir_all(&dir);
        (bytes, n)
    })
}

/// A checkpoint file's bytes, built once.
fn checkpoint_fixture() -> &'static (Vec<u8>, u64) {
    static FIXTURE: OnceLock<(Vec<u8>, u64)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (caps, pci) = capture_tape(600);
        let mut scope = NrScope::new(ScopeConfig::default(), Some(pci));
        for cap in &caps {
            scope.process_capture(cap);
        }
        let dir = tmp_dir("ckpt-fixture");
        let store = SessionStore::new(&dir).unwrap();
        let slot = store.write_checkpoint(&scope.session_state()).unwrap();
        let path = dir.join(format!("ckpt-{slot:012}.snap"));
        let bytes = std::fs::read(path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (bytes, slot)
    })
}

proptest! {
    /// Truncate a real journal at any byte: the reader recovers exactly
    /// the records wholly before the cut — a strict prefix, in order,
    /// never a panic, never garbage.
    #[test]
    fn journal_survives_truncation_at_any_byte(cut_frac in 0.0f64..1.0) {
        let (bytes, total) = journal_fixture();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let (entries, _) = read_journal_bytes(&bytes[..cut]);
        prop_assert!(entries.len() <= *total);
        for (i, e) in entries.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64, "recovered prefix must be gapless");
        }
    }

    /// Flip any byte of a checkpoint file: loading must never panic, and
    /// must never yield a state from a damaged payload (either the flip
    /// lands in slack the format ignores, or the file is rejected).
    #[test]
    fn corrupt_checkpoint_fuzz_never_panics(idx_frac in 0.0f64..1.0, mask in 1i32..256) {
        let mask = mask as u8;
        let (bytes, slot) = checkpoint_fixture();
        let mut corrupted = bytes.clone();
        let idx = ((corrupted.len() - 1) as f64 * idx_frac) as usize;
        corrupted[idx] ^= mask;
        let dir = tmp_dir("ckpt-fuzz");
        let store = SessionStore::new(&dir).unwrap();
        std::fs::write(dir.join(format!("ckpt-{slot:012}.snap")), &corrupted).unwrap();
        let (loaded, _rejected) = store.load_latest();
        if let Some(state) = loaded {
            // Only a flip the CRC provably cannot see (it re-creates a
            // consistent artefact) may load — and then it must still be
            // internally coherent.
            prop_assert_eq!(state.slot, *slot);
        }
        // Recovery on top must also hold (falls back to cold start).
        let (scope, _) = store.recover(ScopeConfig::default(), None);
        prop_assert!(scope.slot_watermark() == *slot || scope.slot_watermark() == 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncated_journal_recovers_the_valid_prefix_end_to_end() {
    const TOTAL: u64 = 900;
    let (caps, pci) = capture_tape(TOTAL);
    let dir = tmp_dir("truncate-e2e");
    {
        let (mut session, _) = PersistentSession::open(
            PersistConfig {
                checkpoint_every_slots: 10_000, // journal only
                ..PersistConfig::new(&dir)
            },
            ScopeConfig::default(),
            Some(pci),
        )
        .unwrap();
        for cap in &caps {
            session.process_capture(cap);
        }
    }
    let store = SessionStore::new(&dir).unwrap();
    let path = store.journal_path(0);
    let bytes = std::fs::read(&path).unwrap();
    // Tear the file mid-record, as a crashed write would.
    std::fs::write(&path, &bytes[..bytes.len() * 2 / 3 + 7]).unwrap();
    let (scope, report) = store.recover(ScopeConfig::default(), Some(pci));
    assert!(report.resumed);
    assert!(report.replayed_entries > 0);
    assert!(report.journal_entries_discarded >= 1);
    assert!(report.resumed_slot < TOTAL && report.resumed_slot > 0);
    // The recovered prefix is a real, coherent session: it can keep going.
    let mut scope = scope;
    let resumed = report.resumed_slot;
    for cap in &caps[resumed as usize..] {
        scope.process_capture(cap);
    }
    assert_eq!(scope.sync_state(), SyncState::Synced);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracked_rntis_and_bits_survive_restart_exactly() {
    const TOTAL: u64 = 1_100;
    let (caps, pci) = capture_tape(TOTAL);
    let dir = tmp_dir("bits-exact");
    let live_bits: Vec<(Rnti, u64)>;
    {
        let (mut session, _) =
            PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
                .unwrap();
        for cap in &caps {
            session.process_capture(cap);
        }
        live_bits = session
            .scope()
            .tracked_rntis()
            .into_iter()
            .map(|r| (r, session.scope().estimated_bits(r, 0..TOTAL)))
            .collect();
        // Crash without finalize.
    }
    let store = SessionStore::new(&dir).unwrap();
    let (scope, _) = store.recover(ScopeConfig::default(), Some(pci));
    for (rnti, bits) in live_bits {
        assert_eq!(
            scope.estimated_bits(rnti, 0..TOTAL),
            bits,
            "UE {rnti}: byte accounting changed across recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Batch size used by the synthetic multi-batch fixtures below (700
/// fixture entries → 14 equal batches).
const BATCH: usize = 50;

/// The journal fixture's entries re-grouped into a known multi-batch
/// binary file: `(bytes, batch boundary offsets, entries)`.
fn batched_fixture() -> &'static (Vec<u8>, Vec<usize>, Vec<JournalEntry>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<usize>, Vec<JournalEntry>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (bytes, _) = journal_fixture();
        let (entries, bad) = read_journal_bytes(bytes);
        assert_eq!(bad, 0);
        assert_eq!(
            entries.len() % BATCH,
            0,
            "fixture divides into equal batches"
        );
        let mut out = Vec::new();
        let mut bounds = vec![0usize];
        for chunk in entries.chunks(BATCH) {
            out.extend_from_slice(&encode_batch(chunk));
            bounds.push(out.len());
        }
        (out, bounds, entries)
    })
}

proptest! {
    /// Tear a multi-batch binary journal at any byte — inside a batch
    /// header or mid-record — and replay surfaces exactly the batches
    /// wholly before the cut: a torn batch is discarded whole, so
    /// recovery always lands on a batch boundary.
    #[test]
    fn torn_binary_batch_is_discarded_whole_at_any_cut(frac in 0.0f64..1.0) {
        let (bytes, bounds, entries) = batched_fixture();
        let cut = (bytes.len() as f64 * frac) as usize;
        let complete = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        let (got, bad) = read_journal_bytes(&bytes[..cut]);
        prop_assert_eq!(got.len(), (complete * BATCH).min(entries.len()));
        for (g, e) in got.iter().zip(entries) {
            prop_assert_eq!(g.seq, e.seq, "prefix must be the original records");
        }
        if cut < bytes.len() && !bounds.contains(&cut) {
            prop_assert!(bad >= 1, "a torn batch must be counted as discarded");
        }
    }

    /// Flip any byte anywhere in the file (header fields, payload, CRC):
    /// replay must stop cleanly at the last batch before the damage —
    /// never panic, never yield a record from the damaged batch.
    #[test]
    fn flipped_byte_stops_replay_at_the_prior_batch_boundary(
        frac in 0.0f64..1.0,
        mask in 1i32..256,
    ) {
        let (bytes, bounds, _) = batched_fixture();
        let mut corrupted = bytes.clone();
        let idx = ((bytes.len() - 1) as f64 * frac) as usize;
        corrupted[idx] ^= mask as u8;
        let k = bounds.iter().filter(|&&b| b <= idx).count() - 1;
        let (got, bad) = read_journal_bytes(&corrupted);
        prop_assert_eq!(got.len(), k * BATCH);
        prop_assert!(bad >= 1);
        for (i, e) in got.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64, "recovered prefix must be gapless");
        }
    }
}

/// Crash between buffer swap and write: a sealed batch sat in the writer
/// queue and never reached the file. Modelled by dropping the final batch
/// wholesale — replay resumes at the previous batch boundary without
/// counting corruption, and the loss is bounded by one batch.
#[test]
fn crash_between_swap_and_write_loses_at_most_one_batch() {
    let (bytes, bounds, entries) = batched_fixture();
    let cut = bounds[bounds.len() - 2];
    let (got, bad) = read_journal_bytes(&bytes[..cut]);
    assert_eq!(bad, 0, "a clean batch-boundary cut is not corruption");
    assert_eq!(got.len(), entries.len() - BATCH);
    assert!(
        entries.len() - got.len() <= PersistConfig::new("unused").flush_max_slots as usize,
        "lost tail exceeds one group-commit batch"
    );
}

/// Live loss-window bound: while the session runs, the durable watermark
/// may trail the processing watermark by at most
/// `PersistConfig::loss_window_slots`, and finalize closes the gap.
#[test]
fn durable_watermark_trails_by_at_most_the_loss_window() {
    const TOTAL: u64 = 1_500;
    let (caps, pci) = capture_tape(TOTAL);
    let dir = tmp_dir("loss-window");
    let cfg = PersistConfig::new(&dir);
    let window = cfg.loss_window_slots();
    let (mut session, _) = PersistentSession::open(cfg, ScopeConfig::default(), Some(pci)).unwrap();
    for cap in &caps {
        session.process_capture(cap);
        let durable = session.durable_watermark();
        let watermark = session.scope().slot_watermark();
        assert!(durable <= watermark, "durable watermark ran ahead");
        assert!(
            watermark - durable <= window,
            "loss window violated: watermark {watermark}, durable {durable}, window {window}"
        );
    }
    let synced = session.checkpoint_now().unwrap();
    assert_eq!(synced, TOTAL);
    assert_eq!(
        session.durable_watermark(),
        TOTAL,
        "a checkpoint barrier must drain the open batch and the writer queue"
    );
    assert_eq!(session.finalize().unwrap(), TOTAL);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Upgrade path: a journal written by the old per-slot JSONL writer is
/// replayed in full by the binary-era session, which then continues with
/// binary batches — and the combined run matches an uninterrupted one.
#[test]
fn legacy_jsonl_journal_upgrades_into_binary_session() {
    const TOTAL: u64 = 1_600;
    const UPGRADE_AT: u64 = 900;
    let (caps, pci) = capture_tape(TOTAL);

    let mut reference = NrScope::new(ScopeConfig::default(), Some(pci));
    for cap in &caps {
        reference.process_capture(cap);
    }

    // Phase 1: the "old release" — one JSONL record per slot, no snapshot.
    let dir = tmp_dir("upgrade-jsonl");
    let store = SessionStore::new(&dir).unwrap();
    {
        let mut scope = NrScope::new(ScopeConfig::default(), Some(pci));
        scope.start_journaling();
        let mut file = std::fs::File::create(store.journal_path(0)).unwrap();
        for cap in &caps[..UPGRADE_AT as usize] {
            scope.process_capture(cap);
            let e = scope.take_journal_entry().expect("journaling enabled");
            append_journal_entry(&mut file, &e).unwrap();
        }
    }

    // Phase 2: the binary-era session opens the same directory.
    let (mut session, report) =
        PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
            .unwrap();
    assert!(report.resumed);
    assert_eq!(
        report.resumed_slot, UPGRADE_AT,
        "every JSONL record replayed"
    );
    assert_eq!(report.journal_entries_discarded, 0);
    for cap in &caps[UPGRADE_AT as usize..] {
        session.process_capture(cap);
    }
    assert_eq!(
        comparable_state(session.scope()),
        comparable_state(&reference),
        "JSONL prefix + binary continuation must equal the uninterrupted run"
    );

    // And the mixed-era directory recovers once more (crash, no finalize).
    drop(session);
    let (scope, report2) = store.recover(ScopeConfig::default(), Some(pci));
    assert_eq!(report2.resumed_slot, TOTAL);
    assert_eq!(comparable_state(&scope), comparable_state(&reference));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Persistence × untrusted-air composition: the stage-2 admission state
/// (probation windows, quarantine ledger, reappearance counts) is part of
/// the exactly-reconstructed session — a crash must not amnesty a ghost.
#[test]
fn quarantine_ledger_survives_crash_recovery() {
    const TOTAL: u64 = 4_000;
    const CRASH_AT: u64 = 2_600; // not checkpoint-aligned
                                 // Hostile tape: one real UE plus the full adversarial profile.
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 17);
    gnb.arm_hostile(nr_scope::gnb::HostileConfig::default());
    gnb.ue_arrives(SimUe::new(
        1,
        ChannelProfile::Awgn,
        MobilityScenario::Static,
        TrafficSource::new(
            TrafficKind::FileDownload {
                total_bytes: 1 << 30,
            },
            1,
        ),
        0.05,
        600.0,
        1,
    ));
    let mut obs = Observer::new(&cell, 35.0, false, 9);
    let slot_s = cell.slot_s();
    let caps: Vec<Capture> = (0..TOTAL)
        .map(|s| {
            let out = gnb.step();
            obs.capture(&out, s as f64 * slot_s)
        })
        .collect();
    let pci = cell.pci;

    let mut reference = NrScope::new(ScopeConfig::default(), Some(pci));
    for cap in &caps {
        reference.process_capture(cap);
    }
    assert!(
        !reference.quarantined_rntis().is_empty(),
        "test premise: the hostile tape populated the quarantine ledger"
    );

    let dir = tmp_dir("quarantine-recovery");
    {
        let (mut session, _) =
            PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
                .unwrap();
        for cap in &caps[..CRASH_AT as usize] {
            session.process_capture(cap);
        }
        // Crash without finalize.
    }
    let (mut session, report) =
        PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
            .unwrap();
    assert!(report.resumed);
    for cap in &caps[CRASH_AT as usize..] {
        session.process_capture(cap);
    }

    assert_eq!(
        comparable_state(session.scope()),
        comparable_state(&reference),
        "admission state (probation + quarantine) must replay exactly"
    );
    assert_eq!(
        session.scope().quarantined_rntis(),
        reference.quarantined_rntis()
    );
    for r in reference.quarantined_rntis() {
        assert_eq!(
            session.scope().quarantine_reappearances(r),
            reference.quarantine_reappearances(r),
            "ghost {r}: reappearance count drifted across recovery"
        );
    }
    assert_eq!(session.scope().tracked_rntis(), gnb.connected_rntis());
    session.finalize().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Storage-fault matrix: the injectable IO-fault layer driving the
// durability degradation ladder (retry → emergency prune → demotion →
// re-probe → re-promotion), one test per fault class.
// ---------------------------------------------------------------------------

use std::sync::Arc;
use std::time::Duration;

/// Deterministic batching: seal on slot count only, tiny batches, no
/// cadence checkpoints competing with the journal for fault-window ops.
fn faulted_cfg(dir: &PathBuf, backend: &FaultyBackend) -> PersistConfig {
    PersistConfig {
        checkpoint_every_slots: u64::MAX,
        flush_max_slots: 8,
        flush_max_latency_us: u64::MAX,
        ..PersistConfig::new(dir)
    }
    .with_backend(Arc::new(backend.clone()))
}

#[test]
fn transient_write_faults_retry_without_demotion() {
    let (caps, pci) = capture_tape(200);
    let dir = tmp_dir("fault-transient");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(5));
    let (mut session, _) = PersistentSession::open(
        faulted_cfg(&dir, &backend),
        ScopeConfig::default(),
        Some(pci),
    )
    .unwrap();
    for cap in &caps[..40] {
        session.process_capture(cap);
    }
    assert!(session.flush_barrier());
    // One whole-write EIO and, one batch later, a short write (half the
    // bytes land, then EIO): both must be absorbed by truncate-and-retry
    // well inside the default retry budget.
    let w = backend.writes();
    backend.arm(FaultKind::WriteEio, w..w + 1);
    backend.arm(FaultKind::WriteShort, w + 2..w + 3);
    for cap in &caps[40..] {
        session.process_capture(cap);
    }
    assert!(session.flush_barrier());
    let m = session.scope().metrics();
    assert!(
        m.counter(Counter::StorageRetries) >= 2,
        "both faults retried"
    );
    assert_eq!(m.counter(Counter::StorageDemotions), 0);
    assert_eq!(m.counter(Counter::JournalWriteFailures), 0);
    assert_eq!(
        session.durability_rung(),
        DurabilityRung::Durable,
        "clean-write streak promoted the rung back"
    );
    assert_eq!(m.gauge(Gauge::DurabilityRung), 0);
    let wm = session.scope().slot_watermark();
    drop(session);

    // Nothing the retries touched may be lost or duplicated on replay.
    let (session, report) = PersistentSession::open(
        faulted_cfg(&dir, &backend),
        ScopeConfig::default(),
        Some(pci),
    )
    .unwrap();
    assert!(report.resumed);
    assert_eq!(report.resumed_slot, wm, "every retried batch replays");
    assert_eq!(report.journal_entries_discarded, 0);
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_triggers_emergency_prune_not_demotion() {
    let (caps, pci) = capture_tape(200);
    let dir = tmp_dir("fault-enospc");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(6));
    // faulted_cfg disables cadence checkpoints, so no async snapshot
    // write can race the armed op index; the prunable checkpoints are
    // created synchronously below.
    let (mut session, _) = PersistentSession::open(
        faulted_cfg(&dir, &backend),
        ScopeConfig::default(),
        Some(pci),
    )
    .unwrap();
    for cap in &caps[..60] {
        session.process_capture(cap);
    }
    session.checkpoint_now().unwrap();
    for cap in &caps[60..120] {
        session.process_capture(cap);
    }
    session.checkpoint_now().unwrap();
    assert!(session.flush_barrier());
    let before = SessionStore::new(&dir).unwrap().snapshot_slots().len();
    assert!(before >= 2, "test premise: multiple checkpoints on disk");
    let w = backend.writes();
    backend.arm(FaultKind::WriteEnospc, w..w + 1);
    for cap in &caps[120..] {
        session.process_capture(cap);
    }
    assert!(session.flush_barrier());
    let m = session.scope().metrics();
    assert!(m.counter(Counter::EmergencyPrunes) >= 1, "prune fired");
    assert!(
        m.counter(Counter::StorageRetries) >= 1,
        "write retried after prune"
    );
    assert_eq!(m.counter(Counter::StorageDemotions), 0);
    assert_eq!(session.durability_rung(), DurabilityRung::Durable);
    assert!(
        m.snapshot().note("storage_error").is_some(),
        "the ENOSPC left an operator-visible note"
    );
    session.finalize().unwrap();
    let (_, report) = SessionStore::new(&dir)
        .unwrap()
        .recover(ScopeConfig::default(), Some(pci));
    assert_eq!(
        report.resumed_slot, 200,
        "pruned session still recovers fully"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_disk_demotes_honestly_and_decoding_continues() {
    let (caps, pci) = capture_tape(600);
    let mut reference = NrScope::new(ScopeConfig::default(), Some(pci));
    for cap in &caps {
        reference.process_capture(cap);
    }

    let dir = tmp_dir("fault-dead-disk");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(7));
    let (mut session, _) = PersistentSession::open(
        faulted_cfg(&dir, &backend),
        ScopeConfig::default(),
        Some(pci),
    )
    .unwrap();
    for cap in &caps[..80] {
        session.process_capture(cap);
    }
    assert!(session.flush_barrier());
    // 8 slots/batch × (queue depth 8 + 2 in flight) = 80 slots.
    assert_eq!(
        session.reported_loss_window(),
        Some(80),
        "bounded while durable"
    );
    // Every write fails from here on: the disk is dead, not slow.
    backend.arm(FaultKind::WriteEio, backend.writes()..u64::MAX);
    for cap in &caps[80..] {
        session.process_capture(cap);
    }
    // Decode fidelity is untouched by the dying storage layer.
    assert_eq!(
        comparable_state(session.scope()),
        comparable_state(&reference),
        "a dead disk must not change what was decoded"
    );
    // The demotion lands after the writer thread exhausts its retry
    // budget (~7.5 ms of backoff); give it bounded wall time, observing
    // through idle slots (real deployments keep capturing too).
    let mut spins = 0;
    while session.durability_rung() != DurabilityRung::NonDurable && spins < 2_000 {
        std::thread::sleep(Duration::from_millis(1));
        session.process_capture(&Capture::Dropped(
            nr_scope::scope::observe::DropReason::Stall,
        ));
        spins += 1;
    }
    let m = session.scope().metrics();
    assert_eq!(session.durability_rung(), DurabilityRung::NonDurable);
    assert_eq!(m.gauge(Gauge::DurabilityRung), 2);
    assert_eq!(m.counter(Counter::StorageDemotions), 1);
    assert!(
        m.counter(Counter::JournalWriteFailures) >= 1,
        "loss is counted"
    );
    assert_eq!(
        session.reported_loss_window(),
        None,
        "an unbounded loss window is reported as such, not papered over"
    );
    assert!(m.snapshot().note("storage_demotion").is_some());
    assert!(
        session.scope().slot_watermark() >= 600,
        "decode continued through the whole tape"
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_recovery_reprobes_repromotes_and_reanchors() {
    let (caps, pci) = capture_tape(1400);
    let dir = tmp_dir("fault-reprobe");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(8));
    let cfg = PersistConfig {
        checkpoint_every_slots: u64::MAX,
        flush_max_slots: 8,
        flush_max_latency_us: u64::MAX,
        storage: StoragePolicy {
            reprobe_interval_slots: 32, // probe quickly: test, not production
            ..StoragePolicy::default()
        },
        ..PersistConfig::new(&dir)
    }
    .with_backend(Arc::new(backend.clone()));
    let (mut session, _) =
        PersistentSession::open(cfg.clone(), ScopeConfig::default(), Some(pci)).unwrap();
    let mut i = 0usize;
    while i < 80 {
        session.process_capture(&caps[i]);
        i += 1;
    }
    assert!(session.flush_barrier());
    backend.arm(FaultKind::WriteEio, backend.writes()..u64::MAX);
    while session.durability_rung() != DurabilityRung::NonDurable && i < caps.len() / 2 {
        session.process_capture(&caps[i]);
        i += 1;
        if i.is_multiple_of(16) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    assert_eq!(
        session.durability_rung(),
        DurabilityRung::NonDurable,
        "tape exhausted before the demotion landed"
    );
    // The disk comes back; the 32-slot probe cadence must notice,
    // re-anchor with a checkpoint, and climb all the way back.
    backend.clear_faults();
    while session.durability_rung() != DurabilityRung::Durable && i < caps.len() {
        session.process_capture(&caps[i]);
        i += 1;
    }
    assert_eq!(
        session.durability_rung(),
        DurabilityRung::Durable,
        "tape exhausted before re-promotion completed"
    );
    assert_eq!(session.scope().metrics().gauge(Gauge::DurabilityRung), 0);
    assert_eq!(
        session.reported_loss_window(),
        Some(80), // 8 slots/batch × (queue depth 8 + 2 in flight)
        "re-promotion restores the bounded promise"
    );
    // Everything journalled after the re-anchor must survive a crash.
    while i < caps.len() {
        session.process_capture(&caps[i]);
        i += 1;
    }
    assert!(session.flush_barrier());
    let wm = session.scope().slot_watermark();
    drop(session);
    let (session, report) =
        PersistentSession::open(cfg, ScopeConfig::default(), Some(pci)).unwrap();
    assert!(report.resumed);
    assert_eq!(
        report.resumed_slot, wm,
        "post-re-anchor slots replay exactly; the NonDurable gap is gone"
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_gated_hole_never_resurrects_later_slots() {
    let (caps, pci) = capture_tape(80);
    let dir = tmp_dir("fault-fsync-gate");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(9));
    let (mut session, _) = PersistentSession::open(
        faulted_cfg(&dir, &backend),
        ScopeConfig::default(),
        Some(pci),
    )
    .unwrap();
    for cap in &caps[..40] {
        session.process_capture(cap);
    }
    assert!(session.flush_barrier());
    // The lie: one batch write reports success but the bytes vanish —
    // the firmware/page-cache failure mode fsync is supposed to surface
    // but sometimes doesn't.
    let w = backend.writes();
    backend.arm(FaultKind::WriteFsyncGate, w..w + 1);
    for cap in &caps[40..] {
        session.process_capture(cap);
    }
    assert!(session.flush_barrier());
    // Nothing observable failed, so the session honestly believes it is
    // durable to slot 80 — the disk lied, not the ladder.
    assert_eq!(session.durability_rung(), DurabilityRung::Durable);
    assert_eq!(session.durable_watermark(), 80);
    drop(session);
    // Recovery hits the sequence gap where the gated batch should be and
    // refuses to replay anything after it: slots 48..80 exist on disk but
    // applying them over the hole would corrupt state.
    let (session, report) = PersistentSession::open(
        faulted_cfg(&dir, &backend),
        ScopeConfig::default(),
        Some(pci),
    )
    .unwrap();
    assert_eq!(
        report.resumed_slot, 40,
        "replay stops at the hole; post-gap entries never resurrect"
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_failure_reason_reaches_the_summary() {
    let (caps, pci) = capture_tape(300);
    let dir = tmp_dir("fault-ckpt-rename");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(10));
    let cfg = PersistConfig {
        checkpoint_every_slots: 64,
        flush_max_slots: 8,
        flush_max_latency_us: u64::MAX,
        ..PersistConfig::new(&dir)
    }
    .with_backend(Arc::new(backend.clone()));
    let (mut session, _) = PersistentSession::open(cfg, ScopeConfig::default(), Some(pci)).unwrap();
    for cap in &caps[..100] {
        session.process_capture(cap);
    }
    std::thread::sleep(Duration::from_millis(20)); // drain in-flight checkpoints
                                                   // Checkpoints publish via tmp-file + rename; killing renames fails
                                                   // every future checkpoint while leaving the journal path untouched.
    backend.arm(FaultKind::RenameFail, backend.renames()..u64::MAX);
    for cap in &caps[100..] {
        session.process_capture(cap);
    }
    assert!(session.flush_barrier());
    // The checkpoint worker is asynchronous: poll with a deadline instead
    // of a fixed sleep, which races thread scheduling under parallel test
    // load.
    let m = session.scope().metrics();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while m.counter(Counter::CheckpointFailures) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(m.counter(Counter::CheckpointFailures) >= 1);
    let snap = m.snapshot();
    assert!(
        snap.note("checkpoint_error").is_some(),
        "the write-failure reason is distinguishable from a busy skip"
    );
    assert!(
        snap.summary().contains("note checkpoint_error:"),
        "and it reaches the human-readable summary"
    );
    assert_eq!(
        session.durability_rung(),
        DurabilityRung::Durable,
        "journal appends never renamed anything; the rung is untouched"
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Clocked tape: the captures *and* the per-slot clock observables the
/// observer produced, recorded with the reference scope closing the
/// recovery loop. Replaying `(capture, observable)` pairs into any scope
/// reproduces the reference's clock trajectory exactly (the loop is
/// deterministic in its inputs), which is what lets the kill-9 test
/// compare restored state against a fresh prefix replay.
#[allow(clippy::type_complexity)]
fn clocked_tape(slots: u64) -> (Vec<(Capture, Option<ClockObservable>)>, Pci, NrScope) {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 23);
    for i in 1..=2u64 {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: 1 << 30,
                },
                i,
            ),
            0.05 * i as f64,
            600.0,
            i,
        ));
    }
    let mut obs = Observer::new(&cell, 35.0, false, 9);
    // 15 ppm plus wander and rare short overrun gaps: slips, steps, and
    // a nonzero drift estimate all in play across the kill.
    obs.set_clock(
        cell.clock_model(31)
            .with_static_ppm(15.0)
            .with_random_walk(0.03)
            .with_gap_prob(0.002, 8.0),
    );
    let mut reference = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let slot_s = cell.slot_s();
    let tape = (0..slots)
        .map(|s| {
            let out = gnb.step();
            let cap = obs.capture(&out, s as f64 * slot_s);
            let cobs = obs.take_clock_observable();
            if let Some(o) = &cobs {
                reference.note_clock_observable(o);
                let (timing_us, cfo_hz) = reference.clock_command();
                obs.apply_clock_correction(timing_us, cfo_hz);
            }
            reference.process_capture(&cap);
            (cap, cobs)
        })
        .collect();
    (tape, cell.pci, reference)
}

fn replay_clocked<'a>(
    session: &mut PersistentSession,
    tape: impl Iterator<Item = &'a (Capture, Option<ClockObservable>)>,
) {
    for (cap, cobs) in tape {
        if let Some(o) = cobs {
            session.scope_mut().note_clock_observable(o);
        }
        session.process_capture(cap);
    }
}

#[test]
fn clock_loop_state_survives_kill9_and_warm_restart() {
    const TOTAL: u64 = 2_400;
    const KILL_AT: u64 = 1_650; // not checkpoint-aligned
    let (tape, pci, reference) = clocked_tape(TOTAL);
    assert_eq!(reference.clock_lock(), Some(ClockLock::Locked));
    assert!(reference.stats.timing_slips > 0, "tape exercises slips");

    let dir = tmp_dir("clock-kill9");
    {
        let (mut session, _) =
            PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
                .unwrap();
        replay_clocked(&mut session, tape[..KILL_AT as usize].iter());
        // kill -9: no drop-time drain, no finalize.
        std::mem::forget(session);
    }
    std::thread::sleep(Duration::from_millis(50)); // leaked writer goes quiet

    let (mut session, report) =
        PersistentSession::open(PersistConfig::new(&dir), ScopeConfig::default(), Some(pci))
            .unwrap();
    assert!(report.resumed);
    let resumed = report.resumed_slot;
    assert!(resumed <= KILL_AT, "cannot resume past the kill");

    // The restored loop must carry the drift estimate, lock rung, and
    // slip/step/loss counters of the moment the journal last saw — i.e.
    // match a fresh scope replaying the same prefix.
    let mut prefix = NrScope::new(ScopeConfig::default(), Some(pci));
    for (cap, cobs) in &tape[..resumed as usize] {
        if let Some(o) = cobs {
            prefix.note_clock_observable(o);
        }
        prefix.process_capture(cap);
    }
    assert_eq!(
        session.scope().session_state().clock,
        prefix.session_state().clock,
        "restored recovery-loop state diverges from the journaled truth"
    );
    assert_eq!(session.scope().clock_drift_ppb(), prefix.clock_drift_ppb());
    assert_eq!(
        session.scope().stats.timing_slips,
        prefix.stats.timing_slips
    );
    assert_eq!(session.scope().stats.clock_steps, prefix.stats.clock_steps);

    // And it *continues* identically: finishing the tape lands on the
    // uninterrupted run, clock trajectory included.
    replay_clocked(&mut session, tape[resumed as usize..].iter());
    assert_eq!(
        comparable_state(session.scope()),
        comparable_state(&reference),
        "post-restart continuation diverged from the uninterrupted run"
    );
    assert_eq!(
        session.scope().session_state().clock,
        reference.session_state().clock
    );
    assert_eq!(session.scope().clock_lock(), Some(ClockLock::Locked));
    assert!(
        session.scope().clock_drift_ppb() > 10_000,
        "drift estimate restored and still tracking ≈15 ppm"
    );
    session.finalize().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
