//! Cross-crate integration tests: the full cell → air → sniffer pipeline.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::{ProportionalFair, RoundRobin};
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::types::RntiType;
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{Fidelity, NrScope, ScopeConfig};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use nrscope_analytics::match_dcis;

fn make_ue(id: u64, profile: ChannelProfile, traffic: TrafficKind) -> SimUe {
    SimUe::new(
        id,
        profile,
        MobilityScenario::Static,
        TrafficSource::new(traffic, id),
        0.0,
        60.0,
        id,
    )
}

fn run(
    cell: CellConfig,
    ues: Vec<SimUe>,
    snr_db: f64,
    fidelity: Fidelity,
    slots: u64,
    seed: u64,
) -> (Gnb, NrScope) {
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    for ue in ues {
        gnb.ue_arrives(ue);
    }
    let mut observer = Observer::new(&cell, snr_db, fidelity == Fidelity::Iq, seed);
    let mut scope = NrScope::new(
        ScopeConfig {
            fidelity,
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );
    let slot_s = cell.slot_s();
    for s in 0..slots {
        let out = gnb.step();
        scope.process(&observer.observe(&out, s as f64 * slot_s));
    }
    (gnb, scope)
}

#[test]
fn pbch_budget_agrees_between_renderer_and_decoder() {
    assert_eq!(
        nr_scope::scope::pbch_e_bits(),
        nr_scope::gnb::iq::PBCH_E_BITS
    );
}

#[test]
fn message_and_iq_fidelity_agree_on_cell_acquisition() {
    let cbr = TrafficKind::Cbr {
        rate_bps: 2e6,
        packet_bytes: 1200,
    };
    let (gnb_m, scope_m) = run(
        CellConfig::srsran_n41(),
        vec![make_ue(1, ChannelProfile::Awgn, cbr)],
        30.0,
        Fidelity::Message,
        1200,
        4,
    );
    let (gnb_i, scope_i) = run(
        CellConfig::srsran_n41(),
        vec![make_ue(1, ChannelProfile::Awgn, cbr)],
        30.0,
        Fidelity::Iq,
        1200,
        4,
    );
    for (gnb, scope) in [(&gnb_m, &scope_m), (&gnb_i, &scope_i)] {
        assert!(scope.cell.mib.is_some());
        assert!(scope.cell.sib1.is_some());
        assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
    }
    // The two fidelities decode the same SIB1 content.
    assert_eq!(scope_m.cell.sib1, scope_i.cell.sib1);
    // And the IQ path detected the PCI from PSS/SSS.
    assert_eq!(scope_i.cell.pci, Some(gnb_i.cfg.pci));
}

#[test]
fn all_cell_presets_acquire_and_track() {
    for cell in [
        CellConfig::srsran_n41(),
        CellConfig::mosolab_n48(),
        CellConfig::amarisoft_n78(),
        CellConfig::tmobile_n25(),
        CellConfig::tmobile_n71(),
    ] {
        let name = cell.name.clone();
        let (gnb, scope) = run(
            cell,
            vec![make_ue(
                1,
                ChannelProfile::Awgn,
                TrafficKind::Cbr {
                    rate_bps: 2e6,
                    packet_bytes: 1000,
                },
            )],
            28.0,
            Fidelity::Message,
            3000,
            9,
        );
        assert!(scope.cell.sib1.is_some(), "{name}: SIB1");
        assert_eq!(
            scope.tracked_rntis(),
            gnb.connected_rntis(),
            "{name}: tracking"
        );
        assert!(scope.stats.dl_dcis > 50, "{name}: DL telemetry flows");
    }
}

#[test]
fn proportional_fair_cell_is_also_decodable() {
    // NR-Scope is scheduler-agnostic: a PF cell yields the same telemetry
    // guarantees as round-robin.
    let cell = CellConfig::amarisoft_n78();
    let mut gnb = Gnb::new(cell.clone(), Box::new(ProportionalFair::new()), 5);
    for i in 1..=4u64 {
        gnb.ue_arrives(make_ue(
            i,
            ChannelProfile::Awgn,
            TrafficKind::Cbr {
                rate_bps: 2e6,
                packet_bytes: 1200,
            },
        ));
    }
    let mut observer = Observer::new(&cell, 30.0, false, 5);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    for s in 0..4000u64 {
        let out = gnb.step();
        scope.process(&observer.observe(&out, s as f64 * 0.0005));
    }
    let report = match_dcis(gnb.truth(), scope.records(), 0..4000, 0);
    assert!(report.dl_truth > 200);
    assert!(
        report.dl_miss_rate_pct() < 1.5,
        "{}",
        report.dl_miss_rate_pct()
    );
}

#[test]
fn headline_throughput_accuracy_holds_per_ue() {
    // The abstract's headline: "less than 0.1% throughput error estimation
    // for every UE" on backlogged flows (median per-UE error).
    let cell = CellConfig::amarisoft_n78();
    let ues: Vec<SimUe> = (1..=4)
        .map(|i| {
            make_ue(
                i,
                ChannelProfile::Awgn,
                TrafficKind::FileDownload {
                    total_bytes: usize::MAX / 2,
                },
            )
        })
        .collect();
    let (gnb, scope) = run(cell, ues, 32.0, Fidelity::Message, 10_000, 13);
    for rnti in gnb.connected_rntis() {
        let est = scope.estimated_bits(rnti, 2000..10_000) as f64;
        let truth = gnb.ue(rnti).unwrap().delivered_bytes_in(2000..10_000) as f64 * 8.0;
        assert!(truth > 0.0, "UE {rnti} saw traffic");
        let err = (est - truth).abs() / truth;
        assert!(err < 0.01, "UE {rnti}: error {:.3}%", err * 100.0);
    }
}

#[test]
fn ue_discovery_works_without_prior_rnti_knowledge() {
    // The core §3.1.2 claim: UEs become decodable purely by watching the
    // RACH. We verify the tracker never sees an RNTI before the gNB
    // actually assigned it.
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 77);
    let mut observer = Observer::new(&cell, 30.0, false, 77);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    // Stagger three arrivals.
    for s in 0..6000u64 {
        if s == 100 || s == 2000 || s == 4000 {
            gnb.ue_arrives(make_ue(
                s,
                ChannelProfile::Awgn,
                TrafficKind::Cbr {
                    rate_bps: 1e6,
                    packet_bytes: 800,
                },
            ));
        }
        let out = gnb.step();
        scope.process(&observer.observe(&out, s as f64 * 0.0005));
        for rnti in scope.tracked_rntis() {
            assert!(
                gnb.connected_rntis().contains(&rnti),
                "slot {s}: ghost RNTI {rnti}"
            );
        }
    }
    assert_eq!(scope.total_discovered(), 3);
}

#[test]
fn telemetry_records_are_internally_consistent() {
    let cell = CellConfig::srsran_n41();
    let (gnb, scope) = run(
        cell.clone(),
        vec![make_ue(
            1,
            ChannelProfile::Pedestrian,
            TrafficKind::Video {
                bitrate_bps: 5.0e6,
                chunk_s: 1.0,
            },
        )],
        30.0,
        Fidelity::Message,
        5000,
        21,
    );
    assert!(!scope.records().is_empty());
    for r in scope.records() {
        assert_eq!(r.rnti_type, RntiType::C);
        assert!(r.prb_start + r.prb_len <= cell.carrier_prbs, "{r:?}");
        assert!(r.symbol_start + r.symbol_len <= 14);
        assert!(r.mcs <= 27);
        assert!(r.harq_id < 16);
        // TBS must be reproducible from the record's own fields via the
        // cell's RRC parameters.
        let entry = cell.mcs_table.entry(r.mcs).unwrap();
        let expect = nr_scope::phy::tbs::transport_block_size(&nr_scope::phy::tbs::TbsParams {
            n_prb: r.prb_len,
            n_symbols: r.symbol_len,
            dmrs_per_prb: cell.dmrs_per_prb,
            overhead_per_prb: cell.x_overhead,
            mcs: entry,
            layers: r.layers,
        });
        assert_eq!(r.tbs, expect, "{r:?}");
    }
    // Each decoded DCI exists in the gNB's truth log.
    let report = match_dcis(gnb.truth(), scope.records(), 0..5000, 0);
    assert_eq!(report.spurious, 0);
}

#[test]
fn jsonl_log_round_trips_a_real_session() {
    let (_, scope) = run(
        CellConfig::srsran_n41(),
        vec![make_ue(
            1,
            ChannelProfile::Awgn,
            TrafficKind::Cbr {
                rate_bps: 2e6,
                packet_bytes: 1000,
            },
        )],
        30.0,
        Fidelity::Message,
        2000,
        31,
    );
    // The production writer is non-panicking: failures are counted in
    // metrics and reported, never unwrapped in the capture loop.
    let mut logger =
        nr_scope::scope::log::TelemetryLogger::new(Vec::new(), scope.metrics().clone());
    logger.append(scope.records());
    assert_eq!(logger.flush(), 0, "no write failures against a Vec sink");
    let buf = logger.into_inner();
    let (back, bad) = nr_scope::scope::log::read_jsonl(std::str::from_utf8(&buf).unwrap());
    assert_eq!(bad, 0);
    assert_eq!(back.len(), scope.records().len());
}
