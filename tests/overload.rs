//! Overload-soak: a seeded, oversubscribed UE population drives the
//! governor down the degradation ladder and back. Latency is modelled
//! (not wall clock) via [`LoadModel`], so the whole scenario — descent,
//! blind plateau, staged recovery — is deterministic.
//!
//! The invariant under test at every rung: MSG 4 C-RNTI discovery and
//! SIB1 tracking never go dark. Two UEs arrive *while the sniffer is
//! broadcast-only* and must still be discovered through RACH — and once
//! the load drops they are tracked like everyone else, proving blind
//! discovery produces usable tracking state.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::pdcch::AggregationLevel;
use nr_scope::phy::types::{Rnti, RntiType};
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{
    GovernorConfig, ImpairmentSchedule, LoadModel, LoadRung, NrScope, ScopeConfig, SyncState,
};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use std::collections::BTreeSet;
use std::time::Duration;

fn backlogged_ue(id: u64) -> SimUe {
    SimUe::new(
        id,
        ChannelProfile::Awgn,
        MobilityScenario::Static,
        TrafficSource::new(
            TrafficKind::FileDownload {
                total_bytes: usize::MAX / 2,
            },
            id,
        ),
        0.0,
        600.0,
        id,
    )
}

fn governor_cfg() -> GovernorConfig {
    GovernorConfig {
        enabled: true,
        budget_us_override: Some(500.0),
        demote_after_slots: 8,
        promote_after_slots: 40,
        promote_margin: 0.8,
        flap_window_slots: 300,
        max_backoff_exp: 3,
        // Level filtering off for this scenario: the cap alone prunes.
        pruned_min_level: AggregationLevel::L1,
        pruned_max_ue_candidates: 2,
        ..GovernorConfig::default()
    }
}

/// Load model calibrated against the seeded population (measured via the
/// governor EWMA at forced rungs): Full with 16 tracked UEs converges to
/// ~667 µs (over the 500 µs budget), PrunedSearch (cap 2) to ~420 µs —
/// inside the 400–500 µs hysteresis band, so the ladder parks there.
fn moderate_load() -> LoadModel {
    LoadModel {
        base: Duration::from_micros(60),
        per_candidate: Duration::from_micros(10),
        per_ue_hypothesis: Duration::from_micros(14),
    }
}

/// Spiked per-hypothesis cost: PrunedSearch converges to ~660 µs — over
/// budget, but not so hot that the EWMA is still over budget for
/// `demote_after_slots` after the demotion (that would cascade past
/// BroadcastOnly to Shedding).
fn spiked_load() -> LoadModel {
    LoadModel {
        per_ue_hypothesis: Duration::from_micros(24),
        ..moderate_load()
    }
}

/// Light per-hypothesis cost: every rung fits comfortably under the
/// promotion margin even with 18 tracked UEs, so the ladder climbs home.
fn light_load() -> LoadModel {
    LoadModel {
        per_ue_hypothesis: Duration::from_micros(5),
        ..moderate_load()
    }
}

#[test]
fn oversubscribed_population_degrades_recovers_and_never_loses_rach() {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
    for id in 1..=16u64 {
        gnb.ue_arrives(backlogged_ue(id));
    }
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let mut scope = NrScope::new(
        ScopeConfig {
            // Expiry stays out of this scenario (the composition test
            // exercises it): the hypothesis set must equal the tracked
            // population so the modelled load is constant per phase.
            ue_expiry_slots: 100_000,
            governor: governor_cfg(),
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );
    scope.set_load_model(Some(moderate_load()));
    let slot_s = cell.slot_s();

    // Phase 1 (slots 0..1200): 16 UEs attach; as the tracked count grows
    // the modelled Full-rung cost crosses the budget and the ladder
    // demotes, parking at PrunedSearch once all 16 are tracked.
    let mut all_attached_at = None;
    let mut first_demotion_at = None;
    for s in 0..1200u64 {
        let out = gnb.step();
        scope.process(&obs.observe(&out, s as f64 * slot_s));
        if all_attached_at.is_none() && scope.total_discovered() == 16 {
            all_attached_at = Some(s);
        }
        if first_demotion_at.is_none() && scope.load_rung() != LoadRung::Full {
            first_demotion_at = Some(s);
        }
    }
    let attached = all_attached_at.expect("all 16 UEs discovered despite overload");
    let demoted = first_demotion_at.expect("overload demoted the ladder");
    assert!(
        demoted <= attached + 200,
        "stable-rung search started within 200 slots of full attach (demoted at {demoted}, attached at {attached})"
    );
    assert_eq!(
        scope.load_rung(),
        LoadRung::PrunedSearch,
        "moderate overload parks at PrunedSearch"
    );
    assert!(scope.stats.deadline_misses > 0, "overload slots missed");
    assert!(scope.stats.rung_demotions >= 1);
    assert!(scope.stats.pruned_candidates > 0, "budget actually pruned");
    assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());

    // Phase 2 (slots 1200..2000): cost spike — only BroadcastOnly fits.
    // Two NEW UEs arrive mid-blindness; RACH discovery must survive.
    scope.set_load_model(Some(spiked_load()));
    let si_before = scope.stats.si_dcis;
    for s in 1200..2000u64 {
        if s == 1400 {
            gnb.ue_arrives(backlogged_ue(17));
            gnb.ue_arrives(backlogged_ue(18));
        }
        let out = gnb.step();
        scope.process(&obs.observe(&out, s as f64 * slot_s));
    }
    assert_eq!(
        scope.load_rung(),
        LoadRung::BroadcastOnly,
        "spike parks the ladder at BroadcastOnly"
    );
    assert_eq!(
        scope.sync_state(),
        SyncState::Synced,
        "governor-induced silence must not degrade sync"
    );
    assert!(
        scope.stats.si_dcis > si_before,
        "SIB1 tracking stayed alive while blind"
    );
    assert_eq!(
        scope.total_discovered(),
        18,
        "UEs that RACHed during blindness were discovered via MSG 4"
    );
    assert!(
        scope.governor().backoff_exp() > 0,
        "failed upward probes backed off"
    );

    // Phase 3 (slots 2000..3800): the load drops (per-hypothesis cost
    // falls back under the budget for the whole population). The ladder
    // must climb back to Full monotonically — no demotions — and finish
    // with zero misses over the final 100 slots. The two UEs discovered
    // while blind are tracked like everyone else.
    scope.set_load_model(Some(light_load()));
    let demotions_before = scope.stats.rung_demotions;
    let mut misses_at_3700 = 0;
    for s in 2000..3800u64 {
        let out = gnb.step();
        scope.process(&obs.observe(&out, s as f64 * slot_s));
        if s == 3700 {
            misses_at_3700 = scope.stats.deadline_misses;
        }
    }
    assert_eq!(
        scope.load_rung(),
        LoadRung::Full,
        "ladder returned to Full after the load dropped"
    );
    assert_eq!(
        scope.stats.rung_demotions, demotions_before,
        "recovery was monotone: no demotions after the load dropped"
    );
    assert_eq!(
        scope.stats.deadline_misses, misses_at_3700,
        "zero deadline misses over the final 100 slots"
    );
    let connected = gnb.connected_rntis();
    assert_eq!(connected.len(), 18, "all 18 UEs still connected");
    for r in &connected {
        assert!(
            scope.tracked_rntis().contains(r),
            "UE {r:?} (including the blind-discovered pair) tracked after recovery"
        );
    }

    // Ground truth: every RACH in the truth log (distinct MSG 4 TC-RNTI
    // transmissions) corresponds to a discovery — none went dark at any
    // rung.
    let truth_rach: BTreeSet<Rnti> = gnb
        .truth()
        .records()
        .iter()
        .filter(|r| r.rnti_type == RntiType::Tc)
        .map(|r| r.rnti)
        .collect();
    assert_eq!(
        scope.total_discovered(),
        truth_rach.len() as u64,
        "MSG 4 C-RNTI discovery succeeded for every RACH in the truth log"
    );
}

/// Satellite: the sync-health machine and the load governor compose. An
/// outage (dropped slots) mid-blindness must still degrade sync — drops
/// are front-end reality, not governor-induced silence — and both
/// machines must recover without double-counting UEs or losing SIB1.
#[test]
fn outage_while_blind_degrades_sync_but_recovery_composes() {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
    for id in 1..=4u64 {
        gnb.ue_arrives(backlogged_ue(id));
    }
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    // Outage well inside the blind phase.
    obs.set_impairments(ImpairmentSchedule::new(42).with_outage(1500..1660));
    let mut scope = NrScope::new(
        ScopeConfig {
            ue_expiry_slots: 1200,
            governor: governor_cfg(),
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );
    // Heavy per-hypothesis cost from the start: with 4 tracked UEs even
    // PrunedSearch (~727 µs) is over budget, so the ladder goes blind.
    scope.set_load_model(Some(LoadModel {
        per_ue_hypothesis: Duration::from_micros(80),
        ..moderate_load()
    }));
    let slot_s = cell.slot_s();
    let mut saw_degraded_during_outage = false;
    let mut saw_blind_before_outage = false;
    for s in 0..2400u64 {
        let out = gnb.step();
        let cap = obs.capture(&out, s as f64 * slot_s);
        scope.process_capture(&cap);
        if s == 1490 {
            saw_blind_before_outage = matches!(
                scope.load_rung(),
                LoadRung::BroadcastOnly | LoadRung::Shedding
            );
        }
        if s == 1655 {
            saw_degraded_during_outage = scope.sync_state() != SyncState::Synced;
        }
    }
    assert!(
        saw_blind_before_outage,
        "governor was blind before the outage"
    );
    assert!(
        saw_degraded_during_outage,
        "dropped slots degraded sync even at a blind rung"
    );
    assert_eq!(scope.stats.dropped_slots, 160);
    assert_eq!(scope.sync_state(), SyncState::Synced, "sync recovered");
    assert!(scope.stats.resyncs >= 1, "resync counted once, not looped");
    assert!(
        scope.cell.sib1.is_some(),
        "SIB1 state survived both machines"
    );

    // Load drop: lighten the model and thin the population; both ladders
    // climb home.
    scope.set_load_model(Some(LoadModel {
        per_ue_hypothesis: Duration::from_micros(5),
        ..moderate_load()
    }));
    gnb.ue_departs(1);
    gnb.ue_departs(2);
    for s in 2400..4200u64 {
        let out = gnb.step();
        let cap = obs.capture(&out, s as f64 * slot_s);
        scope.process_capture(&cap);
    }
    assert_eq!(scope.load_rung(), LoadRung::Full, "ladder recovered");
    assert_eq!(scope.sync_state(), SyncState::Synced);
    assert_eq!(
        scope.total_discovered(),
        4,
        "no UE double-counted across sync x governor transitions"
    );
    for r in &gnb.connected_rntis() {
        assert!(scope.tracked_rntis().contains(r), "live UE {r:?} tracked");
    }
}
