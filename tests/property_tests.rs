//! Property-based tests on cross-crate invariants (proptest).

use nr_scope::phy::bits::{BitReader, BitWriter};
use nr_scope::phy::crc::{dci_attach_crc, dci_check_crc, dci_recover_rnti};
use nr_scope::phy::dci::{riv_decode, riv_encode, Dci, DciFormat, DciSizing};
use nr_scope::phy::mcs::{bler, select_mcs, McsTable};
use nr_scope::phy::polar::PolarCode;
use nr_scope::phy::sequence::{gold_bits, scramble_in_place};
use nr_scope::phy::tbs::{
    near_quantisation_boundary, transport_block_size, transport_block_size_float_reference,
    transport_block_size_u64, TbsParams,
};
use nr_scope::rrc::{Mib, RrcSetup, Sib1};
use nr_scope::scope::throughput::RateWindow;
use proptest::prelude::*;

proptest! {
    #[test]
    fn crc_rnti_recovery_is_exact_for_any_payload(
        payload in prop::collection::vec(0u8..2, 20..60),
        rnti in 1u16..0xFFF0,
    ) {
        let cw = dci_attach_crc(&payload, rnti);
        prop_assert_eq!(dci_recover_rnti(&cw), Some(rnti));
        let checked = dci_check_crc(&cw, rnti);
        prop_assert_eq!(checked.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn corrupted_codewords_never_validate(
        payload in prop::collection::vec(0u8..2, 30..50),
        rnti in 1u16..0xFFF0,
        flip in 0usize..50,
    ) {
        let mut cw = dci_attach_crc(&payload, rnti);
        let idx = flip % cw.len();
        cw[idx] ^= 1;
        prop_assert!(dci_check_crc(&cw, rnti).is_none());
    }

    #[test]
    fn polar_round_trips_any_payload(
        bits in prop::collection::vec(0u8..2, 25..90),
    ) {
        let e = 216; // aggregation level 2
        let code = PolarCode::new(bits.len(), e);
        let tx = code.encode(&bits);
        prop_assert_eq!(tx.len(), e);
        let llrs: Vec<f32> = tx.iter().map(|&b| if b == 0 { 6.0 } else { -6.0 }).collect();
        prop_assert_eq!(code.decode_sc(&llrs), bits);
    }

    #[test]
    fn gold_scrambling_is_always_an_involution(
        mut data in prop::collection::vec(0u8..2, 1..300),
        c_init in 0u32..0x7FFF_FFFF,
    ) {
        let orig = data.clone();
        scramble_in_place(&mut data, c_init);
        scramble_in_place(&mut data, c_init);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn gold_sequences_differ_across_inits(a in 0u32..1000, b in 1000u32..2000) {
        prop_assert_ne!(gold_bits(a, 64), gold_bits(b, 64));
    }

    #[test]
    fn riv_round_trips_within_any_bwp(
        bwp in 11usize..275,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let start = ((bwp - 1) as f64 * start_frac) as usize;
        let max_len = bwp - start;
        let len = 1 + ((max_len - 1) as f64 * len_frac) as usize;
        let riv = riv_encode(start, len, bwp);
        prop_assert_eq!(riv_decode(riv, bwp), Some((start, len)));
    }

    #[test]
    fn dci_pack_unpack_is_identity(
        bwp in 24usize..275,
        f_frac in 0.0f64..1.0,
        t_alloc in 0u8..16,
        mcs in 0u8..28,
        ndi in 0u8..2,
        rv in 0u8..4,
        harq_id in 0u8..16,
        dl in proptest::bool::ANY,
    ) {
        let sizing = DciSizing { bwp_prbs: bwp };
        let max_riv = riv_encode(0, bwp, bwp);
        let f_alloc = (max_riv as f64 * f_frac) as u32;
        let dci = Dci {
            format: if dl { DciFormat::Dl1_1 } else { DciFormat::Ul0_1 },
            f_alloc,
            t_alloc,
            mcs,
            ndi,
            rv,
            harq_id,
            dai: if dl { 2 } else { 0 },
            tpc: 1,
            harq_feedback: if dl { 3 } else { 0 },
            ports: 5,
            srs_request: 1,
            dmrs_id: 0,
        };
        let bits = dci.pack(&sizing);
        prop_assert_eq!(Dci::unpack(&bits, &sizing), Some(dci));
    }

    #[test]
    fn tbs_is_monotone_in_resources(
        prbs in 1usize..100,
        extra in 1usize..50,
        mcs in 0u8..28,
    ) {
        let entry = McsTable::Qam256.entry(mcs).unwrap();
        let params = |n| TbsParams {
            n_prb: n,
            n_symbols: 12,
            dmrs_per_prb: 12,
            overhead_per_prb: 0,
            mcs: entry,
            layers: 2,
        };
        prop_assert!(transport_block_size(&params(prbs + extra)) >= transport_block_size(&params(prbs)));
    }

    #[test]
    fn bler_is_between_zero_and_one(mcs in 0u8..28, snr in -30.0f64..50.0) {
        let entry = McsTable::Qam256.entry(mcs).unwrap();
        let p = bler(entry, snr);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn selected_mcs_is_always_valid(snr in -30.0f64..50.0) {
        for table in [McsTable::Qam64, McsTable::Qam256] {
            let m = select_mcs(table, snr, 0.1);
            prop_assert!(table.entry(m).is_some());
        }
    }

    #[test]
    fn mib_decode_never_panics_on_junk(bits in prop::collection::vec(0u8..2, 0..80)) {
        let _ = Mib::decode(&bits);
    }

    #[test]
    fn sib1_decode_never_panics_on_junk(bits in prop::collection::vec(0u8..2, 0..200)) {
        let _ = Sib1::decode(&bits);
    }

    #[test]
    fn rrc_setup_decode_never_panics_on_junk(bits in prop::collection::vec(0u8..2, 0..80)) {
        let _ = RrcSetup::decode(&bits);
    }

    #[test]
    fn bit_writer_reader_round_trip(
        values in prop::collection::vec((0u64..u32::MAX as u64, 1usize..33), 1..20),
    ) {
        let mut w = BitWriter::new();
        for (v, width) in &values {
            let masked = v & ((1u64 << width) - 1);
            w.put(masked, *width);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for (v, width) in &values {
            let masked = v & ((1u64 << width) - 1);
            prop_assert_eq!(r.get(*width), Some(masked));
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn rate_window_matches_naive_recompute(
        mut samples in prop::collection::vec((0u64..5_000, 0u64..100_000), 1..150),
        window in 1u64..3_000,
    ) {
        // Random slot/bit sequences with gaps (sparse slots) and
        // duplicates (several grants in one slot), replayed in slot order.
        samples.sort_by_key(|&(s, _)| s);
        let mut w = RateWindow::default();
        for &(s, b) in &samples {
            w.push(s, b, window);
        }
        let last = samples.last().unwrap().0;
        // Naive recompute from scratch: a sample survives iff it is
        // strictly less than `window` slots old.
        let retained: Vec<(u64, u64)> = samples
            .iter()
            .copied()
            .filter(|&(s, _)| s + window > last)
            .collect();
        let naive_sum: u64 = retained.iter().map(|&(_, b)| b).sum();
        let first = retained.first().unwrap().0;
        let naive_span = (retained.last().unwrap().0 - first + 1).clamp(1, window);
        prop_assert_eq!(w.bits(), naive_sum);
        prop_assert_eq!(w.effective_span(window), naive_span);
    }

    #[test]
    fn tbs_integer_matches_float_reference_off_boundary(
        use_256 in 0u8..2,
        mcs in 0u8..28,
        n_prb in 1usize..276,
        n_symbols in 1usize..15,
        dmrs_idx in 0usize..4,
        oh_idx in 0usize..4,
        layers in 1usize..5,
    ) {
        // The f64 seed implementation is exact wherever the product fits
        // the mantissa, except within one quantisation step of a branch or
        // rounding boundary — the corrected cases the integer path pins
        // down in unit tests. Everywhere else the two must agree bit-exactly.
        let table = if use_256 == 1 { McsTable::Qam256 } else { McsTable::Qam64 };
        let entry = table.entry(mcs).unwrap();
        let p = TbsParams {
            n_prb,
            n_symbols,
            dmrs_per_prb: [6usize, 12, 18, 24][dmrs_idx],
            overhead_per_prb: [0usize, 6, 12, 18][oh_idx],
            mcs: entry,
            layers,
        };
        if !near_quantisation_boundary(&p) {
            prop_assert_eq!(
                transport_block_size_u64(&p),
                transport_block_size_float_reference(&p)
            );
        }
    }

    #[test]
    fn harq_tracker_flags_iff_ndi_repeats(
        observations in prop::collection::vec((0u8..16, 0u8..2), 1..100),
    ) {
        use nr_scope::mac::HarqTracker;
        let mut tracker = HarqTracker::new();
        let mut last: [Option<u8>; 16] = [None; 16];
        for (harq_id, ndi) in observations {
            let expect = last[harq_id as usize] == Some(ndi);
            prop_assert_eq!(tracker.observe(harq_id, ndi), expect);
            last[harq_id as usize] = Some(ndi);
        }
    }
}
