//! Seeded chaos run: impairment injection on the radio front end, a worker
//! panic plus backpressure sheds in the decode pool, and a mid-run gNB
//! reconfiguration — the pipeline must self-heal and keep its telemetry
//! accuracy for the slots it was healthy in. Everything is seeded, so the
//! whole scenario is deterministic.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::dci::DciSizing;
use nr_scope::phy::pdcch::SearchBudget;
use nr_scope::phy::types::{Pci, RntiType};
use nr_scope::scope::decoder::{DecoderContext, Hypotheses};
use nr_scope::scope::observe::Observer;
use nr_scope::scope::worker::{InjectedFault, JobPriority, PoolConfig, SlotJob, WorkerPool};
use nr_scope::scope::{BackpressurePolicy, ImpairmentSchedule, NrScope, ScopeConfig, SyncState};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use std::time::Duration;

fn build_gnb(n_ues: usize) -> (CellConfig, Gnb) {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
    for i in 0..n_ues as u64 {
        gnb.ue_arrives(SimUe::new(
            i + 1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 2e6,
                    packet_bytes: 1200,
                },
                i + 1,
            ),
            0.0,
            60.0,
            i + 1,
        ));
    }
    (cell, gnb)
}

fn decoder_ctx(cell: &CellConfig) -> DecoderContext {
    DecoderContext {
        coreset: cell.coreset,
        pci: cell.pci.0,
        common_sizing: DciSizing {
            bwp_prbs: cell.coreset.n_prb,
        },
        ue_sizing: Some(DciSizing {
            bwp_prbs: cell.carrier_prbs,
        }),
    }
}

#[test]
fn chaos_run_self_heals_and_keeps_accuracy() {
    let (cell, mut gnb) = build_gnb(4);
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    // 1% random slot drops, a 25-slot processing stall, a 150-slot outage,
    // an interference burst and an AGC transient — all on one seed.
    obs.set_impairments(
        ImpairmentSchedule::new(7)
            .with_drop_prob(0.01)
            .with_stall(1000, 25)
            .with_interference(1500..1520, 15.0)
            .with_agc_transient(1600, 12.0)
            .with_outage(2000..2150),
    );
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let slot_s = cell.slot_s();
    for s in 0..8000u64 {
        if s == 3000 {
            // Mid-run reconfiguration: the cell halves its SIB1 period.
            // The sniffer must notice the changed SIB1 on its next read.
            gnb.reconfigure(|c| c.sib1_period_frames = 8);
        }
        let out = gnb.step();
        let cap = obs.capture(&out, s as f64 * slot_s);
        scope.process_capture(&cap);
    }

    // Worker-pool leg: replay one healthy captured slot through a
    // 1-worker shed-oldest pool with a poisoned job in the mix.
    let ctx = decoder_ctx(&cell);
    let hyp = Hypotheses {
        c_rntis: gnb.connected_rntis(),
        allow_recovery: true,
        ..Hypotheses::default()
    };
    let mut clean_out = gnb.step();
    while !clean_out.dcis.iter().any(|d| d.rnti_type == RntiType::C) {
        clean_out = gnb.step();
    }
    let observed = obs.observe(&clean_out, 8000.0 * slot_s);
    let job = |slot: u64, fault: Option<InjectedFault>| SlotJob {
        slot,
        slot_in_frame: clean_out.slot_in_frame,
        observed: observed.clone(),
        ctx: ctx.clone(),
        hyp: hyp.clone(),
        dci_threads: 1,
        fault,
        priority: JobPriority::Data,
        budget: SearchBudget::unlimited(),
    };
    let mut pool = WorkerPool::with_config(PoolConfig {
        workers: 1,
        job_queue_depth: 2,
        policy: BackpressurePolicy::ShedOldest,
        ..PoolConfig::new(1)
    });
    // Jam the single worker, overflow the depth-2 queue (sheds), then
    // poison the queue tail so the panic job is not itself shed.
    pool.submit(job(
        0,
        Some(InjectedFault::Delay(Duration::from_millis(200))),
    ))
    .expect("queue open");
    std::thread::sleep(Duration::from_millis(50));
    for s in 2..8u64 {
        pool.submit(job(s, None)).expect("queue open");
    }
    pool.submit(job(1, Some(InjectedFault::Panic)))
        .expect("queue open");
    pool.submit(job(9, None)).expect("queue open");
    let (results, pool_stats, quarantined) = pool.finish_with_stats();
    assert_eq!(pool_stats.worker_panics, 1, "one injected panic survived");
    assert!(pool_stats.shed_jobs >= 1, "backpressure shed jobs");
    assert_eq!(quarantined.len(), 1, "poisoned job quarantined");
    assert_eq!(quarantined[0].slot, 1);
    assert!(!results.is_empty(), "surviving jobs still decoded");
    scope.absorb_pool_stats(&pool_stats);

    // The session self-healed: re-synced, UEs still tracked, and every
    // disruption is visible in the stats.
    assert_eq!(scope.sync_state(), SyncState::Synced, "ends re-synced");
    assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
    assert_eq!(scope.total_discovered(), 4);
    assert!(scope.stats.dropped_slots >= 175, "outage + stall + drops");
    assert!(scope.stats.resyncs >= 1, "outage recovery counted");
    assert!(scope.stats.sib1_reloads >= 1, "SIB1 change noticed");
    assert_eq!(scope.stats.worker_panics, 1, "pool stats absorbed");
    assert!(scope.stats.shed_jobs >= 1);

    // Telemetry accuracy for healthy windows: UEs were active throughout,
    // so over a window clear of the outage the TBS-sum estimate must stay
    // within 10% of the gNB's ground truth despite the ongoing 1% drops.
    for rnti in gnb.connected_rntis() {
        let est = scope.estimated_bits(rnti, 4000..8000) as f64;
        let truth = gnb.ue(rnti).unwrap().delivered_bytes_in(4000..8000) as f64 * 8.0;
        assert!(truth > 0.0, "UE {rnti} was active");
        let err = (est - truth).abs() / truth;
        assert!(
            err < 0.10,
            "UE {rnti}: estimate {est} vs truth {truth} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn cell_restart_chaos_resyncs_within_bound() {
    let (cell, mut gnb) = build_gnb(2);
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    obs.set_impairments(ImpairmentSchedule::new(13).with_drop_prob(0.005));
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let slot_s = cell.slot_s();
    for s in 0..2500u64 {
        let out = gnb.step();
        let cap = obs.capture(&out, s as f64 * slot_s);
        scope.process_capture(&cap);
    }
    assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
    // The cell restarts under a new PCI: every scrambled transmission goes
    // dark until the sniffer re-runs cell search.
    gnb.restart(Pci(7));
    let mut resynced_at = None;
    for s in 2500..6500u64 {
        let out = gnb.step();
        let cap = obs.capture(&out, s as f64 * slot_s);
        scope.process_capture(&cap);
        if resynced_at.is_none()
            && scope.cell.pci == Some(Pci(7))
            && scope.sync_state() == SyncState::Synced
        {
            resynced_at = Some(s);
        }
    }
    let resynced_at = resynced_at.expect("re-synced to the restarted cell");
    // Bound: lost_after_slots (400) to declare the loss, plus at most one
    // SIB1 period (320 slots) for the PCI scan to land on an SI slot,
    // plus slack for drop-delayed decodes.
    assert!(
        resynced_at < 2500 + 1500,
        "re-synced at slot {resynced_at}, bound 4000"
    );
    assert_eq!(scope.sync_state(), SyncState::Synced);
    assert_eq!(scope.cell.pci, Some(Pci(7)));
    assert_eq!(
        scope.tracked_rntis(),
        gnb.connected_rntis(),
        "surviving UEs re-tracked under the new identity"
    );
    assert_eq!(scope.total_discovered(), 2, "same UEs, not re-counted");
    assert!(scope.stats.resyncs >= 1);
}
