//! Liveness-supervision integration tests: hang detection, restart-storm
//! circuit breaking, honest durability demotion under a wedged journal
//! writer, and the tolerant pipe framing.
//!
//! The supervised-child tests re-invoke this very test binary as the
//! child process: [`child_entry`] is an `#[ignore]`d test selected with
//! `--exact --ignored`, so the child runs the real
//! [`supervise::run_child`] loop over real pipes. The libtest banner the
//! harness prints around it is absorbed by the parent's tolerant framing
//! (which is itself part of what is under test).

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::types::Pci;
use nr_scope::scope::chaos::{ChaosChildPlan, HangSchedule, CHAOS_PLAN_FILE};
use nr_scope::scope::observe::{Capture, Observer};
use nr_scope::scope::persist::{DurabilityRung, PersistConfig, PersistentSession};
use nr_scope::scope::supervise::{
    self, BreakerState, ChildMsg, Frame, FrameDecoder, RestartBreaker, RestartCause, SlotOutcome,
    Supervisor,
};
use nr_scope::scope::{Metrics, ScopeConfig, StoragePolicy};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHILD_DIR_ENV: &str = "NRSCOPE_LIVENESS_CHILD_DIR";
const CHILD_PCI_ENV: &str = "NRSCOPE_LIVENESS_CHILD_PCI";

/// Scheduling slop allowed on top of the hang deadline: pipe polls, the
/// force-kill, and CI jitter.
const DETECT_SLOP_MS: u64 = 1_500;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("nrscope-liveness-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create session dir");
    d
}

/// Deterministic capture tape: 2 backlogged UEs on the srsRAN cell.
fn capture_tape(slots: u64) -> (Vec<Capture>, Pci) {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 17);
    for i in 1..=2u64 {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: 1 << 30,
                },
                i,
            ),
            0.05 * i as f64,
            600.0,
            i,
        ));
    }
    let mut obs = Observer::new(&cell, 35.0, false, 9);
    let slot_s = cell.slot_s();
    let caps = (0..slots)
        .map(|s| {
            let out = gnb.step();
            obs.capture(&out, s as f64 * slot_s)
        })
        .collect();
    (caps, cell.pci)
}

/// Tightened deadlines so the hang tests run in about a second. The
/// hang deadline also sizes the respawn Hello budget (10×): it must
/// cover test-binary startup + recovery on a loaded CI machine, or a
/// slow respawn is misread as a failed one.
fn tuned_config() -> ScopeConfig {
    let mut cfg = ScopeConfig::default();
    cfg.supervise.heartbeat_interval_ms = 50;
    cfg.supervise.hang_deadline_ms = 1_000;
    cfg.supervise.restart_backoff_slots = 2;
    cfg
}

/// A supervisor whose child is this test binary re-running
/// [`child_entry`], with the session directory and PCI in the
/// environment (the supervisor re-applies them on every warm restart).
fn spawn_supervisor(dir: &Path, cfg: &ScopeConfig, pci: Pci) -> Supervisor {
    let exe = std::env::current_exe().expect("test binary path");
    let args: Vec<String> = [
        "child_entry",
        "--exact",
        "--ignored",
        "--nocapture",
        "--test-threads=1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let envs = vec![
        (CHILD_DIR_ENV.to_string(), dir.display().to_string()),
        (CHILD_PCI_ENV.to_string(), pci.0.to_string()),
    ];
    Supervisor::new(
        &exe,
        &args,
        &envs,
        cfg.supervise,
        Arc::new(Metrics::new(true)),
    )
}

/// Not a test: the supervised child's entry point, re-invoked by
/// [`spawn_supervisor`] with `--exact --ignored`. A plain `cargo test`
/// (no env, no `--ignored`) never runs the pipeline.
#[test]
#[ignore = "child process entry point; re-invoked by the supervision tests"]
fn child_entry() {
    let Ok(dir) = std::env::var(CHILD_DIR_ENV) else {
        return;
    };
    let pci = std::env::var(CHILD_PCI_ENV)
        .ok()
        .and_then(|s| s.parse::<u16>().ok())
        .map(Pci);
    // Start the protocol on a fresh line: libtest's banner shares this
    // stdout, and the parent's tolerant framing skips it as noise.
    println!();
    supervise::run_child(Path::new(&dir), pci).expect("child pipeline");
}

/// Tentpole contract: a child whose slot loop stops dead (no acks, no
/// heartbeats) is classified as hung within the hang deadline,
/// force-killed, and warm-restarted at exactly the slot the journal had
/// made durable — the supervisor never blocks indefinitely and never
/// loses more than the backoff window it reports.
#[test]
fn hung_child_is_detected_within_deadline_and_resumes_at_watermark() {
    const SLOTS: u64 = 120;
    const HANG_SLOT: u64 = 40;

    let dir = tmp_dir("hang");
    let cfg = tuned_config();
    std::fs::write(dir.join(supervise::CONFIG_FILE), cfg.to_json()).expect("write config");
    // Wedge the slot loop far past the deadline: only a force-kill can
    // end it. Keyed on the fed slot, so it cannot re-fire after restart.
    let plan = ChaosChildPlan {
        seed: 7,
        hangs: HangSchedule::new().wedge_slot_loop(HANG_SLOT, 30_000).hangs,
        storage_windows: Vec::new(),
        overload_windows: Vec::new(),
    };
    std::fs::write(dir.join(CHAOS_PLAN_FILE), plan.to_json()).expect("write plan");

    let (caps, pci) = capture_tape(SLOTS);
    let mut sup = spawn_supervisor(&dir, &cfg, pci);
    let hello = sup.start().expect("child starts");
    assert!(!hello.report.resumed, "first start must be a cold start");

    let mut pre_hang_ack = None;
    let mut detect_ms = None;
    let mut acked = 0u64;
    let mut lost = 0u64;
    for (seq, cap) in caps.iter().enumerate() {
        let seq = seq as u64;
        let hangs_before = sup.stats().hangs_detected;
        let fed_at = Instant::now();
        match sup.feed_slot(seq, cap) {
            SlotOutcome::Acked(ack) => {
                assert_eq!(
                    ack.watermark,
                    seq + 1,
                    "child must track the fed slot exactly"
                );
                if seq < HANG_SLOT {
                    pre_hang_ack = Some(ack);
                }
                acked += 1;
            }
            SlotOutcome::Lost(_) => lost += 1,
        }
        if sup.stats().hangs_detected > hangs_before {
            assert_eq!(seq, HANG_SLOT, "hang classified at the scripted slot");
            detect_ms = Some(fed_at.elapsed().as_millis() as u64);
        }
    }

    let stats = sup.stats();
    assert_eq!(stats.hangs_detected, 1, "exactly the scripted hang");
    let detect_ms = detect_ms.expect("hang was classified during the run");
    assert!(
        detect_ms <= cfg.supervise.hang_deadline_ms + DETECT_SLOP_MS,
        "hang detected in {detect_ms} ms, deadline {} ms",
        cfg.supervise.hang_deadline_ms
    );
    // Lost exactly the restart-backoff window `[hang_slot, hang_slot +
    // backoff)` — the hang slot itself is the first of it — nothing more.
    assert_eq!(lost, cfg.supervise.restart_backoff_slots);
    assert_eq!(acked + lost, SLOTS);
    assert_eq!(stats.slots_lost, lost);

    // The warm restart resumed from the durable watermark: at least what
    // the last ack promised, at most the hang slot (which was never
    // processed).
    let hang_restarts: Vec<_> = sup
        .restart_log()
        .iter()
        .filter(|e| e.cause == RestartCause::Hang)
        .collect();
    assert_eq!(hang_restarts.len(), 1);
    let ev = hang_restarts[0];
    assert!(ev.hello.report.resumed, "restart must recover prior state");
    let resumed = ev.hello.report.resumed_slot;
    let pre = pre_hang_ack.expect("slots acked before the hang");
    assert!(
        resumed >= pre.durable && resumed <= HANG_SLOT,
        "resumed at {resumed}, promised durable {} (hang at {HANG_SLOT})",
        pre.durable
    );

    // A single scripted hang must not trip the breaker.
    assert_eq!(stats.breaker_openings, 0);
    assert_eq!(sup.breaker_state(), BreakerState::Closed);
    assert!(sup.finish().is_some(), "clean shutdown after the soak");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Breaker state machine at the unit level: exhaustion opens it, it
/// stays parked through the backoff, a half-open probe is granted once,
/// a failed probe re-opens, a successful one closes.
#[test]
fn restart_breaker_opens_and_halfopen_probe_recovers() {
    let mut b = RestartBreaker::new(2, 10_000, 100);
    assert_eq!(b.state(), BreakerState::Closed);
    assert!(b.try_acquire(0));
    assert!(b.try_acquire(0));
    // Bucket empty: the denied acquire is the trip.
    assert!(!b.try_acquire(0));
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.openings(), 1);
    assert!(b.is_open());

    // Parked until the half-open backoff has elapsed.
    assert!(!b.try_acquire(50));
    assert!(b.try_acquire(150), "half-open probe granted after backoff");
    assert_eq!(b.state(), BreakerState::HalfOpen);
    // One probe outstanding: no second restart until its outcome lands.
    assert!(!b.try_acquire(160));

    // Failed probe: straight back to Open for another full backoff.
    b.probe_result(false, 160);
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.openings(), 2);

    assert!(b.try_acquire(300), "second probe after another backoff");
    b.probe_result(true, 300);
    assert_eq!(b.state(), BreakerState::Closed);
    assert!(!b.is_open());
    // Closing grants one fresh token; the bucket refills from there.
    assert!(b.try_acquire(300));
}

/// End-to-end storm breaking: repeated kills exhaust the restart budget,
/// the supervisor parks lame-duck (slots honestly reported lost, not
/// blocked on), and the half-open probe brings the pipeline back.
#[test]
fn restart_storm_trips_breaker_and_halfopen_probe_restores_service() {
    const SLOTS: u64 = 110;

    let dir = tmp_dir("storm");
    let mut cfg = tuned_config();
    cfg.supervise.restart_budget = 1;
    cfg.supervise.restart_budget_window_slots = 100_000; // no meaningful refill
    cfg.supervise.breaker_halfopen_after_slots = 40;
    std::fs::write(dir.join(supervise::CONFIG_FILE), cfg.to_json()).expect("write config");

    let (caps, pci) = capture_tape(SLOTS);
    let mut sup = spawn_supervisor(&dir, &cfg, pci);
    sup.start().expect("child starts");

    let mut lame_duck_slots = 0u64;
    let mut first_lame_duck = None;
    let mut acked_after_probe = 0u64;
    for (seq, cap) in caps.iter().enumerate() {
        let seq = seq as u64;
        // Two kills: the first consumes the whole budget on its restart,
        // the second finds the bucket empty and must open the breaker.
        if seq == 10 || seq == 20 {
            sup.kill_now(seq);
        }
        match sup.feed_slot(seq, cap) {
            SlotOutcome::Lost(nr_scope::scope::supervise::LostCause::LameDuck) => {
                lame_duck_slots += 1;
                first_lame_duck.get_or_insert(seq);
            }
            SlotOutcome::Acked(_) if first_lame_duck.is_some() => acked_after_probe += 1,
            _ => {}
        }
    }

    let stats = sup.stats();
    assert_eq!(
        stats.breaker_openings, 1,
        "storm must open the breaker once"
    );
    let opened_at = first_lame_duck.expect("breaker parked some slots lame-duck");
    assert!(lame_duck_slots > 0);
    // The half-open probe restored service within its scheduled backoff
    // (lame-duck can start a couple of slots after the deciding kill).
    assert!(
        acked_after_probe > 0,
        "no slot acked after the half-open probe window"
    );
    assert!(
        lame_duck_slots <= cfg.supervise.breaker_halfopen_after_slots + 4,
        "parked {lame_duck_slots} slots, half-open after {} (from slot {opened_at})",
        cfg.supervise.breaker_halfopen_after_slots
    );
    assert_eq!(
        sup.breaker_state(),
        BreakerState::Closed,
        "successful probe closes the breaker"
    );
    assert!(sup.finish().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A wedged journal-writer thread must not wedge decode: batches back up
/// behind it, the ladder demotes to `NonDurable`, and — the honesty
/// contract — the reported loss window goes unbounded (`None`) instead
/// of keeping a stale promise. After the wedge a probe re-promotes and
/// the loss window is bounded again.
#[test]
fn wedged_journal_writer_demotes_durability_honestly() {
    let dir = tmp_dir("writer-wedge");
    let mut pcfg = PersistConfig::new(&dir);
    // Small batches and a fast re-probe so the whole ladder round-trip
    // fits in a test: the wedge backs the queue up within ~100 slots.
    pcfg.flush_max_slots = 8;
    pcfg.storage = StoragePolicy {
        reprobe_interval_slots: 64,
        ..StoragePolicy::default()
    };

    let (caps, pci) = capture_tape(4_000);
    let (mut session, report) =
        PersistentSession::open(pcfg, ScopeConfig::default(), Some(pci)).expect("open session");
    assert!(!report.resumed);

    // Healthy run-up: the ladder starts (and stays) durable.
    let mut seq = 0usize;
    for _ in 0..64 {
        session.process_capture(&caps[seq]);
        seq += 1;
    }
    assert_eq!(session.durability_rung(), DurabilityRung::Durable);
    assert!(session.reported_loss_window().is_some());

    // Drain the run-up's batches first: the wedge command shares the
    // writer queue and is dropped (fire-and-forget) if the queue is full.
    assert!(session.flush_barrier());
    session.inject_writer_wedge(Duration::from_millis(250));
    let mut demoted_at = None;
    for _ in 0..2_000 {
        session.process_capture(&caps[seq]);
        seq += 1;
        // Pace the slot clock against the wall-clock wedge so the probe
        // flap backoff doesn't race through its doublings.
        std::thread::sleep(Duration::from_micros(200));
        if session.durability_rung() == DurabilityRung::NonDurable {
            demoted_at = Some(seq);
            break;
        }
    }
    let demoted_at = demoted_at.expect("wedged writer must demote the ladder");
    assert_eq!(
        session.reported_loss_window(),
        None,
        "NonDurable must report an unbounded loss window, not a stale promise"
    );

    // Decode outlives storage: the watermark keeps advancing while the
    // journal is down.
    let wm = session.scope().slot_watermark();
    session.process_capture(&caps[seq]);
    seq += 1;
    assert_eq!(session.scope().slot_watermark(), wm + 1);

    // Let the wedge expire, then keep feeding slots: the flap-backoff
    // probe must re-promote and the loss window become bounded again.
    std::thread::sleep(Duration::from_millis(300));
    let mut repromoted = false;
    for _ in 0..20_000 {
        if seq >= caps.len() {
            break;
        }
        session.process_capture(&caps[seq]);
        seq += 1;
        if session.durability_rung() != DurabilityRung::NonDurable {
            repromoted = true;
            break;
        }
    }
    assert!(
        repromoted,
        "probe must re-promote after the wedge (demoted at slot {demoted_at})"
    );
    assert!(session.reported_loss_window().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tolerant framing regression: garbage bytes, frames split across
/// reads, non-protocol JSON, and oversized lines are each counted as
/// typed wire errors and never poison the stream — the next valid frame
/// still decodes.
#[test]
fn frame_decoder_survives_garbage_bytes() {
    let mut d = FrameDecoder::with_max_frame(96);
    let hb = serde_json::to_string(&ChildMsg::Heartbeat {
        slot: 5,
        durable_watermark: 3,
    })
    .expect("serialize heartbeat");

    // 1) A valid frame split mid-line across two pushes.
    let bytes = hb.as_bytes();
    d.push(&bytes[..4]);
    assert!(d.next_frame().is_none(), "no frame before the newline");
    d.push(&bytes[4..]);
    d.push(b"\n");
    match d.next_frame() {
        Some(Frame::Msg(m)) => {
            assert!(matches!(*m, ChildMsg::Heartbeat { slot: 5, .. }))
        }
        other => panic!("expected the split heartbeat, got {other:?}"),
    }
    assert_eq!(d.errors(), 0);

    // 2) Raw binary garbage, then 3) valid JSON that is not a protocol
    // message (libtest banners, stray prints).
    d.push(b"\x00\xff\x7fnot a frame\n");
    d.push(b"{\"running\": 1}\n");
    assert!(matches!(d.next_frame(), Some(Frame::Err(_))));
    assert!(matches!(d.next_frame(), Some(Frame::Err(_))));
    assert_eq!(d.errors(), 2);

    // 4) An oversized line: discarded (not buffered unboundedly), and the
    // frame after it still decodes.
    let huge = vec![b'a'; 300];
    d.push(&huge);
    d.push(b"\n");
    let done = serde_json::to_string(&ChildMsg::Done { final_slot: 11 }).expect("serialize done");
    d.push(done.as_bytes());
    d.push(b"\n");
    assert!(matches!(d.next_frame(), Some(Frame::Err(_))));
    match d.next_frame() {
        Some(Frame::Msg(m)) => assert!(matches!(*m, ChildMsg::Done { final_slot: 11 })),
        other => panic!("expected Done after the oversized line, got {other:?}"),
    }
    assert_eq!(d.errors(), 3);

    // 5) EOF with a dangling partial line is a final, counted error.
    d.push(b"{\"trunc");
    assert!(d.finish().is_some());
    assert_eq!(d.errors(), 4);
}
