//! Hostile-cell and structured-mutation adversarial suite.
//!
//! Every over-the-air bit is untrusted input. These tests drive the
//! sniffer with the gNB simulator's hostile emission profile (ghost
//! MSG 4s, reserved-bit violations, malformed DCI fields, broken and
//! contradictory RRC encodings — see `gnb_sim::hostile`) and with seeded
//! structured mutations of captured slots, and assert the three hardening
//! invariants:
//!
//! 1. **no panic** — every malformed input surfaces as a typed, counted
//!    reject;
//! 2. **no ghost UE admitted** — the tracked set never contains an RNTI
//!    the cell did not actually serve;
//! 3. **no accounting drift** — legitimate UEs' per-byte accounting stays
//!    inside the parity band of the ground-truth log even while the
//!    hostile vectors fire.

use nr_scope::gnb::{CellConfig, Gnb, HostileConfig};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::types::{Rnti, RntiType};
use nr_scope::scope::observe::{ObservedSlot, Observer, PdschPayload};
use nr_scope::scope::{NrScope, ScopeConfig, SyncState};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn build_gnb(n_ues: usize, seed: u64) -> (CellConfig, Gnb) {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    for i in 0..n_ues as u64 {
        gnb.ue_arrives(SimUe::new(
            i + 1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 2e6,
                    packet_bytes: 1200,
                },
                i + 1,
            ),
            0.0,
            60.0,
            i + 1,
        ));
    }
    (cell, gnb)
}

/// Every RNTI the cell genuinely addressed (from the ground-truth log) —
/// the only RNTIs the sniffer is ever allowed to track.
fn real_rntis(gnb: &Gnb) -> BTreeSet<Rnti> {
    gnb.truth()
        .records()
        .iter()
        .filter(|r| matches!(r.rnti_type, RntiType::C | RntiType::Tc))
        .map(|r| r.rnti)
        .collect()
}

#[test]
fn hostile_cell_admits_no_ghost_and_keeps_accounting() {
    let (cell, mut gnb) = build_gnb(4, 21);
    gnb.arm_hostile(HostileConfig::default());
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let slot_s = cell.slot_s();
    for s in 0..10_000u64 {
        let out = gnb.step();
        let observed = obs.observe(&out, s as f64 * slot_s);
        scope.process(&observed);
    }

    // Invariant 2: the tracked set is exactly the genuinely served UEs.
    assert_eq!(scope.sync_state(), SyncState::Synced);
    assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
    assert_eq!(
        scope.total_discovered(),
        4,
        "not one phantom UE was ever promoted"
    );
    let real = real_rntis(&gnb);
    for r in scope.quarantined_rntis() {
        assert!(!real.contains(&r), "quarantine holds only ghosts, got {r}");
    }
    for r in scope.probationary_rntis() {
        assert!(!real.contains(&r), "probation holds only ghosts, got {r}");
    }

    // Invariant 1, observably: the attacks were seen and rejected through
    // typed paths, not ignored or panicked on.
    assert!(
        scope.stats.validation_rejects > 0,
        "stage-1 rejected reserved-bit / malformed-field DCIs"
    );
    assert!(
        scope.stats.parse_rejects > 0,
        "broken RRC encodings rejected with typed errors"
    );
    assert!(
        scope.stats.ghosts_quarantined > 0,
        "lapsed ghost candidates were quarantined"
    );
    assert!(
        !scope.quarantined_rntis().is_empty(),
        "quarantine ledger is populated"
    );
    assert_eq!(
        scope.stats.sib1_reloads, 0,
        "flapping SIB1 spoof never displaced cell state"
    );

    // Invariant 3: legitimate per-UE accounting stays in the parity band
    // of the truth log despite the ongoing hostility.
    for rnti in gnb.connected_rntis() {
        let est = scope.estimated_bits(rnti, 2_000..10_000) as f64;
        let truth = gnb.ue(rnti).unwrap().delivered_bytes_in(2_000..10_000) as f64 * 8.0;
        assert!(truth > 0.0, "UE {rnti} was active");
        let ratio = est / truth;
        assert!(
            (0.88..=1.02).contains(&ratio),
            "UE {rnti}: estimate/truth ratio {ratio:.3} outside parity band"
        );
    }
}

#[test]
fn persistent_ghost_is_quarantined_with_counted_reappearances() {
    let (cell, mut gnb) = build_gnb(1, 5);
    let ghost = Rnti(0x7F2A);
    // Only the persistent-ghost vector, on a period longer than the
    // admission window, so every sighting lands in a lapsed window.
    gnb.arm_hostile(HostileConfig {
        persistent_ghost_period: 251,
        persistent_ghost_rnti: ghost.0,
        ..HostileConfig::quiet()
    });
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let cfg = ScopeConfig::default();
    assert!(
        cfg.admission.window_slots < 251,
        "test premise: re-emission period exceeds the admission window"
    );
    let mut scope = NrScope::new(cfg, Some(cell.pci));
    let slot_s = cell.slot_s();
    for s in 0..6_000u64 {
        let out = gnb.step();
        scope.process(&obs.observe(&out, s as f64 * slot_s));
    }
    assert!(
        scope.quarantined_rntis().contains(&ghost),
        "lapsed persistent ghost is in the quarantine ledger"
    );
    assert!(
        scope.quarantine_reappearances(ghost) >= 2,
        "reappearances counted cheaply, got {}",
        scope.quarantine_reappearances(ghost)
    );
    assert!(!scope.tracked_rntis().contains(&ghost));
    assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
}

#[test]
fn ghost_flood_is_bounded_and_starves_no_real_ue() {
    let (cell, mut gnb) = build_gnb(2, 9);
    // Ghost MSG 4s every other downlink slot: a probation flood.
    gnb.arm_hostile(HostileConfig {
        ghost_dci_period: 2,
        ..HostileConfig::quiet()
    });
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let cfg = ScopeConfig::default();
    let mut scope = NrScope::new(cfg, Some(cell.pci));
    let slot_s = cell.slot_s();
    for s in 0..8_000u64 {
        let out = gnb.step();
        scope.process(&obs.observe(&out, s as f64 * slot_s));
    }
    // Bounded state despite thousands of distinct ghost candidates.
    assert!(
        scope.probationary_rntis().len() <= 64,
        "probation set stays bounded, got {}",
        scope.probationary_rntis().len()
    );
    assert!(
        scope.quarantined_rntis().len() <= cfg.admission.quarantine_max,
        "quarantine ledger respects its size bound"
    );
    assert!(scope.stats.ghosts_quarantined > 0);
    // Real UEs still discovered, tracked and accounted through the flood.
    assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
    for rnti in gnb.connected_rntis() {
        let est = scope.estimated_bits(rnti, 2_000..8_000) as f64;
        let truth = gnb.ue(rnti).unwrap().delivered_bytes_in(2_000..8_000) as f64 * 8.0;
        let ratio = est / truth;
        assert!(
            (0.88..=1.02).contains(&ratio),
            "UE {rnti}: ratio {ratio:.3} outside parity band under flood"
        );
    }
    // And the ghosts never pollute fair-share spare capacity: no spare
    // share is ever attributed to a non-real RNTI.
    let real = real_rntis(&gnb);
    for (_, shares) in scope.spare_log() {
        for share in shares {
            assert!(
                real.contains(&share.rnti),
                "spare capacity attributed to ghost {}",
                share.rnti
            );
        }
    }
}

/// Structured mutations over a captured slot: bit flips, truncation,
/// extension, duplication and full-random replacement of codewords and
/// broadcast payloads — the same operators the `fuzz_decode` bench bin
/// applies at soak scale.
fn mutate(observed: &mut ObservedSlot, rng: &mut StdRng) {
    let ObservedSlot::Message { dcis, pdsch, .. } = observed else {
        return;
    };
    for _ in 0..1 + rng.gen_range(0usize..3) {
        match rng.gen_range(0u32..6) {
            0 => {
                // Flip a few codeword bits.
                if let Some(d) = pick_mut(dcis, rng) {
                    for _ in 0..1 + rng.gen_range(0usize..4) {
                        if !d.scrambled_bits.is_empty() {
                            let i = rng.gen_range(0usize..d.scrambled_bits.len());
                            d.scrambled_bits[i] ^= 1;
                        }
                    }
                }
            }
            1 => {
                // Truncate a codeword.
                if let Some(d) = pick_mut(dcis, rng) {
                    let keep = rng.gen_range(0usize..d.scrambled_bits.len().max(1));
                    d.scrambled_bits.truncate(keep);
                }
            }
            2 => {
                // Extend a codeword with random bits.
                if let Some(d) = pick_mut(dcis, rng) {
                    for _ in 0..1 + rng.gen_range(0usize..40) {
                        d.scrambled_bits.push(rng.gen_range(0u8..2));
                    }
                }
            }
            3 => {
                // Replace a codeword with pure noise of the same length.
                if let Some(d) = pick_mut(dcis, rng) {
                    for b in d.scrambled_bits.iter_mut() {
                        *b = rng.gen_range(0u8..2);
                    }
                }
            }
            4 => {
                // Duplicate a captured candidate verbatim.
                if let Some(d) = pick_mut(dcis, rng) {
                    let copy = d.clone();
                    dcis.push(copy);
                }
            }
            _ => {
                // Corrupt a broadcast payload: flip, truncate or extend.
                if let Some((_, p)) = pick_mut(pdsch, rng) {
                    let bits = match p {
                        PdschPayload::Sib1(b) | PdschPayload::RrcSetup(b) => b,
                        PdschPayload::Rar(_) => return,
                    };
                    match rng.gen_range(0u32..3) {
                        0 if !bits.is_empty() => {
                            let i = rng.gen_range(0usize..bits.len());
                            bits[i] ^= 1;
                        }
                        1 => bits.truncate(bits.len() / 2),
                        _ => bits.extend([1u8, 0, 1, 1, 0, 1, 0, 0]),
                    }
                }
            }
        }
    }
}

fn pick_mut<'a, T>(v: &'a mut [T], rng: &mut StdRng) -> Option<&'a mut T> {
    if v.is_empty() {
        None
    } else {
        let i = rng.gen_range(0usize..v.len());
        v.get_mut(i)
    }
}

#[test]
fn structured_mutation_fuzz_never_panics_or_admits_a_ghost() {
    let (cell, mut gnb) = build_gnb(3, 33);
    gnb.arm_hostile(HostileConfig::default());
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let mut rng = StdRng::seed_from_u64(0xF022);
    let slot_s = cell.slot_s();
    for s in 0..12_000u64 {
        let out = gnb.step();
        let mut observed = obs.observe(&out, s as f64 * slot_s);
        // Mutate three slots in four; the clean quarter keeps the session
        // synced so the decode paths stay reachable.
        if s % 4 != 0 {
            mutate(&mut observed, &mut rng);
        }
        scope.process(&observed);
    }
    // No panic: we got here. No ghost: everything tracked was real.
    let real = real_rntis(&gnb);
    for r in scope.tracked_rntis() {
        assert!(real.contains(&r), "fuzz admitted ghost {r}");
    }
    // The mutations actually exercised the reject paths.
    assert!(scope.stats.validation_rejects > 0);
    assert!(scope.stats.parse_rejects > 0);
}
