//! Integration: the pipeline metrics layer observes every stage when one
//! registry is shared across the capture path, the scope, and the worker
//! pool — and records nothing (not even clock reads' results) when
//! disabled.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::scope::metrics::{Metrics, MetricsSnapshot};
use nr_scope::scope::observe::Observer;
use nr_scope::scope::worker::{PoolConfig, WorkerPool};
use nr_scope::scope::{Fidelity, NrScope, ScopeConfig};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use std::sync::Arc;

fn loaded_gnb(cell: &CellConfig, n_ues: u64, seed: u64) -> Gnb {
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    for i in 1..=n_ues {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 3e6,
                    packet_bytes: 1200,
                },
                i,
            ),
            0.0,
            30.0,
            i,
        ));
    }
    gnb
}

/// Message-fidelity lock-step slots into a shared registry; returns the
/// live session so the caller can extend the run.
fn message_run(cell: &CellConfig, slots: u64, metrics: Arc<Metrics>) -> (Gnb, Observer, NrScope) {
    let slot_s = cell.slot_s();
    let mut gnb = loaded_gnb(cell, 2, 11);
    let mut observer = Observer::new(cell, 30.0, false, 7);
    observer.set_metrics(Arc::clone(&metrics));
    let cfg = ScopeConfig {
        metrics_enabled: metrics.is_enabled(),
        ..ScopeConfig::default()
    };
    let mut scope = NrScope::with_metrics(cfg, Some(cell.pci), metrics);
    for s in 0..slots {
        let out = gnb.step();
        let observed = observer.observe(&out, s as f64 * slot_s);
        scope.process(&observed);
    }
    (gnb, observer, scope)
}

#[test]
fn full_pipeline_populates_at_least_six_stages() {
    let cell = CellConfig::srsran_n41();
    let slot_s = cell.slot_s();
    let metrics = Metrics::shared(true);

    // Message phase: capture, PDCCH search, DCI decode, classify, tracking.
    let (mut gnb, mut observer, scope) = message_run(&cell, 2000, Arc::clone(&metrics));

    // Pool phase: worker-queue wait on the same registry.
    let mut pool = WorkerPool::with_metrics(PoolConfig::new(2), Arc::clone(&metrics));
    for s in 0..200u64 {
        let out = gnb.step();
        let observed = observer.observe(&out, (2000 + s) as f64 * slot_s);
        let job = scope
            .slot_job(observed)
            .expect("MIB known after 2000 slots");
        pool.submit(job).expect("queue open");
    }
    assert_eq!(pool.finish().len(), 200);

    // IQ phase: radio capture and OFDM demod.
    {
        let mut gnb = loaded_gnb(&cell, 1, 13);
        let mut observer = Observer::new(&cell, 30.0, true, 5);
        observer.set_metrics(Arc::clone(&metrics));
        let cfg = ScopeConfig {
            fidelity: Fidelity::Iq,
            ..ScopeConfig::default()
        };
        let mut scope = NrScope::with_metrics(cfg, None, Arc::clone(&metrics));
        for s in 0..120u64 {
            let out = gnb.step();
            let observed = observer.observe(&out, s as f64 * slot_s);
            scope.process(&observed);
        }
    }

    let snap = metrics.snapshot();
    for name in [
        "capture",
        "demod",
        "pdcch_search",
        "dci_decode",
        "tracking",
        "worker_queue",
    ] {
        let s = snap
            .stage(name)
            .unwrap_or_else(|| panic!("stage {name} missing"));
        assert!(s.count > 0, "stage {name} recorded nothing");
        assert!(s.p50_us > 0.0, "stage {name} p50 empty");
        assert!(s.p99_us >= s.p50_us, "stage {name} p99 < p50");
        assert!(s.max_us > 0.0, "stage {name} max empty");
    }
    assert!(snap.counter("slots_processed").unwrap() >= 2000);
    assert!(snap.counter("dcis_decoded").unwrap() > 0);
    assert!(snap.counter("radio_slots").unwrap() >= 2120);

    // The JSON export round-trips losslessly.
    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
    assert_eq!(back, snap);
}

/// Regression: the pool used to leave `queue_depth` at its last
/// submit-time value after shutdown, so a closing snapshot reported
/// phantom backlog (`queue_depth: 254`) next to `workers_alive: 0`.
/// Drain must zero the gauge.
#[test]
fn pool_shutdown_zeroes_queue_depth_gauge() {
    let cell = CellConfig::srsran_n41();
    let slot_s = cell.slot_s();
    let metrics = Metrics::shared(true);
    let (mut gnb, mut observer, scope) = message_run(&cell, 2000, Arc::clone(&metrics));
    let mut pool = WorkerPool::with_metrics(PoolConfig::new(2), Arc::clone(&metrics));
    for s in 0..200u64 {
        let out = gnb.step();
        let observed = observer.observe(&out, (2000 + s) as f64 * slot_s);
        let job = scope
            .slot_job(observed)
            .expect("MIB known after 2000 slots");
        pool.submit(job).expect("queue open");
    }
    // The submit path set queue_depth to the live backlog.
    let gauge = |snap: &MetricsSnapshot, name: &str| {
        snap.gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .value
    };
    let (results, _stats, quarantined) = pool.finish_with_stats();
    assert_eq!(results.len(), 200);
    assert!(quarantined.is_empty());
    let snap = metrics.snapshot();
    assert_eq!(gauge(&snap, "workers_alive"), 0);
    assert_eq!(
        gauge(&snap, "queue_depth"),
        0,
        "shutdown left a stale queue-depth gauge"
    );
}

#[test]
fn disabled_registry_records_nothing() {
    let cell = CellConfig::srsran_n41();
    let metrics = Metrics::shared(false);
    let (_, _, scope) = message_run(&cell, 500, Arc::clone(&metrics));
    assert!(!scope.tracked_rntis().is_empty(), "pipeline still works");
    let snap = metrics.snapshot();
    assert!(!snap.enabled);
    assert!(snap.counters.iter().all(|c| c.value == 0));
    assert!(snap.stages.iter().all(|s| s.count == 0));
    assert!(snap.gauges.iter().all(|g| g.value == 0));
}
