//! Clock-domain robustness: a deterministic oscillator model skews the
//! front end (ppm offset, drift, steps) while the closed-loop timing
//! recovery in the scope pulls the residual back in. Under test here:
//!
//! * Lock acquisition and decode parity under a ±20 ppm oscillator.
//! * Composition with the sync-health machine — a clock step's decode
//!   silence must not degrade sync, while a genuine front-end outage
//!   must, clock trouble or not.
//! * Composition with the overload governor — drift and overload
//!   demotions coexist without either ladder confusing the other.
//! * Mod-1024 SFN wrap safety: the derived SFN tracks the gNB's air
//!   truth across multiple wraps of the non-wrapping slot counter.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::pdcch::AggregationLevel;
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{
    ClockLock, ClockRecoveryConfig, GovernorConfig, ImpairmentSchedule, LoadModel, NrScope,
    ScopeConfig, SyncState,
};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use std::time::Duration;

fn cbr_ue(id: u64) -> SimUe {
    SimUe::new(
        id,
        ChannelProfile::Awgn,
        MobilityScenario::Static,
        TrafficSource::new(
            TrafficKind::Cbr {
                rate_bps: 2e6,
                packet_bytes: 1200,
            },
            id,
        ),
        0.0,
        60.0,
        id,
    )
}

fn build_gnb(n_ues: u64, seed: u64) -> (CellConfig, Gnb) {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    for id in 1..=n_ues {
        gnb.ue_arrives(cbr_ue(id));
    }
    (cell, gnb)
}

/// Step `slots` slots through an observer/scope pair using the full
/// closed-loop path (capture → observable → process → correction).
fn run(gnb: &mut Gnb, obs: &mut Observer, scope: &mut NrScope, slots: u64, slot_s: f64) {
    for _ in 0..slots {
        let out = gnb.step();
        let t = out.slot as f64 * slot_s;
        scope.process_observer_slot(obs, &out, t);
    }
}

#[test]
fn twenty_ppm_oscillator_locks_and_keeps_decode_parity() {
    // The UEs attach at slot 800, after the drifted run's CFO pull-in —
    // attaches missed during acquisition are a real (and permanent) loss
    // for an RNTI tracker, which is exactly why they'd drown the parity
    // signal this test is after: steady-state decode under drift.
    let drive = |clocked: bool| {
        let (cell, mut gnb) = build_gnb(0, 11);
        let slot_s = cell.slot_s();
        let mut obs = Observer::new(&cell, 35.0, false, 5);
        if clocked {
            obs.set_clock(
                // +20 ppm with a mild temperature walk — about 50 kHz of
                // CFO at the n41 carrier until corrected.
                cell.clock_model(3)
                    .with_static_ppm(20.0)
                    .with_random_walk(0.02),
            );
        }
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        run(&mut gnb, &mut obs, &mut scope, 800, slot_s);
        gnb.ue_arrives(cbr_ue(1));
        gnb.ue_arrives(cbr_ue(2));
        run(&mut gnb, &mut obs, &mut scope, 5200, slot_s);
        scope
    };
    let base = drive(false);
    let scope = drive(true);

    assert_eq!(scope.clock_lock(), Some(ClockLock::Locked), "lock held");
    assert_eq!(scope.sync_state(), SyncState::Synced);
    let ppb = scope.clock_drift_ppb();
    assert!(
        (ppb - 20_000).abs() < 5_000,
        "drift estimate {ppb} ppb (expected ≈20,000)"
    );
    // Decode parity with the ideal-clock baseline: once locked, the
    // residual costs (nearly) nothing. The observers' RNG streams
    // diverge (measurement-noise draws), so parity is a band, not
    // equality.
    let dcis = |s: &NrScope| {
        s.stats.si_dcis + s.stats.ra_dcis + s.stats.tc_dcis + s.stats.dl_dcis + s.stats.ul_dcis
    };
    let ratio = dcis(&scope) as f64 / dcis(&base) as f64;
    assert!(
        (0.88..=1.02).contains(&ratio),
        "decode parity ratio {ratio:.3}"
    );
    assert!(scope.stats.timing_slips > 0, "drift forced sample slips");
}

#[test]
fn clock_step_is_masked_but_real_outage_still_degrades_sync() {
    let (cell, mut gnb) = build_gnb(2, 13);
    let slot_s = cell.slot_s();
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    // A 30 µs step at slot 3013 — a non-SSB slot, so the fine estimator
    // goes blind immediately and the loop stays blind until the next SSB
    // (slot 3040) snaps the whole residual back.
    obs.set_clock(
        cell.clock_model(7)
            .with_static_ppm(5.0)
            .with_step(3013, 30.0),
    );
    // An unrelated, genuine front-end outage later in the run.
    obs.set_impairments(ImpairmentSchedule::new(9).with_outage(5000..5150));
    let mut scope = NrScope::new(
        ScopeConfig {
            // Tight sync thresholds so un-masked step silence *would*
            // degrade; a short pulling horizon so the step excursion
            // formally leaves `Locked` (and so engages the mask).
            degraded_after_slots: 20,
            clock: ClockRecoveryConfig {
                pulling_after_slots: 10,
                ..ClockRecoveryConfig::default()
            },
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );

    run(&mut gnb, &mut obs, &mut scope, 3000, slot_s);
    assert_eq!(scope.clock_lock(), Some(ClockLock::Locked), "acquired");
    assert_eq!(scope.sync_state(), SyncState::Synced);
    let losses_before = scope.stats.clock_lock_losses;

    // Through the step: the loop loses lock and reacquires via the SSB
    // snap; the decode silence meanwhile is attributed to the clock, not
    // the cell.
    let mut sync_held = true;
    for _ in 3000..3200u64 {
        let out = gnb.step();
        scope.process_observer_slot(&mut obs, &out, out.slot as f64 * slot_s);
        sync_held &= scope.sync_state() == SyncState::Synced;
    }
    assert!(sync_held, "step silence was misread as a cell outage");
    assert!(
        scope.stats.clock_lock_losses > losses_before,
        "the step cost the loop its lock"
    );
    assert_eq!(scope.clock_lock(), Some(ClockLock::Locked), "relocked");

    // Through the outage: front-end drops count against sync health no
    // matter what the clock loop thinks — the mask must not hide it.
    let mut saw_degraded = false;
    for _ in 3200..5400u64 {
        let out = gnb.step();
        scope.process_observer_slot(&mut obs, &out, out.slot as f64 * slot_s);
        saw_degraded |= scope.sync_state() != SyncState::Synced;
    }
    assert!(saw_degraded, "a real outage degraded sync");
    assert_eq!(scope.sync_state(), SyncState::Synced, "and it recovered");
}

#[test]
fn drift_and_overload_ladders_coexist() {
    let (cell, mut gnb) = build_gnb(16, 11);
    let slot_s = cell.slot_s();
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    obs.set_clock(cell.clock_model(5).with_static_ppm(10.0));
    let mut scope = NrScope::new(
        ScopeConfig {
            ue_expiry_slots: 100_000,
            governor: GovernorConfig {
                enabled: true,
                budget_us_override: Some(500.0),
                demote_after_slots: 8,
                promote_after_slots: 40,
                promote_margin: 0.8,
                flap_window_slots: 300,
                max_backoff_exp: 3,
                pruned_min_level: AggregationLevel::L1,
                pruned_max_ue_candidates: 2,
                ..GovernorConfig::default()
            },
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );
    // Sixteen backlogged UEs at this model overflow the 500 µs budget at
    // Full — the ladder must demote — while the oscillator drifts.
    scope.set_load_model(Some(LoadModel {
        base: Duration::from_micros(60),
        per_candidate: Duration::from_micros(10),
        per_ue_hypothesis: Duration::from_micros(14),
    }));
    run(&mut gnb, &mut obs, &mut scope, 4000, slot_s);

    assert!(
        scope.stats.rung_demotions >= 1,
        "overload demoted at least one rung"
    );
    assert_eq!(
        scope.clock_lock(),
        Some(ClockLock::Locked),
        "lock held through the overload episode"
    );
    let ppb = scope.clock_drift_ppb();
    assert!(
        (ppb - 10_000).abs() < 4_000,
        "drift estimate {ppb} ppb under overload"
    );
    assert_eq!(scope.sync_state(), SyncState::Synced);
}

#[test]
fn derived_sfn_tracks_air_truth_across_two_wraps() {
    // SFN wraps every 1024 frames = 20,480 slots at µ=1. The sniffer's
    // u64 slot counter never wraps; its projection must. Skipped
    // stretches between the windows keep the test fast — the scope
    // fast-forwards its counter exactly as a volatile shard adopting a
    // live feed position does.
    let (cell, mut gnb) = build_gnb(1, 11);
    let slot_s = cell.slot_s();
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let mut checked = 0u64;
    let windows = [
        (0u64, 400u64),   // anchor acquisition
        (20_200, 20_900), // first wrap (20,480)
        (40_700, 41_400), // second wrap (40,960)
    ];
    let mut air_slot = 0u64;
    for (start, end) in windows {
        while air_slot < start {
            let _ = gnb.step(); // cell keeps running; sniffer not listening
            air_slot += 1;
        }
        scope.fast_forward(start);
        while air_slot < end {
            let out = gnb.step();
            air_slot += 1;
            if scope.cell.mib.is_some() {
                assert_eq!(
                    scope.derived_sfn(),
                    out.sfn,
                    "derived SFN diverged at air slot {}",
                    out.slot
                );
                checked += 1;
            }
            let cap = obs.capture(&out, out.slot as f64 * slot_s);
            scope.process_capture(&cap);
        }
    }
    assert!(checked > 1200, "wrap windows actually exercised: {checked}");
    assert_eq!(
        scope.derived_sfn(),
        gnb.clock().sfn,
        "still in step at the end"
    );
}
