//! Fleet bulkhead integration: a faulted shard is quarantined and
//! warm-restarted from its own state while its sibling's decode output
//! stays byte-for-byte identical to a standalone run, and a C-RNTI
//! handed over between cells is accounted as one user.

use nr_scope::gnb::{CellConfig, MultiCellSim};
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::scope::fleet::{FaultPlan, Fleet, ShardHealth, ShardSpec};
use nr_scope::scope::worker::InjectedFault;
use nr_scope::scope::{Capture, FleetConfig, NrScope, PersistConfig, ScopeConfig};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn make_ue(id: u64, horizon_s: f64) -> SimUe {
    SimUe::new(
        id,
        ChannelProfile::Awgn,
        MobilityScenario::Static,
        TrafficSource::new(
            TrafficKind::FileDownload {
                total_bytes: usize::MAX / 2,
            },
            id * 3,
        ),
        0.0,
        horizon_s,
        id * 17,
    )
}

/// Two lanes of pre-rendered captures (identical no matter how they are
/// consumed — the isolation tests feed one copy to the fleet and one to
/// a reference scope).
fn two_lane_captures(slots: u64, seed: u64) -> (Vec<CellConfig>, Vec<Vec<Capture>>) {
    let cells = vec![CellConfig::srsran_n41(), CellConfig::mosolab_n48()];
    let mut sim = MultiCellSim::new(cells.clone(), seed);
    let horizon = slots as f64 * cells[0].slot_s() + 10.0;
    sim.lane_mut(0).ue_arrives(make_ue(1, horizon));
    sim.lane_mut(1).ue_arrives(make_ue(11, horizon));
    sim.lane_mut(1).ue_arrives(make_ue(12, horizon));
    let mut observers: Vec<_> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            nr_scope::scope::observe::Observer::new(c, 30.0, false, seed ^ (0xAB + i as u64))
        })
        .collect();
    let mut lanes: Vec<Vec<Capture>> = vec![Vec::new(), Vec::new()];
    for s in 0..slots {
        let outs = sim.step();
        for (i, out) in outs.iter().enumerate() {
            lanes[i].push(observers[i].capture(out, s as f64 * cells[i].slot_s()));
        }
    }
    (cells, lanes)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nrscope-fleet-test-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Feed both lanes with pacing, injecting `fault` on shard 0 at
/// `fault_at`, then drive supervision until both shards are healthy and
/// drained.
fn run_fleet_with_fault(fleet: &Fleet, lanes: &[Vec<Capture>], fault_at: u64, fault: FaultPlan) {
    let slots = lanes[0].len() as u64;
    for s in 0..slots {
        if s == fault_at {
            fleet.inject_fault(0, fault);
        }
        for (i, lane) in lanes.iter().enumerate() {
            fleet.feed(i, s, lane[s as usize].clone());
        }
        if s.is_multiple_of(16) {
            fleet.supervise();
            while (0..lanes.len()).any(|i| fleet.shard_status(i).queue_len > 256) {
                fleet.supervise();
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    assert!(fleet.quiesce(Duration::from_secs(30)), "fleet drained");
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        fleet.supervise();
        if (0..lanes.len()).all(|i| fleet.shard_status(i).health == ShardHealth::Healthy) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(fleet.quiesce(Duration::from_secs(30)), "post-restart drain");
}

/// The sibling's decode must be byte-identical to the same captures run
/// through a standalone scope — the strongest isolation statement.
fn assert_sibling_untouched(fleet: &Fleet, cells: &[CellConfig], lanes: &[Vec<Capture>]) {
    let mut reference = NrScope::new(ScopeConfig::default(), Some(cells[1].pci));
    for cap in &lanes[1] {
        reference.process_capture(cap);
    }
    let status = fleet.shard_status(1);
    assert_eq!(status.panics, 0, "sibling saw no panic");
    assert_eq!(status.sheds, 0, "sibling shed nothing");
    fleet
        .with_scope(1, |scope| {
            assert_eq!(scope.stats.slots, reference.stats.slots);
            assert_eq!(scope.stats.dl_dcis, reference.stats.dl_dcis);
            assert_eq!(scope.stats.ul_dcis, reference.stats.ul_dcis);
            assert_eq!(scope.stats.dropped_slots, reference.stats.dropped_slots);
            assert_eq!(scope.total_discovered(), reference.total_discovered());
            assert_eq!(scope.tracked_rntis(), reference.tracked_rntis());
            for rnti in reference.tracked_rntis() {
                assert_eq!(
                    scope.estimated_bits(rnti, 0..scope.stats.slots),
                    reference.estimated_bits(rnti, 0..reference.stats.slots),
                    "sibling byte estimate diverged for {rnti}"
                );
            }
        })
        .expect("sibling engine live");
}

#[test]
fn killed_shard_warm_restarts_while_sibling_is_bit_identical() {
    let slots = 4000u64;
    let (cells, lanes) = two_lane_captures(slots, 5);
    let dir = temp_dir("kill");
    let specs = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ShardSpec::durable(
                format!("cell{i}"),
                Some(c.pci),
                ScopeConfig::default(),
                PersistConfig {
                    checkpoint_every_slots: 256,
                    ..PersistConfig::new(dir.join(format!("shard{i}")))
                },
            )
        })
        .collect();
    let fleet = Fleet::new(
        FleetConfig {
            workers: 2,
            shard_queue_depth: 512,
            restart_backoff_ms: 2,
            ..FleetConfig::default()
        },
        specs,
    )
    .expect("fleet");
    run_fleet_with_fault(
        &fleet,
        &lanes,
        2000,
        FaultPlan::OneShot(InjectedFault::Panic),
    );

    let status = fleet.shard_status(0);
    assert_eq!(status.panics, 1, "panic was caught");
    assert!(status.restarts >= 1, "shard warm-restarted");
    assert_eq!(status.health, ShardHealth::Healthy);
    let recovery = status.last_recovery.expect("durable shard recovered");
    assert!(recovery.resumed, "restart resumed from its own state");
    assert!(recovery.resumed_slot <= 2001, "resumed at the fault point");
    // Exact-slot resume: the watermark reaches the full feed, with only
    // the panicked slot itself gap-filled as an honest drop.
    fleet
        .with_scope(0, |scope| {
            assert_eq!(scope.slot_watermark(), slots);
            assert!(scope.stats.dropped_slots <= 2, "at most the lost slot");
        })
        .expect("restarted engine live");

    assert_sibling_untouched(&fleet, &cells, &lanes);
    fleet.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wedged_shard_is_fenced_and_resumes_at_exact_slot() {
    let slots = 3000u64;
    let (cells, lanes) = two_lane_captures(slots, 6);
    let dir = temp_dir("wedge");
    let specs = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ShardSpec::durable(
                format!("cell{i}"),
                Some(c.pci),
                ScopeConfig::default(),
                PersistConfig::new(dir.join(format!("shard{i}"))),
            )
        })
        .collect();
    let fleet = Fleet::new(
        FleetConfig {
            workers: 2,
            shard_queue_depth: 4096,
            watchdog_ms: 50,
            restart_backoff_ms: 2,
            ..FleetConfig::default()
        },
        specs,
    )
    .expect("fleet");
    run_fleet_with_fault(
        &fleet,
        &lanes,
        1500,
        FaultPlan::OneShot(InjectedFault::Delay(Duration::from_millis(250))),
    );

    let status = fleet.shard_status(0);
    assert!(status.wedges >= 1, "watchdog fenced the stall");
    assert!(status.restarts >= 1, "fenced shard restarted");
    assert_eq!(status.health, ShardHealth::Healthy);
    assert!(
        status.last_recovery.expect("durable recovery").resumed,
        "resumed from checkpoint + journal"
    );
    fleet
        .with_scope(0, |scope| {
            assert_eq!(scope.slot_watermark(), slots, "no slot skipped or repeated");
            assert_eq!(scope.stats.dropped_slots, 0, "stall lost nothing");
        })
        .expect("restarted engine live");
    assert_eq!(fleet.shard_status(1).wedges, 0, "sibling never fenced");
    fleet.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_cell_handover_is_one_user_in_the_rollup() {
    let slots = 3200u64;
    let cells = vec![CellConfig::srsran_n41(), CellConfig::mosolab_n48()];
    let mut sim = MultiCellSim::new(cells.clone(), 9);
    let horizon = slots as f64 * cells[0].slot_s() + 10.0;
    sim.lane_mut(0).ue_arrives(make_ue(1, horizon));
    sim.lane_mut(0).ue_arrives(make_ue(999, horizon));
    sim.lane_mut(1).ue_arrives(make_ue(11, horizon));
    sim.schedule_handover(1200, 999, 0, 1);

    let mut observers: Vec<_> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            nr_scope::scope::observe::Observer::new(c, 30.0, false, 9 ^ (0xF0 + i as u64))
        })
        .collect();
    let scope_cfg = ScopeConfig {
        ue_expiry_slots: 800,
        ..ScopeConfig::default()
    };
    let specs = cells
        .iter()
        .enumerate()
        .map(|(i, c)| ShardSpec::volatile(format!("cell{i}"), Some(c.pci), scope_cfg))
        .collect();
    let fleet = Fleet::new(
        FleetConfig {
            workers: 2,
            shard_queue_depth: 512,
            continuity_window_slots: 1000,
            ..FleetConfig::default()
        },
        specs,
    )
    .expect("fleet");
    for s in 0..slots {
        let outs = sim.step();
        for (i, out) in outs.iter().enumerate() {
            fleet.feed(
                i,
                s,
                observers[i].capture(out, s as f64 * cells[i].slot_s()),
            );
        }
        if s.is_multiple_of(32) {
            fleet.supervise();
            while (0..2).any(|i| fleet.shard_status(i).queue_len > 256) {
                fleet.supervise();
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    assert!(fleet.quiesce(Duration::from_secs(30)), "drained");
    assert_eq!(sim.executed_handovers().len(), 1, "handover fired");

    let snap = fleet.finish();
    assert_eq!(snap.continuations, 1, "handover matched cross-cell");
    // Lane 0 admitted 2 UEs, lane 1 admitted its static UE + the roamer:
    // 4 admissions, 3 real users.
    assert_eq!(snap.total_discovered, 4);
    assert_eq!(snap.distinct_users, 3);
    let m = snap.matches[0];
    assert_eq!(m.from_shard, 0);
    assert_eq!(m.to_shard, 1);
    assert!(m.discovered_slot >= 1200 && m.discovered_slot < 2200);
}

/// A shard whose disk dies is durability-degraded, not restart-looped:
/// once the restart backoff is exhausted and the durable rebuild still
/// fails, the supervisor adopts a volatile engine at the queue front —
/// decode continues, the shard reports Healthy, and the rollup says
/// `non_durable` with an unbounded loss window instead of lying.
#[test]
fn dead_disk_shard_degrades_to_volatile_instead_of_restart_looping() {
    use nr_scope::scope::persist::{FaultKind, FaultyBackend, StorageFaultSchedule};
    use std::sync::Arc;

    let slots = 3000u64;
    let (cells, lanes) = two_lane_captures(slots, 7);
    let dir = temp_dir("dead-disk");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(11));
    let specs = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            // No cadence rotation: the only journal opens happen at
            // (re)start, so the armed open-fault window hits exactly the
            // durable rebuild path.
            let cfg = PersistConfig {
                checkpoint_every_slots: 10_000,
                ..PersistConfig::new(dir.join(format!("shard{i}")))
            };
            let cfg = if i == 0 {
                cfg.with_backend(Arc::new(backend.clone()))
            } else {
                cfg
            };
            ShardSpec::durable(format!("cell{i}"), Some(c.pci), ScopeConfig::default(), cfg)
        })
        .collect();
    let fleet = Fleet::new(
        FleetConfig {
            workers: 2,
            shard_queue_depth: 512,
            restart_backoff_ms: 2,
            max_restart_backoff_exp: 2, // exhaust quickly: test, not production
            ..FleetConfig::default()
        },
        specs,
    )
    .expect("fleet");
    // The disk dies: every file open from now on fails, so the panic's
    // warm restart can never rebuild a durable session.
    backend.arm(FaultKind::OpenFail, backend.opens()..u64::MAX);
    run_fleet_with_fault(
        &fleet,
        &lanes,
        1000,
        FaultPlan::OneShot(InjectedFault::Panic),
    );

    let status = fleet.shard_status(0);
    assert_eq!(status.health, ShardHealth::Healthy, "degraded, not faulted");
    assert!(status.restarts >= 1);
    fleet
        .with_scope(0, |scope| {
            assert_eq!(scope.slot_watermark(), slots, "decode caught up fully");
        })
        .expect("volatile fallback engine live");

    let snap = fleet.rollup();
    assert_eq!(snap.durability_degraded_cells, 1);
    assert_eq!(snap.cells[0].durability, "non_durable");
    assert_eq!(
        snap.cells[0].loss_window_slots, None,
        "unbounded loss window reported honestly"
    );
    assert_eq!(snap.cells[1].durability, "durable");
    assert!(
        snap.cells[1].loss_window_slots.is_some(),
        "healthy sibling still promises a bounded window"
    );

    assert_sibling_untouched(&fleet, &cells, &lanes);
    fleet.finish();
    let _ = std::fs::remove_dir_all(&dir);
}
