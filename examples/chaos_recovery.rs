//! Chaos recovery: inject radio-front-end impairments and a mid-run cell
//! restart, and watch the sniffer's self-healing pipeline ride them out.
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```
//!
//! The scenario: two UEs stream CBR traffic while the schedule drops 1% of
//! slots at random, stalls the observer for 25 slots, blacks out 150
//! consecutive slots (USRP overflow), and fires an interference burst.
//! Halfway through, the cell restarts under a new PCI — every scrambled
//! transmission goes dark until the sync-health state machine walks
//! Synced → Degraded → Lost → Reacquiring, re-runs cell search, re-reads
//! SIB1 and re-tracks the surviving UEs.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::types::Pci;
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{ImpairmentSchedule, NrScope, ScopeConfig, SyncState};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};

fn main() {
    let cell = CellConfig::srsran_n41();
    println!(
        "cell: {} — band {}, PCI {} ({} PRBs)",
        cell.name, cell.band, cell.pci.0, cell.carrier_prbs
    );

    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 42);
    for i in 1..=2u64 {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 2e6,
                    packet_bytes: 1200,
                },
                i,
            ),
            0.0,
            60.0,
            i,
        ));
    }

    let mut obs = Observer::new(&cell, 35.0, false, 5);
    obs.set_impairments(
        ImpairmentSchedule::new(7)
            .with_drop_prob(0.01)
            .with_stall(1000, 25)
            .with_interference(1500..1520, 15.0)
            .with_agc_transient(1600, 12.0)
            .with_outage(2000..2150),
    );
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    // Share the pipeline metrics registry with the capture path so the
    // front-end impairments (AGC kicks, interference bursts) are counted.
    obs.set_metrics(scope.metrics().clone());

    let slot_s = cell.slot_s();
    let total_slots = 10_000u64;
    let restart_at = 5_000u64;
    let mut last_state = scope.sync_state();
    for s in 0..total_slots {
        if s == restart_at {
            println!("slot {s:5}: >>> cell restarts under PCI 7 <<<");
            gnb.restart(Pci(7));
        }
        let out = gnb.step();
        let cap = obs.capture(&out, s as f64 * slot_s);
        scope.process_capture(&cap);
        let state = scope.sync_state();
        if state != last_state {
            println!(
                "slot {s:5}: sync {last_state:?} -> {state:?} (pci: {:?})",
                scope.cell.pci.map(|p| p.0)
            );
            last_state = state;
        }
    }

    let st = &scope.stats;
    println!("\n--- after {total_slots} slots ---");
    println!("final sync state:   {:?}", scope.sync_state());
    println!("cell PCI:           {:?}", scope.cell.pci.map(|p| p.0));
    println!("tracked UEs:        {:?}", scope.tracked_rntis());
    println!("total discovered:   {}", scope.total_discovered());
    println!("dropped slots:      {}", st.dropped_slots);
    println!("resyncs:            {}", st.resyncs);
    println!("SIB1 reloads:       {}", st.sib1_reloads);
    println!("recovered UEs:      {}", st.recovered_ues);
    println!("DL DCIs decoded:    {}", st.dl_dcis);
    for rnti in scope.tracked_rntis() {
        println!(
            "UE {rnti}: {:.2} Mbit/s over the last window",
            scope.rate_bps(rnti, slot_s) / 1e6
        );
    }
    println!();
    print!("{}", scope.metrics_snapshot().summary());
    assert_eq!(scope.sync_state(), SyncState::Synced, "demo ends re-synced");
}
