//! Quickstart: attach NR-Scope to a simulated 5G SA cell and stream
//! telemetry.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Spins up an srsRAN-style 20 MHz TDD cell with two phone-like UEs,
//! points the sniffer at it, and prints what the paper's tool would log:
//! cell acquisition, UE discovery via the RACH, then per-UE DCI telemetry
//! and throughput estimates.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{NrScope, ScopeConfig};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};

fn main() {
    let cell = CellConfig::srsran_n41();
    println!(
        "cell: {} — band {}, {:.2} MHz, {} PRBs, {}",
        cell.name,
        cell.band,
        cell.center_freq_hz / 1e6,
        cell.carrier_prbs,
        cell.numerology
    );

    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 42);
    for i in 1..=2u64 {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Pedestrian,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Video {
                    bitrate_bps: 4.0e6,
                    chunk_s: 1.0,
                },
                i,
            ),
            0.0,
            20.0,
            i,
        ));
    }

    // The sniffer: a USRP-equivalent at a good indoor position.
    let mut observer = Observer::new(&cell, 30.0, false, 7);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    // Share the pipeline metrics registry with the capture path.
    observer.set_metrics(scope.metrics().clone());

    let slot_s = cell.slot_s();
    let slots = (10.0 / slot_s) as u64; // 10 seconds of air time
    let mut printed = 0;
    for s in 0..slots {
        let out = gnb.step();
        let observed = observer.observe(&out, s as f64 * slot_s);
        for record in scope.process(&observed) {
            if printed < 12 {
                println!("[slot {:>6}] {}", record.slot, record.log_line());
                printed += 1;
            }
        }
        if s == slots / 2 {
            println!("--- mid-run status ---");
            println!("  MIB acquired:  {}", scope.cell.mib.is_some());
            println!("  SIB1 acquired: {}", scope.cell.sib1.is_some());
            println!("  tracked UEs:   {:?}", scope.tracked_rntis());
        }
    }

    println!("--- final report after {slots} TTIs ---");
    println!("  stats: {:?}", scope.stats);
    for rnti in scope.tracked_rntis() {
        println!(
            "  UE {rnti}: estimated {:.2} Mbit/s over the last second",
            scope.rate_bps(rnti, slot_s) / 1e6
        );
    }
    println!();
    print!("{}", scope.metrics_snapshot().summary());
}
