//! Use case §5.4.2: monitoring MCS and retransmission behaviour as a
//! proxy for channel conditions.
//!
//! ```text
//! cargo run --release --example channel_monitor
//! ```
//!
//! Runs the same cell under each of the Fig 15 channel profiles and
//! prints the telemetry a service provider would use to "adjust sending
//! strategy accordingly" — mean MCS, retransmission ratio, and achieved
//! rate, all observed passively.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::dci::DciFormat;
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{NrScope, ScopeConfig};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};

fn main() {
    println!("channel  |  mean MCS  | retx ratio |  est. rate");
    println!("---------+------------+------------+-----------");
    for profile in ChannelProfile::all() {
        let cell = CellConfig::amarisoft_n78();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 23);
        gnb.ue_arrives(SimUe::new(
            1,
            profile,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: usize::MAX / 2,
                },
                1,
            ),
            0.0,
            15.0,
            1,
        ));
        let mut observer = Observer::new(&cell, 30.0, false, 23);
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        let slot_s = cell.slot_s();
        let slots = (10.0 / slot_s) as u64;
        for s in 0..slots {
            let out = gnb.step();
            scope.process(&observer.observe(&out, s as f64 * slot_s));
        }
        let dl: Vec<_> = scope
            .records()
            .iter()
            .filter(|r| r.format == DciFormat::Dl1_1)
            .collect();
        let mean_mcs = if dl.is_empty() {
            0.0
        } else {
            dl.iter().map(|r| r.mcs as f64).sum::<f64>() / dl.len() as f64
        };
        let retx_pct =
            100.0 * scope.stats.retransmissions as f64 / scope.stats.dl_dcis.max(1) as f64;
        let rate = scope
            .tracked_rntis()
            .first()
            .map(|r| scope.rate_bps(*r, slot_s) / 1e6)
            .unwrap_or(0.0);
        println!(
            "{:<9}| {:>9.2}  | {:>8.2} %  | {:>6.1} Mbit/s",
            profile.name(),
            mean_mcs,
            retx_pct,
            rate
        );
    }
    println!();
    println!("(better channels → higher MCS, fewer retransmissions — the paper's Fig 15 trend)");
}
