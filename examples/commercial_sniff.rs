//! Use case §6 (Internet measurement): an out-of-loop measurement study of
//! a commercial-style cell with a come-and-go UE population.
//!
//! ```text
//! cargo run --release --example commercial_sniff
//! ```
//!
//! Reproduces the paper's §5.3.1 observations in miniature: distinct UEs
//! seen, the heavy-tailed active-time distribution ("90 percent of UEs
//! stay in the RAN for less than 35 seconds"), and per-second/minute
//! occupancy — all from passive sniffing, no operator cooperation.

use nr_scope::analytics::{percentile, report};
use nr_scope::gnb::{CellConfig, Gnb, Population};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{NrScope, ScopeConfig};
use nr_scope::ue::arrival::{active_per_window, ArrivalConfig};

fn main() {
    let cell = CellConfig::tmobile_n25();
    println!(
        "sniffing {} — band {} FDD, {:.2} MHz centre",
        cell.name,
        cell.band,
        cell.center_freq_hz / 1e6
    );
    let seconds = 90.0;
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 17);
    let mut population = Population::new(
        ArrivalConfig::tmobile_cell1(),
        ChannelProfile::Pedestrian,
        seconds,
        17,
    );
    let mut observer = Observer::new(&cell, 16.0, false, 17);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let slot_s = cell.slot_s();
    let slots = (seconds / slot_s) as u64;
    for s in 0..slots {
        population.step(&mut gnb, s as f64 * slot_s);
        let out = gnb.step();
        scope.process(&observer.observe(&out, s as f64 * slot_s));
    }

    let durations = population.durations_s();
    let sessions = population.sessions();
    println!("--- measurement report ({seconds:.0} s capture) ---");
    println!(
        "{}",
        report::scalar("sessions_generated", population.total_sessions() as f64)
    );
    println!(
        "{}",
        report::scalar("ues_discovered_by_scope", scope.total_discovered() as f64)
    );
    println!(
        "{}",
        report::scalar("active_time_p50_s", percentile(&durations, 50.0))
    );
    println!(
        "{}",
        report::scalar("active_time_p90_s", percentile(&durations, 90.0))
    );
    let per_sec: Vec<f64> = active_per_window(&sessions, seconds, 1.0)
        .into_iter()
        .map(|c| c as f64)
        .collect();
    let per_min: Vec<f64> = active_per_window(&sessions, seconds, 60.0)
        .into_iter()
        .map(|c| c as f64)
        .collect();
    println!(
        "{}",
        report::scalar("active_per_second_p95", percentile(&per_sec, 95.0))
    );
    println!(
        "{}",
        report::scalar("active_per_minute_max", percentile(&per_min, 100.0))
    );
    println!(
        "{}",
        report::scalar("dl_dcis_decoded", scope.stats.dl_dcis as f64)
    );
}
