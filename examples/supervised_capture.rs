//! Supervised warm restart under `kill -9`: the crash-safety soak.
//!
//! ```text
//! cargo run --release --example supervised_capture
//! ```
//!
//! The parent owns the simulated gNB and radio front end and feeds
//! captures to a child pipeline process over the [`supervise`] pipe
//! protocol; the child journals every slot through a
//! [`PersistentSession`]'s group-commit batches. Twice during the run
//! the parent SIGKILLs the child mid-soak — no flush, no goodbye —
//! keeps the air interface moving for 40 slots of dead time, then
//! respawns it and checks the warm restart: every known UE retained,
//! the watermark resumed inside the configured group-commit loss window
//! (never past the kill, never below the durable watermark the child
//! last acknowledged), re-sync within a bounded number of slots, and
//! per-UE byte estimates that match gNB ground truth over the observed
//! slots without ever double-counting a replayed byte.
//!
//! Results land in `RECOVERY_report.json`; any violated invariant is
//! listed there and fails the run (exit 1), which is how CI consumes it.

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::phy::types::{Pci, Rnti};
use nr_scope::scope::observe::{Capture, Observer};
use nr_scope::scope::persist::PersistConfig;
use nr_scope::scope::supervise::{self, ChildHandle, ChildMsg, Hello, WireMsg};
use nr_scope::scope::{ImpairmentSchedule, ScopeConfig, SyncState};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};
use serde::Serialize;
use std::path::{Path, PathBuf};

const TOTAL_SLOTS: u64 = 12_000;
const KILLS: [u64; 2] = [4_700, 9_300];
/// Dead time between SIGKILL and respawn: the air interface keeps moving.
const DEAD_SLOTS: u64 = 40;
/// A warm restart must be back in `Synced` within this many slots.
const RESYNC_BOUND: u64 = 800;

#[derive(Serialize)]
struct KillReport {
    kill_at: u64,
    respawn_at: u64,
    resumed_slot: u64,
    /// Durable watermark from the last ack before the kill: slots below
    /// it were already handed to the OS and must survive.
    durable_at_kill: u64,
    /// Acknowledged-but-not-durable slots the SIGKILL cost (bounded by
    /// the group-commit loss window).
    lost_slots: u64,
    snapshot_slot: Option<u64>,
    replayed_entries: u64,
    corrupt_checkpoints_skipped: u64,
    journal_entries_discarded: u64,
    tracked_before: Vec<Rnti>,
    tracked_after: Vec<Rnti>,
    resynced_after_slots: Option<u64>,
}

#[derive(Serialize)]
struct UeParity {
    rnti: Rnti,
    truth_bits_total: u64,
    truth_bits_observed: u64,
    est_bits_observed: u64,
    ratio_observed: f64,
}

#[derive(Serialize)]
struct SoakReport {
    schema_version: u32,
    slots: u64,
    kills: Vec<KillReport>,
    total_discovered: u64,
    final_sync_synced: bool,
    observed_ranges: Vec<(u64, u64)>,
    per_ue: Vec<UeParity>,
    violations: Vec<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 4 && args[1] == "--child" {
        // Child mode: recover from the session directory and serve slots.
        let pci: u16 = args[3].parse().expect("child PCI argument");
        supervise::run_child(Path::new(&args[2]), Some(Pci(pci))).expect("child pipeline");
        return;
    }
    run_parent();
}

fn session_dir() -> PathBuf {
    std::env::var_os("NRSCOPE_SESSION_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("nrscope-supervised-{}", std::process::id()))
        })
}

fn spawn_child(dir: &Path, pci: Pci) -> (ChildHandle, Hello) {
    let exe = std::env::current_exe().expect("current exe path");
    let args = vec![
        "--child".to_string(),
        dir.display().to_string(),
        pci.0.to_string(),
    ];
    ChildHandle::spawn(&exe, &args).expect("spawn pipeline child")
}

/// Compress a per-slot flag vector into maximal half-open ranges.
fn ranges_of(flags: &[bool]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut start: Option<u64> = None;
    for (i, &on) in flags.iter().enumerate() {
        match (on, start) {
            (true, None) => start = Some(i as u64),
            (false, Some(s)) => {
                out.push((s, i as u64));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push((s, flags.len() as u64));
    }
    out
}

fn run_parent() {
    let cell = CellConfig::srsran_n41();
    let dir = session_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create session dir");
    // The child loads its config from the session directory, exercising
    // the versioned ScopeConfig round trip on every (re)start.
    std::fs::write(
        dir.join(supervise::CONFIG_FILE),
        ScopeConfig::default().to_json(),
    )
    .expect("write scope config");
    println!(
        "cell {} PCI {} — session dir {}",
        cell.name,
        cell.pci.0,
        dir.display()
    );

    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 42);
    for i in 1..=3u64 {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            // Permanent backlog: every slot carries data, so byte parity
            // between scope estimate and gNB truth is tight.
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: 1 << 30,
                },
                i,
            ),
            0.05 * i as f64,
            600.0,
            i,
        ));
    }

    let mut obs = Observer::new(&cell, 35.0, false, 5);
    // Deterministic impairments only — the parent must know exactly which
    // slots went unobserved to account bytes against ground truth.
    obs.set_impairments(
        ImpairmentSchedule::new(7)
            .with_stall(3_000, 30)
            .with_outage(7_000..7_100),
    );
    let slot_s = cell.slot_s();

    let mut violations: Vec<String> = Vec::new();
    let mut kill_reports: Vec<KillReport> = Vec::new();
    // Slots over which byte parity is claimable: fed to a live child,
    // decodable (not front-end-dropped), and processed while synced.
    let mut observed = vec![false; TOTAL_SLOTS as usize];
    let mut synced_at = vec![false; TOTAL_SLOTS as usize];

    // The child opens its session with `PersistConfig::new(dir)`, so the
    // parent can state the exact loss window a SIGKILL is allowed to cost.
    let loss_window = PersistConfig::new(&dir).loss_window_slots();

    let (mut child, hello) = spawn_child(&dir, cell.pci);
    if hello.report.resumed {
        violations.push("first start claimed to resume prior state".into());
    }
    let mut alive = true;
    let mut respawn_at = 0u64;
    let mut pre_kill_tracked: Vec<Rnti> = Vec::new();
    let mut last_durable = 0u64;
    let mut durable_at_kill = 0u64;
    let mut kill_idx = 0usize;

    for seq in 0..TOTAL_SLOTS {
        if kill_idx < KILLS.len() && seq == KILLS[kill_idx] {
            println!(
                "slot {seq:5}: >>> SIGKILL child (kill #{}) <<<",
                kill_idx + 1
            );
            child.kill().expect("kill child");
            alive = false;
            durable_at_kill = last_durable;
            respawn_at = seq + DEAD_SLOTS;
        }
        if !alive && seq == respawn_at {
            let (new_child, hello) = spawn_child(&dir, cell.pci);
            child = new_child;
            alive = true;
            let kill_at = KILLS[kill_idx];
            let resumed = hello.report.resumed_slot;
            println!(
                "slot {seq:5}: child respawned — resumed at {} ({} acked slots lost, window {}, snapshot {:?}, {} replayed), {} UEs",
                resumed,
                kill_at.saturating_sub(resumed),
                loss_window,
                hello.report.snapshot_slot,
                hello.report.replayed_entries,
                hello.tracked.len()
            );
            check_recovery(
                &hello,
                kill_at,
                durable_at_kill,
                loss_window,
                &pre_kill_tracked,
                &mut violations,
            );
            // Slots in the lost tail were acknowledged by the dead child
            // but never became durable: the restarted child has no memory
            // of them, so they are not claimable for byte parity.
            for s in resumed..kill_at.min(TOTAL_SLOTS) {
                observed[s as usize] = false;
            }
            kill_reports.push(KillReport {
                kill_at,
                respawn_at: seq,
                resumed_slot: resumed,
                durable_at_kill,
                lost_slots: kill_at.saturating_sub(resumed),
                snapshot_slot: hello.report.snapshot_slot,
                replayed_entries: hello.report.replayed_entries,
                corrupt_checkpoints_skipped: hello.report.corrupt_checkpoints_skipped,
                journal_entries_discarded: hello.report.journal_entries_discarded,
                tracked_before: pre_kill_tracked.clone(),
                tracked_after: hello.tracked.clone(),
                resynced_after_slots: None,
            });
            kill_idx += 1;
        }

        let out = gnb.step();
        let cap = obs.capture(&out, seq as f64 * slot_s);
        if !alive {
            // Dead time: the cell kept transmitting, nobody was listening.
            continue;
        }
        let front_end_dropped = matches!(cap, Capture::Dropped(_));
        child
            .send(&WireMsg::Slot { seq, capture: cap })
            .expect("send slot");
        let ack = match child.recv().expect("receive ack") {
            ChildMsg::Ack(a) => a,
            other => panic!("expected Ack, got {other:?}"),
        };
        assert_eq!(ack.seq, seq, "lockstep ack sequence");
        // On a healthy disk the child must stay on the top durability
        // rung and keep promising the bounded group-commit loss window —
        // an unbounded (`None`) promise here would mean it silently
        // stopped journalling.
        if ack.durability_rung != 0 {
            violations.push(format!(
                "slot {seq}: child reported durability rung {} on a healthy disk",
                ack.durability_rung
            ));
        }
        if ack.loss_window != Some(loss_window) {
            violations.push(format!(
                "slot {seq}: child promised loss window {:?}, expected Some({loss_window})",
                ack.loss_window
            ));
        }
        last_durable = ack.durable;
        let synced = ack.sync == SyncState::Synced;
        synced_at[seq as usize] = synced;
        observed[seq as usize] = synced && !front_end_dropped;
        pre_kill_tracked = ack.tracked;
    }

    // Fill in how long each warm restart took to get back to Synced.
    for kr in &mut kill_reports {
        kr.resynced_after_slots = synced_at[kr.respawn_at as usize..]
            .iter()
            .position(|&s| s)
            .map(|p| p as u64);
        match kr.resynced_after_slots {
            Some(d) if d <= RESYNC_BOUND => {}
            got => violations.push(format!(
                "kill at {}: re-sync took {:?} slots (bound {RESYNC_BOUND})",
                kr.kill_at, got
            )),
        }
    }
    let final_sync_synced = synced_at[TOTAL_SLOTS as usize - 1];
    if !final_sync_synced {
        violations.push("run did not end in Synced".into());
    }

    // Byte parity audit over the observed ranges.
    let observed_ranges = ranges_of(&observed);
    child
        .send(&WireMsg::Report {
            ranges: observed_ranges.clone(),
        })
        .expect("send report request");
    let reply = match child.recv().expect("receive report") {
        ChildMsg::Report(r) => r,
        other => panic!("expected Report, got {other:?}"),
    };
    if reply.total_discovered != 3 {
        violations.push(format!(
            "total_discovered = {} after 2 kills (want 3: no re-discovery double counts)",
            reply.total_discovered
        ));
    }

    let mut per_ue = Vec::new();
    for rnti in gnb.connected_rntis() {
        let ue = gnb.ue(rnti).expect("connected UE");
        let truth_total = ue.delivered_bytes_in(0..TOTAL_SLOTS) as u64 * 8;
        let truth_observed: u64 = observed_ranges
            .iter()
            .map(|&(a, b)| ue.delivered_bytes_in(a..b) as u64 * 8)
            .sum();
        let est_observed: u64 = reply
            .per_ue
            .iter()
            .find(|(r, _)| *r == rnti)
            .map(|(_, bits)| bits.iter().sum())
            .unwrap_or(0);
        let ratio = est_observed as f64 / truth_observed.max(1) as f64;
        println!(
            "UE {rnti}: truth {:.1} Mbit ({:.1} observed), estimate {:.1} Mbit — ratio {ratio:.4}",
            truth_total as f64 / 1e6,
            truth_observed as f64 / 1e6,
            est_observed as f64 / 1e6,
        );
        if !(0.88..=1.02).contains(&ratio) {
            violations.push(format!(
                "UE {rnti}: estimate/truth ratio {ratio:.4} outside [0.88, 1.02] \
                 (upper bound catches double-counted replay bytes)"
            ));
        }
        if est_observed > truth_total + truth_total / 100 {
            violations.push(format!(
                "UE {rnti}: estimate exceeds total ground truth — bytes double-counted"
            ));
        }
        per_ue.push(UeParity {
            rnti,
            truth_bits_total: truth_total,
            truth_bits_observed: truth_observed,
            est_bits_observed: est_observed,
            ratio_observed: ratio,
        });
    }

    child.send(&WireMsg::Finish).expect("send finish");
    match child.recv().expect("receive done") {
        ChildMsg::Done { final_slot } => println!("child finished at slot {final_slot}"),
        other => panic!("expected Done, got {other:?}"),
    }
    // Deadline-bounded: a child that wedges on its way out is killed
    // rather than deadlocking the soak.
    let (_, escalated) = child
        .wait_timeout(std::time::Duration::from_secs(5))
        .expect("child exit");
    if escalated {
        violations.push("clean shutdown needed SIGKILL escalation".into());
    }

    let report = SoakReport {
        schema_version: 1,
        slots: TOTAL_SLOTS,
        kills: kill_reports,
        total_discovered: reply.total_discovered,
        final_sync_synced,
        observed_ranges,
        per_ue,
        violations: violations.clone(),
    };
    let json = serde_json::to_string(&report).expect("serialise soak report");
    std::fs::write("RECOVERY_report.json", &json).expect("write RECOVERY_report.json");
    let _ = std::fs::remove_dir_all(&dir);

    if violations.is_empty() {
        println!(
            "\nall warm-restart invariants held across {} SIGKILLs",
            KILLS.len()
        );
    } else {
        println!("\nVIOLATIONS:");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}

fn check_recovery(
    hello: &Hello,
    kill_at: u64,
    durable_at_kill: u64,
    loss_window: u64,
    pre_kill: &[Rnti],
    violations: &mut Vec<String>,
) {
    if !hello.report.resumed {
        violations.push(format!(
            "kill at {kill_at}: restart did not resume prior state"
        ));
    }
    // Group commit trades per-slot flushes for a bounded loss window:
    // SIGKILL may cost the unflushed tail, but never more than the
    // window, never a slot the child reported durable, and never a slot
    // the child had not yet processed.
    let resumed = hello.report.resumed_slot;
    if resumed > kill_at {
        violations.push(format!(
            "kill at {kill_at}: resumed at {resumed} — ahead of the kill (slots invented)"
        ));
    }
    if kill_at.saturating_sub(resumed) > loss_window {
        violations.push(format!(
            "kill at {kill_at}: resumed at {resumed} — lost {} slots, more than the \
             {loss_window}-slot group-commit loss window",
            kill_at - resumed
        ));
    }
    if resumed < durable_at_kill {
        violations.push(format!(
            "kill at {kill_at}: resumed at {resumed} — below the durable watermark \
             {durable_at_kill} the child acknowledged before dying"
        ));
    }
    if hello.report.snapshot_slot.is_none() {
        violations.push(format!("kill at {kill_at}: no checkpoint was restored"));
    }
    let mut before = pre_kill.to_vec();
    let mut after = hello.tracked.clone();
    before.sort_unstable();
    after.sort_unstable();
    if before != after {
        violations.push(format!(
            "kill at {kill_at}: tracked set changed across restart ({before:?} -> {after:?})"
        ));
    }
}
