//! Use case §5.4.1 / §6: RAN-aware congestion feedback.
//!
//! ```text
//! cargo run --release --example spare_capacity_feedback
//! ```
//!
//! Two UEs share a Mosolab-style cell; NR-Scope estimates each UE's
//! current bit rate *and* its fair share of unused resource elements. The
//! sum is the "available rate" signal an application server could use for
//! millisecond-scale bitrate adaptation — faster than half an RTT, since
//! it shortcuts the RAN→server subpath (paper §6, Congestion control).

use nr_scope::gnb::{CellConfig, Gnb};
use nr_scope::mac::RoundRobin;
use nr_scope::phy::channel::ChannelProfile;
use nr_scope::scope::observe::Observer;
use nr_scope::scope::{NrScope, ScopeConfig};
use nr_scope::ue::traffic::{TrafficKind, TrafficSource};
use nr_scope::ue::{MobilityScenario, SimUe};

fn main() {
    let cell = CellConfig::mosolab_n48();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 3);
    // UE 1 near the cell (high MCS), UE 2 at the edge (low MCS): the
    // paper's point is that equal spare REs convert to different spare
    // bit rates.
    for (i, offset) in [(1u64, 0.0), (2u64, -9.0)] {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Pedestrian,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Video {
                    bitrate_bps: 6.0e6,
                    chunk_s: 1.0,
                },
                i,
            ),
            offset,
            30.0,
            i,
        ));
    }
    let mut observer = Observer::new(&cell, 30.0, false, 9);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let slot_s = cell.slot_s();
    let slots = (20.0 / slot_s) as u64;
    for s in 0..slots {
        let out = gnb.step();
        scope.process(&observer.observe(&out, s as f64 * slot_s));
        // Emit one feedback report per second, like a telemetry service.
        if s > 0 && s % 2000 == 0 {
            println!("t = {:>4.1} s", s as f64 * slot_s);
            for rnti in scope.tracked_rntis() {
                let current = scope.rate_bps(rnti, slot_s);
                // Mean fair-share spare bits per TTI over the last second.
                let window = s.saturating_sub(2000)..s;
                let spare_bits: Vec<f64> = scope
                    .spare_log()
                    .iter()
                    .filter(|(slot, _)| window.contains(slot))
                    .filter_map(|(_, shares)| {
                        shares
                            .iter()
                            .find(|sh| sh.rnti == rnti)
                            .map(|sh| sh.spare_bits)
                    })
                    .collect();
                let spare_rate = if spare_bits.is_empty() {
                    0.0
                } else {
                    // spare bits per *loaded* TTI × loaded TTIs per second.
                    spare_bits.iter().sum::<f64>() / (2000.0 * slot_s)
                };
                println!(
                    "  UE {rnti}: current {:>6.2} Mbit/s, fair-share spare {:>6.2} Mbit/s → available ≈ {:>6.2} Mbit/s",
                    current / 1e6,
                    spare_rate / 1e6,
                    (current + spare_rate) / 1e6,
                );
            }
        }
    }
}
