//! Minimal offline stand-in for `criterion`: same macro/type surface,
//! but measurement is a plain wall-clock mean over a handful of
//! iterations printed to stdout — enough to run `cargo bench` targets
//! and keep them compiling, not a statistics engine.

// Offline stand-in crate: keep it lint-silent so workspace-wide clippy
// gates only the real code.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::Instant;

/// Benchmark context handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _c: self,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark over an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark in a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing loop handle.
pub struct Bencher {
    iters: usize,
    total_ns: u128,
}

impl Bencher {
    /// Time `f` over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size,
        total_ns: 0,
    };
    f(&mut b);
    let per_iter = b.total_ns / b.iters.max(1) as u128;
    println!("bench {label:<40} {per_iter:>12} ns/iter (stub, n={sample_size})");
}

/// Opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
