//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses: a seedable
//! deterministic `StdRng` plus the `Rng`/`SeedableRng` traits with
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256**
//! seeded through SplitMix64, so streams are stable across platforms
//! and releases — a property the chaos/impairment tests rely on.

// Offline stand-in crate: keep it lint-silent so workspace-wide clippy
// gates only the real code.
#![allow(clippy::all)]

use core::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types uniformly samplable between two bounds.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw from `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: &Self, hi: &Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: &$t, hi: &$t, rng: &mut R) -> $t {
                let span = (*hi as u128).wrapping_sub(*lo as u128);
                let draw = rng.next_u64() as u128 % span;
                (*lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: &f64, hi: &f64, rng: &mut R) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: &f32, hi: &f32, rng: &mut R) -> f32 {
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges samplable by `Rng::gen_range`. A single blanket impl over
/// `Range<T>` (as in real rand) so the element type unifies with the
/// call site's expected type and unsuffixed literals infer correctly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(&self.start, &self.end, rng)
    }
}

/// High-level sampling helpers (blanket-implemented for every source).
pub trait Rng: RngCore {
    /// Draw a standard-distributed value (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&y));
            let z = r.gen_range(0.0f32..6.5);
            assert!((0.0..6.5).contains(&z));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
