//! Offline `serde_derive` stand-in: real proc macros, no syn/quote.
//!
//! Hand-parses the deriving item's token stream (struct or enum, no
//! generics) and emits `Serialize`/`Deserialize` impls against the
//! vendored serde's `Content` model, following real serde's JSON
//! conventions. Of the `#[serde(...)]` helper attributes only
//! `#[serde(default)]` on named fields is honoured (missing key ->
//! `Default::default()`); everything else is ignored:
//!
//! - named struct      -> map of fields
//! - newtype struct    -> the inner value, transparent
//! - tuple struct      -> sequence
//! - unit variant      -> the variant name as a string
//! - newtype variant   -> `{"Variant": inner}`
//! - tuple variant     -> `{"Variant": [..]}`
//! - struct variant    -> `{"Variant": {..}}`

// Offline stand-in crate: keep it lint-silent so workspace-wide clippy
// gates only the real code.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

/// The shapes we can derive for.
enum Item {
    /// `struct S;`
    UnitStruct(String),
    /// `struct S { a: A, b: B }`
    NamedStruct(String, Vec<Field>),
    /// `struct S(A, B);` — arity 1 is the transparent newtype case.
    TupleStruct(String, usize),
    /// `enum E { .. }` with per-variant shapes.
    Enum(String, Vec<Variant>),
}

/// A named field plus the one helper attribute we honour.
struct Field {
    name: String,
    /// `#[serde(default)]`: deserialising tolerates a missing key.
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Which::Serialize => gen_serialize(&item),
                Which::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive: expected `struct` or `enum`".into()),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive: expected type name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive stub: generic type `{name}` not supported — write the impl by hand"
        ));
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            None => Ok(Item::UnitStruct(name)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct(name)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct(name, parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct(name, count_tuple_fields(g.stream())))
            }
            _ => Err(format!("derive: unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum(name, parse_variants(g.stream())?))
            }
            _ => Err(format!("derive: expected enum body for `{name}`")),
        },
        other => Err(format!("derive: cannot derive for `{other}` items")),
    }
}

/// Skip any number of `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    take_attrs_and_vis(tokens, i);
}

/// Whether an attribute group's tokens spell `serde ( .. default .. )`.
fn is_serde_default(g: &proc_macro::Group) -> bool {
    let mut it = g.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skip attributes and visibility like [`skip_attrs_and_vis`], reporting
/// whether a `#[serde(default)]` attribute was among them.
fn take_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    has_default |= is_serde_default(g);
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return has_default,
        }
    }
}

/// Fields of a `{ .. }` body. Skips types by consuming to the next
/// comma at angle-bracket depth zero (parens/brackets are opaque groups
/// already, so only `<`/`>` need explicit tracking).
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = take_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("derive: expected field name, found `{t}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("derive: expected `:` after field `{name}`")),
        }
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Arity of a `( .. )` tuple body: top-level commas + 1 (ignoring a
/// trailing comma), 0 for an empty body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 < tokens.len() {
                    fields += 1;
                }
            }
            _ => {}
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("derive: expected variant name, found `{t}`")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and advance past the comma.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct(name) => (name, "::serde::Content::Null".to_string()),
        Item::NamedStruct(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::borrow::Cow::Borrowed({f:?}), \
                         ::serde::Serialize::serialize_content(&self.{f}))"
                    )
                })
                .collect();
            (
                name,
                format!("::serde::Content::Map(vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct(name, 1) => (
            name,
            "::serde::Serialize::serialize_content(&self.0)".to_string(),
        ),
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize_content(&self.{k})"))
                .collect();
            (
                name,
                format!("::serde::Content::Seq(vec![{}])", elems.join(", ")),
            )
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_arm(name, v)).collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn ser_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{ty}::{vn} => ::serde::Content::Str(::std::borrow::Cow::Borrowed({vn:?})),")
        }
        VariantShape::Tuple(1) => format!(
            "{ty}::{vn}(__f0) => ::serde::Content::Map(vec![(\
             ::std::borrow::Cow::Borrowed({vn:?}), \
             ::serde::Serialize::serialize_content(__f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize_content(__f{k})"))
                .collect();
            format!(
                "{ty}::{vn}({}) => ::serde::Content::Map(vec![(\
                 ::std::borrow::Cow::Borrowed({vn:?}), \
                 ::serde::Content::Seq(vec![{}]))]),",
                binds.join(", "),
                elems.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let binds = binds.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::borrow::Cow::Borrowed({f:?}), \
                         ::serde::Serialize::serialize_content({f}))"
                    )
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\
                 ::std::borrow::Cow::Borrowed({vn:?}), \
                 ::serde::Content::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct(name) => (
            name,
            format!(
                "match __c {{ ::serde::Content::Null => Ok({name}), \
                 ::serde::Content::Str(s) if s.as_ref() == {name:?} => Ok({name}), \
                 _ => Err(::serde::DeError::expected(\"unit struct\", __c)) }}"
            ),
        ),
        Item::NamedStruct(name, fields) => {
            let inits: Vec<String> = fields.iter().map(|f| de_field_init(f, name)).collect();
            (
                name,
                format!(
                    "let __m = ::serde::__private::expect_map(__c, {name:?})?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct(name, 1) => (
            name,
            format!("Ok({name}(::serde::Deserialize::deserialize_content(__c)?))"),
        ),
        Item::TupleStruct(name, n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::__private::de_elem(__s, {k}, {name:?})?"))
                .collect();
            (
                name,
                format!(
                    "let __s = ::serde::__private::expect_seq(__c, {n}, {name:?})?;\n\
                     Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants.iter().map(|v| de_arm(name, v)).collect();
            (
                name,
                format!(
                    "let (__tag, __payload) = ::serde::__private::variant_of(__c, {name:?})?;\n\
                     match __tag {{ {} __other => Err(::serde::DeError(format!(\
                     \"unknown variant `{{__other}}` of {name}\"))) }}",
                    arms.join(" ")
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn de_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => format!("{vn:?} => Ok({ty}::{vn}),"),
        VariantShape::Tuple(1) => format!(
            "{vn:?} => {{ let __p = ::serde::__private::payload(__payload, {vn:?})?; \
             Ok({ty}::{vn}(::serde::Deserialize::deserialize_content(__p)?)) }}"
        ),
        VariantShape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::__private::de_elem(__s, {k}, {vn:?})?"))
                .collect();
            format!(
                "{vn:?} => {{ let __p = ::serde::__private::payload(__payload, {vn:?})?; \
                 let __s = ::serde::__private::expect_seq(__p, {n}, {vn:?})?; \
                 Ok({ty}::{vn}({})) }}",
                inits.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| de_field_init(f, vn)).collect();
            format!(
                "{vn:?} => {{ let __p = ::serde::__private::payload(__payload, {vn:?})?; \
                 let __m = ::serde::__private::expect_map(__p, {vn:?})?; \
                 Ok({ty}::{vn} {{ {} }}) }}",
                inits.join(", ")
            )
        }
    }
}

/// One `field: ...?` initialiser for derived named-field deserialisers.
fn de_field_init(f: &Field, ty: &str) -> String {
    let name = &f.name;
    let call = if f.default {
        "de_field_or_default"
    } else {
        "de_field"
    };
    format!("{name}: ::serde::__private::{call}(__m, {name:?}, {ty:?})?")
}
