//! MPMC channels: `bounded` and `unbounded`, with `send`/`try_send`/
//! `recv`/`try_recv` and receiver iteration.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half. Clonable; the channel disconnects when all clones drop.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half. Clonable; iteration yields until disconnect.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// The channel is disconnected (no receivers); the message comes back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// `try_send` failure.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Bounded channel at capacity.
    Full(T),
    /// No receivers remain.
    Disconnected(T),
}

/// The channel is empty and all senders have disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// `try_recv` failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and no senders remain.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Channel holding at most `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

impl<T> Sender<T> {
    /// Blocking send; fails only when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.inner.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.inner.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.inner.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; fails once empty with all senders gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator draining only currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = bounded(4);
        let h = thread::spawn(move || {
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        });
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h.join().unwrap(), 5050);
    }
}
