//! Minimal offline stand-in for `crossbeam` 0.8: the `channel` module
//! only, implemented as a mutex+condvar MPMC queue with the same
//! disconnect semantics the real crate documents (send fails once all
//! receivers are gone; recv drains remaining messages after the last
//! sender drops, then fails).

// Offline stand-in crate: keep it lint-silent so workspace-wide clippy
// gates only the real code.
#![allow(clippy::all)]

pub mod channel;
