//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, values serialize into an
//! owned [`Content`] tree which data formats (here: `serde_json`)
//! render or parse. The derive macros in `serde_derive` generate
//! `Serialize`/`Deserialize` impls against this model using the same
//! JSON conventions as real serde: named structs are objects, newtype
//! structs are their inner value, unit enum variants are strings, data
//! variants are single-entry `{"Variant": payload}` objects.

// Offline stand-in crate: keep it lint-silent so workspace-wide clippy
// gates only the real code.
#![allow(clippy::all)]

use std::borrow::Cow;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Map keys and string payloads. `Cow` so derive-generated code can
/// borrow field and variant names (`&'static str`) instead of
/// allocating a `String` per field per node — the dominant cost of
/// building a `Content` tree on a serialization hot path.
pub type Text = Cow<'static, str>;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(Text),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (object).
    Map(Vec<(Text, Content)>),
}

impl Content {
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Standard "invalid type" message.
    pub fn expected(what: &str, got: &Content) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Content`] tree.
pub trait Serialize {
    /// Serialize `self` into the content model.
    fn serialize_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the content model.
    fn deserialize_content(c: &Content) -> Result<Self, DeError>;
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    _ => return Err(DeError::expected("unsigned integer", c)),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError(format!("integer {v} out of range for i64")))?,
                    _ => return Err(DeError::expected("integer", c)),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            _ => Err(DeError::expected("number", c)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", c)),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(Cow::Owned(self.clone()))
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.as_ref().to_owned()),
            _ => Err(DeError::expected("string", c)),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(Cow::Owned(self.to_string()))
    }
}

/// `&'static str` deserializes by borrowing when the content already
/// holds a static string, and by leaking otherwise — acceptable for the
/// config-label fields this workspace stores as static strings.
impl Deserialize for &'static str {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(Cow::Borrowed(s)) => Ok(s),
            Content::Str(Cow::Owned(s)) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", c)),
        }
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(Cow::Owned(self.to_string()))
    }
}

impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", c)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            _ => Err(DeError::expected("sequence", c)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::deserialize_content(c)?;
        <[T; N]>::try_from(v)
            .map_err(|v: Vec<T>| DeError(format!("expected array of {N}, found {}", v.len())))
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        Ok(($($t::deserialize_content(
                            items.get($n).ok_or_else(|| DeError(
                                format!("tuple too short at index {}", $n)))?)?,)+))
                    }
                    _ => Err(DeError::expected("sequence", c)),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Helpers called by derive-generated code. Not a public API.
pub mod __private {
    use super::{Content, DeError, Deserialize, Text};

    /// Unwrap a map (named-struct payload).
    pub fn expect_map<'a>(c: &'a Content, ty: &str) -> Result<&'a [(Text, Content)], DeError> {
        match c {
            Content::Map(m) => Ok(m),
            _ => Err(DeError(format!("expected map for {ty}, found {}", kind(c)))),
        }
    }

    /// Unwrap a sequence of exactly `n` (tuple payload).
    pub fn expect_seq<'a>(c: &'a Content, n: usize, ty: &str) -> Result<&'a [Content], DeError> {
        match c {
            Content::Seq(s) if s.len() == n => Ok(s),
            Content::Seq(s) => Err(DeError(format!(
                "expected {n} elements for {ty}, found {}",
                s.len()
            ))),
            _ => Err(DeError(format!(
                "expected sequence for {ty}, found {}",
                kind(c)
            ))),
        }
    }

    /// Look up and deserialize a named field marked `#[serde(default)]`:
    /// a missing key yields `T::default()` instead of an error, so newer
    /// readers accept artefacts written before the field existed.
    pub fn de_field_or_default<T: Deserialize + Default>(
        map: &[(Text, Content)],
        name: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        match map.iter().find(|(k, _)| k.as_ref() == name) {
            None => Ok(T::default()),
            Some((_, v)) => T::deserialize_content(v)
                .map_err(|e| DeError(format!("field `{name}` of {ty}: {}", e.0))),
        }
    }

    /// Look up and deserialize a named field.
    pub fn de_field<T: Deserialize>(
        map: &[(Text, Content)],
        name: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        let c = map
            .iter()
            .find(|(k, _)| k.as_ref() == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError(format!("missing field `{name}` in {ty}")))?;
        T::deserialize_content(c).map_err(|e| DeError(format!("field `{name}` of {ty}: {}", e.0)))
    }

    /// Deserialize a positional element.
    pub fn de_elem<T: Deserialize>(seq: &[Content], idx: usize, ty: &str) -> Result<T, DeError> {
        T::deserialize_content(&seq[idx])
            .map_err(|e| DeError(format!("element {idx} of {ty}: {}", e.0)))
    }

    /// Split an enum encoding into (variant name, optional payload).
    pub fn variant_of<'a>(
        c: &'a Content,
        ty: &str,
    ) -> Result<(&'a str, Option<&'a Content>), DeError> {
        match c {
            Content::Str(s) => Ok((s.as_ref(), None)),
            Content::Map(m) if m.len() == 1 => Ok((m[0].0.as_ref(), Some(&m[0].1))),
            _ => Err(DeError(format!(
                "expected enum variant for {ty}, found {}",
                kind(c)
            ))),
        }
    }

    /// Payload required by a data-carrying variant.
    pub fn payload<'a>(p: Option<&'a Content>, variant: &str) -> Result<&'a Content, DeError> {
        p.ok_or_else(|| DeError(format!("variant `{variant}` expects a payload")))
    }

    fn kind(c: &Content) -> &'static str {
        match c {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::deserialize_content(&42u16.serialize_content()), Ok(42));
        assert_eq!(
            i32::deserialize_content(&(-7i32).serialize_content()),
            Ok(-7)
        );
        assert_eq!(
            f64::deserialize_content(&1.5f64.serialize_content()),
            Ok(1.5)
        );
        assert_eq!(Option::<u8>::deserialize_content(&Content::Null), Ok(None));
        let arr: [Option<u8>; 3] = [None, Some(2), None];
        assert_eq!(
            <[Option<u8>; 3]>::deserialize_content(&arr.serialize_content()),
            Ok(arr)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::deserialize_content(&Content::U64(300)).is_err());
        assert!(u64::deserialize_content(&Content::I64(-1)).is_err());
    }
}
