//! Minimal offline stand-in for `serde_json`: renders and parses the
//! vendored serde `Content` tree as JSON text. Supports the functions
//! this workspace calls (`to_string`, `to_writer`, `from_str`) with
//! real escaping, `\uXXXX` decoding (including surrogate pairs) and
//! integer-preserving number parsing.

// Offline stand-in crate: keep it lint-silent so workspace-wide clippy
// gates only the real code.
#![allow(clippy::all)]

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content());
    Ok(out)
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(format!("io error: {e}")))
}

/// Parse a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    T::deserialize_content(&content).map_err(Error::from)
}

// ------------------------------------------------------------- rendering

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            out.push_str(&v.to_string());
        }
        Content::I64(v) => {
            out.push_str(&v.to_string());
        }
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` gives the shortest representation that parses
                // back exactly, and always includes a `.0` or exponent.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(|s| Content::Str(s.into())),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key.into(), val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: expect \uDC00-\uDFFF
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(ch.ok_or_else(|| Error("invalid \\u escape".into()))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // the byte sequence is valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("bad utf8".into()))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 3;
        let j = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&j).unwrap(), big);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tslash\\ unicode \u{1F600} nul-ish \u{1}".to_string();
        let j = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
    }

    #[test]
    fn surrogate_pair_decodes() {
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn nested_containers() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![3]];
        let j = to_string(&v).unwrap();
        assert_eq!(j, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u8>>>(&j).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u8>>(" [ 1 , 2 ,\n 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn junk_rejected() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for v in [0.1f64, 1e-12, 123456.789, -2.5e30, 3.0] {
            let j = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&j).unwrap(), v, "{j}");
        }
    }
}
