//! Minimal offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro with `pattern in strategy` bindings,
//! range/tuple/vec/bool strategies and the `prop_assert*` macros. The
//! runner draws a fixed number of cases from a deterministic seeded
//! generator — no shrinking, no persistence files, bit-identical runs.

// Offline stand-in crate: keep it lint-silent so workspace-wide clippy
// gates only the real code.
#![allow(clippy::all)]

/// Number of cases each property executes.
pub const CASES: usize = 64;

/// Strategy combinators and the [`Strategy`] trait.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A recipe for generating values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = rng.next_u64() as u128 % span;
                    (self.start as u128).wrapping_add(draw) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn pick(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + u * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.pick(rng), self.1.pick(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.pick(rng), self.1.pick(rng), self.2.pick(rng))
        }
    }

    /// Strategy produced by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().pick(rng);
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }

    /// Uniform `bool` strategy (see [`crate::bool::ANY`]).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn pick(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use core::ops::Range;

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::BoolStrategy;

    /// Uniform true/false.
    pub const ANY: BoolStrategy = BoolStrategy;
}

/// The per-test runner and its RNG.
pub mod test_runner {
    use std::fmt;

    /// Deterministic xoshiro256** stream for case generation.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeded from the test function name so each property gets its
        /// own stream but every run draws the same cases.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Define property tests: each parameter is drawn from its strategy for
/// [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $p = $crate::strategy::Strategy::pick(&($s), &mut __rng);)*
                    let __r: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __r {
                        panic!("property {} failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..2, 5..9)) {
            prop_assert!(v.len() >= 5 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn tuples_and_bool(pair in (0u8..16, 0u8..2), b in crate::bool::ANY) {
            prop_assert!(pair.0 < 16);
            prop_assert!(pair.1 < 2);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn mut_patterns_work(mut data in prop::collection::vec(0u8..10, 1..4)) {
            data.push(0);
            prop_assert_ne!(data.len(), 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
