//! Facade crate for the NR-Scope workspace: re-exports the public crates so
//! examples and integration tests can use a single import root.
pub use gnb_sim as gnb;
pub use nr_mac as mac;
pub use nr_phy as phy;
pub use nr_radio as radio;
pub use nr_rrc as rrc;
pub use nrscope as scope;
pub use nrscope_analytics as analytics;
pub use ue_sim as ue;
