//! Rational polyphase resampler.
//!
//! The paper's tool resamples USRP streams so "the FFT bins [fit] onto the
//! subcarriers" (§4) when the daughterboard's native rate differs from the
//! OFDM sample rate. This is a windowed-sinc polyphase interpolator for
//! arbitrary L/M rational ratios.

use nr_phy::complex::Cf32;

/// A fixed-ratio L/M resampler.
#[derive(Debug, Clone)]
pub struct Resampler {
    /// Interpolation factor.
    l: usize,
    /// Decimation factor.
    m: usize,
    /// Polyphase filter bank: `l` phases × `taps_per_phase` taps.
    phases: Vec<Vec<f32>>,
}

/// Taps per polyphase branch (filter length = branches × this).
const TAPS_PER_PHASE: usize = 8;

impl Resampler {
    /// Build a resampler converting rate by `l/m`. Factors are reduced by
    /// their GCD internally.
    pub fn new(l: usize, m: usize) -> Resampler {
        assert!(l > 0 && m > 0);
        let g = gcd(l, m);
        let (l, m) = (l / g, m / g);
        // Prototype low-pass at cutoff min(1/L, 1/M), Hamming-windowed sinc.
        let total = l * TAPS_PER_PHASE;
        let cutoff = 1.0 / l.max(m) as f32;
        let centre = (total - 1) as f32 / 2.0;
        let proto: Vec<f32> = (0..total)
            .map(|i| {
                let x = i as f32 - centre;
                let sinc = if x == 0.0 {
                    1.0
                } else {
                    let arg = std::f32::consts::PI * x * cutoff;
                    arg.sin() / arg
                };
                let window =
                    0.54 - 0.46 * (std::f32::consts::TAU * i as f32 / (total - 1) as f32).cos();
                sinc * window * cutoff * l as f32
            })
            .collect();
        let phases = (0..l)
            .map(|p| (0..TAPS_PER_PHASE).map(|t| proto[p + t * l]).collect())
            .collect();
        Resampler { l, m, phases }
    }

    /// Effective ratio (output rate / input rate).
    pub fn ratio(&self) -> f64 {
        self.l as f64 / self.m as f64
    }

    /// Resample a block. Stateless per call (history zero-padded); intended
    /// for slot-sized blocks where edge effects are a handful of samples.
    pub fn process(&self, input: &[Cf32]) -> Vec<Cf32> {
        let out_len = input.len() * self.l / self.m;
        let mut out = Vec::with_capacity(out_len);
        for n in 0..out_len {
            // Output n corresponds to virtual upsampled index n*M.
            let up = n * self.m;
            let phase = up % self.l;
            let base = up / self.l;
            let taps = &self.phases[phase];
            let mut acc = Cf32::ZERO;
            for (t, &h) in taps.iter().enumerate() {
                // Tap t reaches back t input samples from `base`.
                if let Some(i) = base.checked_sub(t) {
                    if let Some(s) = input.get(i) {
                        acc += s.scale(h);
                    }
                }
            }
            out.push(acc);
        }
        out
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, freq_per_sample: f32) -> Vec<Cf32> {
        (0..n)
            .map(|i| Cf32::from_angle(std::f32::consts::TAU * freq_per_sample * i as f32))
            .collect()
    }

    #[test]
    fn unity_ratio_preserves_signal() {
        let r = Resampler::new(3, 3);
        assert_eq!(r.ratio(), 1.0);
        let x = tone(256, 0.01);
        let y = r.process(&x);
        assert_eq!(y.len(), 256);
        // Interior samples match the input closely (group delay excluded).
        let err: f32 = (32..224).map(|i| (y[i] - x[i - 3]).abs()).sum::<f32>() / 192.0;
        assert!(err < 0.12, "mean interior error {err}");
    }

    #[test]
    fn output_length_follows_ratio() {
        let r = Resampler::new(2, 1);
        assert_eq!(r.process(&tone(100, 0.01)).len(), 200);
        let r = Resampler::new(1, 2);
        assert_eq!(r.process(&tone(100, 0.01)).len(), 50);
        let r = Resampler::new(3, 4);
        assert_eq!(r.process(&tone(400, 0.01)).len(), 300);
    }

    #[test]
    fn upsampled_tone_keeps_frequency() {
        // A slow tone upsampled 2× should rotate half as fast per sample.
        let r = Resampler::new(2, 1);
        let x = tone(512, 0.02);
        let y = r.process(&x);
        // Measure phase increment in the interior.
        let dphi: f32 = (100..400)
            .map(|i| (y[i + 1] * y[i].conj()).arg())
            .sum::<f32>()
            / 300.0;
        let expected = std::f32::consts::TAU * 0.01;
        assert!((dphi - expected).abs() < 0.002, "dphi {dphi} vs {expected}");
    }

    #[test]
    fn amplitude_is_preserved() {
        let r = Resampler::new(4, 3);
        let x = tone(600, 0.015);
        let y = r.process(&x);
        let p: f32 = y[100..y.len() - 100]
            .iter()
            .map(|v| v.norm_sqr())
            .sum::<f32>()
            / (y.len() - 200) as f32;
        assert!((p - 1.0).abs() < 0.1, "interior power {p}");
    }

    #[test]
    fn factors_are_reduced() {
        let a = Resampler::new(4, 2);
        let b = Resampler::new(2, 1);
        assert_eq!(a.ratio(), b.ratio());
        assert_eq!(a.phases.len(), b.phases.len());
    }
}
