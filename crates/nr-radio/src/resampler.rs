//! Rational polyphase resampler.
//!
//! The paper's tool resamples USRP streams so "the FFT bins [fit] onto the
//! subcarriers" (§4) when the daughterboard's native rate differs from the
//! OFDM sample rate. This is a windowed-sinc polyphase interpolator for
//! arbitrary L/M rational ratios.
//!
//! The resampler is *streaming*: filter history is carried across
//! [`Resampler::process`] calls, so chunking the input arbitrarily yields
//! bit-identical output to a single one-shot call (pinned by a property
//! test below). A timing-recovery loop can steer it at runtime through
//! [`Resampler::adjust_phase`] (fractional sample shifts, quantised to the
//! polyphase grid) and [`Resampler::slip`] (integer sample slips).

use nr_phy::complex::Cf32;

/// A fixed-ratio L/M streaming resampler with runtime-adjustable phase.
#[derive(Debug, Clone)]
pub struct Resampler {
    /// Interpolation factor.
    l: usize,
    /// Decimation factor.
    m: usize,
    /// Polyphase filter bank: `l` phases × `taps_per_phase` taps.
    phases: Vec<Vec<f32>>,
    /// Carried input history: the most recent `hist.len()` input samples,
    /// oldest first. Pre-filled with zeros so a fresh instance reproduces
    /// the historical zero-padded one-shot behaviour exactly.
    hist: Vec<Cf32>,
    /// Total input samples consumed across all `process` calls.
    consumed: u64,
    /// Total output samples emitted across all `process` calls.
    emitted: u64,
    /// Timing offset in upsampled ticks (1 tick = 1/`l` input samples).
    /// Output n samples the virtual upsampled stream at `n*m + tick_offset`;
    /// positive values delay the sampling instant (skip input), negative
    /// values replay. Adjusted at runtime by the recovery loop.
    tick_offset: i64,
    /// Cumulative integer sample slips commanded via [`Resampler::slip`]
    /// (positive = samples skipped).
    slipped: i64,
}

/// Taps per polyphase branch (filter length = branches × this).
const TAPS_PER_PHASE: usize = 8;

/// Minimum polyphase-bank size. After GCD reduction, `l` and `m` are both
/// scaled by the same integer until the bank has at least this many
/// phases. The rate ratio and output counts are unchanged (the scale
/// cancels), but fractional-phase steering resolves to `1/l` input
/// samples — without this, a unity-ratio resampler would reduce to a
/// single phase and quantise every steering command to whole samples.
const MIN_PHASES: usize = 32;

/// Extra history retained beyond the structural minimum so that bounded
/// negative phase/slip commands can reach slightly older samples without
/// glitching. Per-call commands are clamped to this many input samples.
const SLIP_MARGIN: usize = 8;

impl Resampler {
    /// Build a resampler converting rate by `l/m`. Factors are reduced by
    /// their GCD internally.
    pub fn new(l: usize, m: usize) -> Resampler {
        assert!(l > 0 && m > 0);
        let g = gcd(l, m);
        let (mut l, mut m) = (l / g, m / g);
        // Pad the bank for steering resolution; the scale cancels in the
        // ratio and in every output-count computation.
        let k = MIN_PHASES.div_ceil(l);
        l *= k;
        m *= k;
        // Prototype low-pass at cutoff min(1/L, 1/M), Hamming-windowed sinc.
        let total = l * TAPS_PER_PHASE;
        let cutoff = 1.0 / l.max(m) as f32;
        let centre = (total - 1) as f32 / 2.0;
        let proto: Vec<f32> = (0..total)
            .map(|i| {
                let x = i as f32 - centre;
                let sinc = if x == 0.0 {
                    1.0
                } else {
                    let arg = std::f32::consts::PI * x * cutoff;
                    arg.sin() / arg
                };
                let window =
                    0.54 - 0.46 * (std::f32::consts::TAU * i as f32 / (total - 1) as f32).cos();
                sinc * window * cutoff * l as f32
            })
            .collect();
        let phases: Vec<Vec<f32>> = (0..l)
            .map(|p| (0..TAPS_PER_PHASE).map(|t| proto[p + t * l]).collect())
            .collect();
        // Deepest look-back of any output relative to the newest consumed
        // sample is ~m/l samples (emission lag) plus the filter depth.
        let hist_len = m.div_ceil(l) + TAPS_PER_PHASE + SLIP_MARGIN;
        Resampler {
            l,
            m,
            phases,
            hist: vec![Cf32::ZERO; hist_len],
            consumed: 0,
            emitted: 0,
            tick_offset: 0,
            slipped: 0,
        }
    }

    /// Effective ratio (output rate / input rate).
    pub fn ratio(&self) -> f64 {
        self.l as f64 / self.m as f64
    }

    /// Current fractional-phase command in input samples (the part of the
    /// tick offset the recovery loop has steered, slips excluded).
    pub fn fractional_phase(&self) -> f64 {
        (self.tick_offset - self.slipped * self.l as i64) as f64 / self.l as f64
    }

    /// Cumulative integer sample slips commanded (positive = skipped).
    pub fn slipped(&self) -> i64 {
        self.slipped
    }

    /// Shift the sampling instant by `frac` input samples (positive =
    /// later). Quantised to the polyphase grid (1/`l` sample steps) and
    /// clamped to ±[`SLIP_MARGIN`]/2 samples per call so the carried
    /// history always covers the request. Returns the shift applied.
    pub fn adjust_phase(&mut self, frac: f64) -> f64 {
        let bound = SLIP_MARGIN as f64 / 2.0;
        let clamped = frac.clamp(-bound, bound);
        let ticks = (clamped * self.l as f64).round() as i64;
        self.tick_offset += ticks;
        ticks as f64 / self.l as f64
    }

    /// Slip the input stream by a whole number of samples (positive =
    /// skip input samples, negative = replay). Clamped like
    /// [`Resampler::adjust_phase`]. Returns the slip applied.
    pub fn slip(&mut self, samples: i64) -> i64 {
        let bound = (SLIP_MARGIN / 2) as i64;
        let clamped = samples.clamp(-bound, bound);
        self.tick_offset += clamped * self.l as i64;
        self.slipped += clamped;
        clamped
    }

    /// Drop carried state (history, counters, phase commands), returning
    /// the instance to its freshly-constructed behaviour.
    pub fn reset(&mut self) {
        self.hist.fill(Cf32::ZERO);
        self.consumed = 0;
        self.emitted = 0;
        self.tick_offset = 0;
        self.slipped = 0;
    }

    /// Resample the next block of the stream. Carries filter history from
    /// previous calls; a fresh instance fed the whole signal in one call
    /// produces the same output as any chunked feeding of the same signal.
    pub fn process(&mut self, input: &[Cf32]) -> Vec<Cf32> {
        let hist_len = self.hist.len();
        let consumed_after = self.consumed + input.len() as u64;
        // Emit up to the floor-rule target: cumulative outputs after
        // consuming C inputs is floor((C*l - tick_offset)/m), matching the
        // historical one-shot `len*l/m` when the phase is unsteered.
        let num = consumed_after as i64 * self.l as i64 - self.tick_offset;
        let target = if num <= 0 {
            self.emitted
        } else {
            ((num as u64) / self.m as u64).max(self.emitted)
        };
        let mut out = Vec::with_capacity((target - self.emitted) as usize);
        // Global input index of the oldest sample we hold.
        let window_start = self.consumed as i64 - hist_len as i64;
        for n in self.emitted..target {
            let up = n as i64 * self.m as i64 + self.tick_offset;
            // Euclidean division so negative phases index phase banks
            // correctly at the stream head.
            let base = up.div_euclid(self.l as i64);
            let phase = up.rem_euclid(self.l as i64) as usize;
            let taps = &self.phases[phase];
            let mut acc = Cf32::ZERO;
            for (t, &h) in taps.iter().enumerate() {
                // Tap t reaches back t input samples from `base`.
                let g = base - t as i64;
                let off = g - window_start;
                let s = if off < 0 {
                    // Before the retained window: zero (stream head, or an
                    // over-aggressive negative command past the margin).
                    Cf32::ZERO
                } else if (off as usize) < hist_len {
                    self.hist[off as usize]
                } else if let Some(s) = input.get(off as usize - hist_len) {
                    *s
                } else {
                    Cf32::ZERO
                };
                acc += s.scale(h);
            }
            out.push(acc);
        }
        self.emitted = target;
        self.consumed = consumed_after;
        // Retain the newest `hist_len` samples of (hist ++ input).
        if input.len() >= hist_len {
            self.hist.copy_from_slice(&input[input.len() - hist_len..]);
        } else {
            self.hist.rotate_left(input.len());
            self.hist[hist_len - input.len()..].copy_from_slice(input);
        }
        out
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, freq_per_sample: f32) -> Vec<Cf32> {
        (0..n)
            .map(|i| Cf32::from_angle(std::f32::consts::TAU * freq_per_sample * i as f32))
            .collect()
    }

    #[test]
    fn unity_ratio_preserves_signal() {
        let mut r = Resampler::new(3, 3);
        assert_eq!(r.ratio(), 1.0);
        let x = tone(256, 0.01);
        let y = r.process(&x);
        assert_eq!(y.len(), 256);
        // Interior samples match the input closely (group delay excluded).
        let err: f32 = (32..224).map(|i| (y[i] - x[i - 3]).abs()).sum::<f32>() / 192.0;
        assert!(err < 0.12, "mean interior error {err}");
    }

    #[test]
    fn output_length_follows_ratio() {
        let mut r = Resampler::new(2, 1);
        assert_eq!(r.process(&tone(100, 0.01)).len(), 200);
        let mut r = Resampler::new(1, 2);
        assert_eq!(r.process(&tone(100, 0.01)).len(), 50);
        let mut r = Resampler::new(3, 4);
        assert_eq!(r.process(&tone(400, 0.01)).len(), 300);
    }

    #[test]
    fn upsampled_tone_keeps_frequency() {
        // A slow tone upsampled 2× should rotate half as fast per sample.
        let mut r = Resampler::new(2, 1);
        let x = tone(512, 0.02);
        let y = r.process(&x);
        // Measure phase increment in the interior.
        let dphi: f32 = (100..400)
            .map(|i| (y[i + 1] * y[i].conj()).arg())
            .sum::<f32>()
            / 300.0;
        let expected = std::f32::consts::TAU * 0.01;
        assert!((dphi - expected).abs() < 0.002, "dphi {dphi} vs {expected}");
    }

    #[test]
    fn amplitude_is_preserved() {
        let mut r = Resampler::new(4, 3);
        let x = tone(600, 0.015);
        let y = r.process(&x);
        let p: f32 = y[100..y.len() - 100]
            .iter()
            .map(|v| v.norm_sqr())
            .sum::<f32>()
            / (y.len() - 200) as f32;
        assert!((p - 1.0).abs() < 0.1, "interior power {p}");
    }

    #[test]
    fn factors_are_reduced() {
        let a = Resampler::new(4, 2);
        let b = Resampler::new(2, 1);
        assert_eq!(a.ratio(), b.ratio());
        assert_eq!(a.phases.len(), b.phases.len());
    }

    /// Deterministic chunk-size stream from a splitmix64-style generator.
    fn chunk_sizes(seed: u64, total: usize) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut left = total;
        let mut z = seed;
        while left > 0 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let n = ((x % 97) as usize + 1).min(left);
            sizes.push(n);
            left -= n;
        }
        sizes
    }

    /// The block-seam property: streaming a signal through in arbitrary
    /// chunks is bit-identical to one one-shot call. This is the contract
    /// the timing-recovery loop leans on — no glitch energy at slot seams.
    #[test]
    fn streamed_chunks_equal_one_shot() {
        for &(l, m) in &[(1, 1), (2, 1), (1, 2), (3, 4), (4, 3), (7, 5), (160, 147)] {
            let x = tone(1000, 0.013);
            let mut oneshot = Resampler::new(l, m);
            let want = oneshot.process(&x);
            for seed in 0..6u64 {
                let mut streamed = Resampler::new(l, m);
                let mut got = Vec::new();
                let mut at = 0usize;
                for sz in chunk_sizes(seed, x.len()) {
                    got.extend(streamed.process(&x[at..at + sz]));
                    at += sz;
                }
                assert_eq!(
                    got.len(),
                    want.len(),
                    "length mismatch l={l} m={m} seed={seed}"
                );
                for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (*a - *b).abs() == 0.0,
                        "seam glitch at {i} (l={l} m={m} seed={seed}): {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn phase_adjust_shifts_sampling_instant() {
        // At unity ratio a +0.5-sample... unity l=1 quantises to whole
        // samples; use l=16 so fractional steps are representable.
        let mut r = Resampler::new(16, 16);
        let x = tone(512, 0.02);
        let y0 = r.process(&x[..256]).len();
        let applied = r.adjust_phase(0.25);
        assert!((applied - 0.25).abs() < 1e-9, "applied {applied}");
        let y1 = r.process(&x[256..]);
        assert!(y0 > 0 && !y1.is_empty());
        // A delayed sampling instant advances the tone's phase at the
        // output by ~2π·f·0.25.
        let mut ref_r = Resampler::new(16, 16);
        let y_ref = ref_r.process(&x);
        let k = 300usize; // interior index, past the adjustment point
        let got = y1[k - y0];
        let want = y_ref[k];
        let dphi = (got * want.conj()).arg();
        let expected = std::f32::consts::TAU * 0.02 * 0.25;
        assert!(
            (dphi - expected).abs() < 0.05,
            "phase step {dphi} vs {expected}"
        );
    }

    #[test]
    fn integer_slip_skips_samples() {
        let mut r = Resampler::new(1, 1);
        let x = tone(600, 0.0); // DC: easiest to count against
        let a = r.process(&x[..300]);
        assert_eq!(r.slip(2), 2);
        assert_eq!(r.slipped(), 2);
        let b = r.process(&x[300..]);
        // Two input samples skipped ⇒ two fewer outputs overall.
        assert_eq!(a.len() + b.len(), 600 - 2);
        // Fractional phase excludes integer slips.
        assert!(r.fractional_phase().abs() < 1e-9);
    }

    #[test]
    fn slip_commands_are_clamped() {
        let mut r = Resampler::new(4, 4);
        assert_eq!(r.slip(1_000), (SLIP_MARGIN / 2) as i64);
        assert_eq!(r.slip(-1_000), -((SLIP_MARGIN / 2) as i64));
        let big = r.adjust_phase(99.0);
        assert!(big <= SLIP_MARGIN as f64 / 2.0 + 1e-9);
    }

    #[test]
    fn reset_restores_fresh_behaviour() {
        let x = tone(400, 0.01);
        let mut r = Resampler::new(3, 4);
        let first = r.process(&x);
        r.adjust_phase(1.0);
        r.slip(1);
        r.process(&x);
        r.reset();
        let again = r.process(&x);
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(&again) {
            assert!((*a - *b).abs() == 0.0);
        }
    }
}
