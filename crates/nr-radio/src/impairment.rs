//! Deterministic, seeded impairment scheduling for chaos testing.
//!
//! Real sniffer deployments fail in well-known ways: the USRP overflows
//! and drops (or truncates) slot buffers, a nearby transmitter raises the
//! noise floor for a burst, the AGC mis-steps on a power transient, and
//! the host stalls the receive thread long enough to lose timing. An
//! [`ImpairmentSchedule`] scripts all of these against a slot counter so
//! tests and example binaries can replay the exact same failure sequence
//! from a seed.
//!
//! Probabilistic impairments (random overflow drops, truncations) are
//! derived by hashing `(seed, slot, kind)` rather than by walking an RNG,
//! so a verdict for slot *n* never depends on which other slots were
//! queried first — resumable and order-independent by construction.

use std::ops::Range;

/// One scheduled interference burst: an SNR penalty over a slot window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// First slot of the burst (inclusive).
    pub start: u64,
    /// End of the burst (exclusive).
    pub end: u64,
    /// How many dB the burst costs the sniffer.
    pub snr_penalty_db: f64,
}

/// Everything scheduled to go wrong in one slot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlotImpairment {
    /// The slot buffer is lost entirely (USRP overflow).
    pub drop: bool,
    /// The slot buffer is cut short; the value is the retained fraction
    /// in `(0, 1)`.
    pub truncate: Option<f64>,
    /// Additional noise (dB) from burst interference.
    pub snr_penalty_db: f64,
    /// A transient mis-set of the AGC gain (dB, applied before the slot).
    pub agc_kick_db: f64,
    /// The observer stalls for this many slots starting here (host
    /// scheduling hiccup); the stalled slots are lost.
    pub stall_slots: u32,
}

impl SlotImpairment {
    /// True when nothing is scheduled for the slot.
    pub fn is_clean(&self) -> bool {
        !self.drop
            && self.truncate.is_none()
            && self.snr_penalty_db == 0.0
            && self.agc_kick_db == 0.0
            && self.stall_slots == 0
    }
}

/// A seeded, fully deterministic schedule of radio/host impairments.
#[derive(Debug, Clone, Default)]
pub struct ImpairmentSchedule {
    seed: u64,
    drop_prob: f64,
    truncate_prob: f64,
    outages: Vec<(u64, u64)>,
    bursts: Vec<Burst>,
    agc_transients: Vec<(u64, f64)>,
    stalls: Vec<(u64, u32)>,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ImpairmentSchedule {
    /// An empty schedule; every slot is clean until builders add faults.
    pub fn new(seed: u64) -> ImpairmentSchedule {
        ImpairmentSchedule {
            seed,
            ..ImpairmentSchedule::default()
        }
    }

    /// Drop each slot independently with probability `p` (USRP overflow).
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Truncate each surviving slot independently with probability `p`.
    pub fn with_truncate_prob(mut self, p: f64) -> Self {
        self.truncate_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Drop every slot in `slots` (a hard outage window).
    pub fn with_outage(mut self, slots: Range<u64>) -> Self {
        self.outages.push((slots.start, slots.end));
        self
    }

    /// Add `penalty_db` of noise over the `slots` window.
    pub fn with_interference(mut self, slots: Range<u64>, penalty_db: f64) -> Self {
        self.bursts.push(Burst {
            start: slots.start,
            end: slots.end,
            snr_penalty_db: penalty_db,
        });
        self
    }

    /// Kick the AGC gain by `db` just before `slot` is received.
    pub fn with_agc_transient(mut self, slot: u64, db: f64) -> Self {
        self.agc_transients.push((slot, db));
        self
    }

    /// Stall the observer for `n` slots starting at `slot`.
    pub fn with_stall(mut self, slot: u64, n: u32) -> Self {
        self.stalls.push((slot, n));
        self
    }

    /// Uniform draw in `[0, 1)` keyed by `(seed, slot, salt)`.
    fn unit(&self, slot: u64, salt: u64) -> f64 {
        let h = splitmix64(
            self.seed
                ^ slot.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ salt.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// What happens to `slot`. Pure: repeated queries agree regardless of
    /// order.
    pub fn verdict(&self, slot: u64) -> SlotImpairment {
        let mut v = SlotImpairment::default();
        if self.outages.iter().any(|(s, e)| (*s..*e).contains(&slot)) {
            v.drop = true;
        }
        if self.drop_prob > 0.0 && self.unit(slot, 1) < self.drop_prob {
            v.drop = true;
        }
        if !v.drop && self.truncate_prob > 0.0 && self.unit(slot, 2) < self.truncate_prob {
            // Retained fraction in [0.25, 0.75): enough left to look like
            // a slot, never enough to demodulate.
            v.truncate = Some(0.25 + 0.5 * self.unit(slot, 3));
        }
        v.snr_penalty_db = self
            .bursts
            .iter()
            .filter(|b| (b.start..b.end).contains(&slot))
            .map(|b| b.snr_penalty_db)
            .sum();
        v.agc_kick_db = self
            .agc_transients
            .iter()
            .filter(|(s, _)| *s == slot)
            .map(|(_, db)| *db)
            .sum();
        v.stall_slots = self
            .stalls
            .iter()
            .filter(|(s, _)| *s == slot)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_order_independent() {
        let sched = ImpairmentSchedule::new(42)
            .with_drop_prob(0.1)
            .with_truncate_prob(0.1);
        let forward: Vec<_> = (0..500).map(|s| sched.verdict(s)).collect();
        let backward: Vec<_> = (0..500).rev().map(|s| sched.verdict(s)).collect();
        for (s, v) in forward.iter().enumerate() {
            assert_eq!(*v, backward[499 - s], "slot {s}");
        }
    }

    #[test]
    fn drop_rate_matches_probability() {
        let sched = ImpairmentSchedule::new(7).with_drop_prob(0.05);
        let dropped = (0..20_000).filter(|s| sched.verdict(*s).drop).count();
        let rate = dropped as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "drop rate {rate}");
    }

    #[test]
    fn outage_windows_drop_every_slot() {
        let sched = ImpairmentSchedule::new(1).with_outage(100..150);
        assert!((100..150).all(|s| sched.verdict(s).drop));
        assert!(!sched.verdict(99).drop);
        assert!(!sched.verdict(150).drop);
    }

    #[test]
    fn bursts_stack_and_transients_hit_one_slot() {
        let sched = ImpairmentSchedule::new(1)
            .with_interference(10..20, 6.0)
            .with_interference(15..30, 4.0)
            .with_agc_transient(12, 18.0)
            .with_stall(40, 5);
        assert_eq!(sched.verdict(10).snr_penalty_db, 6.0);
        assert_eq!(sched.verdict(16).snr_penalty_db, 10.0);
        assert_eq!(sched.verdict(25).snr_penalty_db, 4.0);
        assert_eq!(sched.verdict(12).agc_kick_db, 18.0);
        assert_eq!(sched.verdict(13).agc_kick_db, 0.0);
        assert_eq!(sched.verdict(40).stall_slots, 5);
        assert!(sched.verdict(41).is_clean());
    }

    #[test]
    fn truncation_leaves_a_partial_slot() {
        let sched = ImpairmentSchedule::new(3).with_truncate_prob(1.0);
        let v = sched.verdict(0);
        let f = v.truncate.expect("truncated");
        assert!((0.25..0.75).contains(&f));
        assert!(!v.drop);
    }
}
