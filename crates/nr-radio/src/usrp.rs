//! The virtual USRP: applies the sniffer's receive channel (placement SNR,
//! optional fading) and hardware effects (noise, AGC) to the gNB's
//! transmitted slot waveform, producing what NR-Scope's DSP actually sees.

use crate::agc::Agc;
use nr_phy::channel::JakesFader;
use nr_phy::complex::{mean_power, Cf32};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One received slot with its receive-quality metadata.
#[derive(Debug, Clone)]
pub struct RxSlot {
    /// Post-AGC IQ samples.
    pub samples: Vec<Cf32>,
    /// True (pre-AGC) receive SNR in dB — ground truth for coverage plots.
    pub true_snr_db: f64,
}

/// Cumulative front-end counters (what a real driver exports alongside
/// overflow flags) — feeds the pipeline metrics layer's radio counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RadioStats {
    /// Slots passed through `receive`.
    pub slots_received: u64,
    /// IQ samples produced across all slots.
    pub samples_processed: u64,
    /// AGC transients injected via `kick_agc_db`.
    pub agc_kicks: u64,
    /// Interference bursts injected via `inject_snr_penalty_db`.
    pub snr_penalties: u64,
}

/// The sniffer's radio front end.
pub struct VirtualUsrp {
    /// Mean receive SNR at the sniffer's position, dB.
    snr_db: f64,
    /// Optional slow fading on the sniffer's own path.
    fader: Option<JakesFader>,
    agc: Agc,
    rng: StdRng,
    /// One-shot SNR penalty (dB) consumed by the next `receive` — how
    /// scheduled interference bursts reach the front end.
    pending_penalty_db: f64,
    stats: RadioStats,
}

impl VirtualUsrp {
    /// Front end at a position with mean `snr_db`; `doppler_hz > 0` adds
    /// fading on the sniffer path (e.g. people moving through the office).
    pub fn new(snr_db: f64, doppler_hz: f64, seed: u64) -> VirtualUsrp {
        VirtualUsrp {
            snr_db,
            fader: (doppler_hz > 0.0).then(|| JakesFader::new(1.0, doppler_hz, seed)),
            agc: Agc::new(1.0),
            rng: StdRng::seed_from_u64(seed ^ 0xB5),
            pending_penalty_db: 0.0,
            stats: RadioStats::default(),
        }
    }

    /// Mean configured SNR.
    pub fn snr_db(&self) -> f64 {
        self.snr_db
    }

    /// Cumulative front-end counters since construction.
    pub fn stats(&self) -> RadioStats {
        self.stats
    }

    /// Degrade only the next received slot by `db` (interference burst
    /// injection; see [`crate::ImpairmentSchedule`]).
    pub fn inject_snr_penalty_db(&mut self, db: f64) {
        self.pending_penalty_db += db;
        self.stats.snr_penalties += 1;
    }

    /// Kick the AGC gain by `db` (transient injection); it recovers under
    /// the loop's slew limit over the following slots.
    pub fn kick_agc_db(&mut self, db: f32) {
        self.agc.kick_db(db);
        self.stats.agc_kicks += 1;
    }

    /// Receive one slot transmitted as `tx` at absolute time `t` seconds.
    pub fn receive(&mut self, tx: &[Cf32], t: f64) -> RxSlot {
        // Instantaneous channel: mean SNR plus fading variation.
        let fade_db = match &self.fader {
            Some(f) => 10.0 * (f.gain_at(t).norm_sqr().max(1e-6) as f64).log10(),
            None => 0.0,
        };
        let inst_snr_db = self.snr_db + fade_db - std::mem::take(&mut self.pending_penalty_db);
        let sig_power = mean_power(tx) as f64;
        // Noise power that yields the instantaneous SNR against the actual
        // transmitted signal power.
        let noise_power = if sig_power > 0.0 {
            sig_power / 10f64.powf(inst_snr_db / 10.0)
        } else {
            1e-6
        };
        let sigma = (noise_power / 2.0).sqrt() as f32;
        let mut samples: Vec<Cf32> = tx
            .iter()
            .map(|s| {
                let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = self.rng.gen_range(0.0..std::f32::consts::TAU);
                let r = (-2.0 * u1.ln()).sqrt() * sigma;
                *s + Cf32::new(r * u2.cos(), r * u2.sin())
            })
            .collect();
        self.agc.process(&mut samples);
        self.stats.slots_received += 1;
        self.stats.samples_processed += samples.len() as u64;
        RxSlot {
            samples,
            true_snr_db: inst_snr_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx_slot(n: usize) -> Vec<Cf32> {
        (0..n).map(|i| Cf32::from_angle(i as f32 * 0.37)).collect()
    }

    #[test]
    fn high_snr_preserves_signal_shape() {
        let mut u = VirtualUsrp::new(40.0, 0.0, 1);
        let tx = tx_slot(2048);
        let rx = u.receive(&tx, 0.0);
        assert_eq!(rx.samples.len(), tx.len());
        // Correlation with the clean signal is near 1 at 40 dB.
        let dot: f32 = rx
            .samples
            .iter()
            .zip(&tx)
            .map(|(a, b)| (*a * b.conj()).re)
            .sum();
        let e_rx: f32 = rx.samples.iter().map(|v| v.norm_sqr()).sum();
        let e_tx: f32 = tx.iter().map(|v| v.norm_sqr()).sum();
        let rho = dot / (e_rx * e_tx).sqrt();
        assert!(rho > 0.99, "correlation {rho}");
    }

    #[test]
    fn measured_snr_matches_configuration() {
        let mut u = VirtualUsrp::new(10.0, 0.0, 2);
        let tx = tx_slot(60_000);
        // Disable AGC interference with the measurement by comparing the
        // noise directly: rx - gain·tx has the noise power.
        let rx = u.receive(&tx, 0.0);
        // Estimate gain from correlation.
        let dot = rx
            .samples
            .iter()
            .zip(&tx)
            .fold(Cf32::ZERO, |acc, (a, b)| acc + *a * b.conj());
        let e_tx: f32 = tx.iter().map(|v| v.norm_sqr()).sum();
        let g = dot / e_tx;
        let noise: f32 = rx
            .samples
            .iter()
            .zip(&tx)
            .map(|(a, b)| (*a - g * *b).norm_sqr())
            .sum::<f32>()
            / tx.len() as f32;
        let sig: f32 = tx.iter().map(|v| (g * *v).norm_sqr()).sum::<f32>() / tx.len() as f32;
        let snr_db = 10.0 * (sig / noise).log10();
        assert!((snr_db - 10.0).abs() < 1.0, "measured snr {snr_db}");
    }

    #[test]
    fn fading_front_end_varies_instantaneous_snr() {
        let mut u = VirtualUsrp::new(20.0, 8.0, 3);
        let tx = tx_slot(256);
        let snrs: Vec<f64> = (0..200)
            .map(|i| u.receive(&tx, i as f64 * 0.05).true_snr_db)
            .collect();
        let min = snrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = snrs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 3.0, "fading varies SNR ({} dB)", max - min);
    }

    #[test]
    fn injected_penalty_hits_exactly_one_slot() {
        let mut u = VirtualUsrp::new(20.0, 0.0, 5);
        let tx = tx_slot(512);
        u.inject_snr_penalty_db(12.0);
        let hit = u.receive(&tx, 0.0);
        let clean = u.receive(&tx, 0.0005);
        assert_eq!(hit.true_snr_db, 8.0, "penalty applied");
        assert_eq!(clean.true_snr_db, 20.0, "penalty consumed");
    }

    #[test]
    fn stats_count_slots_samples_and_injections() {
        let mut u = VirtualUsrp::new(20.0, 0.0, 6);
        let tx = tx_slot(256);
        u.kick_agc_db(3.0);
        u.inject_snr_penalty_db(5.0);
        u.receive(&tx, 0.0);
        u.receive(&tx, 0.0005);
        let s = u.stats();
        assert_eq!(s.slots_received, 2);
        assert_eq!(s.samples_processed, 512);
        assert_eq!(s.agc_kicks, 1);
        assert_eq!(s.snr_penalties, 1);
    }

    #[test]
    fn silent_input_produces_noise_only() {
        let mut u = VirtualUsrp::new(20.0, 0.0, 4);
        let rx = u.receive(&vec![Cf32::ZERO; 512], 0.0);
        assert!(mean_power(&rx.samples) > 0.0, "noise floor present");
    }
}
