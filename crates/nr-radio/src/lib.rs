//! # nr-radio — the virtual RF front end
//!
//! Substitute for the paper's USRP (X310 / CBX-120 / TwinRX): models the
//! receive path between the gNB's transmit waveform and NR-Scope's signal
//! processing — path loss from sniffer placement, additive noise, automatic
//! gain control, and the fractional resampler the paper needs for TwinRX
//! daughterboards (§4 footnote 5).

pub mod agc;
pub mod clock;
pub mod impairment;
pub mod resampler;
pub mod usrp;

pub use agc::Agc;
pub use clock::{ClockModel, ClockSlotState};
pub use impairment::{Burst, ImpairmentSchedule, SlotImpairment};
pub use resampler::Resampler;
pub use usrp::{RadioStats, RxSlot, VirtualUsrp};
