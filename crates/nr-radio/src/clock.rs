//! Deterministic sniffer-oscillator model: drift, CFO, steps, and gaps.
//!
//! The paper's deployment tracks a commercial gNB from a USRP whose
//! reference oscillator is *not* the gNB's — the TwinRX stream has to be
//! resampled so "the FFT bins fit onto the subcarriers" (§4), and the fit
//! decays continuously as the clocks wander apart. A [`ClockModel`] scripts
//! that disagreement against the slot counter: a static ppm offset, linear
//! ageing drift, a temperature-style random walk, step discontinuities
//! (reference switch / PLL re-lock), carrier-frequency offset coupled to
//! the *same* oscillator (one crystal feeds both the sample clock and the
//! LO), and USRP-overrun sample gaps.
//!
//! Like [`crate::ImpairmentSchedule`], every queryable quantity is derived
//! by hashing `(seed, epoch/slot, salt)` rather than walking an RNG, so
//! the state at slot *n* never depends on query order — checkpoint/resume
//! replays bit-identically. The integrals that *are* cumulative (random-
//! walk timing, overrun gaps) advance through an internal cursor that
//! recomputes from slot 0 on any backward query, keeping results pure.

/// Slots per random-walk epoch: the walk rate changes this often. 64 slots
/// = 32 ms at µ=1, a plausible thermal time constant scale.
const WALK_EPOCH_SLOTS: u64 = 64;

/// The ground-truth clock state for one slot, as the impairment layer
/// applies it to the air the sniffer receives.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClockSlotState {
    /// Instantaneous fractional frequency error of the sniffer's sample
    /// clock, in parts-per-million (positive = sniffer clock fast).
    pub ppm: f64,
    /// Carrier-frequency offset (Hz) coupled to the same oscillator:
    /// `ppm × 1e-6 × carrier_hz`.
    pub cfo_hz: f64,
    /// Accumulated timing offset of the sniffer's sample grid relative to
    /// the gNB's, in microseconds (the integral of `ppm` over time, plus
    /// steps and overrun gaps).
    pub timing_offset_us: f64,
    /// A USRP overrun swallowed this many microseconds of samples at the
    /// head of this slot (0 = clean). Also folded into
    /// `timing_offset_us` from this slot on.
    pub gap_us: f64,
    /// A step discontinuity of this size (µs) hit at this slot (reference
    /// switch, PLL re-lock). Already included in `timing_offset_us`.
    pub step_us: f64,
}

impl ClockSlotState {
    /// True when an overrun gap opens at this slot.
    pub fn is_overrun(&self) -> bool {
        self.gap_us != 0.0
    }
}

/// Cursor caching the cumulative integrals up to (excluding) `slot`.
#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    /// Next slot the cursor will integrate.
    slot: u64,
    /// Random-walk ppm value in effect at `slot`.
    walk_ppm: f64,
    /// Integral of the walk (ppm·s ≡ µs) over slots `< slot`.
    walk_integral_us: f64,
    /// Sum of overrun gaps (µs) at slots `< slot`.
    gap_cum_us: f64,
}

/// A seeded, fully deterministic model of the sniffer's oscillator.
#[derive(Debug, Clone)]
pub struct ClockModel {
    seed: u64,
    carrier_hz: f64,
    slot_s: f64,
    static_ppm: f64,
    drift_ppm_per_s: f64,
    walk_sigma_ppm: f64,
    steps: Vec<(u64, f64)>,
    gaps: Vec<(u64, f64)>,
    gap_prob: f64,
    gap_max_us: f64,
    cursor: Cursor,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ClockModel {
    /// A perfect clock (every slot clean) at the given carrier and slot
    /// duration; builders add error terms. n41 at µ=1 would be
    /// `ClockModel::new(seed, 2_524.95e6, 5e-4)`.
    pub fn new(seed: u64, carrier_hz: f64, slot_s: f64) -> ClockModel {
        assert!(carrier_hz > 0.0 && slot_s > 0.0);
        ClockModel {
            seed,
            carrier_hz,
            slot_s,
            static_ppm: 0.0,
            drift_ppm_per_s: 0.0,
            walk_sigma_ppm: 0.0,
            steps: Vec::new(),
            gaps: Vec::new(),
            gap_prob: 0.0,
            gap_max_us: 0.0,
            cursor: Cursor::default(),
        }
    }

    /// Constant fractional frequency offset (crystal tolerance).
    pub fn with_static_ppm(mut self, ppm: f64) -> Self {
        self.static_ppm = ppm;
        self
    }

    /// Linear ageing drift: ppm changes by this much per second.
    pub fn with_drift_ppm_per_s(mut self, ppm_per_s: f64) -> Self {
        self.drift_ppm_per_s = ppm_per_s;
        self
    }

    /// Temperature-style random walk: per-epoch ppm increments with this
    /// standard deviation per √second of walk intensity.
    pub fn with_random_walk(mut self, sigma_ppm_per_sqrt_s: f64) -> Self {
        self.walk_sigma_ppm = sigma_ppm_per_sqrt_s.max(0.0);
        self
    }

    /// A timing step of `us` microseconds at `slot` (reference switch,
    /// PLL re-lock). Positive = sniffer grid jumps late.
    pub fn with_step(mut self, slot: u64, us: f64) -> Self {
        self.steps.push((slot, us));
        self
    }

    /// A scheduled USRP-overrun gap of `us` microseconds at `slot`.
    pub fn with_gap(mut self, slot: u64, us: f64) -> Self {
        self.gaps.push((slot, us));
        self
    }

    /// Open an overrun gap at each slot independently with probability
    /// `p`; gap sizes draw uniformly from `(0, max_us]`.
    pub fn with_gap_prob(mut self, p: f64, max_us: f64) -> Self {
        self.gap_prob = p.clamp(0.0, 1.0);
        self.gap_max_us = max_us.max(0.0);
        self
    }

    /// Carrier frequency the CFO couples to.
    pub fn carrier_hz(&self) -> f64 {
        self.carrier_hz
    }

    /// Uniform draw in `[0, 1)` keyed by `(seed, n, salt)`.
    fn unit(&self, n: u64, salt: u64) -> f64 {
        let h = splitmix64(
            self.seed
                ^ n.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ salt.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Approximately standard-normal draw (Irwin–Hall of four uniforms)
    /// keyed by `(seed, n, salt)`.
    fn gauss(&self, n: u64, salt: u64) -> f64 {
        let s: f64 = (0..4).map(|i| self.unit(n, salt ^ (0x51ED << i))).sum();
        (s - 2.0) * 1.732_050_8
    }

    /// Random-walk ppm increment applied entering epoch `e` (epoch 0 has
    /// no increment: the walk starts at zero).
    fn walk_increment(&self, e: u64) -> f64 {
        if self.walk_sigma_ppm == 0.0 || e == 0 {
            return 0.0;
        }
        let epoch_s = WALK_EPOCH_SLOTS as f64 * self.slot_s;
        self.gauss(e, 0xC10C) * self.walk_sigma_ppm * epoch_s.sqrt()
    }

    /// The overrun gap (µs) opening at `slot`, scheduled or probabilistic.
    fn gap_at(&self, slot: u64) -> f64 {
        let scheduled: f64 = self
            .gaps
            .iter()
            .filter(|(s, _)| *s == slot)
            .map(|(_, us)| *us)
            .sum();
        let drawn = if self.gap_prob > 0.0 && self.unit(slot, 0x6A9) < self.gap_prob {
            self.gap_max_us * self.unit(slot, 0x6AA).max(f64::EPSILON)
        } else {
            0.0
        };
        scheduled + drawn
    }

    /// Advance (or rebuild) the cursor so it covers slots `< slot`.
    fn seek(&mut self, slot: u64) {
        if slot < self.cursor.slot {
            self.cursor = Cursor::default();
        }
        let mut c = self.cursor;
        while c.slot < slot {
            c.walk_integral_us += c.walk_ppm * self.slot_s;
            c.gap_cum_us += self.gap_at(c.slot);
            c.slot += 1;
            if c.slot.is_multiple_of(WALK_EPOCH_SLOTS) {
                c.walk_ppm += self.walk_increment(c.slot / WALK_EPOCH_SLOTS);
            }
        }
        self.cursor = c;
    }

    /// Ground-truth clock state at `slot`. Pure in its results: querying
    /// slots in any order returns identical values (backward queries
    /// rebuild the cumulative terms from slot 0).
    pub fn state_at(&mut self, slot: u64) -> ClockSlotState {
        self.seek(slot);
        let t = slot as f64 * self.slot_s;
        let ppm = self.static_ppm + self.drift_ppm_per_s * t + self.cursor.walk_ppm;
        let step_cum: f64 = self
            .steps
            .iter()
            .filter(|(s, _)| *s <= slot)
            .map(|(_, us)| *us)
            .sum();
        let step_us: f64 = self
            .steps
            .iter()
            .filter(|(s, _)| *s == slot)
            .map(|(_, us)| *us)
            .sum();
        let gap_us = self.gap_at(slot);
        // ppm·s ≡ µs: closed forms for the deterministic terms, the
        // cursor's integral for the walk, cumulative steps and gaps (a
        // gap swallows samples, so it shifts all later timing by itself —
        // including this slot's own head).
        let timing_offset_us = self.static_ppm * t
            + 0.5 * self.drift_ppm_per_s * t * t
            + self.cursor.walk_integral_us
            + step_cum
            + self.cursor.gap_cum_us
            + gap_us;
        ClockSlotState {
            ppm,
            cfo_hz: ppm * 1e-6 * self.carrier_hz,
            timing_offset_us,
            gap_us,
            step_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> ClockModel {
        ClockModel::new(seed, 2_524.95e6, 5e-4)
    }

    #[test]
    fn perfect_clock_is_all_zero() {
        let mut c = model(1);
        for s in [0, 1, 100, 20_480, 100_000] {
            assert_eq!(c.state_at(s), ClockSlotState::default(), "slot {s}");
        }
    }

    #[test]
    fn static_ppm_ramps_timing_linearly_and_couples_cfo() {
        let mut c = model(2).with_static_ppm(10.0);
        let s = c.state_at(2000); // 1 s at µ=1
        assert!((s.ppm - 10.0).abs() < 1e-12);
        // 10 ppm for 1 s = 10 µs of accumulated timing error.
        assert!(
            (s.timing_offset_us - 10.0).abs() < 1e-9,
            "{}",
            s.timing_offset_us
        );
        // CFO = ppm·1e-6·carrier: 10 ppm at n41 ≈ 25.25 kHz.
        assert!((s.cfo_hz - 25_249.5).abs() < 1.0, "{}", s.cfo_hz);
    }

    #[test]
    fn linear_drift_integrates_quadratically() {
        let mut c = model(3).with_drift_ppm_per_s(1.0);
        let at_1s = c.state_at(2000).timing_offset_us;
        let at_2s = c.state_at(4000).timing_offset_us;
        assert!((at_1s - 0.5).abs() < 1e-9);
        assert!((at_2s - 2.0).abs() < 1e-9, "quadratic: {at_2s}");
    }

    #[test]
    fn queries_are_order_independent() {
        let mut fwd = model(7).with_random_walk(0.5).with_gap_prob(0.01, 20.0);
        let mut bwd = fwd.clone();
        let forward: Vec<_> = (0..2000).map(|s| fwd.state_at(s)).collect();
        let backward: Vec<_> = (0..2000).rev().map(|s| bwd.state_at(s)).collect();
        for (s, v) in forward.iter().enumerate() {
            assert_eq!(*v, backward[1999 - s], "slot {s}");
        }
        // And a cold random-access query agrees too.
        let mut cold = model(7).with_random_walk(0.5).with_gap_prob(0.01, 20.0);
        assert_eq!(cold.state_at(1234), forward[1234]);
    }

    #[test]
    fn steps_are_discontinuous_and_permanent() {
        let mut c = model(4).with_step(500, 2.0);
        assert_eq!(c.state_at(499).timing_offset_us, 0.0);
        let at = c.state_at(500);
        assert_eq!(at.step_us, 2.0);
        assert_eq!(at.timing_offset_us, 2.0);
        let later = c.state_at(5000);
        assert_eq!(later.step_us, 0.0);
        assert_eq!(later.timing_offset_us, 2.0);
    }

    #[test]
    fn gaps_accumulate_into_timing() {
        let mut c = model(5).with_gap(100, 30.0).with_gap(200, 12.5);
        assert!(c.state_at(100).is_overrun());
        assert_eq!(c.state_at(100).gap_us, 30.0);
        assert_eq!(c.state_at(150).timing_offset_us, 30.0);
        assert_eq!(c.state_at(250).timing_offset_us, 42.5);
    }

    #[test]
    fn gap_probability_is_roughly_honoured() {
        let mut c = model(6).with_gap_prob(0.05, 10.0);
        let hits = (0..20_000).filter(|s| c.state_at(*s).is_overrun()).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "gap rate {rate}");
    }

    #[test]
    fn random_walk_wanders_but_reproduces() {
        let mut a = model(9).with_random_walk(2.0);
        let mut b = model(9).with_random_walk(2.0);
        let va = a.state_at(50_000);
        let vb = b.state_at(50_000);
        assert_eq!(va, vb, "same seed, same walk");
        // With a different seed the walk differs.
        let mut c = model(10).with_random_walk(2.0);
        assert_ne!(c.state_at(50_000).ppm, va.ppm);
        // The walk actually moves.
        assert!(va.ppm != 0.0);
    }
}
