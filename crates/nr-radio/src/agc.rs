//! Automatic gain control: normalises received slot power toward a target,
//! with a bounded per-slot gain slew like a hardware AGC loop (paper §4:
//! "use automatic gain control (AGC) for better signal strength").

use nr_phy::complex::{mean_power, Cf32};

/// A simple decibel-domain AGC loop.
#[derive(Debug, Clone)]
pub struct Agc {
    /// Target mean sample power.
    target_power: f32,
    /// Current linear gain.
    gain: f32,
    /// Maximum gain change per adjustment, in dB.
    max_step_db: f32,
}

impl Agc {
    /// AGC aiming at `target_power` mean power per complex sample.
    pub fn new(target_power: f32) -> Agc {
        Agc {
            target_power,
            gain: 1.0,
            max_step_db: 6.0,
        }
    }

    /// Current gain (linear).
    pub fn gain(&self) -> f32 {
        self.gain
    }

    /// Transient gain mis-step of `db` (fault injection): the loop's slew
    /// limit then walks the gain back at `max_step_db` per slot, so a big
    /// kick costs several slots of saturated or buried samples — the same
    /// settling behaviour a hardware AGC shows after a power transient.
    pub fn kick_db(&mut self, db: f32) {
        self.gain *= 10f32.powf(db / 20.0);
    }

    /// Process one slot in place: measure, adjust gain (slew-limited),
    /// apply.
    pub fn process(&mut self, samples: &mut [Cf32]) {
        let p = mean_power(samples);
        if p > 0.0 {
            let desired = (self.target_power / p).sqrt();
            let step_db = 20.0 * (desired / self.gain).log10();
            let clamped = step_db.clamp(-self.max_step_db, self.max_step_db);
            self.gain *= 10f32.powf(clamped / 20.0);
        }
        for s in samples.iter_mut() {
            *s = s.scale(self.gain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, amp: f32) -> Vec<Cf32> {
        (0..n)
            .map(|i| Cf32::from_polar(amp, i as f32 * 0.1))
            .collect()
    }

    #[test]
    fn converges_to_target_power() {
        let mut agc = Agc::new(1.0);
        let mut samples = tone(1024, 0.01);
        for _ in 0..10 {
            let mut s = tone(1024, 0.01);
            agc.process(&mut s);
            samples = s;
        }
        let p = mean_power(&samples);
        assert!((p - 1.0).abs() < 0.05, "converged power {p}");
    }

    #[test]
    fn gain_step_is_slew_limited() {
        let mut agc = Agc::new(1.0);
        let mut s = tone(256, 1e-4); // needs +80 dB, only gets +6 per slot
        agc.process(&mut s);
        let g_db = 20.0 * agc.gain().log10();
        assert!(g_db <= 6.0 + 1e-3, "gain jumped {g_db} dB");
    }

    #[test]
    fn silence_does_not_blow_up_gain() {
        let mut agc = Agc::new(1.0);
        let mut s = vec![Cf32::ZERO; 128];
        agc.process(&mut s);
        assert_eq!(agc.gain(), 1.0);
        assert!(s.iter().all(|v| *v == Cf32::ZERO));
    }

    #[test]
    fn kick_recovers_within_slew_limited_slots() {
        let mut agc = Agc::new(1.0);
        // Converge first.
        for _ in 0..5 {
            let mut s = tone(256, 1.0);
            agc.process(&mut s);
        }
        agc.kick_db(18.0);
        // 18 dB at 6 dB/slot: back near unity gain within ~3 slots.
        for _ in 0..4 {
            let mut s = tone(256, 1.0);
            agc.process(&mut s);
        }
        let g_db = 20.0 * agc.gain().log10();
        assert!(g_db.abs() < 1.0, "gain settled to {g_db} dB");
    }

    #[test]
    fn attenuates_loud_signals() {
        let mut agc = Agc::new(1.0);
        for _ in 0..10 {
            let mut s = tone(256, 10.0);
            agc.process(&mut s);
        }
        assert!(agc.gain() < 1.0);
    }
}
