//! # nr-rrc — RRC message model and bit-level codec
//!
//! The Radio Resource Control messages NR-Scope decodes off the air
//! (paper §3.1): the **MIB** broadcast on the PBCH, **SIB1** carrying the
//! cell-common configuration (including everything needed to watch the
//! RACH), and the **RRC Setup** (MSG 4) carrying the UE-specific PDCCH and
//! PDSCH parameters that make per-UE DCI decoding possible.
//!
//! Real RRC is ASN.1 UPER; this crate defines an explicit UPER-like binary
//! codec over the same field inventory (fixed-width unsigned fields,
//! MSB-first, optional fields behind presence bits). Both the simulated gNB
//! and the telemetry decoder use this codec, so the bits on the "air" are
//! parsed, not assumed — message corruption is detectable end to end.
//!
//! Over-the-air payloads are untrusted, so production code here is
//! panic-audited: `unwrap`/`expect` are denied outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod mib;
pub mod rach;
pub mod rrc_setup;
pub mod sib1;

pub use mib::Mib;
pub use rach::RachConfigCommon;
pub use rrc_setup::RrcSetup;
pub use sib1::Sib1;

/// Errors the codec can produce while decoding.
///
/// Over-the-air payloads are untrusted input: every decoder enforces an
/// explicit length cap (the codec is fixed-width, so the cap is exact)
/// and per-field range checks, and reports failures through this type —
/// a hostile or corrupted broadcast can never panic the pipeline or
/// silently smuggle trailing bytes past the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bits mid-message.
    Truncated,
    /// A field held a value outside its legal range.
    InvalidField(&'static str),
    /// The payload exceeds the message's fixed encoded size — trailing
    /// bits are never silently ignored.
    Oversized {
        /// The message's exact encoded size in bits.
        max_bits: usize,
        /// Bits actually supplied.
        got_bits: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::InvalidField(name) => write!(f, "invalid field: {name}"),
            DecodeError::Oversized { max_bits, got_bits } => {
                write!(f, "payload oversized: {got_bits} bits, max {max_bits}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
