//! # nr-rrc — RRC message model and bit-level codec
//!
//! The Radio Resource Control messages NR-Scope decodes off the air
//! (paper §3.1): the **MIB** broadcast on the PBCH, **SIB1** carrying the
//! cell-common configuration (including everything needed to watch the
//! RACH), and the **RRC Setup** (MSG 4) carrying the UE-specific PDCCH and
//! PDSCH parameters that make per-UE DCI decoding possible.
//!
//! Real RRC is ASN.1 UPER; this crate defines an explicit UPER-like binary
//! codec over the same field inventory (fixed-width unsigned fields,
//! MSB-first, optional fields behind presence bits). Both the simulated gNB
//! and the telemetry decoder use this codec, so the bits on the "air" are
//! parsed, not assumed — message corruption is detectable end to end.

pub mod mib;
pub mod rach;
pub mod rrc_setup;
pub mod sib1;

pub use mib::Mib;
pub use rach::RachConfigCommon;
pub use rrc_setup::RrcSetup;
pub use sib1::Sib1;

/// Errors the codec can produce while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bits mid-message.
    Truncated,
    /// A field held a value outside its legal range.
    InvalidField(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::InvalidField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for DecodeError {}
