//! `RACH-ConfigCommon` — the SIB1 subtree telling UEs (and NR-Scope) where
//! the random-access procedure happens (paper §3.1.1: "the parameter and
//! time-frequency position for MSG 1 in RACH").

use crate::DecodeError;
use nr_phy::bits::{BitReader, BitWriter};
use serde::{Deserialize, Serialize};

/// Common RACH configuration broadcast in SIB1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RachConfigCommon {
    /// PRACH configuration index: selects which slots carry PRACH occasions.
    /// Occasions repeat every `prach_period_slots`, at slot offset
    /// `prach_slot_offset`.
    pub prach_period_slots: u8,
    /// Slot offset of the PRACH occasion within its period.
    pub prach_slot_offset: u8,
    /// First PRB of the PRACH occasion.
    pub msg1_frequency_start: u8,
    /// Number of preambles the cell accepts (≤64).
    pub total_preambles: u8,
    /// RA response window in slots: MSG 2 must arrive within this window.
    pub ra_response_window: u8,
    /// Max preamble retransmissions before the UE gives up.
    pub preamble_trans_max: u8,
}

impl RachConfigCommon {
    /// Encoded size in bits.
    pub const BITS: usize = 8 + 8 + 8 + 7 + 5 + 4;

    /// A typical small-cell configuration: PRACH every 10 slots.
    pub fn typical() -> RachConfigCommon {
        RachConfigCommon {
            prach_period_slots: 10,
            prach_slot_offset: 9,
            msg1_frequency_start: 0,
            total_preambles: 64,
            ra_response_window: 10,
            preamble_trans_max: 7,
        }
    }

    /// Encode to bits.
    pub fn encode_to(&self, w: &mut BitWriter) {
        w.put(self.prach_period_slots as u64, 8);
        w.put(self.prach_slot_offset as u64, 8);
        w.put(self.msg1_frequency_start as u64, 8);
        w.put(self.total_preambles as u64, 7);
        w.put(self.ra_response_window as u64, 5);
        w.put(self.preamble_trans_max as u64, 4);
    }

    /// Decode from a reader.
    pub fn decode_from(r: &mut BitReader<'_>) -> Result<RachConfigCommon, DecodeError> {
        let prach_period_slots = r.get(8).ok_or(DecodeError::Truncated)? as u8;
        if prach_period_slots == 0 {
            return Err(DecodeError::InvalidField("prach_period_slots"));
        }
        let prach_slot_offset = r.get(8).ok_or(DecodeError::Truncated)? as u8;
        let msg1_frequency_start = r.get(8).ok_or(DecodeError::Truncated)? as u8;
        let total_preambles = r.get(7).ok_or(DecodeError::Truncated)? as u8;
        if total_preambles == 0 || total_preambles > 64 {
            return Err(DecodeError::InvalidField("total_preambles"));
        }
        let ra_response_window = r.get(5).ok_or(DecodeError::Truncated)? as u8;
        let preamble_trans_max = r.get(4).ok_or(DecodeError::Truncated)? as u8;
        Ok(RachConfigCommon {
            prach_period_slots,
            prach_slot_offset,
            msg1_frequency_start,
            total_preambles,
            ra_response_window,
            preamble_trans_max,
        })
    }

    /// Whether `slot_in_frame`-absolute slot `abs_slot` is a PRACH occasion.
    pub fn is_prach_occasion(&self, abs_slot: u64) -> bool {
        abs_slot % self.prach_period_slots as u64 == self.prach_slot_offset as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cfg = RachConfigCommon::typical();
        let mut w = BitWriter::new();
        cfg.encode_to(&mut w);
        let bits = w.into_bits();
        assert_eq!(bits.len(), RachConfigCommon::BITS);
        let mut r = BitReader::new(&bits);
        assert_eq!(RachConfigCommon::decode_from(&mut r), Ok(cfg));
    }

    #[test]
    fn prach_occasions_follow_period() {
        let cfg = RachConfigCommon::typical();
        assert!(cfg.is_prach_occasion(9));
        assert!(cfg.is_prach_occasion(19));
        assert!(!cfg.is_prach_occasion(10));
        // One occasion per period.
        let count = (0..100).filter(|&s| cfg.is_prach_occasion(s)).count();
        assert_eq!(count, 10);
    }

    #[test]
    fn zero_period_rejected() {
        let mut w = BitWriter::new();
        let mut cfg = RachConfigCommon::typical();
        cfg.prach_period_slots = 0;
        cfg.encode_to(&mut w);
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        assert_eq!(
            RachConfigCommon::decode_from(&mut r),
            Err(DecodeError::InvalidField("prach_period_slots"))
        );
    }

    #[test]
    fn preamble_count_bounds() {
        let mut cfg = RachConfigCommon::typical();
        cfg.total_preambles = 65;
        let mut w = BitWriter::new();
        cfg.encode_to(&mut w);
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        assert!(RachConfigCommon::decode_from(&mut r).is_err());
    }
}
