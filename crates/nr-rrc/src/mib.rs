//! The Master Information Block (38.331 `MIB`), broadcast on the PBCH.
//!
//! First thing NR-Scope decodes (paper §3.1.1): the system frame number and
//! the pointer to CORESET 0, where SIB1 scheduling appears.

use crate::DecodeError;
use nr_phy::bits::{BitReader, BitWriter};
use nr_phy::Numerology;
use serde::{Deserialize, Serialize};

/// Master Information Block contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mib {
    /// System frame number (the full 10 bits; in real PBCH 6 MIB bits + 4
    /// PBCH payload bits — carried together here).
    pub sfn: u16,
    /// Common subcarrier spacing of SIB1/Msg2/4 transmissions.
    pub scs_common: Numerology,
    /// CORESET 0 table index: first PRB of CORESET 0.
    pub coreset0_prb_start: u8,
    /// CORESET 0 width in PRBs (24/48/96 in the spec's table).
    pub coreset0_n_prb: u8,
    /// CORESET 0 duration in symbols (1–3).
    pub coreset0_symbols: u8,
    /// `ssb-SubcarrierOffset` (k_SSB), kept for completeness.
    pub ssb_subcarrier_offset: u8,
    /// DMRS type A position (2 or 3).
    pub dmrs_type_a_position: u8,
    /// Whether the cell bars access (telemetry still works on barred cells).
    pub cell_barred: bool,
}

impl Mib {
    /// Encoded size in bits.
    pub const BITS: usize = 10 + 2 + 8 + 7 + 2 + 5 + 1 + 1;

    /// Encode to the PBCH payload bit string.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put(self.sfn as u64, 10);
        w.put(self.scs_common.mu() as u64, 2);
        w.put(self.coreset0_prb_start as u64, 8);
        w.put(self.coreset0_n_prb as u64, 7);
        w.put(self.coreset0_symbols as u64 - 1, 2);
        w.put(self.ssb_subcarrier_offset as u64, 5);
        w.put(self.dmrs_type_a_position as u64 - 2, 1);
        w.put_bool(self.cell_barred);
        debug_assert_eq!(w.len(), Self::BITS);
        w.into_bits()
    }

    /// Decode from a PBCH payload bit string, enforcing the exact
    /// fixed-width length (length cap: oversized payloads are rejected,
    /// not silently truncated).
    pub fn decode(bits: &[u8]) -> Result<Mib, DecodeError> {
        if bits.len() < Self::BITS {
            return Err(DecodeError::Truncated);
        }
        if bits.len() > Self::BITS {
            return Err(DecodeError::Oversized {
                max_bits: Self::BITS,
                got_bits: bits.len(),
            });
        }
        let mut r = BitReader::new(bits);
        let sfn = r.get(10).ok_or(DecodeError::Truncated)? as u16;
        let mu = r.get(2).ok_or(DecodeError::Truncated)? as u32;
        let scs_common = Numerology::from_mu(mu).ok_or(DecodeError::InvalidField("scs_common"))?;
        let coreset0_prb_start = r.get(8).ok_or(DecodeError::Truncated)? as u8;
        let coreset0_n_prb = r.get(7).ok_or(DecodeError::Truncated)? as u8;
        if coreset0_n_prb == 0 {
            return Err(DecodeError::InvalidField("coreset0_n_prb"));
        }
        let coreset0_symbols = r.get(2).ok_or(DecodeError::Truncated)? as u8 + 1;
        let ssb_subcarrier_offset = r.get(5).ok_or(DecodeError::Truncated)? as u8;
        let dmrs_type_a_position = r.get(1).ok_or(DecodeError::Truncated)? as u8 + 2;
        let cell_barred = r.get_bool().ok_or(DecodeError::Truncated)?;
        Ok(Mib {
            sfn,
            scs_common,
            coreset0_prb_start,
            coreset0_n_prb,
            coreset0_symbols,
            ssb_subcarrier_offset,
            dmrs_type_a_position,
            cell_barred,
        })
    }

    /// The CORESET 0 this MIB points at, as a PHY-layer object.
    pub fn coreset0(&self) -> nr_phy::pdcch::Coreset {
        nr_phy::pdcch::Coreset {
            prb_start: self.coreset0_prb_start as usize,
            n_prb: self.coreset0_n_prb as usize,
            symbol_start: 0,
            n_symbols: self.coreset0_symbols as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mib {
        Mib {
            sfn: 517,
            scs_common: Numerology::Mu1,
            coreset0_prb_start: 0,
            coreset0_n_prb: 48,
            coreset0_symbols: 1,
            ssb_subcarrier_offset: 6,
            dmrs_type_a_position: 2,
            cell_barred: false,
        }
    }

    #[test]
    fn round_trip() {
        let mib = sample();
        let bits = mib.encode();
        assert_eq!(bits.len(), Mib::BITS);
        assert_eq!(Mib::decode(&bits), Ok(mib));
    }

    #[test]
    fn truncated_fails() {
        let bits = sample().encode();
        assert_eq!(Mib::decode(&bits[..10]), Err(DecodeError::Truncated));
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut bits = sample().encode();
        bits.push(1);
        assert!(matches!(
            Mib::decode(&bits),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn zero_width_coreset_rejected() {
        let mut mib = sample();
        mib.coreset0_n_prb = 0;
        let bits = mib.encode();
        assert_eq!(
            Mib::decode(&bits),
            Err(DecodeError::InvalidField("coreset0_n_prb"))
        );
    }

    #[test]
    fn coreset0_object_matches_fields() {
        let c = sample().coreset0();
        assert_eq!(c.n_prb, 48);
        assert_eq!(c.n_cces(), 8);
    }

    #[test]
    fn sfn_wraps_within_ten_bits() {
        let mut mib = sample();
        mib.sfn = 1023;
        let bits = mib.encode();
        assert_eq!(Mib::decode(&bits).unwrap().sfn, 1023);
    }
}
