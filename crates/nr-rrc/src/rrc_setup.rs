//! The RRC Setup message (MSG 4 payload) — "most of the UE-specific
//! information required for mobile communication and for telemetry"
//! (paper §3.1.2): the UE's PDCCH configuration (CORESET position, DCI
//! format, aggregation level), plus the PDSCH parameters the TBS
//! computation needs (`maxMIMO-Layers`, MCS table, DMRS overhead,
//! `xOverhead`).

use crate::DecodeError;
use nr_phy::bits::{BitReader, BitWriter};
use nr_phy::dci::DciFormat;
use nr_phy::mcs::McsTable;
use nr_phy::pdcch::{AggregationLevel, Coreset};
use serde::{Deserialize, Serialize};

/// UE-specific configuration delivered in the RRC Setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrcSetup {
    /// UE-specific CORESET: first PRB.
    pub coreset_prb_start: u8,
    /// UE-specific CORESET width in PRBs.
    pub coreset_n_prb: u8,
    /// CORESET duration in symbols.
    pub coreset_symbols: u8,
    /// DCI format the gNB will use for DL scheduling of this UE.
    pub dl_dci_format: DciFormat,
    /// Aggregation level for this UE's candidates.
    pub aggregation_level: AggregationLevel,
    /// Number of PDCCH candidates monitored per level.
    pub candidates_per_level: u8,
    /// `pdsch-ServingCellConfig → maxMIMO-Layers` (the `v` of Appendix A).
    pub max_mimo_layers: u8,
    /// MCS table for the PDSCH.
    pub mcs_table: McsTable,
    /// DMRS REs per PRB (`N^PRB_DMRS`).
    pub dmrs_per_prb: u8,
    /// `xOverhead` (`N^PRB_oh`): 0, 6, 12 or 18.
    pub x_overhead: u8,
    /// Bandwidth part the UE is moved to (paper: NR-Scope follows the UE's
    /// BWP for DCI reception).
    pub bwp_id: u8,
}

impl RrcSetup {
    /// Encoded size in bits.
    pub const BITS: usize = 8 + 8 + 2 + 1 + 3 + 3 + 3 + 1 + 4 + 2 + 2;

    /// Encode to bits.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put(self.coreset_prb_start as u64, 8);
        w.put(self.coreset_n_prb as u64, 8);
        w.put(self.coreset_symbols as u64 - 1, 2);
        w.put_bool(matches!(self.dl_dci_format, DciFormat::Dl1_1));
        let level_code = match self.aggregation_level {
            AggregationLevel::L1 => 0u64,
            AggregationLevel::L2 => 1,
            AggregationLevel::L4 => 2,
            AggregationLevel::L8 => 3,
            AggregationLevel::L16 => 4,
        };
        w.put(level_code, 3);
        w.put(self.candidates_per_level as u64, 3);
        w.put(self.max_mimo_layers as u64, 3);
        w.put_bool(matches!(self.mcs_table, McsTable::Qam256));
        w.put(self.dmrs_per_prb as u64, 4);
        w.put((self.x_overhead / 6) as u64, 2);
        w.put(self.bwp_id as u64, 2);
        debug_assert_eq!(w.len(), Self::BITS);
        w.into_bits()
    }

    /// Decode from bits, rejecting oversized payloads outright (length
    /// cap — trailing bits would otherwise be silently ignored).
    pub fn decode(bits: &[u8]) -> Result<RrcSetup, DecodeError> {
        if bits.len() > Self::BITS {
            return Err(DecodeError::Oversized {
                max_bits: Self::BITS,
                got_bits: bits.len(),
            });
        }
        let mut r = BitReader::new(bits);
        let coreset_prb_start = r.get(8).ok_or(DecodeError::Truncated)? as u8;
        let coreset_n_prb = r.get(8).ok_or(DecodeError::Truncated)? as u8;
        if coreset_n_prb == 0 {
            return Err(DecodeError::InvalidField("coreset_n_prb"));
        }
        let coreset_symbols = r.get(2).ok_or(DecodeError::Truncated)? as u8 + 1;
        let dl_dci_format = if r.get_bool().ok_or(DecodeError::Truncated)? {
            DciFormat::Dl1_1
        } else {
            DciFormat::Ul0_1
        };
        let aggregation_level = match r.get(3).ok_or(DecodeError::Truncated)? {
            0 => AggregationLevel::L1,
            1 => AggregationLevel::L2,
            2 => AggregationLevel::L4,
            3 => AggregationLevel::L8,
            4 => AggregationLevel::L16,
            _ => return Err(DecodeError::InvalidField("aggregation_level")),
        };
        let candidates_per_level = r.get(3).ok_or(DecodeError::Truncated)? as u8;
        if candidates_per_level == 0 {
            return Err(DecodeError::InvalidField("candidates_per_level"));
        }
        let max_mimo_layers = r.get(3).ok_or(DecodeError::Truncated)? as u8;
        if max_mimo_layers == 0 || max_mimo_layers > 4 {
            return Err(DecodeError::InvalidField("max_mimo_layers"));
        }
        let mcs_table = if r.get_bool().ok_or(DecodeError::Truncated)? {
            McsTable::Qam256
        } else {
            McsTable::Qam64
        };
        let dmrs_per_prb = r.get(4).ok_or(DecodeError::Truncated)? as u8;
        let x_overhead = r.get(2).ok_or(DecodeError::Truncated)? as u8 * 6;
        let bwp_id = r.get(2).ok_or(DecodeError::Truncated)? as u8;
        Ok(RrcSetup {
            coreset_prb_start,
            coreset_n_prb,
            coreset_symbols,
            dl_dci_format,
            aggregation_level,
            candidates_per_level,
            max_mimo_layers,
            mcs_table,
            dmrs_per_prb,
            x_overhead,
            bwp_id,
        })
    }

    /// The UE-specific CORESET as a PHY object.
    pub fn coreset(&self) -> Coreset {
        Coreset {
            prb_start: self.coreset_prb_start as usize,
            n_prb: self.coreset_n_prb as usize,
            symbol_start: 0,
            n_symbols: self.coreset_symbols as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RrcSetup {
        RrcSetup {
            coreset_prb_start: 0,
            coreset_n_prb: 48,
            coreset_symbols: 1,
            dl_dci_format: DciFormat::Dl1_1,
            aggregation_level: AggregationLevel::L2,
            candidates_per_level: 2,
            max_mimo_layers: 2,
            mcs_table: McsTable::Qam256,
            dmrs_per_prb: 12,
            x_overhead: 0,
            bwp_id: 0,
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        assert_eq!(RrcSetup::decode(&s.encode()), Ok(s));
    }

    #[test]
    fn all_aggregation_levels_round_trip() {
        for level in AggregationLevel::all() {
            let mut s = sample();
            s.aggregation_level = level;
            assert_eq!(
                RrcSetup::decode(&s.encode()).unwrap().aggregation_level,
                level
            );
        }
    }

    #[test]
    fn x_overhead_quantised_to_multiples_of_six() {
        for (set, expect) in [(0u8, 0u8), (6, 6), (12, 12), (18, 18)] {
            let mut s = sample();
            s.x_overhead = set;
            assert_eq!(RrcSetup::decode(&s.encode()).unwrap().x_overhead, expect);
        }
    }

    #[test]
    fn layer_bounds_enforced() {
        let mut s = sample();
        s.max_mimo_layers = 5;
        assert!(RrcSetup::decode(&s.encode()).is_err());
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut bits = sample().encode();
        bits.extend_from_slice(&[1, 0, 1]);
        assert!(matches!(
            RrcSetup::decode(&bits),
            Err(crate::DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bits = sample().encode();
        assert!(RrcSetup::decode(&bits[..20]).is_err());
    }

    #[test]
    fn identical_across_ues_supports_skip_optimisation() {
        // Paper §3.1.2: "the RRC Setup is identical among UEs, thus we can
        // skip decoding the PDSCH". Our message has no per-UE fields, so two
        // encodes are bit-identical — the property the optimisation rests on.
        assert_eq!(sample().encode(), sample().encode());
    }
}
