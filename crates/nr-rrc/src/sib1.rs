//! System Information Block 1 (38.331 `SIB1`): the cell-common
//! configuration NR-Scope acquires in step 1 of Fig 2.
//!
//! SIB1 "carries common information about the cell, including physical
//! channel configuration and all the information a UE may need for the
//! RACH processing" (paper §3.1.1). For the sniffer the key contents are
//! the carrier layout, the TDD pattern, the common PDCCH search-space
//! configuration and the RACH configuration — everything that lets it stop
//! blind-searching.

use crate::rach::RachConfigCommon;
use crate::DecodeError;
use nr_phy::bits::{BitReader, BitWriter};
use nr_phy::frame::TddPattern;
use nr_phy::Numerology;
use serde::{Deserialize, Serialize};

/// Duplexing arrangement broadcast in SIB1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Duplex {
    /// Frequency-division duplex (the paper's T-Mobile cells).
    Fdd,
    /// Time-division duplex with a `DDDDDDDSUU`-family pattern.
    Tdd,
}

/// SIB1 contents (the subset the telemetry pipeline consumes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sib1 {
    /// NR cell identity (36 bits in the spec; carried whole here).
    pub cell_id: u64,
    /// Carrier numerology.
    pub numerology: Numerology,
    /// Carrier width in PRBs.
    pub carrier_prbs: u16,
    /// Duplex mode.
    pub duplex: Duplex,
    /// TDD pattern (ignored for FDD: decoded as all-downlink).
    pub tdd: TddPattern,
    /// Initial-BWP id used for common signalling (paper: commercial cells
    /// use BWP 1, the private cells BWP 0).
    pub initial_bwp_id: u8,
    /// Common RACH configuration.
    pub rach: RachConfigCommon,
    /// SI scheduling period in frames (SIB1 repeats every N frames).
    pub si_period_frames: u8,
}

impl Sib1 {
    /// Encoded size in bits (the codec is fixed-width).
    pub const BITS: usize = 36 + 2 + 9 + 1 + 5 + 5 + 5 + 4 + 4 + 2 + RachConfigCommon::BITS + 6;

    /// Encode to the byte-carrying PDSCH payload bit string.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put(self.cell_id, 36);
        w.put(self.numerology.mu() as u64, 2);
        w.put(self.carrier_prbs as u64, 9);
        w.put_bool(matches!(self.duplex, Duplex::Tdd));
        w.put(self.tdd.period_slots as u64, 5);
        w.put(self.tdd.dl_slots as u64, 5);
        w.put(self.tdd.ul_slots as u64, 5);
        w.put(self.tdd.special_dl_symbols as u64, 4);
        w.put(self.tdd.special_ul_symbols as u64, 4);
        w.put(self.initial_bwp_id as u64, 2);
        self.rach.encode_to(&mut w);
        w.put(self.si_period_frames as u64, 6);
        w.into_bits()
    }

    /// Decode from bits, rejecting oversized payloads outright (length
    /// cap — trailing bits would otherwise be silently ignored).
    pub fn decode(bits: &[u8]) -> Result<Sib1, DecodeError> {
        if bits.len() > Self::BITS {
            return Err(DecodeError::Oversized {
                max_bits: Self::BITS,
                got_bits: bits.len(),
            });
        }
        let mut r = BitReader::new(bits);
        let cell_id = r.get(36).ok_or(DecodeError::Truncated)?;
        let mu = r.get(2).ok_or(DecodeError::Truncated)? as u32;
        let numerology = Numerology::from_mu(mu).ok_or(DecodeError::InvalidField("numerology"))?;
        let carrier_prbs = r.get(9).ok_or(DecodeError::Truncated)? as u16;
        if carrier_prbs == 0 || carrier_prbs > 275 {
            return Err(DecodeError::InvalidField("carrier_prbs"));
        }
        let is_tdd = r.get_bool().ok_or(DecodeError::Truncated)?;
        let period_slots = r.get(5).ok_or(DecodeError::Truncated)? as usize;
        let dl_slots = r.get(5).ok_or(DecodeError::Truncated)? as usize;
        let ul_slots = r.get(5).ok_or(DecodeError::Truncated)? as usize;
        let special_dl_symbols = r.get(4).ok_or(DecodeError::Truncated)? as usize;
        let special_ul_symbols = r.get(4).ok_or(DecodeError::Truncated)? as usize;
        if period_slots == 0 || dl_slots + ul_slots > period_slots {
            return Err(DecodeError::InvalidField("tdd"));
        }
        let tdd = TddPattern {
            period_slots,
            dl_slots,
            ul_slots,
            special_dl_symbols,
            special_ul_symbols,
        };
        let initial_bwp_id = r.get(2).ok_or(DecodeError::Truncated)? as u8;
        let rach = RachConfigCommon::decode_from(&mut r)?;
        let si_period_frames = r.get(6).ok_or(DecodeError::Truncated)? as u8;
        Ok(Sib1 {
            cell_id,
            numerology,
            carrier_prbs,
            duplex: if is_tdd { Duplex::Tdd } else { Duplex::Fdd },
            tdd,
            initial_bwp_id,
            rach,
            si_period_frames,
        })
    }

    /// Effective downlink pattern: FDD cells behave as all-downlink on the
    /// DL carrier NR-Scope listens to.
    pub fn effective_pattern(&self) -> TddPattern {
        match self.duplex {
            Duplex::Fdd => TddPattern::fdd(),
            Duplex::Tdd => self.tdd.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sib1 {
        Sib1 {
            cell_id: 0x1_9284_6ABC,
            numerology: Numerology::Mu1,
            carrier_prbs: 51,
            duplex: Duplex::Tdd,
            tdd: TddPattern::dddddddsuu(),
            initial_bwp_id: 0,
            rach: RachConfigCommon::typical(),
            si_period_frames: 16,
        }
    }

    #[test]
    fn round_trip() {
        let sib = sample();
        assert_eq!(Sib1::decode(&sib.encode()), Ok(sib));
    }

    #[test]
    fn fdd_round_trip_uses_fdd_pattern() {
        let mut sib = sample();
        sib.duplex = Duplex::Fdd;
        sib.numerology = Numerology::Mu0;
        sib.carrier_prbs = 52;
        let back = Sib1::decode(&sib.encode()).unwrap();
        assert_eq!(back.duplex, Duplex::Fdd);
        assert_eq!(back.effective_pattern(), TddPattern::fdd());
    }

    #[test]
    fn invalid_tdd_rejected() {
        let mut sib = sample();
        sib.tdd.dl_slots = 20;
        sib.tdd.period_slots = 10;
        assert_eq!(
            Sib1::decode(&sib.encode()),
            Err(DecodeError::InvalidField("tdd"))
        );
    }

    #[test]
    fn oversized_carrier_rejected() {
        let mut sib = sample();
        sib.carrier_prbs = 276;
        assert!(Sib1::decode(&sib.encode()).is_err());
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut bits = sample().encode();
        assert_eq!(bits.len(), Sib1::BITS, "encode matches the cap");
        bits.push(0);
        assert!(matches!(
            Sib1::decode(&bits),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bits = sample().encode();
        for cut in [0usize, 5, 36, 60] {
            assert!(Sib1::decode(&bits[..cut]).is_err());
        }
    }

    #[test]
    fn commercial_bwp1_round_trips() {
        // T-Mobile cells use BWP 1 (paper §5.1).
        let mut sib = sample();
        sib.initial_bwp_id = 1;
        assert_eq!(Sib1::decode(&sib.encode()).unwrap().initial_bwp_id, 1);
    }
}
