//! Demodulation reference signals (DMRS) for the PDCCH (38.211 §7.4.1.3).
//!
//! Every fourth subcarrier of a PDCCH REG (offsets 1, 5, 9) carries a known
//! QPSK pilot derived from the cell-scoped Gold sequence. NR-Scope's channel
//! estimator (reused conceptually from srsRAN in the paper's implementation,
//! reimplemented here) uses these pilots for least-squares channel estimates
//! before demodulating the DCI QPSK symbols.

use crate::complex::Cf32;
use crate::sequence::{pdcch_dmrs_cinit, GoldSequence};

/// Subcarrier offsets within a PRB that carry PDCCH DMRS.
pub const DMRS_OFFSETS: [usize; 3] = [1, 5, 9];
/// Number of DMRS REs per REG (per PRB per symbol).
pub const DMRS_PER_REG: usize = 3;
/// Number of data REs per REG after DMRS.
pub const DATA_PER_REG: usize = 9;

/// QPSK map of two scrambling bits onto a unit-power pilot:
/// `(1-2c(2i))/√2 + j(1-2c(2i+1))/√2`.
fn pilot(b0: u8, b1: u8) -> Cf32 {
    let k = std::f32::consts::FRAC_1_SQRT_2;
    Cf32::new(k * (1.0 - 2.0 * b0 as f32), k * (1.0 - 2.0 * b1 as f32))
}

/// Generate the PDCCH DMRS pilot for each DMRS RE of a span of PRBs in one
/// symbol.
///
/// `prb_start..prb_start+n_prb` is the span in *absolute* carrier PRBs; the
/// Gold sequence is indexed absolutely too (the spec indexes the sequence by
/// the RB position within the CORESET's reference grid), so a receiver that
/// knows the CORESET position generates identical pilots.
pub fn pdcch_dmrs(
    slot: usize,
    symbol: usize,
    n_id: u16,
    prb_start: usize,
    n_prb: usize,
) -> Vec<Cf32> {
    let mut g = GoldSequence::new(pdcch_dmrs_cinit(slot, symbol, n_id));
    // Each PRB consumes 3 pilots = 6 bits; skip to the span start.
    g.skip(prb_start * DMRS_PER_REG * 2);
    (0..n_prb * DMRS_PER_REG)
        .map(|_| {
            let b0 = g.next_bit();
            let b1 = g.next_bit();
            pilot(b0, b1)
        })
        .collect()
}

/// Least-squares channel estimate from received pilots: averages
/// `rx/pilot` over the span, returning a single complex gain (flat-fading
/// estimate over the CORESET span — adequate at PDCCH bandwidths).
pub fn ls_channel_estimate(rx_pilots: &[Cf32], ref_pilots: &[Cf32]) -> Cf32 {
    assert_eq!(rx_pilots.len(), ref_pilots.len());
    assert!(!rx_pilots.is_empty());
    let sum = rx_pilots
        .iter()
        .zip(ref_pilots)
        .fold(Cf32::ZERO, |acc, (r, p)| acc + *r * p.conj());
    // Pilots are unit power so |p|² = 1 and the LS estimate is the mean.
    sum / rx_pilots.len() as f32
}

/// Estimate the residual noise variance after equalisation: mean
/// `|rx - h·pilot|²`.
pub fn noise_estimate(rx_pilots: &[Cf32], ref_pilots: &[Cf32], h: Cf32) -> f32 {
    assert_eq!(rx_pilots.len(), ref_pilots.len());
    if rx_pilots.is_empty() {
        return 0.0;
    }
    rx_pilots
        .iter()
        .zip(ref_pilots)
        .map(|(r, p)| (*r - h * *p).norm_sqr())
        .sum::<f32>()
        / rx_pilots.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pilots_are_unit_power() {
        let p = pdcch_dmrs(3, 1, 500, 10, 6);
        assert_eq!(p.len(), 18);
        for v in &p {
            assert!((v.norm_sqr() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn pilots_depend_on_all_parameters() {
        let base = pdcch_dmrs(0, 0, 1, 0, 4);
        assert_ne!(pdcch_dmrs(1, 0, 1, 0, 4), base);
        assert_ne!(pdcch_dmrs(0, 1, 1, 0, 4), base);
        assert_ne!(pdcch_dmrs(0, 0, 2, 0, 4), base);
    }

    #[test]
    fn prb_offset_is_a_subsequence() {
        // Pilots for PRBs 4..8 equal the tail of pilots for PRBs 0..8 —
        // required for gNB and sniffer to agree when the CORESET is offset.
        let all = pdcch_dmrs(5, 2, 123, 0, 8);
        let tail = pdcch_dmrs(5, 2, 123, 4, 4);
        assert_eq!(&all[4 * DMRS_PER_REG..], &tail[..]);
    }

    #[test]
    fn ls_estimate_recovers_flat_channel() {
        let refs = pdcch_dmrs(1, 0, 42, 0, 6);
        let h = Cf32::from_polar(0.8, -1.2);
        let rx: Vec<Cf32> = refs.iter().map(|p| *p * h).collect();
        let est = ls_channel_estimate(&rx, &refs);
        assert!((est - h).abs() < 1e-5);
        assert!(noise_estimate(&rx, &refs, est) < 1e-9);
    }

    #[test]
    fn noise_estimate_tracks_injected_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let refs = pdcch_dmrs(1, 0, 42, 0, 48);
        let sigma2 = 0.05f32;
        let rx: Vec<Cf32> = refs
            .iter()
            .map(|p| {
                let n = Cf32::new(
                    rng.gen_range(-1.0..1.0) * (1.5 * sigma2).sqrt(),
                    rng.gen_range(-1.0..1.0) * (1.5 * sigma2).sqrt(),
                );
                *p + n
            })
            .collect();
        let h = ls_channel_estimate(&rx, &refs);
        let nv = noise_estimate(&rx, &refs, h);
        // Uniform noise with that scaling has variance ≈ sigma2 per axis ×2.
        assert!(nv > 0.01 && nv < 0.25, "noise estimate {nv}");
    }
}
