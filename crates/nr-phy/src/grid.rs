//! The slot resource grid: PRBs × OFDM symbols of complex resource elements.
//!
//! One grid holds one slot (14 symbols). Frequency indexing is by absolute
//! subcarrier within the carrier (0 at the lowest PRB), matching Fig 1 and
//! Fig 3 of the paper where DCIs point at PRB spans inside the grid.

use crate::complex::Cf32;
use crate::numerology::{SUBCARRIERS_PER_PRB, SYMBOLS_PER_SLOT};

/// One slot's worth of resource elements.
#[derive(Debug, Clone)]
pub struct ResourceGrid {
    n_prb: usize,
    /// Row-major `[symbol][subcarrier]`.
    data: Vec<Cf32>,
}

impl ResourceGrid {
    /// An all-zero grid spanning `n_prb` resource blocks.
    pub fn new(n_prb: usize) -> ResourceGrid {
        ResourceGrid {
            n_prb,
            data: vec![Cf32::ZERO; n_prb * SUBCARRIERS_PER_PRB * SYMBOLS_PER_SLOT],
        }
    }

    /// Carrier width in PRBs.
    pub fn n_prb(&self) -> usize {
        self.n_prb
    }

    /// Carrier width in subcarriers.
    pub fn n_subcarriers(&self) -> usize {
        self.n_prb * SUBCARRIERS_PER_PRB
    }

    #[inline]
    fn idx(&self, symbol: usize, subcarrier: usize) -> usize {
        debug_assert!(symbol < SYMBOLS_PER_SLOT, "symbol {symbol} out of range");
        debug_assert!(
            subcarrier < self.n_subcarriers(),
            "subcarrier {subcarrier} out of range"
        );
        symbol * self.n_subcarriers() + subcarrier
    }

    /// Read one resource element.
    #[inline]
    pub fn get(&self, symbol: usize, subcarrier: usize) -> Cf32 {
        self.data[self.idx(symbol, subcarrier)]
    }

    /// Write one resource element.
    #[inline]
    pub fn set(&mut self, symbol: usize, subcarrier: usize, value: Cf32) {
        let i = self.idx(symbol, subcarrier);
        self.data[i] = value;
    }

    /// Borrow one whole OFDM symbol (all subcarriers).
    pub fn symbol(&self, symbol: usize) -> &[Cf32] {
        let w = self.n_subcarriers();
        &self.data[symbol * w..(symbol + 1) * w]
    }

    /// Mutably borrow one whole OFDM symbol.
    pub fn symbol_mut(&mut self, symbol: usize) -> &mut [Cf32] {
        let w = self.n_subcarriers();
        &mut self.data[symbol * w..(symbol + 1) * w]
    }

    /// Subcarrier range of one REG (= 1 PRB × 1 symbol = 12 REs).
    pub fn reg_subcarriers(prb: usize) -> std::ops::Range<usize> {
        prb * SUBCARRIERS_PER_PRB..(prb + 1) * SUBCARRIERS_PER_PRB
    }

    /// Total energy in the grid (sum |RE|²), used by AGC and tests.
    pub fn energy(&self) -> f32 {
        self.data.iter().map(|v| v.norm_sqr()).sum()
    }

    /// Count REs with non-zero content in a symbol range — the basis of the
    /// paper's REG-count comparison (Fig 8).
    pub fn occupied_res(&self, symbols: std::ops::Range<usize>) -> usize {
        symbols
            .flat_map(|s| (0..self.n_subcarriers()).map(move |k| (s, k)))
            .filter(|&(s, k)| self.get(s, k).norm_sqr() > 0.0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_zero() {
        let g = ResourceGrid::new(51);
        assert_eq!(g.energy(), 0.0);
        assert_eq!(g.n_subcarriers(), 612);
    }

    #[test]
    fn set_get_round_trip() {
        let mut g = ResourceGrid::new(24);
        g.set(3, 100, Cf32::new(1.0, -1.0));
        assert_eq!(g.get(3, 100), Cf32::new(1.0, -1.0));
        assert_eq!(g.get(3, 101), Cf32::ZERO);
        assert_eq!(g.get(4, 100), Cf32::ZERO);
    }

    #[test]
    fn symbol_slices_are_disjoint_views() {
        let mut g = ResourceGrid::new(2);
        g.symbol_mut(0)[5] = Cf32::ONE;
        g.symbol_mut(13)[23] = Cf32::new(0.0, 1.0);
        assert_eq!(g.symbol(0)[5], Cf32::ONE);
        assert_eq!(g.symbol(13)[23], Cf32::new(0.0, 1.0));
        assert_eq!(g.symbol(1)[5], Cf32::ZERO);
    }

    #[test]
    fn reg_covers_twelve_subcarriers() {
        let r = ResourceGrid::reg_subcarriers(3);
        assert_eq!(r.len(), 12);
        assert_eq!(r.start, 36);
    }

    #[test]
    fn occupied_re_count() {
        let mut g = ResourceGrid::new(4);
        for k in ResourceGrid::reg_subcarriers(1) {
            g.set(0, k, Cf32::ONE);
        }
        assert_eq!(g.occupied_res(0..1), 12);
        assert_eq!(g.occupied_res(1..14), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_subcarrier_panics_in_debug() {
        let g = ResourceGrid::new(1);
        g.get(0, 12);
    }
}
