//! Shared identifier types used across the PHY, MAC and telemetry layers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Radio Network Temporary Identifier — the 16-bit handle the RAN uses to
/// address one UE (or one broadcast function) on the air interface.
///
/// NR-Scope's central trick (paper §3.1.2) is recovering these from the CRC
/// scrambling of MSG 4 DCIs, after which it can blind-decode every DCI the
/// cell sends to that UE.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Rnti(pub u16);

impl Rnti {
    /// SI-RNTI: scrambles DCIs scheduling system information (SIB1). Fixed
    /// value 0xFFFF per 38.321 §7.1.
    pub const SI: Rnti = Rnti(0xFFFF);
    /// Paging RNTI (unused by the telemetry pipeline but reserved).
    pub const P: Rnti = Rnti(0xFFFE);

    /// First value of the dynamically assignable C-RNTI range.
    pub const C_RNTI_FIRST: u16 = 0x0001;
    /// Last value of the dynamically assignable C-RNTI range (38.321 §7.1
    /// reserves the top of the space for SI/P/RA-RNTI).
    pub const C_RNTI_LAST: u16 = 0xFFEF;

    /// RA-RNTI for a PRACH occasion (38.321 §5.1.3). Identifies the random
    /// access response (MSG 2) on the PDCCH.
    ///
    /// `ra_rnti = 1 + s_id + 14*t_id + 14*80*f_id + 14*80*8*ul_carrier_id`
    pub fn ra_rnti(s_id: u32, t_id: u32, f_id: u32, ul_carrier_id: u32) -> Rnti {
        debug_assert!(s_id < 14 && t_id < 80 && f_id < 8 && ul_carrier_id < 2);
        Rnti((1 + s_id + 14 * t_id + 14 * 80 * f_id + 14 * 80 * 8 * ul_carrier_id) as u16)
    }

    /// Whether this value lies in the dynamically assigned C-RNTI range.
    pub fn is_c_rnti_range(self) -> bool {
        self.0 >= Self::C_RNTI_FIRST && self.0 <= Self::C_RNTI_LAST
    }
}

impl fmt::Display for Rnti {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

/// What role an RNTI plays when scrambling a given DCI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RntiType {
    /// Cell RNTI: a connected UE's identity.
    C,
    /// Temporary C-RNTI assigned in MSG 2, promoted to C-RNTI after MSG 4.
    Tc,
    /// Random-access RNTI (addresses MSG 2).
    Ra,
    /// System-information RNTI (addresses SIB scheduling).
    Si,
    /// Paging RNTI.
    P,
}

impl fmt::Display for RntiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RntiType::C => "C-RNTI",
            RntiType::Tc => "TC-RNTI",
            RntiType::Ra => "RA-RNTI",
            RntiType::Si => "SI-RNTI",
            RntiType::P => "P-RNTI",
        };
        f.write_str(s)
    }
}

/// Physical cell identity, 0..=1007 (= 3·NID1 + NID2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pci(pub u16);

impl Pci {
    /// Construct from the SSS group (NID1, 0..=335) and PSS index (NID2, 0..=2).
    pub fn from_parts(nid1: u16, nid2: u16) -> Pci {
        debug_assert!(nid1 < 336 && nid2 < 3);
        Pci(3 * nid1 + nid2)
    }

    /// NID2 component (selects the PSS sequence).
    pub fn nid2(self) -> u16 {
        self.0 % 3
    }

    /// NID1 component (selects the SSS sequence).
    pub fn nid1(self) -> u16 {
        self.0 / 3
    }
}

impl fmt::Display for Pci {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCI {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ra_rnti_formula_matches_spec_example() {
        // s_id=0, t_id=0, f_id=0, ul_carrier=0 → 1
        assert_eq!(Rnti::ra_rnti(0, 0, 0, 0), Rnti(1));
        // s_id=2, t_id=3, f_id=1 → 1 + 2 + 42 + 1120 = 1165
        assert_eq!(Rnti::ra_rnti(2, 3, 1, 0), Rnti(1165));
    }

    #[test]
    fn c_rnti_range_excludes_reserved() {
        assert!(!Rnti::SI.is_c_rnti_range());
        assert!(!Rnti::P.is_c_rnti_range());
        assert!(!Rnti(0).is_c_rnti_range());
        assert!(Rnti(0x4601).is_c_rnti_range());
    }

    #[test]
    fn pci_round_trips() {
        for pci in [0u16, 1, 2, 3, 500, 1007] {
            let p = Pci(pci);
            assert_eq!(Pci::from_parts(p.nid1(), p.nid2()), p);
        }
    }
}
