//! CP-OFDM modulation and demodulation of slot resource grids.
//!
//! The gNB side maps a [`ResourceGrid`] to time-domain IQ samples (IFFT +
//! cyclic prefix per symbol); NR-Scope's receive side inverts it (CP strip +
//! FFT). Subcarrier 0 of the grid maps to the lowest used frequency: used
//! subcarriers are centred in the FFT with DC in the middle, the usual SDR
//! arrangement after downconversion to the channel centre frequency.

use crate::complex::Cf32;
use crate::fft::Fft;
use crate::grid::ResourceGrid;
use crate::numerology::{Numerology, SYMBOLS_PER_SLOT};

/// OFDM modulator/demodulator for a fixed carrier configuration.
#[derive(Debug, Clone)]
pub struct Ofdm {
    numerology: Numerology,
    n_prb: usize,
    fft_size: usize,
    fft: Fft,
}

impl Ofdm {
    /// Configure for a carrier of `n_prb` resource blocks.
    pub fn new(numerology: Numerology, n_prb: usize) -> Ofdm {
        let fft_size = numerology.fft_size(n_prb);
        Ofdm {
            numerology,
            n_prb,
            fft_size,
            fft: Fft::new(fft_size),
        }
    }

    /// FFT size in use.
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// Sample rate of the produced IQ stream.
    pub fn sample_rate_hz(&self) -> f64 {
        self.numerology.sample_rate_hz(self.fft_size)
    }

    /// Samples per slot at this configuration.
    pub fn samples_per_slot(&self, slot_in_frame: usize) -> usize {
        self.numerology
            .samples_per_slot(self.fft_size, slot_in_frame)
    }

    /// First FFT bin of grid subcarrier 0 (used band centred around DC, then
    /// shifted to non-negative bins for the FFT input layout).
    fn first_bin(&self) -> usize {
        // Used subcarriers occupy bins [-(used/2) .. used/2) around DC; an
        // FFT bin index b < 0 wraps to fft_size + b.
        self.fft_size - self.n_prb * 6
    }

    /// Map grid subcarrier `k` to its FFT bin.
    fn bin_of(&self, k: usize) -> usize {
        (self.first_bin() + k) % self.fft_size
    }

    /// Modulate one slot grid to time-domain samples (with CPs).
    pub fn modulate(&self, grid: &ResourceGrid, slot_in_frame: usize) -> Vec<Cf32> {
        assert_eq!(grid.n_prb(), self.n_prb);
        let mut out = Vec::with_capacity(self.samples_per_slot(slot_in_frame));
        let mut freq = vec![Cf32::ZERO; self.fft_size];
        for sym in 0..SYMBOLS_PER_SLOT {
            freq.iter_mut().for_each(|v| *v = Cf32::ZERO);
            for (k, &re) in grid.symbol(sym).iter().enumerate() {
                freq[self.bin_of(k)] = re;
            }
            let mut time = freq.clone();
            self.fft.inverse(&mut time);
            // Scale so RE power is preserved through the transform pair.
            let scale = (self.fft_size as f32).sqrt();
            for v in time.iter_mut() {
                *v = v.scale(scale);
            }
            let cp = self.numerology.cp_len(
                self.fft_size,
                self.numerology.symbol_in_half_subframe(slot_in_frame, sym),
            );
            out.extend_from_slice(&time[self.fft_size - cp..]);
            out.extend_from_slice(&time);
        }
        out
    }

    /// Demodulate one slot of time samples back to a resource grid.
    ///
    /// `samples` must hold exactly one slot at this configuration. Inverse
    /// of [`Ofdm::modulate`] up to numerical noise.
    pub fn demodulate(&self, samples: &[Cf32], slot_in_frame: usize) -> ResourceGrid {
        assert_eq!(
            samples.len(),
            self.samples_per_slot(slot_in_frame),
            "sample count must be one slot"
        );
        let mut grid = ResourceGrid::new(self.n_prb);
        let mut pos = 0;
        let scale = 1.0 / (self.fft_size as f32).sqrt();
        for sym in 0..SYMBOLS_PER_SLOT {
            let cp = self.numerology.cp_len(
                self.fft_size,
                self.numerology.symbol_in_half_subframe(slot_in_frame, sym),
            );
            pos += cp;
            let mut time: Vec<Cf32> = samples[pos..pos + self.fft_size].to_vec();
            pos += self.fft_size;
            self.fft.forward(&mut time);
            let out = grid.symbol_mut(sym);
            for (k, re) in out.iter_mut().enumerate() {
                *re = time[(self.first_bin() + k) % self.fft_size].scale(scale);
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::{modulate as qam, Modulation};

    fn test_grid(n_prb: usize) -> ResourceGrid {
        let mut g = ResourceGrid::new(n_prb);
        let bits: Vec<u8> = (0..n_prb * 12 * 2)
            .map(|i| ((i * 13 + 5) % 2) as u8)
            .collect();
        let syms = qam(&bits, Modulation::Qpsk);
        for (k, s) in syms.iter().enumerate() {
            g.set(k % SYMBOLS_PER_SLOT, k / SYMBOLS_PER_SLOT, *s);
        }
        g
    }

    #[test]
    fn modulate_demodulate_round_trip() {
        for (numer, n_prb) in [(Numerology::Mu1, 51), (Numerology::Mu0, 52)] {
            let ofdm = Ofdm::new(numer, n_prb);
            let grid = test_grid(n_prb);
            for slot in [0usize, 1] {
                let time = ofdm.modulate(&grid, slot);
                let back = ofdm.demodulate(&time, slot);
                for sym in 0..SYMBOLS_PER_SLOT {
                    for k in 0..grid.n_subcarriers() {
                        let d = (grid.get(sym, k) - back.get(sym, k)).abs();
                        assert!(d < 1e-3, "mismatch at sym {sym} sc {k}: {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn sample_count_matches_numerology() {
        let ofdm = Ofdm::new(Numerology::Mu1, 51);
        let grid = ResourceGrid::new(51);
        let time = ofdm.modulate(&grid, 0);
        assert_eq!(time.len(), ofdm.samples_per_slot(0));
        // 20 MHz µ=1 → 1024-point FFT at 30.72 Msps → 15360 samples per
        // half-millisecond slot, the USRP-style rate the paper's tool runs.
        assert_eq!(ofdm.fft_size(), 1024);
        assert_eq!(time.len(), 15360);
    }

    #[test]
    fn energy_is_preserved() {
        let ofdm = Ofdm::new(Numerology::Mu1, 24);
        // Fill every RE with pseudo-random QPSK so time-domain energy is
        // spread evenly and the CP share approaches its average (~7%).
        let mut grid = ResourceGrid::new(24);
        let bits: Vec<u8> = (0..24 * 12 * SYMBOLS_PER_SLOT * 2)
            .map(|i| (((i * 1103515245 + 12345) >> 8) % 2) as u8)
            .collect();
        let syms = qam(&bits, Modulation::Qpsk);
        for (i, s) in syms.iter().enumerate() {
            grid.set(i / (24 * 12), i % (24 * 12), *s);
        }
        let time = ofdm.modulate(&grid, 0);
        let grid_e = grid.energy();
        // Time-domain energy = grid energy + whatever the CPs copy. The CP
        // share is signal-dependent (it duplicates each symbol's tail), so
        // bound it loosely: strictly more than the grid, at most ~30% over.
        let time_e: f32 = time.iter().map(|v| v.norm_sqr()).sum();
        assert!(time_e > grid_e, "CP adds energy");
        assert!(
            time_e < grid_e * 1.3,
            "no unexpected gain: ratio {}",
            time_e / grid_e
        );
    }

    #[test]
    fn cfo_free_tone_occupies_one_subcarrier() {
        // A single RE modulated then demodulated must not leak.
        let ofdm = Ofdm::new(Numerology::Mu1, 24);
        let mut grid = ResourceGrid::new(24);
        grid.set(3, 77, Cf32::ONE);
        let time = ofdm.modulate(&grid, 0);
        let back = ofdm.demodulate(&time, 0);
        assert!((back.get(3, 77) - Cf32::ONE).abs() < 1e-3);
        assert!(back.get(3, 78).abs() < 1e-3);
        assert!(back.get(4, 77).abs() < 1e-3);
    }
}
