//! Downlink Control Information: formats 1_1 (DL grant) and 0_1 (UL grant),
//! field packing per 38.212 §7.3.1 and the grant translation of the paper's
//! Appendix B.
//!
//! A DCI is 30–80 bits (paper §3.2.1) whose layout depends on cell
//! configuration (bandwidth-part width, RRC options). NR-Scope learns that
//! configuration from SIB1/MSG 4 and can then unpack every field — most
//! importantly the frequency/time allocations and MCS that feed the TBS
//! computation.

use crate::bits::{BitReader, BitWriter};
use crate::types::{Rnti, RntiType};
use serde::{Deserialize, Serialize};

/// DCI format discriminator (the leading identifier bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DciFormat {
    /// Format 0_1: uplink grant for the PUSCH.
    Ul0_1,
    /// Format 1_1: downlink grant for the PDSCH.
    Dl1_1,
}

impl DciFormat {
    /// Name as printed in srsRAN-style logs (`dci=1_1`).
    pub fn name(self) -> &'static str {
        match self {
            DciFormat::Ul0_1 => "0_1",
            DciFormat::Dl1_1 => "1_1",
        }
    }
}

/// Cell/BWP-dependent sizing information for DCI packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DciSizing {
    /// Bandwidth-part width in PRBs (`N_BWP`), which sets the frequency-
    /// allocation field width.
    pub bwp_prbs: usize,
}

impl DciSizing {
    /// Bits in the type-1 frequency allocation field:
    /// `⌈log2(N(N+1)/2)⌉`.
    pub fn f_alloc_bits(&self) -> usize {
        let n = self.bwp_prbs as u64;
        (64 - (n * (n + 1) / 2 - 1).leading_zeros()) as usize
    }

    /// Total payload bits of a format in this sizing.
    pub fn payload_bits(&self, format: DciFormat) -> usize {
        match format {
            // id + f_alloc + t_alloc + vrb2prb + mcs + ndi + rv + harq +
            // dai + tpc + pucch_res + harq_feedback + ports + srs + dmrs_id
            DciFormat::Dl1_1 => {
                1 + self.f_alloc_bits() + 4 + 1 + 5 + 1 + 2 + 4 + 2 + 2 + 3 + 3 + 3 + 2 + 1
            }
            // id + f_alloc + t_alloc + hopping + mcs + ndi + rv + harq +
            // tpc + ports + srs
            DciFormat::Ul0_1 => 1 + self.f_alloc_bits() + 4 + 1 + 5 + 1 + 2 + 4 + 2 + 3 + 2,
        }
    }
}

/// A decoded DCI's fields — the struct printed in the paper's Appendix B
/// (`f_alloc=0x33, t_alloc=0x0, mcs=27, ndi=0, rv=0, harq_id=11, …`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dci {
    /// Format of this DCI.
    pub format: DciFormat,
    /// Type-1 frequency-domain allocation (RIV-coded PRB span).
    pub f_alloc: u32,
    /// Time-domain allocation: row index of the PDSCH/PUSCH time table.
    pub t_alloc: u8,
    /// 5-bit modulation and coding scheme index.
    pub mcs: u8,
    /// New-data indicator: toggles per (UE, HARQ process) for fresh data.
    pub ndi: u8,
    /// Redundancy version (0–3).
    pub rv: u8,
    /// HARQ process number (0–15).
    pub harq_id: u8,
    /// Downlink assignment index (DL only; 0 for UL).
    pub dai: u8,
    /// Transmit power control command.
    pub tpc: u8,
    /// PDSCH-to-HARQ feedback timing (DL only).
    pub harq_feedback: u8,
    /// Antenna-ports field (drives DMRS CDM groups / layer count).
    pub ports: u8,
    /// SRS request.
    pub srs_request: u8,
    /// DMRS sequence initialisation bit (DL only).
    pub dmrs_id: u8,
}

/// Why a CRC-passing DCI payload failed stage-1 plausibility validation.
///
/// A 24-bit CRC passes by chance once per ~16M random candidates; at
/// production decode volumes that is a steady trickle of garbage payloads
/// whose fields must be checked against the cell configuration before any
/// state is mutated. Every variant is a property a conforming cell can
/// never emit, so rejects are attributable to collisions, corruption, or
/// hostile transmitters — never to legitimate traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DciReject {
    /// Payload length matches no format at the active sizing.
    BadLength,
    /// The frequency-allocation RIV decodes to no PRB span inside the
    /// active bandwidth part.
    RivOutOfBwp,
    /// Time-domain allocation row not configured in the TDRA table.
    UnknownTimeAllocRow,
    /// A bit the cell configuration fixes to zero was set (vrb-to-prb
    /// interleaving / PUCCH resource on DL, frequency hopping on UL).
    ReservedBitsSet,
    /// Reserved MCS index signalled for an initial transmission: reserved
    /// entries carry no code rate and are only meaningful on a
    /// retransmission (rv > 0) that reuses the stored one.
    IllegalMcsRv,
}

impl DciReject {
    /// Stable snake_case name for logs and bench artefacts.
    pub fn name(self) -> &'static str {
        match self {
            DciReject::BadLength => "bad_length",
            DciReject::RivOutOfBwp => "riv_out_of_bwp",
            DciReject::UnknownTimeAllocRow => "unknown_time_alloc_row",
            DciReject::ReservedBitsSet => "reserved_bits_set",
            DciReject::IllegalMcsRv => "illegal_mcs_rv",
        }
    }
}

impl std::fmt::Display for DciReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Dci {
    /// Pack to the over-the-air payload bit string.
    pub fn pack(&self, sizing: &DciSizing) -> Vec<u8> {
        let mut w = BitWriter::new();
        match self.format {
            DciFormat::Dl1_1 => {
                w.put(1, 1);
                w.put(self.f_alloc as u64, sizing.f_alloc_bits());
                w.put(self.t_alloc as u64, 4);
                w.put(0, 1); // vrb-to-prb mapping: non-interleaved
                w.put(self.mcs as u64, 5);
                w.put(self.ndi as u64, 1);
                w.put(self.rv as u64, 2);
                w.put(self.harq_id as u64, 4);
                w.put(self.dai as u64, 2);
                w.put(self.tpc as u64, 2);
                w.put(0, 3); // pucch resource indicator
                w.put(self.harq_feedback as u64, 3);
                w.put(self.ports as u64, 3);
                w.put(self.srs_request as u64, 2);
                w.put(self.dmrs_id as u64, 1);
            }
            DciFormat::Ul0_1 => {
                w.put(0, 1);
                w.put(self.f_alloc as u64, sizing.f_alloc_bits());
                w.put(self.t_alloc as u64, 4);
                w.put(0, 1); // frequency hopping disabled
                w.put(self.mcs as u64, 5);
                w.put(self.ndi as u64, 1);
                w.put(self.rv as u64, 2);
                w.put(self.harq_id as u64, 4);
                w.put(self.tpc as u64, 2);
                w.put(self.ports as u64, 3);
                w.put(self.srs_request as u64, 2);
            }
        }
        debug_assert_eq!(w.len(), sizing.payload_bits(self.format));
        w.into_bits()
    }

    /// Unpack from a payload bit string. Returns `None` if the length does
    /// not match either format at this sizing or a field is out of range.
    ///
    /// Parse-only: reserved bits and field plausibility are *not* checked.
    /// Code handling over-the-air payloads should use
    /// [`Dci::unpack_validated`] instead.
    pub fn unpack(bits: &[u8], sizing: &DciSizing) -> Option<Dci> {
        Dci::parse_raw(bits, sizing).map(|(dci, _)| dci)
    }

    /// Unpack *and* plausibility-check a payload against the active cell
    /// configuration — stage 1 of the untrusted-air validator. On top of
    /// the structural checks of [`Dci::unpack`], rejects payloads whose
    /// RIV lands outside the BWP, whose TDRA row is unconfigured, whose
    /// reserved bits are nonzero, or whose MCS/RV combination is illegal.
    pub fn unpack_validated(bits: &[u8], sizing: &DciSizing) -> Result<Dci, DciReject> {
        let (dci, reserved) = Dci::parse_raw(bits, sizing).ok_or(DciReject::BadLength)?;
        if reserved != 0 {
            return Err(DciReject::ReservedBitsSet);
        }
        if riv_decode(dci.f_alloc, sizing.bwp_prbs).is_none() {
            return Err(DciReject::RivOutOfBwp);
        }
        if (dci.t_alloc as usize) >= TIME_ALLOC_CONFIGURED_ROWS {
            return Err(DciReject::UnknownTimeAllocRow);
        }
        if dci.mcs >= RESERVED_MCS_FLOOR && dci.rv == 0 {
            return Err(DciReject::IllegalMcsRv);
        }
        Ok(dci)
    }

    /// Shared field extraction; returns the DCI plus the OR of every
    /// reserved bit (zero on a conforming transmission).
    fn parse_raw(bits: &[u8], sizing: &DciSizing) -> Option<(Dci, u64)> {
        let mut r = BitReader::new(bits);
        let id = r.get(1)?;
        let format = if id == 1 {
            DciFormat::Dl1_1
        } else {
            DciFormat::Ul0_1
        };
        if bits.len() != sizing.payload_bits(format) {
            return None;
        }
        let f_alloc = r.get(sizing.f_alloc_bits())? as u32;
        match format {
            DciFormat::Dl1_1 => {
                let t_alloc = r.get(4)? as u8;
                let vrb2prb = r.get(1)?;
                let mcs = r.get(5)? as u8;
                let ndi = r.get(1)? as u8;
                let rv = r.get(2)? as u8;
                let harq_id = r.get(4)? as u8;
                let dai = r.get(2)? as u8;
                let tpc = r.get(2)? as u8;
                let pucch = r.get(3)?;
                let harq_feedback = r.get(3)? as u8;
                let ports = r.get(3)? as u8;
                let srs_request = r.get(2)? as u8;
                let dmrs_id = r.get(1)? as u8;
                Some((
                    Dci {
                        format,
                        f_alloc,
                        t_alloc,
                        mcs,
                        ndi,
                        rv,
                        harq_id,
                        dai,
                        tpc,
                        harq_feedback,
                        ports,
                        srs_request,
                        dmrs_id,
                    },
                    vrb2prb | pucch,
                ))
            }
            DciFormat::Ul0_1 => {
                let t_alloc = r.get(4)? as u8;
                let hopping = r.get(1)?;
                let mcs = r.get(5)? as u8;
                let ndi = r.get(1)? as u8;
                let rv = r.get(2)? as u8;
                let harq_id = r.get(4)? as u8;
                let tpc = r.get(2)? as u8;
                let ports = r.get(3)? as u8;
                let srs_request = r.get(2)? as u8;
                Some((
                    Dci {
                        format,
                        f_alloc,
                        t_alloc,
                        mcs,
                        ndi,
                        rv,
                        harq_id,
                        dai: 0,
                        tpc,
                        harq_feedback: 0,
                        ports,
                        srs_request,
                        dmrs_id: 0,
                    },
                    hopping,
                ))
            }
        }
    }
}

/// Resource indication value for a contiguous PRB span (38.214 §5.1.2.2.2):
/// encodes `(start, len)` in `⌈log2(N(N+1)/2)⌉` bits.
pub fn riv_encode(start: usize, len: usize, bwp_prbs: usize) -> u32 {
    assert!(len >= 1 && start + len <= bwp_prbs, "span out of BWP");
    let n = bwp_prbs as u32;
    if (len - 1) as u32 <= n / 2 {
        n * (len as u32 - 1) + start as u32
    } else {
        n * (n - len as u32 + 1) + (n - 1 - start as u32)
    }
}

/// Decode a RIV back to `(start, len)`.
pub fn riv_decode(riv: u32, bwp_prbs: usize) -> Option<(usize, usize)> {
    let n = bwp_prbs as u32;
    let a = riv / n;
    let b = riv % n;
    let (start, len) = if a + 1 + b <= n && (a) <= n / 2 {
        (b, a + 1)
    } else {
        (n - 1 - b, n - a + 1)
    };
    let (start, len) = (start as usize, len as usize);
    if len >= 1 && start + len <= bwp_prbs {
        Some((start, len))
    } else {
        None
    }
}

/// One row of the PDSCH/PUSCH time-domain allocation table: start symbol
/// and length within the slot. In a live cell the table comes from
/// `pdsch-ConfigCommon`; these are the 38.214 default table A rows the
/// simulated cells configure.
pub const TIME_ALLOC_TABLE: [(usize, usize); 16] = [
    (2, 12), // row 0: the paper's Appendix B grant (t_alloc=2:12)
    (2, 10),
    (2, 9),
    (2, 7),
    (2, 5),
    (2, 4),
    (2, 3),
    (2, 2),
    (3, 11),
    (3, 9),
    (3, 7),
    (3, 5),
    (4, 10),
    (4, 8),
    (4, 6),
    (4, 4),
];

/// Rows of [`TIME_ALLOC_TABLE`] the simulated cells actually configure in
/// `pdsch-ConfigCommon`. Rows at or past this index exist in the default
/// table but are not signalled by any conforming transmission, so a
/// CRC-passing payload referencing one is a collision or a forgery —
/// the "TDRA row exists" leg of stage-1 validation.
pub const TIME_ALLOC_CONFIGURED_ROWS: usize = 12;

/// Smallest MCS index reserved in *every* supported MCS table (both the
/// 64-QAM and 256-QAM tables reserve 29–31). Reserved indices carry no
/// code rate, so signalling one on an initial transmission (rv = 0) is
/// never legal regardless of which table MSG 4 later configures.
pub const RESERVED_MCS_FLOOR: u8 = 29;

/// Look up a `t_alloc` row. Returns `(start_symbol, n_symbols)`.
pub fn time_alloc(row: u8) -> (usize, usize) {
    TIME_ALLOC_TABLE[row as usize & 0xF]
}

/// Look up a `t_alloc` row, refusing rows the cell never configured.
pub fn time_alloc_checked(row: u8) -> Option<(usize, usize)> {
    if (row as usize) < TIME_ALLOC_CONFIGURED_ROWS {
        Some(TIME_ALLOC_TABLE[row as usize])
    } else {
        None
    }
}

/// A DCI translated into a scheduling grant (the paper's Appendix B
/// "Grant" record) — everything NR-Scope needs for TBS and REG accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grant {
    /// Addressed RNTI.
    pub rnti: Rnti,
    /// How the RNTI was classified.
    pub rnti_type: RntiType,
    /// Grant direction/format.
    pub format: DciFormat,
    /// First allocated PRB.
    pub prb_start: usize,
    /// Number of allocated PRBs.
    pub prb_len: usize,
    /// First allocated OFDM symbol.
    pub symbol_start: usize,
    /// Number of allocated OFDM symbols.
    pub symbol_len: usize,
    /// MCS index.
    pub mcs: u8,
    /// MIMO layers.
    pub layers: usize,
    /// New-data indicator.
    pub ndi: u8,
    /// Redundancy version.
    pub rv: u8,
    /// HARQ process.
    pub harq_id: u8,
    /// Transport block size in bits (computed per Appendix A).
    pub tbs: u32,
}

impl Grant {
    /// Number of REGs (PRB × symbol units) this grant occupies — the
    /// quantity compared against ground truth in the paper's Fig 8.
    pub fn reg_count(&self) -> usize {
        self.prb_len * self.symbol_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizing() -> DciSizing {
        DciSizing { bwp_prbs: 51 }
    }

    fn sample_dci() -> Dci {
        // Mirrors the Appendix B example fields.
        Dci {
            format: DciFormat::Dl1_1,
            f_alloc: 0x33,
            t_alloc: 0,
            mcs: 27,
            ndi: 0,
            rv: 0,
            harq_id: 11,
            dai: 2,
            tpc: 1,
            harq_feedback: 2,
            ports: 7,
            srs_request: 0,
            dmrs_id: 0,
        }
    }

    #[test]
    fn payload_size_is_in_paper_range() {
        // Paper §3.2.1: DCIs are 30–80 bits.
        for bwp in [24usize, 51, 52, 79, 106, 273] {
            let s = DciSizing { bwp_prbs: bwp };
            for f in [DciFormat::Dl1_1, DciFormat::Ul0_1] {
                let bits = s.payload_bits(f);
                assert!((30..=80).contains(&bits), "bwp={bwp} {f:?}: {bits}");
            }
        }
    }

    #[test]
    fn pack_unpack_round_trip_dl() {
        let s = sizing();
        let dci = sample_dci();
        let bits = dci.pack(&s);
        assert_eq!(bits.len(), s.payload_bits(DciFormat::Dl1_1));
        assert_eq!(Dci::unpack(&bits, &s), Some(dci));
    }

    #[test]
    fn pack_unpack_round_trip_ul() {
        let s = sizing();
        let dci = Dci {
            format: DciFormat::Ul0_1,
            f_alloc: 120,
            t_alloc: 3,
            mcs: 9,
            ndi: 1,
            rv: 2,
            harq_id: 5,
            dai: 0,
            tpc: 3,
            harq_feedback: 0,
            ports: 2,
            srs_request: 1,
            dmrs_id: 0,
        };
        let bits = dci.pack(&s);
        assert_eq!(Dci::unpack(&bits, &s), Some(dci));
    }

    #[test]
    fn unpack_rejects_wrong_length() {
        let s = sizing();
        let mut bits = sample_dci().pack(&s);
        bits.push(0);
        assert_eq!(Dci::unpack(&bits, &s), None);
    }

    #[test]
    fn riv_round_trips_all_spans() {
        for bwp in [24usize, 51, 52] {
            for start in 0..bwp {
                for len in 1..=(bwp - start) {
                    let riv = riv_encode(start, len, bwp);
                    assert_eq!(
                        riv_decode(riv, bwp),
                        Some((start, len)),
                        "bwp={bwp} start={start} len={len} riv={riv}"
                    );
                }
            }
        }
    }

    #[test]
    fn riv_fits_field_width() {
        let s = sizing();
        let max_riv = (0..51)
            .flat_map(|st| (1..=51 - st).map(move |l| riv_encode(st, l, 51)))
            .max()
            .unwrap();
        assert!(max_riv < (1 << s.f_alloc_bits()));
    }

    #[test]
    fn validated_unpack_accepts_conforming_payload() {
        let s = sizing();
        let dci = sample_dci();
        assert_eq!(Dci::unpack_validated(&dci.pack(&s), &s), Ok(dci));
    }

    #[test]
    fn validated_unpack_rejects_reserved_bits() {
        let s = sizing();
        let mut bits = sample_dci().pack(&s);
        // vrb-to-prb bit directly follows id + f_alloc + t_alloc.
        let vrb2prb_at = 1 + s.f_alloc_bits() + 4;
        bits[vrb2prb_at] = 1;
        assert_eq!(
            Dci::unpack_validated(&bits, &s),
            Err(DciReject::ReservedBitsSet)
        );
        // Parse-only unpack still accepts it (tx-side round trips).
        assert!(Dci::unpack(&bits, &s).is_some());
    }

    #[test]
    fn validated_unpack_rejects_riv_outside_bwp() {
        let s = sizing();
        let dci = Dci {
            // Max RIV for bwp=51 is < 2^f_alloc_bits; an all-ones field
            // decodes to no in-range span.
            f_alloc: (1 << s.f_alloc_bits()) - 1,
            ..sample_dci()
        };
        assert_eq!(
            Dci::unpack_validated(&dci.pack(&s), &s),
            Err(DciReject::RivOutOfBwp)
        );
    }

    #[test]
    fn validated_unpack_rejects_unconfigured_tdra_row() {
        let s = sizing();
        let dci = Dci {
            t_alloc: TIME_ALLOC_CONFIGURED_ROWS as u8,
            ..sample_dci()
        };
        assert_eq!(
            Dci::unpack_validated(&dci.pack(&s), &s),
            Err(DciReject::UnknownTimeAllocRow)
        );
        assert_eq!(time_alloc_checked(dci.t_alloc), None);
        assert_eq!(time_alloc_checked(0), Some((2, 12)));
    }

    #[test]
    fn validated_unpack_rejects_reserved_mcs_on_initial_tx() {
        let s = sizing();
        let bad = Dci {
            mcs: 30,
            rv: 0,
            ..sample_dci()
        };
        assert_eq!(
            Dci::unpack_validated(&bad.pack(&s), &s),
            Err(DciReject::IllegalMcsRv)
        );
        // The same reserved index on a retransmission is legal.
        let retx = Dci {
            mcs: 30,
            rv: 2,
            ..sample_dci()
        };
        assert_eq!(Dci::unpack_validated(&retx.pack(&s), &s), Ok(retx));
    }

    #[test]
    fn validated_unpack_rejects_wrong_length_as_bad_length() {
        let s = sizing();
        let mut bits = sample_dci().pack(&s);
        bits.push(0);
        assert_eq!(Dci::unpack_validated(&bits, &s), Err(DciReject::BadLength));
    }

    #[test]
    fn appendix_b_time_alloc_row() {
        // t_alloc=0x0 translates to the 2:12 symbol allocation in the log.
        assert_eq!(time_alloc(0), (2, 12));
    }

    #[test]
    fn grant_reg_count() {
        let g = Grant {
            rnti: Rnti(0x4296),
            rnti_type: RntiType::C,
            format: DciFormat::Dl1_1,
            prb_start: 0,
            prb_len: 3,
            symbol_start: 2,
            symbol_len: 12,
            mcs: 27,
            layers: 2,
            ndi: 0,
            rv: 0,
            harq_id: 11,
            tbs: 6400,
        };
        assert_eq!(g.reg_count(), 36);
    }
}
