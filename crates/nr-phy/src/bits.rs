//! Bit-level writer/reader used by DCI packing and the RRC codec.
//!
//! All NR control payloads are MSB-first bit strings whose field boundaries
//! are not byte aligned; these two types keep the packing code declarative.

/// MSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bits: Vec<u8>,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Append the low `width` bits of `value`, MSB first.
    pub fn put(&mut self, value: u64, width: usize) {
        assert!(width <= 64);
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.bits.push(((value >> i) & 1) as u8);
        }
    }

    /// Append a single boolean bit.
    pub fn put_bool(&mut self, v: bool) {
        self.bits.push(u8::from(v));
    }

    /// Append raw bits.
    pub fn put_bits(&mut self, bits: &[u8]) {
        self.bits.extend_from_slice(bits);
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Pad with zeros up to `target` bits (no-op if already there).
    pub fn pad_to(&mut self, target: usize) {
        while self.bits.len() < target {
            self.bits.push(0);
        }
    }

    /// Finish and return the bit vector.
    pub fn into_bits(self) -> Vec<u8> {
        self.bits
    }
}

/// MSB-first bit reader over a borrowed bit slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bits: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bits`.
    pub fn new(bits: &'a [u8]) -> BitReader<'a> {
        BitReader { bits, pos: 0 }
    }

    /// Read `width` bits as an unsigned value. Returns `None` on underrun.
    pub fn get(&mut self, width: usize) -> Option<u64> {
        if self.pos + width > self.bits.len() {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | self.bits[self.pos] as u64;
            self.pos += 1;
        }
        Some(v)
    }

    /// Read one boolean bit.
    pub fn get_bool(&mut self) -> Option<bool> {
        self.get(1).map(|v| v == 1)
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xABCD, 16);
        w.put_bool(true);
        w.put(7, 5);
        let bits = w.into_bits();
        assert_eq!(bits.len(), 25);
        let mut r = BitReader::new(&bits);
        assert_eq!(r.get(3), Some(0b101));
        assert_eq!(r.get(16), Some(0xABCD));
        assert_eq!(r.get_bool(), Some(true));
        assert_eq!(r.get(5), Some(7));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn underrun_returns_none() {
        let bits = [1u8, 0, 1];
        let mut r = BitReader::new(&bits);
        assert_eq!(r.get(4), None);
        // A failed read consumes nothing.
        assert_eq!(r.get(3), Some(0b101));
    }

    #[test]
    fn pad_to_extends_with_zeros() {
        let mut w = BitWriter::new();
        w.put(1, 1);
        w.pad_to(8);
        assert_eq!(w.into_bits(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn zero_width_is_noop() {
        let mut w = BitWriter::new();
        w.put(0, 0);
        assert!(w.is_empty());
        let bits: [u8; 0] = [];
        let mut r = BitReader::new(&bits);
        assert_eq!(r.get(0), Some(0));
    }
}
