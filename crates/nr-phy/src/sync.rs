//! Synchronisation signals: PSS and SSS (38.211 §7.4.2) and SSB detection.
//!
//! Cell search (paper §3.1.1, step 1 of Fig 2) starts by correlating against
//! the three possible PSS sequences to find the cell's NID2 and symbol
//! timing, then matching the SSS to recover NID1 — together the PCI — after
//! which the PBCH (MIB) can be decoded.

use crate::complex::Cf32;
use crate::types::Pci;

/// Length of PSS and SSS sequences in subcarriers.
pub const SYNC_SEQ_LEN: usize = 127;

/// Generate the binary m-sequence `x(i+7) = x(i+4) + x(i)` with the PSS
/// initial state (38.211 §7.4.2.2).
fn pss_m_sequence() -> [u8; SYNC_SEQ_LEN] {
    let mut x = [0u8; SYNC_SEQ_LEN + 7];
    // Initial state x(6..0) = 1110110 (x(0)=0, x(1)=1, x(2)=1, x(3)=0,
    // x(4)=1, x(5)=1, x(6)=1).
    let init = [0u8, 1, 1, 0, 1, 1, 1];
    x[..7].copy_from_slice(&init);
    for i in 0..SYNC_SEQ_LEN {
        x[i + 7] = x[i + 4] ^ x[i];
    }
    let mut out = [0u8; SYNC_SEQ_LEN];
    out.copy_from_slice(&x[..SYNC_SEQ_LEN]);
    out
}

/// PSS sequence for `nid2` ∈ {0,1,2} as BPSK symbols `1-2·x(m)`,
/// `m = (n + 43·nid2) mod 127`.
pub fn pss_sequence(nid2: u16) -> Vec<Cf32> {
    assert!(nid2 < 3, "NID2 must be 0..3");
    let x = pss_m_sequence();
    (0..SYNC_SEQ_LEN)
        .map(|n| {
            let m = (n + 43 * nid2 as usize) % SYNC_SEQ_LEN;
            Cf32::new(1.0 - 2.0 * x[m] as f32, 0.0)
        })
        .collect()
}

/// SSS sequence for a PCI (38.211 §7.4.2.3):
/// `d(n) = [1-2·x0((n+m0) mod 127)] · [1-2·x1((n+m1) mod 127)]` with
/// `m0 = 15·⌊NID1/112⌋ + 5·NID2`, `m1 = NID1 mod 112`.
pub fn sss_sequence(pci: Pci) -> Vec<Cf32> {
    let nid1 = pci.nid1() as usize;
    let nid2 = pci.nid2() as usize;
    let mut x0 = [0u8; SYNC_SEQ_LEN + 7];
    let mut x1 = [0u8; SYNC_SEQ_LEN + 7];
    x0[..7].copy_from_slice(&[1, 0, 0, 0, 0, 0, 0]);
    x1[..7].copy_from_slice(&[1, 0, 0, 0, 0, 0, 0]);
    for i in 0..SYNC_SEQ_LEN {
        x0[i + 7] = x0[i + 4] ^ x0[i];
        x1[i + 7] = x1[i + 1] ^ x1[i];
    }
    let m0 = 15 * (nid1 / 112) + 5 * nid2;
    let m1 = nid1 % 112;
    (0..SYNC_SEQ_LEN)
        .map(|n| {
            let a = 1.0 - 2.0 * x0[(n + m0) % SYNC_SEQ_LEN] as f32;
            let b = 1.0 - 2.0 * x1[(n + m1) % SYNC_SEQ_LEN] as f32;
            Cf32::new(a * b, 0.0)
        })
        .collect()
}

/// Normalised correlation magnitude between a received sequence and a
/// reference (coherent dot product over energies).
pub fn correlate(rx: &[Cf32], reference: &[Cf32]) -> f32 {
    assert_eq!(rx.len(), reference.len());
    let dot = rx
        .iter()
        .zip(reference)
        .fold(Cf32::ZERO, |acc, (r, p)| acc + *r * p.conj());
    let e_rx: f32 = rx.iter().map(|v| v.norm_sqr()).sum();
    let e_ref: f32 = reference.iter().map(|v| v.norm_sqr()).sum();
    if e_rx <= 0.0 || e_ref <= 0.0 {
        return 0.0;
    }
    dot.abs() / (e_rx * e_ref).sqrt()
}

/// Detect NID2 from a received PSS block. Returns `(nid2, correlation)`.
pub fn detect_pss(rx: &[Cf32]) -> (u16, f32) {
    (0..3u16)
        .map(|nid2| (nid2, correlate(rx, &pss_sequence(nid2))))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, 0.0))
}

/// Detect NID1 from a received SSS block given NID2. Returns
/// `(nid1, correlation)`. Searches all 336 group hypotheses like a UE does
/// during initial cell search.
pub fn detect_sss(rx: &[Cf32], nid2: u16) -> (u16, f32) {
    (0..336u16)
        .map(|nid1| {
            let p = Pci::from_parts(nid1, nid2);
            (nid1, correlate(rx, &sss_sequence(p)))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pss_sequences_are_near_orthogonal() {
        for a in 0..3u16 {
            for b in 0..3u16 {
                let c = correlate(&pss_sequence(a), &pss_sequence(b));
                if a == b {
                    assert!((c - 1.0).abs() < 1e-5);
                } else {
                    assert!(c < 0.3, "PSS {a} vs {b}: {c}");
                }
            }
        }
    }

    #[test]
    fn sss_distinguishes_cells() {
        let a = sss_sequence(Pci::from_parts(10, 0));
        let b = sss_sequence(Pci::from_parts(11, 0));
        let c = sss_sequence(Pci::from_parts(10, 1));
        assert!(correlate(&a, &a) > 0.999);
        assert!(correlate(&a, &b) < 0.35);
        assert!(correlate(&a, &c) < 0.35);
    }

    #[test]
    fn pss_detection_under_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for nid2 in 0..3u16 {
            let clean = pss_sequence(nid2);
            let noisy: Vec<Cf32> = clean
                .iter()
                .map(|s| *s + Cf32::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                .collect();
            let (det, corr) = detect_pss(&noisy);
            assert_eq!(det, nid2);
            assert!(corr > 0.7);
        }
    }

    #[test]
    fn full_pci_detection_round_trip() {
        for pci in [Pci(0), Pci(1), Pci(500), Pci(1007)] {
            let (nid2, _) = detect_pss(&pss_sequence(pci.nid2()));
            assert_eq!(nid2, pci.nid2());
            let (nid1, corr) = detect_sss(&sss_sequence(pci), nid2);
            assert_eq!(nid1, pci.nid1(), "pci {pci}");
            assert!(corr > 0.999);
        }
    }

    #[test]
    fn pss_detection_survives_phase_rotation() {
        // Channel phase must not break magnitude correlation.
        let rot = Cf32::from_angle(1.1);
        let rx: Vec<Cf32> = pss_sequence(2).iter().map(|s| *s * rot).collect();
        let (det, corr) = detect_pss(&rx);
        assert_eq!(det, 2);
        assert!(corr > 0.999);
    }
}
