//! MCS and CQI tables (38.214 §5.1.3.1 / §5.2.2.1) and the link-abstraction
//! BLER model used at message fidelity.
//!
//! The DCI's 5-bit MCS field indexes one of these tables (which table is an
//! RRC-configured property NR-Scope learns from MSG 4, `mcs-Table`); the
//! entry yields the modulation order `Q_m` and code rate `R` that enter the
//! paper's Appendix A TBS computation.

use crate::modulation::Modulation;
use serde::{Deserialize, Serialize};

/// Which 38.214 MCS table the cell configured for the PDSCH.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum McsTable {
    /// Table 5.1.3.1-1, up to 64QAM.
    Qam64,
    /// Table 5.1.3.1-2, up to 256QAM (the paper's Appendix B example).
    Qam256,
}

/// One MCS table entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McsEntry {
    /// Modulation order.
    pub modulation: Modulation,
    /// Target code rate × 1024.
    pub rate_x1024: f64,
}

impl McsEntry {
    /// Code rate as a fraction.
    pub fn code_rate(&self) -> f64 {
        self.rate_x1024 / 1024.0
    }

    /// Spectral efficiency in information bits per resource element.
    pub fn efficiency(&self) -> f64 {
        self.code_rate() * self.modulation.bits_per_symbol() as f64
    }
}

const fn e(modulation: Modulation, rate_x1024: f64) -> McsEntry {
    McsEntry {
        modulation,
        rate_x1024,
    }
}

/// 38.214 Table 5.1.3.1-1 (MCS index table 1 for PDSCH), indices 0–28.
pub const MCS_TABLE_64QAM: [McsEntry; 29] = [
    e(Modulation::Qpsk, 120.0),
    e(Modulation::Qpsk, 157.0),
    e(Modulation::Qpsk, 193.0),
    e(Modulation::Qpsk, 251.0),
    e(Modulation::Qpsk, 308.0),
    e(Modulation::Qpsk, 379.0),
    e(Modulation::Qpsk, 449.0),
    e(Modulation::Qpsk, 526.0),
    e(Modulation::Qpsk, 602.0),
    e(Modulation::Qpsk, 679.0),
    e(Modulation::Qam16, 340.0),
    e(Modulation::Qam16, 378.0),
    e(Modulation::Qam16, 434.0),
    e(Modulation::Qam16, 490.0),
    e(Modulation::Qam16, 553.0),
    e(Modulation::Qam16, 616.0),
    e(Modulation::Qam16, 658.0),
    e(Modulation::Qam64, 438.0),
    e(Modulation::Qam64, 466.0),
    e(Modulation::Qam64, 517.0),
    e(Modulation::Qam64, 567.0),
    e(Modulation::Qam64, 616.0),
    e(Modulation::Qam64, 666.0),
    e(Modulation::Qam64, 719.0),
    e(Modulation::Qam64, 772.0),
    e(Modulation::Qam64, 822.0),
    e(Modulation::Qam64, 873.0),
    e(Modulation::Qam64, 910.0),
    e(Modulation::Qam64, 948.0),
];

/// 38.214 Table 5.1.3.1-2 (MCS index table 2, 256QAM), indices 0–27.
pub const MCS_TABLE_256QAM: [McsEntry; 28] = [
    e(Modulation::Qpsk, 120.0),
    e(Modulation::Qpsk, 193.0),
    e(Modulation::Qpsk, 308.0),
    e(Modulation::Qpsk, 449.0),
    e(Modulation::Qpsk, 602.0),
    e(Modulation::Qam16, 378.0),
    e(Modulation::Qam16, 434.0),
    e(Modulation::Qam16, 490.0),
    e(Modulation::Qam16, 553.0),
    e(Modulation::Qam16, 616.0),
    e(Modulation::Qam16, 658.0),
    e(Modulation::Qam64, 466.0),
    e(Modulation::Qam64, 517.0),
    e(Modulation::Qam64, 567.0),
    e(Modulation::Qam64, 616.0),
    e(Modulation::Qam64, 666.0),
    e(Modulation::Qam64, 719.0),
    e(Modulation::Qam64, 772.0),
    e(Modulation::Qam64, 822.0),
    e(Modulation::Qam64, 873.0),
    e(Modulation::Qam256, 682.5),
    e(Modulation::Qam256, 711.0),
    e(Modulation::Qam256, 754.0),
    e(Modulation::Qam256, 797.0),
    e(Modulation::Qam256, 841.0),
    e(Modulation::Qam256, 885.0),
    e(Modulation::Qam256, 916.5),
    e(Modulation::Qam256, 948.0),
];

impl McsTable {
    /// Look up an MCS index. Returns `None` for reserved indices (≥29 or
    /// ≥28 depending on the table — those signal retransmission parameters).
    pub fn entry(self, mcs: u8) -> Option<McsEntry> {
        match self {
            McsTable::Qam64 => MCS_TABLE_64QAM.get(mcs as usize).copied(),
            McsTable::Qam256 => MCS_TABLE_256QAM.get(mcs as usize).copied(),
        }
    }

    /// Highest valid MCS index.
    pub fn max_index(self) -> u8 {
        match self {
            McsTable::Qam64 => 28,
            McsTable::Qam256 => 27,
        }
    }

    /// Name as it appears in srsRAN-style grant logs (`mcs_table=256qam`).
    pub fn name(self) -> &'static str {
        match self {
            McsTable::Qam64 => "64qam",
            McsTable::Qam256 => "256qam",
        }
    }
}

/// SNR (dB) at which an MCS entry operates near BLER 10% — the standard
/// link-adaptation operating point. Derived from the Shannon bound with an
/// implementation-loss margin, the usual link-abstraction approach.
pub fn snr_threshold_db(entry: McsEntry) -> f64 {
    let eff = entry.efficiency();
    // SNR = (2^eff − 1), plus ~1.5 dB implementation margin.
    10.0 * ((2f64.powf(eff) - 1.0).max(1e-9)).log10() + 1.5
}

/// Block error probability of an MCS at a given SNR — a logistic curve in
/// dB around the threshold, with slope matching typical LDPC waterfalls
/// (~1 dB from 90% to 10% BLER). Used by the message-fidelity link
/// abstraction in `gnb-sim` to decide HARQ NACKs.
pub fn bler(entry: McsEntry, snr_db: f64) -> f64 {
    let delta = snr_db - snr_threshold_db(entry);
    // Centred so BLER(threshold) = 0.1.
    let x = (delta + 0.55) / 0.25;
    1.0 / (1.0 + x.exp())
}

/// Pick the highest MCS whose BLER at `snr_db` stays at or below `target` —
/// the link-adaptation rule the simulated gNB scheduler applies to CQI
/// feedback. Falls back to MCS 0 when even that misses the target.
pub fn select_mcs(table: McsTable, snr_db: f64, target_bler: f64) -> u8 {
    let mut best = 0u8;
    for idx in 0..=table.max_index() {
        let Some(entry) = table.entry(idx) else {
            continue;
        };
        if bler(entry, snr_db) <= target_bler {
            best = idx;
        }
    }
    best
}

/// Map a 4-bit CQI (table 2-ish granularity) to an equivalent SNR in dB.
/// The inverse of the UE's CQI selection; granular to 2 dB steps starting
/// near -6 dB like the 38.214 CQI table spacing.
pub fn cqi_to_snr_db(cqi: u8) -> f64 {
    -8.0 + 2.0 * cqi.min(15) as f64
}

/// Map an SNR to the CQI a UE would report (inverse of [`cqi_to_snr_db`]).
pub fn snr_db_to_cqi(snr_db: f64) -> u8 {
    (((snr_db + 8.0) / 2.0).floor().clamp(0.0, 15.0)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_appendix_b_example() {
        // Appendix B: mcs=27, mcs_table=256qam → mod=256QAM, R=0.926.
        let entry = McsTable::Qam256.entry(27).unwrap();
        assert_eq!(entry.modulation, Modulation::Qam256);
        assert!((entry.code_rate() - 0.926).abs() < 5e-4);
    }

    #[test]
    fn tables_are_monotone_in_efficiency() {
        // The genuine 3GPP tables dip very slightly at modulation switch
        // points (e.g. table 1 idx 16 → 17: 2.5703 → 2.5664), so assert
        // near-monotonicity with that tolerance and strict growth overall.
        for table in [McsTable::Qam64, McsTable::Qam256] {
            let mut prev = 0.0;
            for idx in 0..=table.max_index() {
                let eff = table.entry(idx).unwrap().efficiency();
                assert!(eff > prev - 0.01, "{table:?} idx {idx}: {eff} ≤ {prev}");
                prev = eff;
            }
            let first = table.entry(0).unwrap().efficiency();
            assert!(prev > 5.0 * first, "table spans a wide efficiency range");
        }
    }

    #[test]
    fn reserved_indices_are_none() {
        assert!(McsTable::Qam64.entry(29).is_none());
        assert!(McsTable::Qam256.entry(28).is_none());
    }

    #[test]
    fn bler_is_monotone_decreasing_in_snr() {
        let entry = McsTable::Qam256.entry(15).unwrap();
        let mut prev = 1.0;
        for snr10 in -100..300 {
            let b = bler(entry, snr10 as f64 / 10.0);
            assert!(b <= prev + 1e-12);
            prev = b;
        }
    }

    #[test]
    fn bler_at_threshold_is_ten_percent() {
        let entry = McsTable::Qam64.entry(10).unwrap();
        let b = bler(entry, snr_threshold_db(entry));
        assert!((b - 0.1).abs() < 0.02, "BLER at threshold: {b}");
    }

    #[test]
    fn mcs_selection_is_monotone_in_snr() {
        let mut prev = 0;
        for snr in [-10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0] {
            let m = select_mcs(McsTable::Qam256, snr, 0.1);
            assert!(m >= prev, "snr {snr}: {m} < {prev}");
            prev = m;
        }
        // Very high SNR should reach the top of the table.
        assert_eq!(select_mcs(McsTable::Qam256, 40.0, 0.1), 27);
        // Very low SNR bottoms out at 0.
        assert_eq!(select_mcs(McsTable::Qam256, -20.0, 0.1), 0);
    }

    #[test]
    fn cqi_snr_round_trip() {
        for cqi in 0..=15u8 {
            assert_eq!(snr_db_to_cqi(cqi_to_snr_db(cqi) + 0.1), cqi);
        }
    }
}
