//! PDCCH: CORESETs, search spaces, candidate hashing, and the complete DCI
//! encode/decode chain (38.211 §7.3.2, 38.212 §7.3, 38.213 §10.1).
//!
//! Encode chain (gNB): DCI payload → CRC24C attach + RNTI scramble → polar
//! encode → rate match to the aggregation level's bit budget → Gold
//! scramble → QPSK → map to CORESET REs with DMRS pilots interleaved.
//!
//! Decode chain (NR-Scope): channel-estimate from DMRS → equalise → LLR
//! demap → descramble → polar SC decode → CRC check against each known
//! RNTI (or RNTI recovery for RACH tracking).

use crate::complex::Cf32;
use crate::crc::{dci_attach_crc, dci_check_crc, dci_recover_rnti};
use crate::dmrs::{ls_channel_estimate, noise_estimate, pdcch_dmrs, DATA_PER_REG, DMRS_OFFSETS};
use crate::grid::ResourceGrid;
use crate::modulation::{demodulate_llr, modulate, Modulation};
use crate::polar::PolarCode;
use crate::sequence::{pdcch_scrambling_cinit, scramble_in_place};
use crate::types::Rnti;
use serde::{Deserialize, Serialize};

/// REGs (PRB × symbol) per CCE.
pub const REGS_PER_CCE: usize = 6;
/// Data bits carried per CCE: 6 REGs × 9 data REs × 2 bits (QPSK).
pub const BITS_PER_CCE: usize = REGS_PER_CCE * DATA_PER_REG * 2;

/// PDCCH aggregation level: how many CCEs one DCI candidate spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AggregationLevel {
    /// 1 CCE (108 bits).
    L1,
    /// 2 CCEs.
    L2,
    /// 4 CCEs.
    L4,
    /// 8 CCEs.
    L8,
    /// 16 CCEs.
    L16,
}

impl AggregationLevel {
    /// CCE count.
    pub fn cces(self) -> usize {
        match self {
            AggregationLevel::L1 => 1,
            AggregationLevel::L2 => 2,
            AggregationLevel::L4 => 4,
            AggregationLevel::L8 => 8,
            AggregationLevel::L16 => 16,
        }
    }

    /// Rate-matched bit budget `E` at this level.
    pub fn bits(self) -> usize {
        self.cces() * BITS_PER_CCE
    }

    /// All levels, smallest first.
    pub fn all() -> [AggregationLevel; 5] {
        [
            AggregationLevel::L1,
            AggregationLevel::L2,
            AggregationLevel::L4,
            AggregationLevel::L8,
            AggregationLevel::L16,
        ]
    }

    /// Construct from a CCE count.
    pub fn from_cces(cces: usize) -> Option<AggregationLevel> {
        match cces {
            1 => Some(AggregationLevel::L1),
            2 => Some(AggregationLevel::L2),
            4 => Some(AggregationLevel::L4),
            8 => Some(AggregationLevel::L8),
            16 => Some(AggregationLevel::L16),
            _ => None,
        }
    }
}

/// A blind-search budget: how much of the UE-specific candidate space a
/// decoder is allowed to spend per slot. The overload governor hands one of
/// these to the decode path to shed work under deadline pressure while the
/// *common* search space (SI-/RA-/TC-RNTI plus CRC-XOR RNTI recovery) stays
/// exhaustive at every rung — the invariant that keeps cell knowledge and
/// RACH-based C-RNTI discovery alive no matter how overloaded the scope is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Skip UE-specific candidates below this aggregation level. Low levels
    /// carry the most candidates per CORESET, so pruning them first buys
    /// the largest latency cut per DCI lost.
    pub ue_min_level: Option<AggregationLevel>,
    /// Cap on UE-specific candidate decode attempts per slot.
    pub max_ue_candidates: Option<usize>,
    /// Skip the UE-specific pass entirely (BroadcastOnly / Shedding rungs).
    pub skip_ue: bool,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::unlimited()
    }
}

impl SearchBudget {
    /// No pruning: the full blind search.
    pub fn unlimited() -> SearchBudget {
        SearchBudget {
            ue_min_level: None,
            max_ue_candidates: None,
            skip_ue: false,
        }
    }

    /// Pruned search: drop UE candidates below `min_level` and cap the
    /// UE-specific attempts per slot.
    pub fn pruned(min_level: AggregationLevel, max_ue_candidates: usize) -> SearchBudget {
        SearchBudget {
            ue_min_level: Some(min_level),
            max_ue_candidates: Some(max_ue_candidates),
            skip_ue: false,
        }
    }

    /// Broadcast-only: common search space only, no UE-specific decodes.
    pub fn broadcast_only() -> SearchBudget {
        SearchBudget {
            ue_min_level: None,
            max_ue_candidates: None,
            skip_ue: true,
        }
    }

    /// Whether a UE-specific candidate at `level` is admitted, given that
    /// `spent` UE candidates have already been attempted this slot.
    pub fn admits_ue(&self, level: AggregationLevel, spent: usize) -> bool {
        if self.skip_ue {
            return false;
        }
        if let Some(min) = self.ue_min_level {
            if level.cces() < min.cces() {
                return false;
            }
        }
        if let Some(cap) = self.max_ue_candidates {
            if spent >= cap {
                return false;
            }
        }
        true
    }

    /// Whether this budget prunes anything at all.
    pub fn is_unlimited(&self) -> bool {
        !self.skip_ue && self.ue_min_level.is_none() && self.max_ue_candidates.is_none()
    }
}

/// A control resource set: a block of PRBs × (1–3) symbols at the start of
/// the slot holding PDCCH candidates. CORESET 0 (from the MIB) is the
/// common instance every UE — and NR-Scope — starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coreset {
    /// First PRB of the CORESET within the carrier.
    pub prb_start: usize,
    /// Width in PRBs (multiple of 6 in the spec; enforced here).
    pub n_prb: usize,
    /// First symbol (0 in all the paper's cells).
    pub symbol_start: usize,
    /// Duration in symbols (1–3).
    pub n_symbols: usize,
}

impl Coreset {
    /// Total REGs in the CORESET.
    pub fn n_regs(&self) -> usize {
        self.n_prb * self.n_symbols
    }

    /// Total CCEs available.
    pub fn n_cces(&self) -> usize {
        self.n_regs() / REGS_PER_CCE
    }

    /// The REG coordinates (symbol, prb) of one CCE under non-interleaved
    /// CCE-to-REG mapping: REG bundles of 6 laid out time-first within the
    /// CORESET, matching srsRAN's default CORESET configuration.
    pub fn cce_regs(&self, cce: usize) -> Vec<(usize, usize)> {
        assert!(cce < self.n_cces(), "CCE {cce} out of range");
        (0..REGS_PER_CCE)
            .map(|i| {
                let reg = cce * REGS_PER_CCE + i;
                // Time-first numbering: REG r → symbol r % n_symbols,
                // PRB offset r / n_symbols.
                let sym = self.symbol_start + reg % self.n_symbols;
                let prb = self.prb_start + reg / self.n_symbols;
                (sym, prb)
            })
            .collect()
    }
}

/// Search-space candidate hashing (38.213 §10.1).
///
/// For the common search space `Y = 0`; for a UE-specific search space `Y`
/// evolves per slot from the C-RNTI. Both the gNB (placing) and NR-Scope
/// (finding) compute the same candidate CCE indices.
pub fn candidate_cce(
    y: u32,
    level: AggregationLevel,
    candidate: usize,
    n_candidates: usize,
    n_cces: usize,
) -> Option<usize> {
    let l = level.cces();
    if n_cces < l {
        return None;
    }
    let per = n_cces / l;
    let m = candidate as u32;
    let idx = ((y as u64 + (m as u64 * n_cces as u64) / (l as u64 * n_candidates as u64))
        % per as u64) as usize;
    Some(idx * l)
}

/// Per-slot `Y` recursion for a UE-specific search space:
/// `Y_{-1} = C-RNTI`, `Y_s = (A_p · Y_{s-1}) mod 65537`.
pub fn ue_search_space_y(rnti: Rnti, coreset_index: usize, slot: usize) -> u32 {
    const D: u64 = 65537;
    let a: u64 = match coreset_index % 3 {
        0 => 39827,
        1 => 39829,
        _ => 39839,
    };
    let mut y = rnti.0 as u64;
    for _ in 0..=slot {
        y = (a * y) % D;
    }
    y as u32
}

/// One encoded PDCCH transmission: where it sits and its payload metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdcchAllocation {
    /// First CCE index.
    pub cce_start: usize,
    /// Aggregation level.
    pub level: AggregationLevel,
    /// The RNTI whose CRC scrambling protects this DCI.
    pub rnti: Rnti,
}

/// PDCCH payload-scrambling `c_init` for a search space (38.211 §7.3.2.3):
/// the common search space scrambles with the cell identity alone, while a
/// UE-specific search space mixes in the C-RNTI — the 5G property that
/// forces NR-Scope to learn RNTIs from the RACH rather than recovering
/// them from arbitrary DCIs as 4G sniffers do.
pub fn search_space_cinit(rnti: Rnti, ue_specific: bool, n_id: u16) -> u32 {
    if ue_specific {
        pdcch_scrambling_cinit(rnti.0, n_id)
    } else {
        pdcch_scrambling_cinit(0, n_id)
    }
}

/// Encode a DCI payload and map it onto the grid, including DMRS pilots.
///
/// `n_id` drives the DMRS sequences (the PCI in the common configuration);
/// `c_init` is the payload-scrambling initialiser (see
/// [`search_space_cinit`]); `slot` feeds the DMRS sequence.
#[allow(clippy::too_many_arguments)]
pub fn encode_pdcch(
    grid: &mut ResourceGrid,
    coreset: &Coreset,
    alloc: &PdcchAllocation,
    payload: &[u8],
    n_id: u16,
    c_init: u32,
    slot: usize,
) {
    let e = alloc.level.bits();
    let cw = dci_attach_crc(payload, alloc.rnti.0);
    let code = PolarCode::new(cw.len(), e);
    let mut bits = code.encode(&cw);
    scramble_in_place(&mut bits, c_init);
    let symbols = modulate(&bits, Modulation::Qpsk);
    // Lay QPSK data over the data REs of each REG; pilots on DMRS REs.
    let mut it = symbols.iter();
    for cce in alloc.cce_start..alloc.cce_start + alloc.level.cces() {
        for (sym, prb) in coreset.cce_regs(cce) {
            let pilots = pdcch_dmrs(slot, sym, n_id, prb, 1);
            let base = prb * crate::numerology::SUBCARRIERS_PER_PRB;
            let mut p = 0;
            for k in 0..crate::numerology::SUBCARRIERS_PER_PRB {
                if DMRS_OFFSETS.contains(&k) {
                    grid.set(sym, base + k, pilots[p]);
                    p += 1;
                } else {
                    // The bit budget equals the RE budget by construction
                    // (debug-asserted below); a zero symbol on mismatch
                    // beats a panic in the tx path.
                    let s = it.next().copied().unwrap_or_default();
                    grid.set(sym, base + k, s);
                }
            }
        }
    }
    debug_assert!(it.next().is_none(), "all symbols mapped");
}

/// Soft data extracted from one PDCCH candidate: equalised LLRs plus the
/// channel-quality estimates the decoder needs.
#[derive(Debug, Clone)]
pub struct CandidateSoftBits {
    /// Descrambled LLRs, length `level.bits()`.
    pub llrs: Vec<f32>,
    /// Mean pilot SNR estimate (linear) over the candidate.
    pub pilot_snr: f32,
}

/// Extract and equalise the soft bits of one candidate from a received
/// grid, descrambling with `c_init` (callers try the common and per-RNTI
/// initialisers as appropriate).
pub fn extract_candidate(
    grid: &ResourceGrid,
    coreset: &Coreset,
    cce_start: usize,
    level: AggregationLevel,
    n_id: u16,
    c_init: u32,
    slot: usize,
) -> CandidateSoftBits {
    let mut rx_pilots = Vec::new();
    let mut ref_pilots = Vec::new();
    let mut data = Vec::new();
    for cce in cce_start..cce_start + level.cces() {
        for (sym, prb) in coreset.cce_regs(cce) {
            let pilots = pdcch_dmrs(slot, sym, n_id, prb, 1);
            let base = prb * crate::numerology::SUBCARRIERS_PER_PRB;
            let mut p = 0;
            for k in 0..crate::numerology::SUBCARRIERS_PER_PRB {
                if DMRS_OFFSETS.contains(&k) {
                    rx_pilots.push(grid.get(sym, base + k));
                    ref_pilots.push(pilots[p]);
                    p += 1;
                } else {
                    data.push(grid.get(sym, base + k));
                }
            }
        }
    }
    let h = ls_channel_estimate(&rx_pilots, &ref_pilots);
    let nv = noise_estimate(&rx_pilots, &ref_pilots, h).max(1e-6);
    // Zero-forcing equalisation; noise variance scales by 1/|h|².
    let h_pow = h.norm_sqr().max(1e-9);
    let eq: Vec<Cf32> = data.iter().map(|y| *y / h).collect();
    let mut llrs = demodulate_llr(&eq, Modulation::Qpsk, nv / h_pow);
    // Descramble by flipping LLR signs where the scrambling bit is 1.
    let scr = crate::sequence::gold_bits(c_init, llrs.len());
    for (l, s) in llrs.iter_mut().zip(scr) {
        if s == 1 {
            *l = -*l;
        }
    }
    CandidateSoftBits {
        llrs,
        pilot_snr: h_pow / nv,
    }
}

/// Result of a successful blind decode.
#[derive(Debug, Clone, PartialEq)]
pub struct BlindDecodeResult {
    /// The DCI payload bits (CRC removed).
    pub payload: Vec<u8>,
    /// The RNTI that validated the CRC.
    pub rnti: Rnti,
    /// Aggregation level the DCI was found at.
    pub level: AggregationLevel,
    /// First CCE of the matched candidate.
    pub cce_start: usize,
}

/// Attempt to decode one candidate for a specific RNTI and payload size.
///
/// Returns `None` when the polar decode fails the RNTI-scrambled CRC.
pub fn decode_candidate_for_rnti(
    soft: &CandidateSoftBits,
    payload_bits: usize,
    rnti: Rnti,
    level: AggregationLevel,
    cce_start: usize,
) -> Option<BlindDecodeResult> {
    let k = payload_bits + 24;
    if k >= level.bits() {
        return None;
    }
    let code = PolarCode::new(k, level.bits());
    let cw = code.decode_sc(&soft.llrs);
    let payload = dci_check_crc(&cw, rnti.0)?;
    Some(BlindDecodeResult {
        payload,
        rnti,
        level,
        cce_start,
    })
}

/// Attempt to decode one candidate and *recover* an unknown RNTI (the RACH
/// tracking path, §3.1.2): the CRC's unscrambled high bits act as the
/// confidence check.
pub fn decode_candidate_recover_rnti(
    soft: &CandidateSoftBits,
    payload_bits: usize,
    level: AggregationLevel,
    cce_start: usize,
) -> Option<BlindDecodeResult> {
    let k = payload_bits + 24;
    if k >= level.bits() {
        return None;
    }
    let code = PolarCode::new(k, level.bits());
    let cw = code.decode_sc(&soft.llrs);
    let rnti = dci_recover_rnti(&cw)?;
    let payload = cw[..payload_bits].to_vec();
    Some(BlindDecodeResult {
        payload,
        rnti: Rnti(rnti),
        level,
        cce_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coreset() -> Coreset {
        Coreset {
            prb_start: 0,
            n_prb: 48,
            symbol_start: 0,
            n_symbols: 1,
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 11 + 3) % 2) as u8).collect()
    }

    #[test]
    fn cce_geometry() {
        let c = coreset();
        assert_eq!(c.n_regs(), 48);
        assert_eq!(c.n_cces(), 8);
        let regs = c.cce_regs(2);
        assert_eq!(regs.len(), 6);
        // Non-interleaved, 1 symbol: CCE 2 = PRBs 12..18.
        assert_eq!(regs[0], (0, 12));
        assert_eq!(regs[5], (0, 17));
    }

    #[test]
    fn multi_symbol_coreset_is_time_first() {
        let c = Coreset {
            prb_start: 6,
            n_prb: 12,
            symbol_start: 0,
            n_symbols: 2,
        };
        let regs = c.cce_regs(0);
        // Time-first: (sym0, prb6), (sym1, prb6), (sym0, prb7), ...
        assert_eq!(regs[0], (0, 6));
        assert_eq!(regs[1], (1, 6));
        assert_eq!(regs[2], (0, 7));
    }

    #[test]
    fn encode_decode_clean_channel() {
        let c = coreset();
        let mut grid = ResourceGrid::new(51);
        let rnti = Rnti(0x4601);
        let pl = payload(40);
        let alloc = PdcchAllocation {
            cce_start: 2,
            level: AggregationLevel::L2,
            rnti,
        };
        encode_pdcch(
            &mut grid,
            &c,
            &alloc,
            &pl,
            500,
            search_space_cinit(rnti, false, 500),
            3,
        );
        let soft = extract_candidate(
            &grid,
            &c,
            2,
            AggregationLevel::L2,
            500,
            search_space_cinit(rnti, false, 500),
            3,
        );
        let res =
            decode_candidate_for_rnti(&soft, 40, rnti, AggregationLevel::L2, 2).expect("decode");
        assert_eq!(res.payload, pl);
        assert_eq!(res.rnti, rnti);
    }

    #[test]
    fn wrong_rnti_fails_crc() {
        let c = coreset();
        let mut grid = ResourceGrid::new(51);
        let pl = payload(40);
        let alloc = PdcchAllocation {
            cce_start: 0,
            level: AggregationLevel::L4,
            rnti: Rnti(0x4601),
        };
        encode_pdcch(
            &mut grid,
            &c,
            &alloc,
            &pl,
            500,
            search_space_cinit(Rnti(0x4601), false, 500),
            0,
        );
        let soft = extract_candidate(
            &grid,
            &c,
            0,
            AggregationLevel::L4,
            500,
            search_space_cinit(Rnti(0x4601), false, 500),
            0,
        );
        assert!(
            decode_candidate_for_rnti(&soft, 40, Rnti(0x4602), AggregationLevel::L4, 0).is_none()
        );
    }

    #[test]
    fn rnti_recovery_on_clean_candidate() {
        let c = coreset();
        let mut grid = ResourceGrid::new(51);
        let pl = payload(40);
        let rnti = Rnti(0x4296);
        let alloc = PdcchAllocation {
            cce_start: 4,
            level: AggregationLevel::L4,
            rnti,
        };
        encode_pdcch(
            &mut grid,
            &c,
            &alloc,
            &pl,
            123,
            search_space_cinit(rnti, false, 123),
            7,
        );
        let soft = extract_candidate(
            &grid,
            &c,
            4,
            AggregationLevel::L4,
            123,
            search_space_cinit(rnti, false, 123),
            7,
        );
        let res =
            decode_candidate_recover_rnti(&soft, 40, AggregationLevel::L4, 4).expect("recovery");
        assert_eq!(res.rnti, rnti);
        assert_eq!(res.payload, pl);
    }

    #[test]
    fn decode_survives_flat_channel_and_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let c = coreset();
        let mut grid = ResourceGrid::new(51);
        let pl = payload(44);
        let rnti = Rnti(0x17A3);
        let alloc = PdcchAllocation {
            cce_start: 0,
            level: AggregationLevel::L2,
            rnti,
        };
        encode_pdcch(
            &mut grid,
            &c,
            &alloc,
            &pl,
            77,
            search_space_cinit(rnti, true, 77),
            5,
        );
        // Apply a flat channel (gain+rotation) and mild AWGN.
        let h = Cf32::from_polar(0.7, 2.1);
        for sym in 0..1 {
            for k in 0..grid.n_subcarriers() {
                let v = grid.get(sym, k) * h
                    + Cf32::new(rng.gen_range(-0.03..0.03), rng.gen_range(-0.03..0.03));
                grid.set(sym, k, v);
            }
        }
        let soft = extract_candidate(
            &grid,
            &c,
            0,
            AggregationLevel::L2,
            77,
            search_space_cinit(rnti, true, 77),
            5,
        );
        assert!(soft.pilot_snr > 10.0, "pilot snr {}", soft.pilot_snr);
        let res =
            decode_candidate_for_rnti(&soft, 44, rnti, AggregationLevel::L2, 0).expect("decode");
        assert_eq!(res.payload, pl);
    }

    #[test]
    fn candidate_hashing_is_deterministic_and_in_range() {
        for level in AggregationLevel::all() {
            for slot in 0..20 {
                let y = ue_search_space_y(Rnti(0x4601), 1, slot);
                if let Some(cce) = candidate_cce(y, level, 0, 2, 8) {
                    assert!(cce + level.cces() <= 8 || level.cces() > 8);
                    assert_eq!(cce % level.cces(), 0, "aligned to level");
                }
            }
        }
    }

    #[test]
    fn y_recursion_varies_by_slot_and_rnti() {
        let a = ue_search_space_y(Rnti(0x4601), 0, 0);
        let b = ue_search_space_y(Rnti(0x4601), 0, 1);
        let c = ue_search_space_y(Rnti(0x4602), 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn search_budget_admission_rules() {
        let full = SearchBudget::unlimited();
        assert!(full.is_unlimited());
        for level in AggregationLevel::all() {
            assert!(full.admits_ue(level, 10_000));
        }

        let pruned = SearchBudget::pruned(AggregationLevel::L2, 3);
        assert!(!pruned.is_unlimited());
        assert!(!pruned.admits_ue(AggregationLevel::L1, 0), "L1 pruned");
        assert!(pruned.admits_ue(AggregationLevel::L2, 0));
        assert!(pruned.admits_ue(AggregationLevel::L8, 2));
        assert!(!pruned.admits_ue(AggregationLevel::L8, 3), "cap reached");

        let broadcast = SearchBudget::broadcast_only();
        for level in AggregationLevel::all() {
            assert!(!broadcast.admits_ue(level, 0), "no UE decodes at all");
        }
    }

    #[test]
    fn bits_per_cce_matches_re_budget() {
        // 6 REGs × (12-3) data REs × 2 bits = 108 — the E the paper's DCI
        // encoding implies per CCE.
        assert_eq!(BITS_PER_CCE, 108);
        assert_eq!(AggregationLevel::L8.bits(), 864);
    }
}
