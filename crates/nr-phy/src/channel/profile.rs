//! Composite per-UE channel profiles mirroring the Amarisoft channel
//! simulator settings used in the paper's Fig 15: Normal (no emulation),
//! AWGN, Pedestrian, Vehicle, and Urban.
//!
//! Each profile defines a mean SNR and a set of fading taps; the composite
//! produces an instantaneous SNR trace (for the message-fidelity link
//! abstraction) or a complex flat-fading gain (for IQ-fidelity slots —
//! PDCCH bandwidths are narrow enough that a single effective tap per
//! CORESET is an adequate flat-fading approximation).

use super::fading::JakesFader;
use serde::{Deserialize, Serialize};

/// The channel conditions of Fig 15, plus `Normal` (emulator bypassed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelProfile {
    /// No channel emulation: high, stable SNR.
    Normal,
    /// Pure AWGN at a good SNR, no fading.
    Awgn,
    /// EPA-like: low Doppler (5 Hz), mild multipath.
    Pedestrian,
    /// EVA-like: high Doppler (70 Hz), moderate multipath.
    Vehicle,
    /// ETU-like: deep urban multipath, moderate Doppler.
    Urban,
}

impl ChannelProfile {
    /// All profiles in Fig 15's legend order.
    pub fn all() -> [ChannelProfile; 5] {
        [
            ChannelProfile::Normal,
            ChannelProfile::Awgn,
            ChannelProfile::Pedestrian,
            ChannelProfile::Vehicle,
            ChannelProfile::Urban,
        ]
    }

    /// Display name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            ChannelProfile::Normal => "Normal",
            ChannelProfile::Awgn => "AWGN",
            ChannelProfile::Pedestrian => "Pedestrian",
            ChannelProfile::Vehicle => "Vehicle",
            ChannelProfile::Urban => "Urban",
        }
    }

    /// Mean SNR (dB) the profile is run at.
    pub fn mean_snr_db(self) -> f64 {
        match self {
            ChannelProfile::Normal => 28.0,
            ChannelProfile::Awgn => 24.0,
            ChannelProfile::Pedestrian => 17.0,
            ChannelProfile::Vehicle => 13.0,
            ChannelProfile::Urban => 9.0,
        }
    }

    /// Maximum Doppler (Hz) of the fading component.
    pub fn doppler_hz(self) -> f64 {
        match self {
            ChannelProfile::Normal | ChannelProfile::Awgn => 0.0,
            ChannelProfile::Pedestrian => 5.0,
            ChannelProfile::Vehicle => 70.0,
            ChannelProfile::Urban => 30.0,
        }
    }

    /// Fading severity: fraction of received power subject to Rayleigh
    /// fading (the rest is a stable line-of-sight-like component). 1.0 is
    /// pure Rayleigh.
    pub fn fading_fraction(self) -> f64 {
        match self {
            ChannelProfile::Normal | ChannelProfile::Awgn => 0.0,
            ChannelProfile::Pedestrian => 0.5,
            ChannelProfile::Vehicle => 0.7,
            ChannelProfile::Urban => 0.95,
        }
    }
}

impl std::fmt::Display for ChannelProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A stateful per-UE channel: profile + fader + per-UE SNR offset.
#[derive(Debug, Clone)]
pub struct UeChannel {
    profile: ChannelProfile,
    fader: JakesFader,
    /// Static per-UE offset (placement diversity), dB.
    offset_db: f64,
}

impl UeChannel {
    /// Build a channel for one UE. `seed` decorrelates UEs; `offset_db`
    /// models placement (distance/obstruction) diversity.
    pub fn new(profile: ChannelProfile, offset_db: f64, seed: u64) -> UeChannel {
        UeChannel {
            profile,
            fader: JakesFader::new(1.0, profile.doppler_hz(), seed),
            offset_db,
        }
    }

    /// Profile in use.
    pub fn profile(&self) -> ChannelProfile {
        self.profile
    }

    /// Instantaneous SNR (dB) at time `t`.
    pub fn snr_db_at(&self, t: f64) -> f64 {
        let base = self.profile.mean_snr_db() + self.offset_db;
        let ff = self.profile.fading_fraction();
        if ff == 0.0 {
            return base;
        }
        // Rician-style mix: (1-ff) stable + ff·|g|² fading power.
        let g2 = self.fader.gain_at(t).norm_sqr() as f64;
        let lin = (1.0 - ff) + ff * g2;
        base + 10.0 * lin.max(1e-6).log10()
    }

    /// Complex flat-fading gain at time `t` (unit mean power before the
    /// SNR offset; multiply signal by this in IQ paths).
    pub fn gain_at(&self, t: f64) -> crate::complex::Cf32 {
        let ff = self.profile.fading_fraction();
        let amp_off = 10f64.powf(self.offset_db / 20.0) as f32;
        if ff == 0.0 {
            return crate::complex::Cf32::new(amp_off, 0.0);
        }
        let los = crate::complex::Cf32::new(((1.0 - ff) as f32).sqrt(), 0.0);
        let nlos = self.fader.gain_at(t).scale((ff as f32).sqrt());
        (los + nlos).scale(amp_off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_profiles_have_constant_snr() {
        for p in [ChannelProfile::Normal, ChannelProfile::Awgn] {
            let ch = UeChannel::new(p, 0.0, 1);
            let a = ch.snr_db_at(0.0);
            let b = ch.snr_db_at(5.0);
            assert_eq!(a, b);
            assert_eq!(a, p.mean_snr_db());
        }
    }

    #[test]
    fn fading_profiles_vary_over_time() {
        for p in [
            ChannelProfile::Pedestrian,
            ChannelProfile::Vehicle,
            ChannelProfile::Urban,
        ] {
            let ch = UeChannel::new(p, 0.0, 2);
            let samples: Vec<f64> = (0..1000).map(|i| ch.snr_db_at(i as f64 * 0.01)).collect();
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(max - min > 2.0, "{p}: range {}", max - min);
        }
    }

    #[test]
    fn urban_fades_deeper_than_pedestrian() {
        let urban = UeChannel::new(ChannelProfile::Urban, 0.0, 3);
        let ped = UeChannel::new(ChannelProfile::Pedestrian, 0.0, 3);
        let deep = |ch: &UeChannel, mean: f64| {
            (0..5000)
                .map(|i| ch.snr_db_at(i as f64 * 0.002))
                .filter(|&s| s < mean - 6.0)
                .count()
        };
        let u = deep(&urban, ChannelProfile::Urban.mean_snr_db());
        let p = deep(&ped, ChannelProfile::Pedestrian.mean_snr_db());
        assert!(u > p, "urban deep fades {u} ≤ pedestrian {p}");
    }

    #[test]
    fn offset_shifts_snr() {
        let a = UeChannel::new(ChannelProfile::Awgn, -5.0, 4);
        assert_eq!(a.snr_db_at(1.0), ChannelProfile::Awgn.mean_snr_db() - 5.0);
    }

    #[test]
    fn gain_mean_power_is_near_unity() {
        let ch = UeChannel::new(ChannelProfile::Urban, 0.0, 9);
        let n = 20_000;
        let p: f64 = (0..n)
            .map(|i| ch.gain_at(i as f64 * 0.001).norm_sqr() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((p - 1.0).abs() < 0.3, "mean gain power {p}");
    }

    #[test]
    fn profile_ordering_matches_figure_intuition() {
        // Better channels → higher SNR: Normal ≥ AWGN ≥ Ped ≥ Veh ≥ Urban.
        let snrs: Vec<f64> = ChannelProfile::all()
            .iter()
            .map(|p| p.mean_snr_db())
            .collect();
        assert!(snrs.windows(2).all(|w| w[0] >= w[1]));
    }
}
