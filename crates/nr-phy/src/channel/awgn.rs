//! Additive white Gaussian noise.

use crate::complex::Cf32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded complex AWGN source.
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    rng: StdRng,
    /// Total complex noise variance (power), split evenly across I and Q.
    sigma2: f32,
}

impl AwgnChannel {
    /// Noise with total power `sigma2` (per complex sample).
    pub fn new(sigma2: f32, seed: u64) -> AwgnChannel {
        assert!(sigma2 >= 0.0);
        AwgnChannel {
            rng: StdRng::seed_from_u64(seed),
            sigma2,
        }
    }

    /// Construct for a target SNR in dB against unit signal power.
    pub fn from_snr_db(snr_db: f32, seed: u64) -> AwgnChannel {
        AwgnChannel::new(10f32.powf(-snr_db / 10.0), seed)
    }

    /// Configured noise power.
    pub fn sigma2(&self) -> f32 {
        self.sigma2
    }

    /// Draw one noise sample (Box–Muller).
    pub fn sample(&mut self) -> Cf32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..std::f32::consts::TAU);
        let r = (-2.0 * u1.ln()).sqrt() * (self.sigma2 / 2.0).sqrt();
        Cf32::new(r * u2.cos(), r * u2.sin())
    }

    /// Add noise to a sample buffer in place.
    pub fn apply(&mut self, samples: &mut [Cf32]) {
        for s in samples.iter_mut() {
            *s += self.sample();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;

    #[test]
    fn noise_power_matches_configuration() {
        let mut ch = AwgnChannel::new(0.25, 42);
        let samples: Vec<Cf32> = (0..200_000).map(|_| ch.sample()).collect();
        let p = mean_power(&samples);
        assert!((p - 0.25).abs() < 0.01, "measured {p}");
    }

    #[test]
    fn noise_is_zero_mean() {
        let mut ch = AwgnChannel::new(1.0, 7);
        let mut acc = Cf32::ZERO;
        let n = 100_000;
        for _ in 0..n {
            acc += ch.sample();
        }
        let mean = acc / n as f32;
        assert!(mean.abs() < 0.02, "mean {:?}", mean);
    }

    #[test]
    fn snr_constructor_sets_power() {
        let ch = AwgnChannel::from_snr_db(20.0, 1);
        assert!((ch.sigma2() - 0.01).abs() < 1e-6);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = AwgnChannel::new(1.0, 9);
        let mut b = AwgnChannel::new(1.0, 9);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn zero_power_noise_is_silent() {
        let mut ch = AwgnChannel::new(0.0, 3);
        for _ in 0..10 {
            assert_eq!(ch.sample(), Cf32::ZERO);
        }
    }
}
