//! Statistical radio channel models.
//!
//! The paper's Fig 15 experiment drives 64 emulated UEs through the
//! Amarisoft channel simulator's AWGN / Pedestrian / Vehicle / Urban
//! profiles. These modules reproduce that machinery: a white-noise source,
//! Jakes-style time-correlated Rayleigh fading with 3GPP-flavoured delay
//! profiles, and a composite per-UE channel that produces both an SNR trace
//! (message fidelity) and complex gains (IQ fidelity).

mod awgn;
mod fading;
mod profile;

pub use awgn::AwgnChannel;
pub use fading::JakesFader;
pub use profile::{ChannelProfile, UeChannel};
