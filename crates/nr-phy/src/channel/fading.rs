//! Time-correlated Rayleigh fading via the Jakes sum-of-sinusoids model.
//!
//! Each fader produces a complex gain process whose autocorrelation follows
//! the classic Clarke/Jakes Doppler spectrum for a given maximum Doppler
//! frequency — 5 Hz-ish for pedestrians, ~70 Hz for vehicles at mid-band.

use crate::complex::Cf32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of sinusoids in the sum (classic Jakes uses 8–16).
const N_OSCILLATORS: usize = 12;

/// A single-tap Jakes fader.
#[derive(Debug, Clone)]
pub struct JakesFader {
    doppler_hz: f64,
    /// Per-oscillator arrival angles and phases.
    cos_theta: [f64; N_OSCILLATORS],
    phase_i: [f64; N_OSCILLATORS],
    phase_q: [f64; N_OSCILLATORS],
    /// Mean power of the tap.
    power: f64,
}

impl JakesFader {
    /// A fader with `power` mean gain, maximum Doppler `doppler_hz`, seeded
    /// deterministically.
    pub fn new(power: f64, doppler_hz: f64, seed: u64) -> JakesFader {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cos_theta = [0.0; N_OSCILLATORS];
        let mut phase_i = [0.0; N_OSCILLATORS];
        let mut phase_q = [0.0; N_OSCILLATORS];
        for k in 0..N_OSCILLATORS {
            // Random arrival angles avoid the periodicity artifacts of the
            // deterministic Jakes angle grid.
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            cos_theta[k] = theta.cos();
            phase_i[k] = rng.gen_range(0.0..std::f64::consts::TAU);
            phase_q[k] = rng.gen_range(0.0..std::f64::consts::TAU);
        }
        JakesFader {
            doppler_hz,
            cos_theta,
            phase_i,
            phase_q,
            power,
        }
    }

    /// Complex gain at absolute time `t` seconds.
    pub fn gain_at(&self, t: f64) -> Cf32 {
        let mut re = 0.0f64;
        let mut im = 0.0f64;
        for k in 0..N_OSCILLATORS {
            let w = std::f64::consts::TAU * self.doppler_hz * self.cos_theta[k] * t;
            re += (w + self.phase_i[k]).cos();
            im += (w + self.phase_q[k]).sin();
        }
        let scale = (self.power / N_OSCILLATORS as f64).sqrt();
        Cf32::new((re * scale) as f32, (im * scale) as f32)
    }

    /// Maximum Doppler shift.
    pub fn doppler_hz(&self) -> f64 {
        self.doppler_hz
    }

    /// Coherence time estimate (`0.423/f_d`), the time over which the gain
    /// stays correlated.
    pub fn coherence_time_s(&self) -> f64 {
        if self.doppler_hz <= 0.0 {
            f64::INFINITY
        } else {
            0.423 / self.doppler_hz
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_power_matches_configuration() {
        let f = JakesFader::new(2.0, 50.0, 3);
        let n = 20_000;
        let p: f64 = (0..n)
            .map(|i| f.gain_at(i as f64 * 1e-3).norm_sqr() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((p - 2.0).abs() < 0.35, "measured {p}");
    }

    #[test]
    fn gain_is_correlated_within_coherence_time() {
        let f = JakesFader::new(1.0, 10.0, 7);
        let tc = f.coherence_time_s();
        let g0 = f.gain_at(1.0);
        let g1 = f.gain_at(1.0 + tc / 50.0);
        // Samples a tiny fraction of Tc apart are nearly identical.
        assert!((g0 - g1).abs() < 0.15 * g0.abs().max(0.1));
    }

    #[test]
    fn gain_decorrelates_over_many_coherence_times() {
        let f = JakesFader::new(1.0, 50.0, 11);
        // Correlation over lags ≫ Tc should be low on average.
        let n = 2000;
        let dt = 0.25; // 12.5 coherence times at 50 Hz
        let mut corr = 0.0f64;
        let mut e0 = 0.0f64;
        let mut e1 = 0.0f64;
        for i in 0..n {
            let a = f.gain_at(i as f64 * 0.001);
            let b = f.gain_at(i as f64 * 0.001 + dt);
            corr += (a * b.conj()).re as f64;
            e0 += a.norm_sqr() as f64;
            e1 += b.norm_sqr() as f64;
        }
        let rho = corr / (e0 * e1).sqrt();
        assert!(rho.abs() < 0.35, "rho {rho}");
    }

    #[test]
    fn zero_doppler_is_static() {
        let f = JakesFader::new(1.0, 0.0, 5);
        let g0 = f.gain_at(0.0);
        let g1 = f.gain_at(100.0);
        assert!((g0 - g1).abs() < 1e-6);
        assert!(f.coherence_time_s().is_infinite());
    }

    #[test]
    fn different_seeds_give_different_processes() {
        let a = JakesFader::new(1.0, 20.0, 1).gain_at(0.5);
        let b = JakesFader::new(1.0, 20.0, 2).gain_at(0.5);
        assert!((a - b).abs() > 1e-3);
    }
}
