//! Frame structure: system frame / slot indexing and TDD UL-DL patterns.
//!
//! The paper's TDD cells (srsRAN n41, Mosolab n48, Amarisoft n78) alternate
//! downlink and uplink slots following a `tdd-UL-DL-ConfigCommon` pattern
//! broadcast in SIB1; NR-Scope must know the pattern to attribute PDCCH
//! monitoring occasions correctly.

use crate::numerology::{Numerology, SFN_PERIOD};
use serde::{Deserialize, Serialize};

/// Transmission direction of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotDirection {
    /// All 14 symbols downlink.
    Downlink,
    /// All 14 symbols uplink.
    Uplink,
    /// Special/flexible slot: leading DL symbols, gap, trailing UL symbols.
    Special,
}

/// A `tdd-UL-DL-ConfigCommon`-style repeating pattern.
///
/// The canonical mid-band configuration (and the srsRAN default the paper's
/// open-source cell uses) is `DDDDDDDSUU`: 7 downlink slots, one special
/// slot, two uplink slots over a 5 ms period at 30 kHz SCS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TddPattern {
    /// Period of the pattern in slots.
    pub period_slots: usize,
    /// Number of leading full-downlink slots.
    pub dl_slots: usize,
    /// Number of trailing full-uplink slots.
    pub ul_slots: usize,
    /// Downlink symbols at the head of the special slot.
    pub special_dl_symbols: usize,
    /// Uplink symbols at the tail of the special slot.
    pub special_ul_symbols: usize,
}

impl TddPattern {
    /// The common `DDDDDDDSUU` pattern (5 ms period at µ=1).
    pub fn dddddddsuu() -> TddPattern {
        TddPattern {
            period_slots: 10,
            dl_slots: 7,
            ul_slots: 2,
            special_dl_symbols: 6,
            special_ul_symbols: 4,
        }
    }

    /// A `DDDSU` pattern (2.5 ms period at µ=1), used by some operators.
    pub fn dddsu() -> TddPattern {
        TddPattern {
            period_slots: 5,
            dl_slots: 3,
            ul_slots: 1,
            special_dl_symbols: 10,
            special_ul_symbols: 2,
        }
    }

    /// An FDD carrier modelled as all-downlink on the DL centre frequency
    /// (NR-Scope listens to the downlink carrier only; paper §3).
    pub fn fdd() -> TddPattern {
        TddPattern {
            period_slots: 1,
            dl_slots: 1,
            ul_slots: 0,
            special_dl_symbols: 0,
            special_ul_symbols: 0,
        }
    }

    /// Direction of `slot_in_frame` under this pattern.
    pub fn direction(&self, slot_idx: usize) -> SlotDirection {
        let pos = slot_idx % self.period_slots;
        if pos < self.dl_slots {
            SlotDirection::Downlink
        } else if pos >= self.period_slots - self.ul_slots {
            SlotDirection::Uplink
        } else {
            SlotDirection::Special
        }
    }

    /// Whether the PDCCH can be monitored in this slot (any DL symbols).
    pub fn has_downlink(&self, slot_idx: usize) -> bool {
        match self.direction(slot_idx) {
            SlotDirection::Downlink => true,
            SlotDirection::Special => self.special_dl_symbols > 0,
            SlotDirection::Uplink => false,
        }
    }

    /// Fraction of slots carrying downlink symbols, used by capacity math.
    pub fn downlink_fraction(&self) -> f64 {
        let special = self.period_slots - self.dl_slots - self.ul_slots;
        (self.dl_slots as f64
            + special as f64 * self.special_dl_symbols as f64
                / crate::numerology::SYMBOLS_PER_SLOT as f64)
            / self.period_slots as f64
    }
}

/// Advance an SFN by `frames`, wrapping at the mod-1024 air-interface
/// period. The canonical way to derive a future (or far-future) frame
/// number — `sfn + n` overflows the air meaning as soon as it crosses
/// 1024, even though the `u32` arithmetic happily continues.
pub fn sfn_add(sfn: u32, frames: u64) -> u32 {
    debug_assert!(sfn < SFN_PERIOD);
    ((sfn as u64 + frames) % SFN_PERIOD as u64) as u32
}

/// Forward distance in frames from SFN `from` to SFN `to` on the mod-1024
/// circle: how many frames elapse before the counter next reads `to`.
/// Always in `[0, 1024)`.
pub fn sfn_forward(from: u32, to: u32) -> u32 {
    debug_assert!(from < SFN_PERIOD && to < SFN_PERIOD);
    (to + SFN_PERIOD - from) % SFN_PERIOD
}

/// Signed shortest distance in frames from SFN `a` to SFN `b` on the
/// mod-1024 circle, in `(-512, 512]`. The safe way to compare two air
/// frame numbers for "before/after": plain subtraction underflows (or
/// inverts its meaning) at every wrap.
pub fn sfn_delta(a: u32, b: u32) -> i32 {
    let fwd = sfn_forward(a, b);
    if fwd <= SFN_PERIOD / 2 {
        fwd as i32
    } else {
        fwd as i32 - SFN_PERIOD as i32
    }
}

/// A monotonically advancing (SFN, slot) clock.
///
/// Wraps at SFN 1024 exactly like the over-the-air system frame number, but
/// also exposes a non-wrapping absolute TTI counter that the telemetry log
/// uses as its timestamp (the paper matches records on "timestamp and TTI
/// index").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotClock {
    /// Numerology fixing slots-per-frame.
    pub numerology: Numerology,
    /// System frame number, 0..1024.
    pub sfn: u32,
    /// Slot within the frame.
    pub slot: usize,
    /// Absolute slot count since the clock started (never wraps).
    pub absolute_slot: u64,
}

impl SlotClock {
    /// A clock starting at SFN 0, slot 0.
    pub fn new(numerology: Numerology) -> SlotClock {
        SlotClock {
            numerology,
            sfn: 0,
            slot: 0,
            absolute_slot: 0,
        }
    }

    /// Advance one slot.
    pub fn tick(&mut self) {
        self.absolute_slot += 1;
        self.slot += 1;
        if self.slot == self.numerology.slots_per_frame() {
            self.slot = 0;
            self.sfn = (self.sfn + 1) % SFN_PERIOD;
        }
    }

    /// Elapsed time since the clock epoch, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.absolute_slot as f64 * self.numerology.slot_duration_s()
    }

    /// Subframe (millisecond within the frame) of the current slot.
    pub fn subframe(&self) -> usize {
        self.slot / self.numerology.slots_per_subframe()
    }

    /// Whether the current slot is the first of its frame.
    pub fn is_frame_start(&self) -> bool {
        self.slot == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dddddddsuu_layout() {
        let p = TddPattern::dddddddsuu();
        let dirs: Vec<SlotDirection> = (0..10).map(|s| p.direction(s)).collect();
        assert_eq!(&dirs[0..7], &[SlotDirection::Downlink; 7]);
        assert_eq!(dirs[7], SlotDirection::Special);
        assert_eq!(&dirs[8..10], &[SlotDirection::Uplink; 2]);
        // Repeats with its period.
        assert_eq!(p.direction(10), SlotDirection::Downlink);
        assert_eq!(p.direction(17), SlotDirection::Special);
    }

    #[test]
    fn fdd_is_always_downlink() {
        let p = TddPattern::fdd();
        for s in 0..37 {
            assert_eq!(p.direction(s), SlotDirection::Downlink);
            assert!(p.has_downlink(s));
        }
        assert_eq!(p.downlink_fraction(), 1.0);
    }

    #[test]
    fn downlink_fraction_counts_special_symbols() {
        let p = TddPattern::dddddddsuu();
        let expect = (7.0 + 6.0 / 14.0) / 10.0;
        assert!((p.downlink_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn sfn_helpers_respect_the_wrap() {
        assert_eq!(sfn_add(1020, 10), 6);
        assert_eq!(sfn_add(0, 1024 * 7 + 5), 5);
        assert_eq!(sfn_forward(1020, 6), 10);
        assert_eq!(sfn_forward(6, 1020), 1014);
        assert_eq!(sfn_forward(512, 512), 0);
        // Signed distance: short hops keep their sign across the wrap.
        assert_eq!(sfn_delta(1020, 6), 10);
        assert_eq!(sfn_delta(6, 1020), -10);
        assert_eq!(sfn_delta(0, 512), 512, "antipode resolves forward");
        assert_eq!(sfn_delta(100, 100), 0);
    }

    #[test]
    fn clock_wraps_sfn_at_1024() {
        let mut c = SlotClock::new(Numerology::Mu1);
        let slots = 1024 * 20 + 3;
        for _ in 0..slots {
            c.tick();
        }
        assert_eq!(c.sfn, 0);
        assert_eq!(c.slot, 3);
        assert_eq!(c.absolute_slot, slots as u64);
    }

    #[test]
    fn clock_elapsed_time() {
        let mut c = SlotClock::new(Numerology::Mu1);
        for _ in 0..2000 {
            c.tick();
        }
        // 2000 half-millisecond TTIs = 1 s.
        assert!((c.elapsed_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subframe_tracks_milliseconds() {
        let mut c = SlotClock::new(Numerology::Mu1);
        assert_eq!(c.subframe(), 0);
        c.tick();
        assert_eq!(c.subframe(), 0);
        c.tick();
        assert_eq!(c.subframe(), 1);
    }
}
