//! In-tree radix-2 decimation-in-time FFT.
//!
//! The paper identifies per-slot FFTs as the dominant signal-processing cost
//! (§5.3.2, `O(n log n)`), so the transform is implemented here rather than
//! behind an external crate: iterative Cooley–Tukey with precomputed twiddle
//! tables, power-of-two sizes only (all NR FFT sizes are powers of two).

use crate::complex::Cf32;

/// A planned FFT of a fixed power-of-two size (forward and inverse).
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    /// Twiddles for the forward transform: `e^{-2πik/N}` for k < N/2.
    twiddles: Vec<Cf32>,
    /// Bit-reversal permutation table.
    bitrev: Vec<u32>,
}

impl Fft {
    /// Plan an FFT of `size` points. Panics if `size` is not a power of two.
    pub fn new(size: usize) -> Fft {
        assert!(
            size.is_power_of_two() && size >= 2,
            "FFT size must be a power of two ≥ 2"
        );
        let twiddles = (0..size / 2)
            .map(|k| Cf32::from_angle(-2.0 * std::f32::consts::PI * k as f32 / size as f32))
            .collect();
        let bits = size.trailing_zeros();
        let bitrev = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        Fft {
            size,
            twiddles,
            bitrev,
        }
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward FFT (no normalisation).
    pub fn forward(&self, data: &mut [Cf32]) {
        self.run(data, false);
    }

    /// In-place inverse FFT, normalised by `1/N` so that
    /// `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [Cf32]) {
        self.run(data, true);
        let scale = 1.0 / self.size as f32;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    fn run(&self, data: &mut [Cf32], inverse: bool) {
        assert_eq!(data.len(), self.size, "buffer length must equal FFT size");
        // Bit-reversal reordering.
        for i in 0..self.size {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies.
        let mut len = 2;
        while len <= self.size {
            let half = len / 2;
            let stride = self.size / len;
            for start in (0..self.size).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cf32, b: Cf32, tol: f32) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let fft = Fft::new(64);
        let mut x = vec![Cf32::ZERO; 64];
        x[0] = Cf32::ONE;
        fft.forward(&mut x);
        for v in &x {
            assert!(close(*v, Cf32::ONE, 1e-4));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let fft = Fft::new(n);
        let k0 = 37;
        let mut x: Vec<Cf32> = (0..n)
            .map(|t| Cf32::from_angle(2.0 * std::f32::consts::PI * k0 as f32 * t as f32 / n as f32))
            .collect();
        fft.forward(&mut x);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f32).abs() < 1e-2);
            } else {
                assert!(v.abs() < 1e-2, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let n = 1024;
        let fft = Fft::new(n);
        let orig: Vec<Cf32> = (0..n)
            .map(|i| Cf32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        let mut x = orig.clone();
        fft.forward(&mut x);
        fft.inverse(&mut x);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!(close(*a, *b, 1e-3));
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 512;
        let fft = Fft::new(n);
        let orig: Vec<Cf32> = (0..n)
            .map(|i| Cf32::new(((i * 7 + 3) % 13) as f32 - 6.0, ((i * 5) % 11) as f32 - 5.0))
            .collect();
        let time_energy: f32 = orig.iter().map(|v| v.norm_sqr()).sum();
        let mut x = orig;
        fft.forward(&mut x);
        let freq_energy: f32 = x.iter().map(|v| v.norm_sqr()).sum();
        assert!((freq_energy / n as f32 - time_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    fn matches_naive_dft() {
        let n = 32;
        let fft = Fft::new(n);
        let orig: Vec<Cf32> = (0..n)
            .map(|i| Cf32::new((i as f32).sin(), (i as f32 * 2.0).cos()))
            .collect();
        let mut fast = orig.clone();
        fft.forward(&mut fast);
        for (k, f) in fast.iter().enumerate() {
            let mut acc = Cf32::ZERO;
            for (t, v) in orig.iter().enumerate() {
                acc +=
                    *v * Cf32::from_angle(-2.0 * std::f32::consts::PI * (k * t) as f32 / n as f32);
            }
            assert!(close(*f, acc, 1e-3), "bin {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        Fft::new(48);
    }
}
