//! 5G NR numerology (38.211 §4): subcarrier spacing, slot and symbol timing.
//!
//! Unlike LTE's fixed 15 kHz grid, NR scales the subcarrier spacing as
//! `15·2^µ` kHz, shrinking the slot (TTI) to `1/2^µ` ms. The paper's cells
//! use µ=0 (T-Mobile FDD) and µ=1 (all the 30 kHz TDD cells).

use serde::{Deserialize, Serialize};

/// Subcarriers per physical resource block (fixed across numerologies).
pub const SUBCARRIERS_PER_PRB: usize = 12;
/// OFDM symbols per slot with the normal cyclic prefix.
pub const SYMBOLS_PER_SLOT: usize = 14;
/// Subframes (1 ms each) per 10 ms radio frame.
pub const SUBFRAMES_PER_FRAME: usize = 10;
/// System frame number period (SFN wraps at 1024 frames = 10.24 s).
pub const SFN_PERIOD: u32 = 1024;

/// A 5G NR numerology µ ∈ {0, 1, 2} (15/30/60 kHz — the set the paper's
/// telemetry tool supports; µ=3/4 are mmWave-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Numerology {
    /// µ=0: 15 kHz SCS, 1 ms slot (LTE-compatible grid; T-Mobile n25/n71).
    Mu0,
    /// µ=1: 30 kHz SCS, 0.5 ms slot (mid-band TDD; srsRAN/Mosolab/Amarisoft).
    Mu1,
    /// µ=2: 60 kHz SCS, 0.25 ms slot.
    Mu2,
}

impl Numerology {
    /// The µ exponent.
    pub fn mu(self) -> u32 {
        match self {
            Numerology::Mu0 => 0,
            Numerology::Mu1 => 1,
            Numerology::Mu2 => 2,
        }
    }

    /// Construct from the µ exponent.
    pub fn from_mu(mu: u32) -> Option<Numerology> {
        match mu {
            0 => Some(Numerology::Mu0),
            1 => Some(Numerology::Mu1),
            2 => Some(Numerology::Mu2),
            _ => None,
        }
    }

    /// Subcarrier spacing in Hz.
    pub fn scs_hz(self) -> f64 {
        15_000.0 * (1u32 << self.mu()) as f64
    }

    /// Subcarrier spacing in kHz (15, 30 or 60).
    pub fn scs_khz(self) -> u32 {
        15 * (1 << self.mu())
    }

    /// Slots per 1 ms subframe.
    pub fn slots_per_subframe(self) -> usize {
        1 << self.mu()
    }

    /// Slots per 10 ms frame.
    pub fn slots_per_frame(self) -> usize {
        SUBFRAMES_PER_FRAME * self.slots_per_subframe()
    }

    /// Slot (TTI) duration in seconds: 1 ms / 2^µ.
    pub fn slot_duration_s(self) -> f64 {
        1.0e-3 / (1u32 << self.mu()) as f64
    }

    /// Slot duration in microseconds.
    pub fn slot_duration_us(self) -> f64 {
        self.slot_duration_s() * 1e6
    }

    /// Smallest power-of-two FFT size that fits `n_prb` resource blocks
    /// with a guard band, mirroring how an SDR receiver picks its FFT.
    pub fn fft_size(self, n_prb: usize) -> usize {
        let used = n_prb * SUBCARRIERS_PER_PRB;
        let mut n = 128;
        while n < used * 9 / 8 + 1 {
            n *= 2;
        }
        n
    }

    /// Sample rate for a given FFT size: `fft_size × SCS`.
    pub fn sample_rate_hz(self, fft_size: usize) -> f64 {
        fft_size as f64 * self.scs_hz()
    }

    /// Number of PRBs a given channel bandwidth supports, per the 38.101-1
    /// §5.3.2 transmission-bandwidth tables (FR1, the bands the paper uses).
    pub fn max_prb_for_bandwidth(self, bandwidth_hz: f64) -> usize {
        let mhz = (bandwidth_hz / 1e6).round() as u32;
        // Subset of Table 5.3.2-1 covering the paper's configurations.
        match (self, mhz) {
            (Numerology::Mu0, 5) => 25,
            (Numerology::Mu0, 10) => 52,
            (Numerology::Mu0, 15) => 79,
            (Numerology::Mu0, 20) => 106,
            (Numerology::Mu0, 25) => 133,
            (Numerology::Mu0, 30) => 160,
            (Numerology::Mu0, 40) => 216,
            (Numerology::Mu0, 50) => 270,
            (Numerology::Mu1, 5) => 11,
            (Numerology::Mu1, 10) => 24,
            (Numerology::Mu1, 15) => 38,
            (Numerology::Mu1, 20) => 51,
            (Numerology::Mu1, 25) => 65,
            (Numerology::Mu1, 30) => 78,
            (Numerology::Mu1, 40) => 106,
            (Numerology::Mu1, 50) => 133,
            (Numerology::Mu1, 60) => 162,
            (Numerology::Mu1, 80) => 217,
            (Numerology::Mu1, 100) => 273,
            (Numerology::Mu2, 10) => 11,
            (Numerology::Mu2, 15) => 18,
            (Numerology::Mu2, 20) => 24,
            (Numerology::Mu2, 40) => 51,
            (Numerology::Mu2, 50) => 65,
            (Numerology::Mu2, 100) => 135,
            // Fall back to the asymptotic 90%-ish spectral occupancy rule.
            _ => {
                let used = bandwidth_hz * 0.9;
                (used / (self.scs_hz() * SUBCARRIERS_PER_PRB as f64)).floor() as usize
            }
        }
    }

    /// Normal-CP cyclic prefix length in samples for a symbol index within a
    /// half-subframe (0.5 ms), per 38.211 §5.3.1: the first symbol of each
    /// half-subframe gets the longer CP.
    pub fn cp_len(self, fft_size: usize, symbol_in_half_subframe: usize) -> usize {
        // Base CP is 144 samples at the 2048-FFT reference scale; the long CP
        // adds 16·2^µ reference samples to the first symbol.
        let base = 144 * fft_size / 2048;
        if symbol_in_half_subframe == 0 {
            base + 16 * fft_size / 2048 * (1 << self.mu())
        } else {
            base
        }
    }

    /// Symbols per half-subframe (0.5 ms): 7·2^µ.
    pub fn symbols_per_half_subframe(self) -> usize {
        7 * (1 << self.mu())
    }

    /// Total samples in one slot (14 symbols + CPs) for a given FFT size.
    ///
    /// `slot_in_frame` matters for µ=2, where two slots share one 0.5 ms
    /// half-subframe and only the first carries the long cyclic prefix.
    pub fn samples_per_slot(self, fft_size: usize, slot_in_frame: usize) -> usize {
        (0..SYMBOLS_PER_SLOT)
            .map(|l| {
                fft_size + self.cp_len(fft_size, self.symbol_in_half_subframe(slot_in_frame, l))
            })
            .sum()
    }

    /// Index of a slot-relative symbol within its 0.5 ms half-subframe —
    /// determines whether it carries the long CP (index 0 does).
    pub fn symbol_in_half_subframe(self, slot_in_frame: usize, symbol_in_slot: usize) -> usize {
        let per_half = self.symbols_per_half_subframe();
        let slots_per_half = per_half / SYMBOLS_PER_SLOT; // 2^µ / 2, at least 1 for µ≥1
        if slots_per_half <= 1 {
            // µ ∈ {0, 1}: every slot starts at (or spans past) a half-subframe
            // boundary; µ=0 slots contain two half-subframes of 7 symbols.
            symbol_in_slot % per_half
        } else {
            let pos_in_half = slot_in_frame % slots_per_half;
            pos_in_half * SYMBOLS_PER_SLOT + symbol_in_slot
        }
    }
}

impl std::fmt::Display for Numerology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "µ={} ({} kHz)", self.mu(), self.scs_khz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tti_durations_match_paper() {
        // Paper §3 Preliminaries: TTIs of 1, 0.5, and 0.25 ms.
        assert_eq!(Numerology::Mu0.slot_duration_us(), 1000.0);
        assert_eq!(Numerology::Mu1.slot_duration_us(), 500.0);
        assert_eq!(Numerology::Mu2.slot_duration_us(), 250.0);
    }

    #[test]
    fn prb_tables_match_paper_cells() {
        // srsRAN/Mosolab/Amarisoft: 20 MHz at 30 kHz SCS → 51 PRB.
        assert_eq!(Numerology::Mu1.max_prb_for_bandwidth(20e6), 51);
        // T-Mobile cell 1: 10 MHz at 15 kHz → 52 PRB.
        assert_eq!(Numerology::Mu0.max_prb_for_bandwidth(10e6), 52);
        // T-Mobile cell 2: 15 MHz at 15 kHz → 79 PRB.
        assert_eq!(Numerology::Mu0.max_prb_for_bandwidth(15e6), 79);
    }

    #[test]
    fn fft_size_covers_used_subcarriers() {
        for (n, prb) in [
            (Numerology::Mu1, 51),
            (Numerology::Mu0, 52),
            (Numerology::Mu0, 79),
            (Numerology::Mu1, 273),
        ] {
            let fft = n.fft_size(prb);
            assert!(fft >= prb * SUBCARRIERS_PER_PRB);
            assert!(fft.is_power_of_two());
        }
    }

    #[test]
    fn slots_per_frame_scale_with_mu() {
        assert_eq!(Numerology::Mu0.slots_per_frame(), 10);
        assert_eq!(Numerology::Mu1.slots_per_frame(), 20);
        assert_eq!(Numerology::Mu2.slots_per_frame(), 40);
    }

    #[test]
    fn frame_samples_equal_sample_rate_times_duration() {
        for n in [Numerology::Mu0, Numerology::Mu1, Numerology::Mu2] {
            let fft = 1024;
            let fs = n.sample_rate_hz(fft);
            let frame_expect = (fs * 10.0e-3).round() as usize;
            // Long/short CP bookkeeping must conserve total frame samples.
            let frame_actual: usize = (0..n.slots_per_frame())
                .map(|s| n.samples_per_slot(fft, s))
                .sum();
            assert_eq!(frame_actual, frame_expect, "{n}");
        }
    }

    #[test]
    fn mu2_slots_in_one_half_subframe_differ_by_long_cp() {
        let n = Numerology::Mu2;
        let a = n.samples_per_slot(1024, 0);
        let b = n.samples_per_slot(1024, 1);
        assert!(a > b, "first slot of the half-subframe carries the long CP");
        // Both together must exactly fill 0.25+0.25 = 0.5 ms.
        let fs = n.sample_rate_hz(1024);
        assert_eq!(a + b, (fs * 0.5e-3).round() as usize);
    }

    #[test]
    fn first_symbol_cp_is_longer() {
        let n = Numerology::Mu1;
        assert!(n.cp_len(1024, 0) > n.cp_len(1024, 1));
        assert_eq!(n.cp_len(1024, 1), n.cp_len(1024, 6));
    }
}
