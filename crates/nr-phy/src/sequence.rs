//! Pseudo-random (Gold) sequence generation, 38.211 §5.2.1.
//!
//! Every scrambling operation in NR — PDCCH payload scrambling, DMRS
//! generation, PDSCH scrambling — derives from one length-31 Gold sequence
//! parameterised by a 31-bit `c_init`. The generator is
//!
//! ```text
//! x1(n+31) = (x1(n+3) + x1(n)) mod 2              x1 init: 1,0,0,...,0
//! x2(n+31) = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2   x2 init: c_init
//! c(n)     = (x1(n + Nc) + x2(n + Nc)) mod 2      Nc = 1600
//! ```

/// Offset into the m-sequences where the output sequence starts.
pub const NC: usize = 1600;

/// Iterator-style Gold sequence generator.
///
/// Construction advances both LFSRs past the `Nc` warm-up so that `next_bit`
/// yields `c(0), c(1), …` directly.
#[derive(Debug, Clone)]
pub struct GoldSequence {
    x1: u32,
    x2: u32,
}

impl GoldSequence {
    /// Create a generator for the given `c_init` (only the low 31 bits are
    /// used, matching the spec's 31-bit initialiser).
    pub fn new(c_init: u32) -> GoldSequence {
        let mut g = GoldSequence {
            x1: 1,
            x2: c_init & 0x7FFF_FFFF,
        };
        for _ in 0..NC {
            g.step();
        }
        g
    }

    #[inline]
    fn step(&mut self) {
        // Register bit k holds x(n+k); compute the new x(n+31) and shift.
        let n1 = ((self.x1 >> 3) ^ self.x1) & 1;
        let n2 = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        self.x1 = (self.x1 >> 1) | (n1 << 30);
        self.x2 = (self.x2 >> 1) | (n2 << 30);
    }

    /// Produce the next scrambling bit `c(n)`.
    #[inline]
    pub fn next_bit(&mut self) -> u8 {
        let out = ((self.x1 ^ self.x2) & 1) as u8;
        self.step();
        out
    }

    /// Produce the next `n` bits as a vector.
    pub fn take_bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Skip `n` bits (cheap fast-forward for offset-indexed sequences).
    pub fn skip(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// Generate `len` bits of the Gold sequence for `c_init` in one call.
pub fn gold_bits(c_init: u32, len: usize) -> Vec<u8> {
    GoldSequence::new(c_init).take_bits(len)
}

/// XOR-scramble `bits` in place with the Gold sequence for `c_init`.
pub fn scramble_in_place(bits: &mut [u8], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    for b in bits.iter_mut() {
        *b ^= g.next_bit();
    }
}

/// `c_init` for PDCCH data scrambling (38.211 §7.3.2.3):
/// `(n_rnti · 2^16 + n_id) mod 2^31`. For a UE-specific search space the
/// gNB may configure `n_id`/`n_rnti`; for the common search space they
/// default to the cell id and 0.
pub fn pdcch_scrambling_cinit(n_rnti: u16, n_id: u16) -> u32 {
    (((n_rnti as u32) << 16) + n_id as u32) & 0x7FFF_FFFF
}

/// `c_init` for the PDCCH DMRS (38.211 §7.4.1.3.1) for a given symbol:
/// `(2^17 (14·ns + l + 1)(2·N_id + 1) + 2·N_id) mod 2^31`.
pub fn pdcch_dmrs_cinit(slot: usize, symbol: usize, n_id: u16) -> u32 {
    let ns = slot as u64;
    let l = symbol as u64;
    let nid = n_id as u64;
    ((((1u64 << 17) * (14 * ns + l + 1) * (2 * nid + 1) + 2 * nid) % (1u64 << 31)) & 0x7FFF_FFFF)
        as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_deterministic() {
        let a = gold_bits(0x12345, 256);
        let b = gold_bits(0x12345, 256);
        assert_eq!(a, b);
    }

    #[test]
    fn different_cinit_gives_different_sequence() {
        assert_ne!(gold_bits(1, 128), gold_bits(2, 128));
    }

    #[test]
    fn scramble_is_involution() {
        let orig: Vec<u8> = (0..200).map(|i| (i % 2) as u8).collect();
        let mut x = orig.clone();
        scramble_in_place(&mut x, 0xABCDE);
        assert_ne!(x, orig);
        scramble_in_place(&mut x, 0xABCDE);
        assert_eq!(x, orig);
    }

    #[test]
    fn skip_matches_take() {
        let mut a = GoldSequence::new(77);
        let mut b = GoldSequence::new(77);
        let bits = a.take_bits(100);
        b.skip(60);
        assert_eq!(b.take_bits(40), bits[60..].to_vec());
    }

    #[test]
    fn sequence_is_balanced() {
        // A Gold sequence is near-balanced; over 10⁴ bits the ones-density
        // must be close to 1/2 for any init.
        for c_init in [1u32, 0x4601_0000, 0x7FFF_FFFF] {
            let bits = gold_bits(c_init, 10_000);
            let ones: usize = bits.iter().map(|&b| b as usize).sum();
            assert!(
                (ones as f64 / 10_000.0 - 0.5).abs() < 0.02,
                "c_init={c_init:#x} ones={ones}"
            );
        }
    }

    #[test]
    fn cinit_formulas_stay_in_31_bits() {
        assert!(pdcch_scrambling_cinit(0xFFFF, 1007) <= 0x7FFF_FFFF);
        assert!(pdcch_dmrs_cinit(159, 13, 1007) <= 0x7FFF_FFFF);
    }

    #[test]
    fn cached_gold_matches_uncached() {
        for c_init in [1u32, 0x4601_007B, 0x7FFF_FFFF] {
            assert_eq!(*gold_bits_cached(c_init, 93), gold_bits(c_init, 93));
            // Second call hits the cache and must agree too.
            assert_eq!(*gold_bits_cached(c_init, 93), gold_bits(c_init, 93));
        }
    }

    #[test]
    fn dmrs_cinit_distinguishes_symbols_and_slots() {
        let a = pdcch_dmrs_cinit(0, 0, 500);
        let b = pdcch_dmrs_cinit(0, 1, 500);
        let c = pdcch_dmrs_cinit(1, 0, 500);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

/// Key: (c_init, length). Value: the generated sequence, shared.
type GoldCacheMap = std::collections::HashMap<(u32, usize), std::rc::Rc<Vec<u8>>>;

thread_local! {
    /// Per-thread memo of generated sequences. Blind decoding re-derives
    /// the same descrambling sequences for every candidate × RNTI
    /// hypothesis; without this cache the 1600-step Gold warm-up dominates
    /// the per-slot cost at high UE counts.
    static GOLD_CACHE: std::cell::RefCell<GoldCacheMap> =
        std::cell::RefCell::new(GoldCacheMap::new());
}

/// Upper bound on cached sequences per thread (entries are ~100 B; this
/// bounds the cache to a few MB even with thousands of tracked UEs).
const GOLD_CACHE_CAP: usize = 16_384;

/// Cached variant of [`gold_bits`] for hot decode loops. Returns a shared
/// handle; contents are identical to `gold_bits(c_init, len)`.
pub fn gold_bits_cached(c_init: u32, len: usize) -> std::rc::Rc<Vec<u8>> {
    GOLD_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(seq) = cache.get(&(c_init, len)) {
            return seq.clone();
        }
        if cache.len() >= GOLD_CACHE_CAP {
            cache.clear();
        }
        let seq = std::rc::Rc::new(gold_bits(c_init, len));
        cache.insert((c_init, len), seq.clone());
        seq
    })
}
