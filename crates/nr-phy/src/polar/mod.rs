//! Polar coding for the NR control channels (38.212 §5.3.1).
//!
//! The PDCCH (and PBCH) protect their payloads with a CRC-aided polar code.
//! This module provides:
//!
//! * [`construction`] — code construction: reliability ordering via the
//!   β-expansion (polarization-weight) method. 3GPP publishes a fixed
//!   reliability table derived from the same principle; using the
//!   β-expansion directly keeps the implementation self-contained and is
//!   transparent to every consumer because encoder and decoder share it
//!   (documented in `DESIGN.md`).
//! * [`encode`] — the Arikan butterfly transform `x = u·F^{⊗n}`.
//! * [`ratematch`] — mother-code length selection and
//!   puncture/shorten/repeat rate matching (spec §5.3.1/§5.4.1 selection
//!   rule; the sub-block interleaver is replaced by natural-order
//!   puncturing/shortening — see `DESIGN.md`).
//! * [`decode`] — successive-cancellation (SC) and CRC-aided
//!   successive-cancellation list (SCL) decoding over LLRs.
//!
//! The [`PolarCode`] type ties these together for a (K, E) configuration.

pub mod construction;
pub mod decode;
pub mod encode;
pub mod ratematch;

use ratematch::RateMatchKind;

/// A configured polar code carrying payloads of `k` bits in `e` channel bits.
#[derive(Debug, Clone)]
pub struct PolarCode {
    /// Information length (payload including any CRC bits).
    pub k: usize,
    /// Rate-matched output length (channel bits).
    pub e: usize,
    /// Mother code length `N = 2^n`.
    pub n: usize,
    /// Rate-matching mode chosen by the spec selection rule.
    pub kind: RateMatchKind,
    /// `true` at input positions carrying information bits (length `n`).
    pub info_mask: Vec<bool>,
    /// Information positions in increasing order (length `k`).
    pub info_positions: Vec<usize>,
}

impl PolarCode {
    /// Configure a code for `k` information bits in `e` transmitted bits.
    ///
    /// Panics if the configuration is infeasible (`k` ≥ `e` or `k` = 0).
    pub fn new(k: usize, e: usize) -> PolarCode {
        assert!(k > 0, "polar code needs at least one information bit");
        assert!(k < e, "polar code requires k < e (k={k}, e={e})");
        let n = ratematch::mother_code_length(k, e);
        let kind = ratematch::rate_match_kind(k, e, n);
        let pre_frozen = ratematch::pre_frozen_positions(n, e, kind);
        let info_positions = construction::info_positions(n, k, &pre_frozen);
        let mut info_mask = vec![false; n];
        for &p in &info_positions {
            info_mask[p] = true;
        }
        PolarCode {
            k,
            e,
            n,
            kind,
            info_mask,
            info_positions,
        }
    }

    /// Encode `payload` (length `k`) to `e` channel bits.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        assert_eq!(payload.len(), self.k, "payload length must equal k");
        let mut u = vec![0u8; self.n];
        for (bit, &pos) in payload.iter().zip(&self.info_positions) {
            u[pos] = *bit;
        }
        let x = encode::polar_transform(&u);
        ratematch::select(&x, self.e, self.kind)
    }

    /// Decode `e` channel LLRs (convention `LLR > 0 ⇔ bit 0`) with plain
    /// successive cancellation. Returns the `k` payload bits.
    pub fn decode_sc(&self, llrs: &[f32]) -> Vec<u8> {
        assert_eq!(llrs.len(), self.e, "LLR length must equal e");
        let mother = ratematch::deselect(llrs, self.n, self.kind);
        let u = decode::sc_decode(&mother, &self.info_mask);
        self.extract_payload(&u)
    }

    /// CRC-aided list decode: try the `list_size` most likely paths and
    /// return the first whose payload satisfies `crc_ok`. Falls back to the
    /// best path's payload wrapped in `Err` if none passes, so callers can
    /// still inspect it.
    pub fn decode_scl<F>(
        &self,
        llrs: &[f32],
        list_size: usize,
        crc_ok: F,
    ) -> Result<Vec<u8>, Vec<u8>>
    where
        F: Fn(&[u8]) -> bool,
    {
        assert_eq!(llrs.len(), self.e, "LLR length must equal e");
        let mother = ratematch::deselect(llrs, self.n, self.kind);
        let candidates = decode::scl_decode(&mother, &self.info_mask, list_size);
        let mut best: Option<Vec<u8>> = None;
        for u in candidates {
            let payload = self.extract_payload(&u);
            if crc_ok(&payload) {
                return Ok(payload);
            }
            if best.is_none() {
                best = Some(payload);
            }
        }
        match best {
            Some(b) => Err(b),
            // Unreachable by construction (scl_decode yields >= 1 path);
            // an empty candidate set degrades to an empty payload rather
            // than a panic on hostile input.
            None => Err(Vec::new()),
        }
    }

    fn extract_payload(&self, u: &[u8]) -> Vec<u8> {
        self.info_positions.iter().map(|&p| u[p]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bpsk_llrs(bits: &[u8], snr_linear: f32) -> Vec<f32> {
        // Noiseless BPSK mapping to LLRs for decoder tests.
        bits.iter()
            .map(|&b| if b == 0 { snr_linear } else { -snr_linear })
            .collect()
    }

    #[test]
    fn encode_decode_round_trip_noiseless() {
        for (k, e) in [
            (12, 54),
            (40, 108),
            (64, 108),
            (64, 216),
            (30, 432),
            (140, 864),
        ] {
            let code = PolarCode::new(k, e);
            let payload: Vec<u8> = (0..k).map(|i| ((i * 5 + 1) % 2) as u8).collect();
            let tx = code.encode(&payload);
            assert_eq!(tx.len(), e);
            let rx = code.decode_sc(&bpsk_llrs(&tx, 10.0));
            assert_eq!(rx, payload, "k={k} e={e} kind={:?}", code.kind);
        }
    }

    #[test]
    fn all_zero_payload_gives_all_zero_codeword() {
        let code = PolarCode::new(32, 108);
        let tx = code.encode(&[0; 32]);
        assert!(tx.iter().all(|&b| b == 0));
    }

    #[test]
    fn scl_matches_sc_on_clean_channel() {
        let code = PolarCode::new(48, 108);
        let payload: Vec<u8> = (0..48).map(|i| ((i / 3) % 2) as u8).collect();
        let tx = code.encode(&payload);
        let llrs = bpsk_llrs(&tx, 8.0);
        let sc = code.decode_sc(&llrs);
        let scl = code.decode_scl(&llrs, 4, |p| p == payload.as_slice());
        assert_eq!(sc, payload);
        assert_eq!(scl.unwrap(), payload);
    }

    #[test]
    fn list_decoding_recovers_what_sc_loses() {
        // Flip-noise channel at moderate SNR: list+CRC should beat plain SC
        // on at least some realisations. We verify SCL with an oracle CRC
        // recovers the payload in a case where SC fails.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let code = PolarCode::new(56, 108);
        let payload: Vec<u8> = (0..56).map(|i| ((i * 7) % 2) as u8).collect();
        let tx = code.encode(&payload);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_scl_win = false;
        for _ in 0..200 {
            let llrs: Vec<f32> = tx
                .iter()
                .map(|&b| {
                    let s = if b == 0 { 1.0 } else { -1.0 };
                    s + rng.gen_range(-1.5..1.5)
                })
                .collect();
            let sc = code.decode_sc(&llrs);
            if sc != payload {
                if let Ok(got) = code.decode_scl(&llrs, 8, |p| p == payload.as_slice()) {
                    assert_eq!(got, payload);
                    seen_scl_win = true;
                    break;
                }
            }
        }
        assert!(
            seen_scl_win,
            "expected at least one SCL-over-SC win in 200 trials"
        );
    }

    #[test]
    #[should_panic(expected = "k < e")]
    fn rejects_rate_one_or_more() {
        PolarCode::new(108, 108);
    }

    #[test]
    fn repetition_mode_used_when_e_exceeds_mother() {
        // Small K forces a small mother code; large E → repetition.
        let code = PolarCode::new(12, 400);
        assert_eq!(code.kind, RateMatchKind::Repeat);
        let payload = vec![1u8; 12];
        let tx = code.encode(&payload);
        let rx = code.decode_sc(&bpsk_llrs(&tx, 4.0));
        assert_eq!(rx, payload);
    }
}
