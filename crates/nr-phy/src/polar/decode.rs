//! Successive-cancellation (SC) and SC-list (SCL) polar decoding.
//!
//! SC is the `O(N log N)` workhorse NR-Scope runs on every PDCCH candidate;
//! SCL trades CPU for coding gain and is exposed for the ablation bench
//! (`DESIGN.md` §ablations). LLR convention: positive ⇔ bit 0.

/// The check-node ("f") update: `f(a,b) = sign(a)·sign(b)·min(|a|,|b|)`
/// (min-sum approximation of the boxplus operator).
#[inline]
fn f_op(a: f32, b: f32) -> f32 {
    a.signum() * b.signum() * a.abs().min(b.abs())
}

/// The bit-node ("g") update: `g(a,b,u) = b + (1-2u)·a`.
#[inline]
fn g_op(a: f32, b: f32, u: u8) -> f32 {
    if u == 0 {
        b + a
    } else {
        b - a
    }
}

/// Plain SC decoding. `llrs.len()` must equal `info_mask.len()` and be a
/// power of two. Returns the decoded input vector `u` (frozen positions are
/// zero).
pub fn sc_decode(llrs: &[f32], info_mask: &[bool]) -> Vec<u8> {
    let n = llrs.len();
    assert_eq!(n, info_mask.len());
    assert!(n.is_power_of_two());
    let mut u = vec![0u8; n];
    let mut x = vec![0u8; n];
    sc_recurse(llrs, info_mask, 0, &mut u, &mut x);
    u
}

/// Recursive SC over a subtree. `offset` is the subtree's first input index.
/// Fills `u[offset..offset+len]` with decisions and `x[offset..offset+len]`
/// with the re-encoded codeword of this subtree (needed by the parent's
/// g-stage). Returns nothing; operates through the two output slices.
fn sc_recurse(llrs: &[f32], info_mask: &[bool], offset: usize, u: &mut [u8], x: &mut [u8]) {
    let len = llrs.len();
    if len == 1 {
        let bit = if info_mask[offset] {
            u8::from(llrs[0] < 0.0)
        } else {
            0
        };
        u[offset] = bit;
        x[offset] = bit;
        return;
    }
    let half = len / 2;
    // Left child sees f(a_i, b_i).
    let left_llrs: Vec<f32> = (0..half).map(|i| f_op(llrs[i], llrs[i + half])).collect();
    sc_recurse(&left_llrs, info_mask, offset, u, x);
    // Right child sees g(a_i, b_i, x_left_i).
    let right_llrs: Vec<f32> = (0..half)
        .map(|i| g_op(llrs[i], llrs[i + half], x[offset + i]))
        .collect();
    sc_recurse(&right_llrs, info_mask, offset + half, u, x);
    // Recombine: x_parent = [x_left ⊕ x_right, x_right].
    for i in 0..half {
        x[offset + i] ^= x[offset + half + i];
    }
}

/// One decoding hypothesis in the list decoder.
#[derive(Clone)]
struct Path {
    /// Input decisions made so far (full length, future positions zero).
    u: Vec<u8>,
    /// Path metric (sum of penalties for decisions against the LLR sign);
    /// smaller is better.
    metric: f32,
}

/// SC-list decoding: returns up to `list_size` candidate input vectors,
/// best metric first. `list_size = 1` degenerates to SC.
///
/// This implementation recomputes leaf LLRs per path (O(N²) per path per
/// codeword). For control-channel sizes (N ≤ 512) that costs tens of
/// microseconds and keeps the path-management logic obviously correct; the
/// hot telemetry path uses [`sc_decode`].
pub fn scl_decode(llrs: &[f32], info_mask: &[bool], list_size: usize) -> Vec<Vec<u8>> {
    let n = llrs.len();
    assert_eq!(n, info_mask.len());
    assert!(n.is_power_of_two());
    assert!(list_size >= 1);
    let mut paths = vec![Path {
        u: vec![0u8; n],
        metric: 0.0,
    }];
    for (pos, &is_info) in info_mask.iter().enumerate() {
        let mut next: Vec<Path> = Vec::with_capacity(paths.len() * 2);
        for p in &paths {
            let llr = leaf_llr(llrs, &p.u, pos);
            if !is_info {
                // Frozen: decision forced to zero; penalise disagreement.
                let mut q = p.clone();
                if llr < 0.0 {
                    q.metric += llr.abs();
                }
                next.push(q);
            } else {
                // Fork on both hypotheses.
                let mut q0 = p.clone();
                if llr < 0.0 {
                    q0.metric += llr.abs();
                }
                let mut q1 = p.clone();
                q1.u[pos] = 1;
                if llr > 0.0 {
                    q1.metric += llr;
                }
                next.push(q0);
                next.push(q1);
            }
        }
        next.sort_by(|a, b| a.metric.total_cmp(&b.metric));
        next.truncate(list_size);
        paths = next;
    }
    paths.into_iter().map(|p| p.u).collect()
}

/// LLR of input bit `pos` given earlier decisions in `u`, by direct
/// recursion over the code tree.
fn leaf_llr(llrs: &[f32], u: &[u8], pos: usize) -> f32 {
    let n = llrs.len();
    if n == 1 {
        return llrs[0];
    }
    let half = n / 2;
    if pos < half {
        let child: Vec<f32> = (0..half).map(|i| f_op(llrs[i], llrs[i + half])).collect();
        leaf_llr(&child, &u[..half], pos)
    } else {
        // Need the left subtree's re-encoded bits under the decided prefix.
        let x_left = crate::polar::encode::polar_transform(&u[..half]);
        let child: Vec<f32> = (0..half)
            .map(|i| g_op(llrs[i], llrs[i + half], x_left[i]))
            .collect();
        leaf_llr(&child, &u[half..], pos - half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polar::encode::polar_transform;

    fn to_llrs(bits: &[u8], amp: f32) -> Vec<f32> {
        bits.iter()
            .map(|&b| if b == 0 { amp } else { -amp })
            .collect()
    }

    fn make_mask(n: usize, info: &[usize]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &i in info {
            m[i] = true;
        }
        m
    }

    #[test]
    fn sc_decodes_noiseless_codeword() {
        let n = 64;
        let info: Vec<usize> = (32..64).collect();
        let mask = make_mask(n, &info);
        let mut u = vec![0u8; n];
        for (j, &i) in info.iter().enumerate() {
            u[i] = ((j * 3 + 1) % 2) as u8;
        }
        let x = polar_transform(&u);
        let decoded = sc_decode(&to_llrs(&x, 5.0), &mask);
        assert_eq!(decoded, u);
    }

    #[test]
    fn frozen_positions_always_decode_zero() {
        let n = 32;
        let mask = make_mask(n, &[31]);
        // Garbage LLRs: frozen bits must still come out zero.
        let llrs: Vec<f32> = (0..n)
            .map(|i| if i % 2 == 0 { -3.0 } else { 2.0 })
            .collect();
        let u = sc_decode(&llrs, &mask);
        for (i, &b) in u.iter().enumerate() {
            if i != 31 {
                assert_eq!(b, 0, "frozen bit {i}");
            }
        }
    }

    #[test]
    fn scl_list1_equals_sc() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 64;
        let info: Vec<usize> = (24..64).collect();
        let mask = make_mask(n, &info);
        for _ in 0..20 {
            let llrs: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let sc = sc_decode(&llrs, &mask);
            let scl = scl_decode(&llrs, &mask, 1);
            assert_eq!(scl[0], sc);
        }
    }

    #[test]
    fn scl_candidates_are_metric_sorted_and_distinct() {
        let n = 32;
        let info: Vec<usize> = (16..32).collect();
        let mask = make_mask(n, &info);
        let llrs: Vec<f32> = (0..n).map(|i| ((i as f32 * 0.77).sin()) * 2.0).collect();
        let cands = scl_decode(&llrs, &mask, 8);
        assert_eq!(cands.len(), 8);
        for i in 0..cands.len() {
            for j in i + 1..cands.len() {
                assert_ne!(cands[i], cands[j], "duplicate path");
            }
        }
    }

    #[test]
    fn f_and_g_operators() {
        assert_eq!(f_op(2.0, -3.0), -2.0);
        assert_eq!(f_op(-1.0, -4.0), 1.0);
        assert_eq!(g_op(2.0, 3.0, 0), 5.0);
        assert_eq!(g_op(2.0, 3.0, 1), 1.0);
    }
}
