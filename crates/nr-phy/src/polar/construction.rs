//! Polar code construction: reliability ordering by β-expansion.
//!
//! The polarization weight of input index `i` with binary expansion
//! `b_{n-1}…b_0` is `W(i) = Σ_j b_j · β^j` with `β = 2^{1/4}` — the method
//! the 3GPP universal reliability sequence was derived from (Huawei
//! R1-1708833). Larger weight ⇒ more reliable synthetic channel.

/// Polarization weight of one index.
pub fn polarization_weight(index: usize) -> f64 {
    let beta = 2f64.powf(0.25);
    let mut w = 0.0;
    let mut bit = 0u32;
    let mut v = index;
    while v != 0 {
        if v & 1 == 1 {
            w += beta.powi(bit as i32);
        }
        v >>= 1;
        bit += 1;
    }
    w
}

/// All indices `0..n` sorted by ascending reliability (least reliable
/// first). Ties (which occur only between identical weights of distinct
/// indices — rare under β-expansion) break by index for determinism.
pub fn reliability_order(n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        polarization_weight(a)
            .total_cmp(&polarization_weight(b))
            .then(a.cmp(&b))
    });
    idx
}

/// Choose the `k` information positions for a mother code of length `n`,
/// excluding `pre_frozen` positions (forced frozen by rate matching).
/// Returns the positions sorted ascending.
///
/// Panics if fewer than `k` positions remain after pre-freezing.
pub fn info_positions(n: usize, k: usize, pre_frozen: &[usize]) -> Vec<usize> {
    let mut frozen = vec![false; n];
    for &p in pre_frozen {
        frozen[p] = true;
    }
    let order = reliability_order(n);
    // Walk from the most reliable end, taking k non-pre-frozen positions.
    let mut picked: Vec<usize> = order
        .iter()
        .rev()
        .copied()
        .filter(|&p| !frozen[p])
        .take(k)
        .collect();
    assert!(
        picked.len() == k,
        "not enough usable positions: n={n}, k={k}, pre_frozen={}",
        pre_frozen.len()
    );
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_monotone_in_bit_count_at_same_positions() {
        // Adding a set bit strictly increases the weight.
        assert!(polarization_weight(0b1011) > polarization_weight(0b0011));
        assert!(polarization_weight(0b1111) > polarization_weight(0b0111));
    }

    #[test]
    fn index_zero_is_least_reliable_and_max_is_most() {
        let order = reliability_order(64);
        assert_eq!(order[0], 0, "all-frozen index 0 must be least reliable");
        assert_eq!(*order.last().unwrap(), 63, "index N-1 most reliable");
    }

    #[test]
    fn higher_bits_weigh_more() {
        // W(2^j) grows with j, so 32 > 16 > 8 in reliability.
        assert!(polarization_weight(32) > polarization_weight(16));
        assert!(polarization_weight(16) > polarization_weight(8));
    }

    #[test]
    fn order_is_a_permutation() {
        let order = reliability_order(128);
        let mut seen = vec![false; 128];
        for &i in &order {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn info_positions_respect_pre_frozen() {
        let pf = [60usize, 61, 62, 63];
        let pos = info_positions(64, 16, &pf);
        assert_eq!(pos.len(), 16);
        for p in &pf {
            assert!(!pos.contains(p));
        }
        // Sorted ascending.
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn info_positions_prefer_reliable_indices() {
        let pos = info_positions(32, 4, &[]);
        // The four most reliable β-expansion indices of N=32 include 31 and 30.
        assert!(pos.contains(&31));
        assert!(pos.contains(&30));
    }

    #[test]
    #[should_panic(expected = "not enough usable positions")]
    fn over_freezing_panics() {
        let pf: Vec<usize> = (0..64).collect();
        info_positions(64, 1, &pf);
    }
}
