//! The Arikan polar transform `x = u · F^{⊗n}` with `F = [[1,0],[1,1]]`.
//!
//! Implemented as the standard in-place butterfly over GF(2), natural bit
//! order (no bit-reversal permutation — encoder and decoder agree on the
//! ordering, which is all that matters for correctness end-to-end).

/// Apply the polar transform in natural order. `u.len()` must be a power of
/// two. Returns the codeword `x`.
pub fn polar_transform(u: &[u8]) -> Vec<u8> {
    let n = u.len();
    assert!(
        n.is_power_of_two(),
        "polar transform length must be a power of two"
    );
    let mut x = u.to_vec();
    let mut half = 1;
    while half < n {
        for start in (0..n).step_by(half * 2) {
            for i in start..start + half {
                x[i] ^= x[i + half];
            }
        }
        half *= 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_is_involution() {
        // F^{⊗n} is its own inverse over GF(2).
        let u: Vec<u8> = (0..64).map(|i| ((i * 3 + 1) % 2) as u8).collect();
        assert_eq!(polar_transform(&polar_transform(&u)), u);
    }

    #[test]
    fn transform_is_linear() {
        let a: Vec<u8> = (0..32).map(|i| ((i / 2) % 2) as u8).collect();
        let b: Vec<u8> = (0..32).map(|i| ((i / 5) % 2) as u8).collect();
        let sum: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ta = polar_transform(&a);
        let tb = polar_transform(&b);
        let tsum: Vec<u8> = ta.iter().zip(&tb).map(|(x, y)| x ^ y).collect();
        assert_eq!(polar_transform(&sum), tsum);
    }

    #[test]
    fn size_two_kernel() {
        // x0 = u0 ^ u1, x1 = u1.
        assert_eq!(polar_transform(&[1, 0]), vec![1, 0]);
        assert_eq!(polar_transform(&[0, 1]), vec![1, 1]);
        assert_eq!(polar_transform(&[1, 1]), vec![0, 1]);
    }

    #[test]
    fn lower_triangular_property() {
        // With natural ordering, x_i depends only on u_j for j ≥ i: setting
        // u_j = 0 for all j ≥ m forces x_i = 0 for all i ≥ m. This property
        // is what makes tail-shortening in the rate matcher sound.
        let n = 64;
        let m = 40;
        let mut u = vec![0u8; n];
        for (i, v) in u.iter_mut().enumerate().take(m) {
            *v = ((i * 7 + 1) % 2) as u8;
        }
        let x = polar_transform(&u);
        assert!(x[m..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        polar_transform(&[0, 1, 1]);
    }
}
