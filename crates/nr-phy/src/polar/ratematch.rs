//! Mother-code sizing and rate matching for the polar-coded channels.
//!
//! Follows the 38.212 §5.3.1 mode-selection rule (puncture vs shorten vs
//! repeat) and its mother-code length formula, but performs the bit
//! selection in natural code order instead of through the 32-block
//! sub-block interleaver. Both ends of this code base share the scheme, and
//! the natural-order variants keep the soundness arguments local:
//!
//! * **Shorten** (high rate, `K/E > 7/16`): transmit code bits `0..E`. The
//!   encoder freezes input bits `E..N`, which — because `F^{⊗n}` is lower
//!   triangular in natural order — forces code bits `E..N` to zero, so the
//!   receiver reconstructs them with infinite-confidence LLRs.
//! * **Puncture** (low rate): transmit code bits `N-E..N`; the receiver
//!   fills the head with zero LLRs, and the encoder pre-freezes the head
//!   input positions (the quasi-uniform-puncturing rule), which are exactly
//!   the inputs the punctured head observes most.
//! * **Repeat** (`E ≥ N`): transmit the codeword cyclically; the receiver
//!   accumulates LLRs modulo `N`.

/// Maximum mother-code exponent for DCI (N ≤ 512 per 38.212 §7.3.3).
pub const N_MAX_DCI: u32 = 9;

/// How the mother codeword is fitted to `E` channel bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMatchKind {
    /// Transmit code bits `0..E`; bits `E..N` are known zero at the receiver.
    Shorten,
    /// Transmit code bits `N-E..N`; head LLRs are erased at the receiver.
    Puncture,
    /// Transmit the codeword cyclically until `E` bits are sent.
    Repeat,
}

/// Mother code length `N = 2^n` per the 38.212 §5.3.1 formula.
pub fn mother_code_length(k: usize, e: usize) -> usize {
    let log2e = (e as f64).log2().ceil() as u32;
    // If E is barely above a power of two and the rate is low, step down.
    let n1 = if (e as f64) <= 9.0 / 8.0 * f64::from(1u32 << (log2e - 1))
        && (k as f64) / (e as f64) < 9.0 / 16.0
    {
        log2e - 1
    } else {
        log2e
    };
    // Rate floor of 1/8: N never exceeds 8K (rounded up to a power of two).
    let n2 = (8.0 * k as f64).log2().ceil() as u32;
    let n = n1.min(n2).clamp(5, N_MAX_DCI);
    1usize << n
}

/// Decide the rate-matching mode for `(k, e)` against mother length `n`.
pub fn rate_match_kind(k: usize, e: usize, n: usize) -> RateMatchKind {
    if e >= n {
        RateMatchKind::Repeat
    } else if (k as f64) / (e as f64) <= 7.0 / 16.0 {
        RateMatchKind::Puncture
    } else {
        RateMatchKind::Shorten
    }
}

/// Input positions the encoder must freeze because of rate matching.
pub fn pre_frozen_positions(n: usize, e: usize, kind: RateMatchKind) -> Vec<usize> {
    match kind {
        RateMatchKind::Repeat => Vec::new(),
        // Tail-shortening: freezing u[E..N] zeroes x[E..N] (lower-triangular
        // transform), so the untransmitted bits are reconstructible.
        RateMatchKind::Shorten => (e..n).collect(),
        // Quasi-uniform puncturing: the punctured head x[0..N-E] renders the
        // head inputs unreliable; freeze them outright.
        RateMatchKind::Puncture => (0..n - e).collect(),
    }
}

/// Select the `e` transmitted bits from the mother codeword `x`.
pub fn select(x: &[u8], e: usize, kind: RateMatchKind) -> Vec<u8> {
    let n = x.len();
    match kind {
        RateMatchKind::Repeat => (0..e).map(|i| x[i % n]).collect(),
        RateMatchKind::Shorten => x[..e].to_vec(),
        RateMatchKind::Puncture => x[n - e..].to_vec(),
    }
}

/// Reassemble mother-code LLRs of length `n` from `e` received LLRs.
pub fn deselect(llrs: &[f32], n: usize, kind: RateMatchKind) -> Vec<f32> {
    let e = llrs.len();
    match kind {
        RateMatchKind::Repeat => {
            let mut out = vec![0.0f32; n];
            for (i, &l) in llrs.iter().enumerate() {
                out[i % n] += l;
            }
            out
        }
        RateMatchKind::Shorten => {
            let mut out = Vec::with_capacity(n);
            out.extend_from_slice(llrs);
            // Shortened bits are known zero: near-certain "bit = 0" evidence.
            // A large finite value (not f32::MAX) so that repeated g-function
            // additions in the SC decoder can never overflow to inf/NaN.
            out.resize(n, 1.0e9);
            out
        }
        RateMatchKind::Puncture => {
            let mut out = vec![0.0f32; n - e];
            out.extend_from_slice(llrs);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dci_typical_sizes() {
        // A 64-bit DCI codeword (40 payload + 24 CRC) at aggregation level 1
        // (E = 108): rate 0.59 > 7/16 → shorten, N = 128.
        let n = mother_code_length(64, 108);
        assert_eq!(n, 128);
        assert_eq!(rate_match_kind(64, 108, n), RateMatchKind::Shorten);
        // Same payload at L = 4 (E = 432): N = 512, low rate → puncture.
        let n = mother_code_length(64, 432);
        assert_eq!(n, 512);
        assert_eq!(rate_match_kind(64, 432, n), RateMatchKind::Puncture);
        // L = 8 (E = 864) exceeds N_max = 512 → repetition.
        let n = mother_code_length(64, 864);
        assert_eq!(n, 512);
        assert_eq!(rate_match_kind(64, 864, n), RateMatchKind::Repeat);
    }

    #[test]
    fn mother_length_respects_rate_floor() {
        // Tiny K: N capped at 8K rounded up (here 2^7 for K=12).
        assert!(mother_code_length(12, 400) <= 128);
    }

    #[test]
    fn select_deselect_shorten_round_trip() {
        let x: Vec<u8> = (0..128).map(|i| ((i * 3) % 2) as u8).collect();
        let tx = select(&x, 108, RateMatchKind::Shorten);
        assert_eq!(tx.len(), 108);
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        let mother = deselect(&llrs, 128, RateMatchKind::Shorten);
        assert_eq!(mother.len(), 128);
        // Tail filled with strong (but finite, overflow-safe) bit-0 belief.
        assert!(mother[108..].iter().all(|&l| l > 1e6 && l.is_finite()));
    }

    #[test]
    fn select_deselect_puncture_round_trip() {
        let x: Vec<u8> = (0..128).map(|i| ((i / 7) % 2) as u8).collect();
        let tx = select(&x, 100, RateMatchKind::Puncture);
        assert_eq!(tx, x[28..].to_vec());
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 2.0 } else { -2.0 })
            .collect();
        let mother = deselect(&llrs, 128, RateMatchKind::Puncture);
        assert!(
            mother[..28].iter().all(|&l| l == 0.0),
            "punctured head erased"
        );
        assert_eq!(&mother[28..], &llrs[..]);
    }

    #[test]
    fn repeat_accumulates_llrs() {
        let x = vec![0u8; 32];
        let tx = select(&x, 80, RateMatchKind::Repeat);
        assert_eq!(tx.len(), 80);
        let llrs = vec![1.0f32; 80];
        let mother = deselect(&llrs, 32, RateMatchKind::Repeat);
        // 80 = 2×32 + 16: first 16 positions see 3 copies, the rest 2.
        assert!(mother[..16].iter().all(|&l| (l - 3.0).abs() < 1e-6));
        assert!(mother[16..].iter().all(|&l| (l - 2.0).abs() < 1e-6));
    }
}
