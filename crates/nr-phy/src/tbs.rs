//! Transport block size determination, 38.214 §5.1.3.2 — the exact
//! computation restated in the paper's Appendix A.
//!
//! This is the arithmetic that converts a decoded DCI (PRB count, symbol
//! count, MCS, layers) into "how many bits did this UE just receive", the
//! quantity every throughput figure in the paper's evaluation is built on.
//!
//! The quantisation (⌊log2⌋, floor/round to a step, ceil in the
//! code-block-segmentation closed form) is computed **integer-exact**:
//! `N_info = N_RE · R · Q_m · v` is carried as an integer numerator over a
//! fixed power-of-two denominator (all 38.214 code rates are multiples of
//! 1/2048), ⌊log2⌋ is a bit length, and the step rounding is shifts and
//! integer division. A floating-point evaluation of the same formulas can
//! misround once the product needs more than f64's 53 mantissa bits or at
//! exact branch/step boundaries; the integer path cannot (regression-tested
//! against the retained float reference below).

use crate::mcs::McsEntry;
use crate::numerology::SUBCARRIERS_PER_PRB;

/// 38.214 Table 5.1.3.2-1: TBS values for `N_info ≤ 3824`.
pub const TBS_TABLE: [u32; 93] = [
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144, 152, 160, 168, 176, 184,
    192, 208, 224, 240, 256, 272, 288, 304, 320, 336, 352, 368, 384, 408, 432, 456, 480, 504, 528,
    552, 576, 608, 640, 672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160, 1192,
    1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736, 1800, 1864, 1928, 2024, 2088,
    2152, 2216, 2280, 2408, 2472, 2536, 2600, 2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496,
    3624, 3752, 3824,
];

/// Inputs to the TBS computation, all recovered from DCI + RRC by NR-Scope.
#[derive(Debug, Clone, Copy)]
pub struct TbsParams {
    /// Number of allocated PRBs (`n_PRB`, from the DCI `f_alloc`).
    pub n_prb: usize,
    /// Number of allocated OFDM symbols (`N^sh_symb`, from the DCI `t_alloc`).
    pub n_symbols: usize,
    /// DMRS resource elements per PRB (`N^PRB_DMRS`, from RRC DMRS config).
    pub dmrs_per_prb: usize,
    /// Configured overhead per PRB (`N^PRB_oh`, from `xOverhead` in RRC).
    pub overhead_per_prb: usize,
    /// MCS table entry (code rate `R` and modulation `Q_m`).
    pub mcs: McsEntry,
    /// Number of MIMO layers `v` (from `maxMIMO-Layers` in MSG 4).
    pub layers: usize,
}

/// Effective resource elements `N_RE` (paper Appendix A, Eqs. 1–2).
pub fn effective_res(p: &TbsParams) -> usize {
    let per_prb = SUBCARRIERS_PER_PRB * p.n_symbols;
    let n_re_prime = per_prb
        .saturating_sub(p.dmrs_per_prb)
        .saturating_sub(p.overhead_per_prb);
    n_re_prime.min(156) * p.n_prb
}

/// Fixed-point scale for `N_info`: every 38.214 code rate is a multiple of
/// 0.5/1024 = 1/2048, so `N_RE · R · Q_m · v` is an exact integer multiple
/// of 2^-11.
const SCALE: u32 = 11;

/// `N_info × 2048` as an exact integer, plus the code rate × 2048.
fn n_info_x2048(p: &TbsParams) -> (u128, u64) {
    let rate_x2048 = (p.mcs.rate_x1024 * 2.0).round().max(0.0) as u64;
    let x = effective_res(p) as u128
        * rate_x2048 as u128
        * p.mcs.modulation.bits_per_symbol() as u128
        * p.layers as u128;
    (x, rate_x2048)
}

/// Full 38.214 §5.1.3.2 TBS computation (paper Appendix A), integer-exact.
///
/// Note: the paper's Appendix A transposes the quantisation formulas of
/// the two branches relative to 38.214 §5.1.3.2 (an editorial slip — its
/// small-N branch quotes the round() form and the C-segmentation rules
/// that the spec applies to the large-N branch). We implement the
/// spec-correct version, which is also what srsRAN computes and hence
/// what the paper's tool actually ran.
pub fn transport_block_size(p: &TbsParams) -> u32 {
    transport_block_size_u64(p).min(u32::MAX as u64) as u32
}

/// [`transport_block_size`] without the u32 clamp, for allocations whose
/// exact TBS exceeds 32 bits (not reachable on a standards-compliant
/// carrier, but the arithmetic stays exact for any input).
pub fn transport_block_size_u64(p: &TbsParams) -> u64 {
    let (x, rate_x2048) = n_info_x2048(p);
    if x == 0 {
        return 0;
    }
    quantise_n_info_x2048(x, rate_x2048)
}

/// The §5.1.3.2 quantisation on an exact `N_info × 2048`.
#[doc(hidden)]
pub fn quantise_n_info_x2048(x: u128, rate_x2048: u64) -> u64 {
    if x <= (3824u128 << SCALE) {
        // Small blocks: n = max(3, ⌊log2 N_info⌋ − 6), quantise down to a
        // multiple of 2^n, then look up the table.
        let int_part = (x >> SCALE) as u64;
        let n = if int_part == 0 {
            3
        } else {
            (int_part.ilog2() as i32 - 6).max(3) as u32
        };
        // ⌊N_info / 2^n⌋ · 2^n, exactly.
        let n_info_prime = (((x >> (SCALE + n)) as u64) << n).max(24);
        TBS_TABLE
            .iter()
            .copied()
            .find(|&t| t as u64 >= n_info_prime)
            .unwrap_or(3824) as u64
    } else {
        // Large blocks: n = ⌊log2(N_info − 24)⌋ − 5, round to a multiple
        // of 2^n (ties up, like C round()), then the closed form with
        // code-block segmentation.
        let y = x - (24u128 << SCALE);
        // N_info > 3824 ⇒ y > 3800 ⇒ ⌊log2 y⌋ ≥ 11 ⇒ n ≥ 6.
        let n = ((y >> SCALE) as u64).ilog2() - 5;
        let rounded = ((y + (1u128 << (SCALE + n - 1))) >> (SCALE + n)) as u64;
        let n_info_prime = (rounded << n).max(3840);
        let tb_plus_crc = n_info_prime + 24;
        if rate_x2048 <= 512 {
            // R ≤ 1/4.
            let c = tb_plus_crc.div_ceil(3816);
            8 * c * tb_plus_crc.div_ceil(8 * c) - 24
        } else if n_info_prime > 8424 {
            let c = tb_plus_crc.div_ceil(8424);
            8 * c * tb_plus_crc.div_ceil(8 * c) - 24
        } else {
            8 * tb_plus_crc.div_ceil(8) - 24
        }
    }
}

/// The seed implementation's f64 evaluation of the same formulas, retained
/// as the comparison reference for the property tests: it agrees with the
/// integer path wherever the product `N_RE · R · Q_m · v` fits f64's
/// mantissa, and misrounds beyond it.
#[doc(hidden)]
pub fn transport_block_size_float_reference(p: &TbsParams) -> u64 {
    let n_re = effective_res(p) as f64;
    let r = p.mcs.code_rate();
    let qm = p.mcs.modulation.bits_per_symbol() as f64;
    let v = p.layers as f64;
    let n_info = n_re * r * qm * v;
    if n_info <= 0.0 {
        return 0;
    }
    if n_info <= 3824.0 {
        let n = ((n_info.log2().floor() as i32) - 6).max(3) as u32;
        let step = f64::from(1u32 << n);
        let n_info_prime = (step * (n_info / step).floor()).max(24.0) as u32;
        TBS_TABLE
            .iter()
            .copied()
            .find(|&t| t >= n_info_prime)
            .unwrap_or(3824) as u64
    } else {
        let n = ((n_info - 24.0).log2().floor() as i32 - 5) as u32;
        let step = (1u64 << n) as f64;
        let n_info_prime = (step * ((n_info - 24.0) / step).round()).max(3840.0);
        if r <= 0.25 {
            let c = ((n_info_prime + 24.0) / 3816.0).ceil();
            (8.0 * c * ((n_info_prime + 24.0) / (8.0 * c)).ceil() - 24.0) as u64
        } else if n_info_prime > 8424.0 {
            let c = ((n_info_prime + 24.0) / 8424.0).ceil();
            (8.0 * c * ((n_info_prime + 24.0) / (8.0 * c)).ceil() - 24.0) as u64
        } else {
            (8.0 * ((n_info_prime + 24.0) / 8.0).ceil() - 24.0) as u64
        }
    }
}

/// Whether the exact `N_info` for these parameters sits within one unit of
/// a quantisation decision point (the 3824 branch threshold, a power-of-two
/// step edge of ⌊log2⌋, or a round-half tie) — the only places a float
/// evaluation is *allowed* to disagree with the integer path.
#[doc(hidden)]
pub fn near_quantisation_boundary(p: &TbsParams) -> bool {
    let (x, _) = n_info_x2048(p);
    if x == 0 {
        return false;
    }
    let one = 1u128 << SCALE;
    // Branch threshold N_info = 3824.
    let branch = 3824u128 << SCALE;
    if x.abs_diff(branch) <= one {
        return true;
    }
    // Power-of-two edges of ⌊log2⌋ (either branch's argument).
    for arg in [x, x.saturating_sub(24u128 << SCALE)] {
        if arg == 0 {
            continue;
        }
        let k = arg.ilog2();
        if arg - (1u128 << k) <= one || ((1u128 << (k + 1)) - arg) <= one {
            return true;
        }
    }
    // Step-edge / half-tie proximity inside the active branch.
    if x <= branch {
        let int_part = (x >> SCALE) as u64;
        let n = if int_part == 0 {
            3
        } else {
            (int_part.ilog2() as i32 - 6).max(3) as u32
        };
        let rem = x & ((1u128 << (SCALE + n)) - 1);
        rem <= one || ((1u128 << (SCALE + n)) - rem) <= one
    } else {
        let y = x - (24u128 << SCALE);
        let n = ((y >> SCALE) as u64).ilog2() - 5;
        let half = 1u128 << (SCALE + n - 1);
        let rem = y & ((1u128 << (SCALE + n)) - 1);
        rem.abs_diff(half) <= one
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::McsTable;

    fn params(n_prb: usize, n_symbols: usize, mcs: u8, layers: usize) -> TbsParams {
        TbsParams {
            n_prb,
            n_symbols,
            dmrs_per_prb: 12, // one DMRS symbol, type 1, no CDM sharing
            overhead_per_prb: 0,
            mcs: McsTable::Qam256.entry(mcs).unwrap(),
            layers,
        }
    }

    #[test]
    fn table_is_sorted_and_byte_aligned() {
        assert!(TBS_TABLE.windows(2).all(|w| w[0] < w[1]));
        assert!(TBS_TABLE.iter().all(|t| t % 8 == 0));
        assert_eq!(*TBS_TABLE.last().unwrap(), 3824);
    }

    #[test]
    fn effective_res_caps_at_156_per_prb() {
        // 14 symbols × 12 SC − 12 DMRS = 156: exactly at the cap.
        let p = params(10, 14, 10, 1);
        assert_eq!(effective_res(&p), 1560);
        // Without DMRS the 168 would exceed the cap and clamp to 156.
        let p2 = TbsParams {
            dmrs_per_prb: 0,
            ..p
        };
        assert_eq!(effective_res(&p2), 1560);
    }

    #[test]
    fn zero_allocation_gives_zero_tbs() {
        let p = params(0, 12, 10, 1);
        assert_eq!(transport_block_size(&p), 0);
    }

    #[test]
    fn tbs_is_monotone_in_prbs() {
        let mut prev = 0;
        for n_prb in 1..=51 {
            let t = transport_block_size(&params(n_prb, 12, 20, 1));
            assert!(t >= prev, "n_prb={n_prb}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn tbs_is_monotone_in_mcs() {
        let mut prev = 0;
        for mcs in 0..=27u8 {
            let t = transport_block_size(&params(20, 12, mcs, 1));
            assert!(t >= prev, "mcs={mcs}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn small_tbs_comes_from_the_table() {
        let t = transport_block_size(&params(1, 2, 0, 1));
        assert!(TBS_TABLE.contains(&t), "{t} not a table value");
    }

    // ---- PR 2: boundary-value vectors for the integer-exact quantiser,
    // ---- pinned on both sides of every branch of §5.1.3.2.

    /// Hand-computed spec values for an exact `N_info` (given as ×2048).
    #[test]
    fn quantiser_pins_both_sides_of_the_3824_branch() {
        // N_info = 3824 exactly → small branch: n = ⌊log2 3824⌋−6 = 5,
        // N' = 32·⌊3824/32⌋ = 3808 → smallest table TBS ≥ 3808 is 3824.
        assert_eq!(quantise_n_info_x2048(3824u128 << 11, 1024), 3824);
        // One 1/2048 above 3824 → large branch: n = ⌊log2 3800.0005⌋−5 = 6,
        // round(3800.0005/64) = 59 → N' = max(3840, 3776) = 3840,
        // R > 1/4, N' ≤ 8424 → TBS = 8·⌈3864/8⌉ − 24 = 3840.
        assert_eq!(quantise_n_info_x2048((3824u128 << 11) + 1, 1024), 3840);
    }

    #[test]
    fn quantiser_pins_both_sides_of_the_segmentation_threshold() {
        // N' = 8424 exactly (single code block): N_info − 24 = 8400 →
        // n = ⌊log2 8400⌋−5 = 8, round(8424−24... take N_info = 8445:
        // y = 8421, round(8421/256) = 33 → N' = 8448 > 8424 → C = 2.
        // TBS = 16·⌈8472/16⌉ − 24 = 16·530 − 24 = 8456.
        assert_eq!(quantise_n_info_x2048(8445u128 << 11, 1024), 8456);
        // N_info = 8300: y = 8276, n = 8, round(8276/256) = 32 →
        // N' = 8192 ≤ 8424 → single block: TBS = 8·⌈8216/8⌉ − 24 = 8192.
        assert_eq!(quantise_n_info_x2048(8300u128 << 11, 1024), 8192);
    }

    #[test]
    fn quantiser_applies_low_rate_segmentation() {
        // R ≤ 1/4 forces C = ⌈(N'+24)/3816⌉ regardless of N' ≤ 8424.
        // N_info = 5000: y = 4976, n = ⌊log2 4976⌋−5 = 7,
        // round(4976/128) = 39 → N' = 4992. C = ⌈5016/3816⌉ = 2.
        // TBS = 16·⌈5016/16⌉ − 24 = 16·314 − 24 = 5000.
        assert_eq!(quantise_n_info_x2048(5000u128 << 11, 512), 5000);
        // Same N_info at R > 1/4: single block → 8·⌈5016/8⌉ − 24 = 4992.
        assert_eq!(quantise_n_info_x2048(5000u128 << 11, 513), 4992);
    }

    #[test]
    fn quantiser_rounds_half_ties_up() {
        // N_info − 24 exactly on a half step: y = 4000 + 64 = 4064, n = 6,
        // y/64 = 63.5 → rounds up to 64 → N' = 4096.
        // TBS = 8·⌈4120/8⌉ − 24 = 4096.
        assert_eq!(quantise_n_info_x2048(4088u128 << 11, 1024), 4096);
    }

    #[test]
    fn integer_path_fixes_float_misrounding_beyond_53_bits() {
        // Regression (PR 2): once N_RE · R · Q_m · v needs more than f64's
        // 53 mantissa bits, the float evaluation rounds the product before
        // quantising and lands on the wrong step. This allocation is
        // physically oversized but API-valid; the exact integer N_info is
        // odd (LSB of the ×2048 numerator set), which f64 cannot represent
        // at this magnitude.
        // Here the exact N_info sits one resolution unit below a round-half
        // tie of the large-branch step, and the f64 product rounds across it.
        let p = TbsParams {
            n_prb: 609_862_449_539_857,
            n_symbols: 1,
            dmrs_per_prb: 11, // per-PRB REs = 1, so N_RE = n_prb exactly
            overhead_per_prb: 0,
            mcs: crate::mcs::MCS_TABLE_64QAM[0], // QPSK, R·1024 = 120
            layers: 1,
        };
        let exact = transport_block_size_u64(&p);
        let float = transport_block_size_float_reference(&p);
        // The integer path matches an independent recomputation…
        let x = effective_res(&p) as u128 * 240 * 2;
        assert_eq!(exact, quantise_n_info_x2048(x, 240));
        assert_eq!(exact, 140_737_488_355_776);
        // …and the float path demonstrably misrounds one step high.
        assert_eq!(
            float, 145_135_534_867_968,
            "float reference changed rounding behaviour"
        );
        assert_ne!(exact, float);
    }

    #[test]
    fn integer_and_float_agree_across_the_physical_grid() {
        // Within f64's exact range (any standards-compliant carrier) the
        // two paths must be bit-identical — the rewrite changes no
        // previously-correct result.
        for table in [McsTable::Qam64, McsTable::Qam256] {
            for mcs in 0..28u8 {
                let Some(entry) = table.entry(mcs) else {
                    continue;
                };
                for n_prb in [1usize, 24, 51, 106, 273] {
                    for layers in [1usize, 2, 4] {
                        let p = TbsParams {
                            n_prb,
                            n_symbols: 12,
                            dmrs_per_prb: 12,
                            overhead_per_prb: 0,
                            mcs: entry,
                            layers,
                        };
                        assert_eq!(
                            transport_block_size_u64(&p),
                            transport_block_size_float_reference(&p),
                            "table {table:?} mcs {mcs} prb {n_prb} v {layers}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn large_tbs_is_byte_aligned_after_crc_removal() {
        // TBS + 24 CRC bits must be divisible into equal byte-aligned code
        // blocks: the formula guarantees (TBS+24) % 8 == 0.
        for (prb, mcs, layers) in [(51, 27, 2), (40, 25, 1), (51, 20, 4)] {
            let t = transport_block_size(&params(prb, 12, mcs, layers));
            assert!(t > 3824);
            assert_eq!((t + 24) % 8, 0, "prb={prb} mcs={mcs} v={layers}");
        }
    }

    #[test]
    fn paper_appendix_b_grant_magnitude() {
        // Appendix B: nof_re=432 (per layer), 256QAM mcs=27 (R=0.926),
        // nof_layers=2 → tbs=3240 in the srsRAN log. Our N_RE accounting
        // (REs already summed over the allocation) reproduces the same
        // magnitude: N_info = 432·0.926·8·2 = 6395 → step-4 rounding lands
        // within one quantisation step of the logged 3240·2 codeword split.
        let entry = McsTable::Qam256.entry(27).unwrap();
        let p = TbsParams {
            n_prb: 3, // 3 PRB × 12 symbols → 432 REs gross
            n_symbols: 12,
            dmrs_per_prb: 0,
            overhead_per_prb: 0,
            mcs: entry,
            layers: 2,
        };
        assert_eq!(effective_res(&p), 432);
        let tbs = transport_block_size(&p);
        // 2-layer transport block ≈ 2 × the logged per-codeword 3240.
        assert!((6200..=6700).contains(&tbs), "tbs={tbs}");
    }

    #[test]
    fn full_band_throughput_is_plausible_for_20mhz() {
        // 51 PRB × 12 data symbols, 256QAM top MCS, 2 layers, every 0.5 ms
        // slot ≈ 100+ Mbit/s — the right ballpark for a 20 MHz TDD carrier.
        let t = transport_block_size(&params(51, 12, 27, 2));
        let mbps = t as f64 / 0.5e-3 / 1e6 * 0.74; // ×TDD DL fraction
        assert!(mbps > 100.0 && mbps < 300.0, "{mbps} Mbit/s");
    }
}
