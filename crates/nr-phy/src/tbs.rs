//! Transport block size determination, 38.214 §5.1.3.2 — the exact
//! computation restated in the paper's Appendix A.
//!
//! This is the arithmetic that converts a decoded DCI (PRB count, symbol
//! count, MCS, layers) into "how many bits did this UE just receive", the
//! quantity every throughput figure in the paper's evaluation is built on.

use crate::mcs::McsEntry;
use crate::numerology::SUBCARRIERS_PER_PRB;

/// 38.214 Table 5.1.3.2-1: TBS values for `N_info ≤ 3824`.
pub const TBS_TABLE: [u32; 93] = [
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144, 152, 160, 168, 176, 184,
    192, 208, 224, 240, 256, 272, 288, 304, 320, 336, 352, 368, 384, 408, 432, 456, 480, 504, 528,
    552, 576, 608, 640, 672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160, 1192,
    1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736, 1800, 1864, 1928, 2024,
    2088, 2152, 2216, 2280, 2408, 2472, 2536, 2600, 2664, 2728, 2792, 2856, 2976, 3104, 3240,
    3368, 3496, 3624, 3752, 3824,
];

/// Inputs to the TBS computation, all recovered from DCI + RRC by NR-Scope.
#[derive(Debug, Clone, Copy)]
pub struct TbsParams {
    /// Number of allocated PRBs (`n_PRB`, from the DCI `f_alloc`).
    pub n_prb: usize,
    /// Number of allocated OFDM symbols (`N^sh_symb`, from the DCI `t_alloc`).
    pub n_symbols: usize,
    /// DMRS resource elements per PRB (`N^PRB_DMRS`, from RRC DMRS config).
    pub dmrs_per_prb: usize,
    /// Configured overhead per PRB (`N^PRB_oh`, from `xOverhead` in RRC).
    pub overhead_per_prb: usize,
    /// MCS table entry (code rate `R` and modulation `Q_m`).
    pub mcs: McsEntry,
    /// Number of MIMO layers `v` (from `maxMIMO-Layers` in MSG 4).
    pub layers: usize,
}

/// Effective resource elements `N_RE` (paper Appendix A, Eqs. 1–2).
pub fn effective_res(p: &TbsParams) -> usize {
    let per_prb = SUBCARRIERS_PER_PRB * p.n_symbols;
    let n_re_prime = per_prb
        .saturating_sub(p.dmrs_per_prb)
        .saturating_sub(p.overhead_per_prb);
    n_re_prime.min(156) * p.n_prb
}

/// Full 38.214 §5.1.3.2 TBS computation (paper Appendix A).
pub fn transport_block_size(p: &TbsParams) -> u32 {
    let n_re = effective_res(p) as f64;
    let r = p.mcs.code_rate();
    let qm = p.mcs.modulation.bits_per_symbol() as f64;
    let v = p.layers as f64;
    let n_info = n_re * r * qm * v;
    if n_info <= 0.0 {
        return 0;
    }
    // Note: the paper's Appendix A transposes the quantisation formulas of
    // the two branches relative to 38.214 §5.1.3.2 (an editorial slip —
    // its small-N branch quotes the round() form and the C-segmentation
    // rules that the spec applies to the large-N branch). We implement the
    // spec-correct version, which is also what srsRAN computes and hence
    // what the paper's tool actually ran.
    if n_info <= 3824.0 {
        // Small blocks: quantise down, then look up the table.
        let n = ((n_info.log2().floor() as i32) - 6).max(3) as u32;
        let step = f64::from(1u32 << n);
        let n_info_prime = (step * (n_info / step).floor()).max(24.0) as u32;
        // Smallest table TBS ≥ N'_info (table is exhaustive up to 3824).
        TBS_TABLE
            .iter()
            .copied()
            .find(|&t| t >= n_info_prime)
            .unwrap_or(3824)
    } else {
        // Large blocks: closed-form with code-block segmentation.
        let n = ((n_info - 24.0).log2().floor() as i32 - 5) as u32;
        let step = f64::from(1u32 << n);
        let n_info_prime = (step * ((n_info - 24.0) / step).round()).max(3840.0);
        if r <= 0.25 {
            let c = ((n_info_prime + 24.0) / 3816.0).ceil();
            (8.0 * c * ((n_info_prime + 24.0) / (8.0 * c)).ceil() - 24.0) as u32
        } else if n_info_prime > 8424.0 {
            let c = ((n_info_prime + 24.0) / 8424.0).ceil();
            (8.0 * c * ((n_info_prime + 24.0) / (8.0 * c)).ceil() - 24.0) as u32
        } else {
            (8.0 * ((n_info_prime + 24.0) / 8.0).ceil() - 24.0) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::McsTable;

    fn params(n_prb: usize, n_symbols: usize, mcs: u8, layers: usize) -> TbsParams {
        TbsParams {
            n_prb,
            n_symbols,
            dmrs_per_prb: 12, // one DMRS symbol, type 1, no CDM sharing
            overhead_per_prb: 0,
            mcs: McsTable::Qam256.entry(mcs).unwrap(),
            layers,
        }
    }

    #[test]
    fn table_is_sorted_and_byte_aligned() {
        assert!(TBS_TABLE.windows(2).all(|w| w[0] < w[1]));
        assert!(TBS_TABLE.iter().all(|t| t % 8 == 0));
        assert_eq!(*TBS_TABLE.last().unwrap(), 3824);
    }

    #[test]
    fn effective_res_caps_at_156_per_prb() {
        // 14 symbols × 12 SC − 12 DMRS = 156: exactly at the cap.
        let p = params(10, 14, 10, 1);
        assert_eq!(effective_res(&p), 1560);
        // Without DMRS the 168 would exceed the cap and clamp to 156.
        let p2 = TbsParams {
            dmrs_per_prb: 0,
            ..p
        };
        assert_eq!(effective_res(&p2), 1560);
    }

    #[test]
    fn zero_allocation_gives_zero_tbs() {
        let p = params(0, 12, 10, 1);
        assert_eq!(transport_block_size(&p), 0);
    }

    #[test]
    fn tbs_is_monotone_in_prbs() {
        let mut prev = 0;
        for n_prb in 1..=51 {
            let t = transport_block_size(&params(n_prb, 12, 20, 1));
            assert!(t >= prev, "n_prb={n_prb}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn tbs_is_monotone_in_mcs() {
        let mut prev = 0;
        for mcs in 0..=27u8 {
            let t = transport_block_size(&params(20, 12, mcs, 1));
            assert!(t >= prev, "mcs={mcs}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn small_tbs_comes_from_the_table() {
        let t = transport_block_size(&params(1, 2, 0, 1));
        assert!(TBS_TABLE.contains(&t), "{t} not a table value");
    }

    #[test]
    fn large_tbs_is_byte_aligned_after_crc_removal() {
        // TBS + 24 CRC bits must be divisible into equal byte-aligned code
        // blocks: the formula guarantees (TBS+24) % 8 == 0.
        for (prb, mcs, layers) in [(51, 27, 2), (40, 25, 1), (51, 20, 4)] {
            let t = transport_block_size(&params(prb, 12, mcs, layers));
            assert!(t > 3824);
            assert_eq!((t + 24) % 8, 0, "prb={prb} mcs={mcs} v={layers}");
        }
    }

    #[test]
    fn paper_appendix_b_grant_magnitude() {
        // Appendix B: nof_re=432 (per layer), 256QAM mcs=27 (R=0.926),
        // nof_layers=2 → tbs=3240 in the srsRAN log. Our N_RE accounting
        // (REs already summed over the allocation) reproduces the same
        // magnitude: N_info = 432·0.926·8·2 = 6395 → step-4 rounding lands
        // within one quantisation step of the logged 3240·2 codeword split.
        let entry = McsTable::Qam256.entry(27).unwrap();
        let p = TbsParams {
            n_prb: 3,                  // 3 PRB × 12 symbols → 432 REs gross
            n_symbols: 12,
            dmrs_per_prb: 0,
            overhead_per_prb: 0,
            mcs: entry,
            layers: 2,
        };
        assert_eq!(effective_res(&p), 432);
        let tbs = transport_block_size(&p);
        // 2-layer transport block ≈ 2 × the logged per-codeword 3240.
        assert!((6200..=6700).contains(&tbs), "tbs={tbs}");
    }

    #[test]
    fn full_band_throughput_is_plausible_for_20mhz() {
        // 51 PRB × 12 data symbols, 256QAM top MCS, 2 layers, every 0.5 ms
        // slot ≈ 100+ Mbit/s — the right ballpark for a 20 MHz TDD carrier.
        let t = transport_block_size(&params(51, 12, 27, 2));
        let mbps = t as f64 / 0.5e-3 / 1e6 * 0.74; // ×TDD DL fraction
        assert!(mbps > 100.0 && mbps < 300.0, "{mbps} Mbit/s");
    }
}
