//! Minimal complex arithmetic used throughout the PHY.
//!
//! We implement our own complex type rather than pulling in `num-complex`:
//! the PHY needs only a handful of operations and keeping the type local
//! lets us derive exactly the traits the sample pipeline needs.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex sample (single-precision), the unit of all IQ processing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cf32 {
    /// In-phase (real) component.
    pub re: f32,
    /// Quadrature (imaginary) component.
    pub im: f32,
}

impl Cf32 {
    /// Complex zero.
    pub const ZERO: Cf32 = Cf32 { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Cf32 = Cf32 { re: 1.0, im: 0.0 };

    /// Construct from rectangular coordinates.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Cf32 { re, im }
    }

    /// Construct a unit phasor `e^{jθ}`.
    #[inline]
    pub fn from_angle(theta: f32) -> Self {
        Cf32::new(theta.cos(), theta.sin())
    }

    /// Construct from polar coordinates.
    #[inline]
    pub fn from_polar(r: f32, theta: f32) -> Self {
        Cf32::new(r * theta.cos(), r * theta.sin())
    }

    /// Squared magnitude `|z|²` (cheaper than [`Cf32::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cf32::new(self.re, -self.im)
    }

    /// Multiplicative inverse; returns zero for a zero input.
    #[inline]
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        if n == 0.0 {
            Cf32::ZERO
        } else {
            Cf32::new(self.re / n, -self.im / n)
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Cf32::new(self.re * k, self.im * k)
    }
}

impl Add for Cf32 {
    type Output = Cf32;
    #[inline]
    fn add(self, rhs: Cf32) -> Cf32 {
        Cf32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cf32 {
    #[inline]
    fn add_assign(&mut self, rhs: Cf32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cf32 {
    type Output = Cf32;
    #[inline]
    fn sub(self, rhs: Cf32) -> Cf32 {
        Cf32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Cf32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Cf32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Cf32 {
    type Output = Cf32;
    #[inline]
    fn mul(self, rhs: Cf32) -> Cf32 {
        Cf32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Cf32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Cf32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Cf32 {
    type Output = Cf32;
    #[inline]
    fn mul(self, rhs: f32) -> Cf32 {
        self.scale(rhs)
    }
}

impl Div for Cf32 {
    type Output = Cf32;
    // Complex division is multiplication by the inverse, by definition.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Cf32) -> Cf32 {
        self * rhs.inv()
    }
}

impl Div<f32> for Cf32 {
    type Output = Cf32;
    #[inline]
    fn div(self, rhs: f32) -> Cf32 {
        Cf32::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Cf32 {
    type Output = Cf32;
    #[inline]
    fn neg(self) -> Cf32 {
        Cf32::new(-self.re, -self.im)
    }
}

/// Mean power (average `|z|²`) of a slice of samples.
pub fn mean_power(samples: &[Cf32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sqr()).sum::<f32>() / samples.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn multiply_matches_hand_computation() {
        let a = Cf32::new(1.0, 2.0);
        let b = Cf32::new(3.0, -1.0);
        let c = a * b;
        assert!(close(c.re, 5.0) && close(c.im, 5.0));
    }

    #[test]
    fn inverse_round_trips() {
        let a = Cf32::new(0.3, -0.7);
        let r = a * a.inv();
        assert!(close(r.re, 1.0) && close(r.im, 0.0));
    }

    #[test]
    fn zero_inverse_is_zero() {
        assert_eq!(Cf32::ZERO.inv(), Cf32::ZERO);
    }

    #[test]
    fn polar_round_trip() {
        let z = Cf32::from_polar(2.0, 0.7);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Cf32::new(-1.5, 2.5);
        let n = z * z.conj();
        assert!(close(n.re, z.norm_sqr()) && close(n.im, 0.0));
    }

    #[test]
    fn division_round_trips() {
        let a = Cf32::new(4.0, -2.0);
        let b = Cf32::new(1.0, 1.0);
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<Cf32> = (0..16).map(|i| Cf32::from_angle(i as f32)).collect();
        assert!(close(mean_power(&v), 1.0));
    }

    #[test]
    fn mean_power_empty_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
    }
}
