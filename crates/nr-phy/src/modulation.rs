//! Digital modulation per 38.211 §5.1 and max-log-MAP soft demodulation.
//!
//! The PDCCH uses QPSK; the PDSCH uses QPSK through 256QAM selected by the
//! MCS index. The demapper produces log-likelihood ratios with the
//! convention `LLR > 0 ⇔ bit = 0`, which the polar decoder consumes.

use crate::complex::Cf32;
use serde::{Deserialize, Serialize};

/// Modulation order (bits per symbol `Q_m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// π/2-free plain BPSK (1 bit/symbol).
    Bpsk,
    /// QPSK (2 bits/symbol) — all control channels.
    Qpsk,
    /// 16QAM (4 bits/symbol).
    Qam16,
    /// 64QAM (6 bits/symbol).
    Qam64,
    /// 256QAM (8 bits/symbol).
    Qam256,
}

impl Modulation {
    /// Bits per symbol `Q_m`.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
        }
    }

    /// Construct from `Q_m`.
    pub fn from_bits_per_symbol(qm: usize) -> Option<Modulation> {
        match qm {
            1 => Some(Modulation::Bpsk),
            2 => Some(Modulation::Qpsk),
            4 => Some(Modulation::Qam16),
            6 => Some(Modulation::Qam64),
            8 => Some(Modulation::Qam256),
            _ => None,
        }
    }

    /// Short display name matching srsRAN log conventions ("256QAM" etc.).
    pub fn name(self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16QAM",
            Modulation::Qam64 => "64QAM",
            Modulation::Qam256 => "256QAM",
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-axis PAM amplitude for one bit pair group, following the 38.211
/// Gray-coded square constellations. Returns the coordinate for the given
/// bits on one axis.
fn pam_level(bits: &[u8]) -> f32 {
    // 38.211 square QAM: first bit selects the sign (0 → +), remaining bits
    // select the magnitude with Gray coding such that 0 maps outward.
    match bits.len() {
        1 => {
            if bits[0] == 0 {
                1.0
            } else {
                -1.0
            }
        }
        2 => {
            let sign = if bits[0] == 0 { 1.0 } else { -1.0 };
            let mag = if bits[1] == 0 { 1.0 } else { 3.0 };
            sign * mag
        }
        3 => {
            let sign = if bits[0] == 0 { 1.0 } else { -1.0 };
            let mag = match (bits[1], bits[2]) {
                (0, 0) => 3.0,
                (0, 1) => 1.0,
                (1, 0) => 5.0,
                (1, 1) => 7.0,
                _ => unreachable!(),
            };
            sign * mag
        }
        4 => {
            let sign = if bits[0] == 0 { 1.0 } else { -1.0 };
            let mag = match (bits[1], bits[2], bits[3]) {
                (0, 0, 0) => 5.0,
                (0, 0, 1) => 7.0,
                (0, 1, 1) => 1.0,
                (0, 1, 0) => 3.0,
                (1, 1, 0) => 11.0,
                (1, 1, 1) => 9.0,
                (1, 0, 1) => 15.0,
                (1, 0, 0) => 13.0,
                _ => unreachable!(),
            };
            sign * mag
        }
        _ => unreachable!(),
    }
}

/// Normalisation factor so the constellation has unit average power.
fn norm(modulation: Modulation) -> f32 {
    match modulation {
        Modulation::Bpsk => std::f32::consts::FRAC_1_SQRT_2,
        Modulation::Qpsk => std::f32::consts::FRAC_1_SQRT_2,
        Modulation::Qam16 => 1.0 / 10.0f32.sqrt(),
        Modulation::Qam64 => 1.0 / 42.0f32.sqrt(),
        Modulation::Qam256 => 1.0 / 170.0f32.sqrt(),
    }
}

/// Map bits to constellation symbols. `bits.len()` must be a multiple of
/// `Q_m`.
pub fn modulate(bits: &[u8], modulation: Modulation) -> Vec<Cf32> {
    let qm = modulation.bits_per_symbol();
    assert_eq!(bits.len() % qm, 0, "bit count must be a multiple of Q_m");
    let k = norm(modulation);
    bits.chunks(qm)
        .map(|chunk| match modulation {
            Modulation::Bpsk => {
                // 38.211 BPSK places the point on the diagonal.
                let s = if chunk[0] == 0 { 1.0 } else { -1.0 };
                Cf32::new(s * k, s * k)
            }
            _ => {
                // Even-indexed bits drive I, odd-indexed bits drive Q.
                let i_bits: Vec<u8> = chunk.iter().step_by(2).copied().collect();
                let q_bits: Vec<u8> = chunk.iter().skip(1).step_by(2).copied().collect();
                Cf32::new(pam_level(&i_bits) * k, pam_level(&q_bits) * k)
            }
        })
        .collect()
}

/// Max-log-MAP soft demodulation to LLRs (`LLR > 0 ⇔ bit = 0`).
///
/// `noise_var` is the complex noise variance per symbol; equalised symbols
/// should be passed with their post-equalisation noise variance.
pub fn demodulate_llr(symbols: &[Cf32], modulation: Modulation, noise_var: f32) -> Vec<f32> {
    let qm = modulation.bits_per_symbol();
    let k = norm(modulation);
    let nv = noise_var.max(1e-9);
    // Enumerate the constellation once.
    let points: Vec<(Vec<u8>, Cf32)> = (0..(1usize << qm))
        .map(|v| {
            let bits: Vec<u8> = (0..qm).rev().map(|i| ((v >> i) & 1) as u8).collect();
            let sym = modulate(&bits, modulation)[0];
            (bits, sym)
        })
        .collect();
    let _ = k;
    let mut llrs = Vec::with_capacity(symbols.len() * qm);
    for &y in symbols {
        for b in 0..qm {
            let mut min0 = f32::INFINITY;
            let mut min1 = f32::INFINITY;
            for (bits, s) in &points {
                let d = (y - *s).norm_sqr();
                if bits[b] == 0 {
                    min0 = min0.min(d);
                } else {
                    min1 = min1.min(d);
                }
            }
            llrs.push((min1 - min0) / nv);
        }
    }
    llrs
}

/// Hard-decision demodulation (nearest constellation point).
pub fn demodulate_hard(symbols: &[Cf32], modulation: Modulation) -> Vec<u8> {
    demodulate_llr(symbols, modulation, 1.0)
        .into_iter()
        .map(|l| if l >= 0.0 { 0 } else { 1 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_mods() -> [Modulation; 5] {
        [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
            Modulation::Qam256,
        ]
    }

    #[test]
    fn constellations_have_unit_average_power() {
        for m in all_mods() {
            let qm = m.bits_per_symbol();
            let mut total = 0.0;
            let count = 1usize << qm;
            for v in 0..count {
                let bits: Vec<u8> = (0..qm).rev().map(|i| ((v >> i) & 1) as u8).collect();
                total += modulate(&bits, m)[0].norm_sqr();
            }
            let avg = total / count as f32;
            assert!((avg - 1.0).abs() < 1e-4, "{m}: avg power {avg}");
        }
    }

    #[test]
    fn constellation_points_are_distinct() {
        for m in all_mods() {
            let qm = m.bits_per_symbol();
            let mut pts: Vec<Cf32> = Vec::new();
            for v in 0..(1usize << qm) {
                let bits: Vec<u8> = (0..qm).rev().map(|i| ((v >> i) & 1) as u8).collect();
                let p = modulate(&bits, m)[0];
                assert!(
                    pts.iter().all(|q| (*q - p).abs() > 1e-3),
                    "{m}: duplicate point"
                );
                pts.push(p);
            }
        }
    }

    #[test]
    fn hard_demod_round_trips_noiselessly() {
        for m in all_mods() {
            let qm = m.bits_per_symbol();
            let bits: Vec<u8> = (0..qm * 64).map(|i| ((i * 7 + i / 3) % 2) as u8).collect();
            let syms = modulate(&bits, m);
            assert_eq!(demodulate_hard(&syms, m), bits, "{m}");
        }
    }

    #[test]
    fn llr_sign_convention_holds() {
        // A clean QPSK 0-bit symbol must produce positive LLRs.
        let syms = modulate(&[0, 0], Modulation::Qpsk);
        let llrs = demodulate_llr(&syms, Modulation::Qpsk, 0.1);
        assert!(llrs.iter().all(|&l| l > 0.0));
        let syms = modulate(&[1, 1], Modulation::Qpsk);
        let llrs = demodulate_llr(&syms, Modulation::Qpsk, 0.1);
        assert!(llrs.iter().all(|&l| l < 0.0));
    }

    #[test]
    fn llr_magnitude_scales_with_noise_confidence() {
        let syms = modulate(&[0, 0], Modulation::Qpsk);
        let quiet = demodulate_llr(&syms, Modulation::Qpsk, 0.01)[0];
        let noisy = demodulate_llr(&syms, Modulation::Qpsk, 1.0)[0];
        assert!(quiet > noisy);
    }

    #[test]
    fn qam16_gray_mapping_is_one_bit_per_neighbor() {
        // Adjacent points on the I axis must differ in exactly one I bit —
        // the Gray property that makes soft demodulation behave.
        let m = Modulation::Qam16;
        let qm = 4;
        let pts: Vec<(Vec<u8>, Cf32)> = (0..16)
            .map(|v| {
                let bits: Vec<u8> = (0..qm).rev().map(|i| ((v >> i) & 1) as u8).collect();
                let p = modulate(&bits, m)[0];
                (bits, p)
            })
            .collect();
        for (ba, pa) in &pts {
            for (bb, pb) in &pts {
                let di = (pa.re - pb.re).abs();
                let dq = (pa.im - pb.im).abs();
                let step = 2.0 / 10.0f32.sqrt();
                if (di - step).abs() < 1e-3 && dq < 1e-6 {
                    let diff: usize = ba.iter().zip(bb).filter(|(x, y)| x != y).count();
                    assert_eq!(diff, 1, "neighbors {ba:?} vs {bb:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of Q_m")]
    fn misaligned_bits_panic() {
        modulate(&[0, 1, 0], Modulation::Qpsk);
    }
}
