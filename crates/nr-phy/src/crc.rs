//! CRC family from 38.212 §5.1 plus the DCI attachment/scrambling procedure.
//!
//! The CRC layer is load-bearing for NR-Scope: MSG 4 DCIs are transmitted in
//! plain text with a CRC whose last 16 bits are XOR-scrambled by the
//! TC-RNTI. NR-Scope recomputes the CRC over the received plain text and
//! XORs it against the received scrambled CRC to *recover the C-RNTI*
//! (paper §3.1.2) — so these polynomials must match the transmitter
//! bit-for-bit.

/// A bit-serial CRC definition (MSB-first over a bit slice).
#[derive(Debug, Clone, Copy)]
pub struct Crc {
    /// Generator polynomial with the implicit leading 1 removed.
    pub poly: u32,
    /// CRC length in bits.
    pub len: u32,
}

/// CRC24A, `g(D) = D^24+D^23+D^18+D^17+D^14+D^11+D^10+D^7+D^6+D^5+D^4+D^3+D+1`.
pub const CRC24A: Crc = Crc {
    poly: 0x864CFB,
    len: 24,
};
/// CRC24B, used on LDPC code-block segments.
pub const CRC24B: Crc = Crc {
    poly: 0x800063,
    len: 24,
};
/// CRC24C, used on the DCI / polar path (38.212 §5.1).
pub const CRC24C: Crc = Crc {
    poly: 0xB2B117,
    len: 24,
};
/// CRC16, `g(D) = D^16+D^12+D^5+1` (CCITT).
pub const CRC16: Crc = Crc {
    poly: 0x1021,
    len: 16,
};
/// CRC11, used on small uplink control payloads.
pub const CRC11: Crc = Crc {
    poly: 0x621,
    len: 11,
};
/// CRC6, used on the smallest UCI payloads.
pub const CRC6: Crc = Crc { poly: 0x21, len: 6 };

impl Crc {
    /// Compute the CRC over `bits` (each element 0/1), MSB-first.
    pub fn compute(&self, bits: &[u8]) -> u32 {
        let mut reg: u32 = 0;
        let top = 1u32 << (self.len - 1);
        let mask = if self.len == 32 {
            u32::MAX
        } else {
            (1u32 << self.len) - 1
        };
        for &b in bits {
            debug_assert!(b <= 1);
            let fb = ((reg & top) != 0) as u32 ^ b as u32;
            reg <<= 1;
            if fb != 0 {
                reg ^= self.poly;
            }
            reg &= mask;
        }
        reg
    }

    /// Append the CRC of `bits` to `bits` and return the combined vector.
    pub fn attach(&self, bits: &[u8]) -> Vec<u8> {
        let crc = self.compute(bits);
        let mut out = bits.to_vec();
        out.extend(crc_to_bits(crc, self.len));
        out
    }

    /// Check a codeword whose last `self.len` bits are the CRC; returns the
    /// payload on success.
    pub fn check<'a>(&self, codeword: &'a [u8]) -> Option<&'a [u8]> {
        if codeword.len() < self.len as usize {
            return None;
        }
        let (payload, rx_crc) = codeword.split_at(codeword.len() - self.len as usize);
        if self.compute(payload) == bits_to_crc(rx_crc) {
            Some(payload)
        } else {
            None
        }
    }
}

/// Expand a CRC register to MSB-first bits.
pub fn crc_to_bits(crc: u32, len: u32) -> Vec<u8> {
    (0..len).rev().map(|i| ((crc >> i) & 1) as u8).collect()
}

/// Collapse MSB-first bits back to a register value.
pub fn bits_to_crc(bits: &[u8]) -> u32 {
    bits.iter().fold(0u32, |acc, &b| (acc << 1) | b as u32)
}

/// Attach the DCI CRC per 38.212 §7.3.2: compute CRC24C over the payload
/// preceded by 24 one-bits, then XOR the *last 16* CRC bits with the RNTI.
///
/// Returns `payload ‖ scrambled CRC24` — exactly the bit string that enters
/// the polar encoder on the gNB side.
pub fn dci_attach_crc(payload: &[u8], rnti: u16) -> Vec<u8> {
    let mut padded = vec![1u8; 24];
    padded.extend_from_slice(payload);
    let crc = CRC24C.compute(&padded);
    let mut crc_bits = crc_to_bits(crc, 24);
    scramble_crc_with_rnti(&mut crc_bits, rnti);
    let mut out = payload.to_vec();
    out.append(&mut crc_bits);
    out
}

/// XOR the last 16 bits of a 24-bit CRC with the RNTI (MSB-first).
pub fn scramble_crc_with_rnti(crc_bits: &mut [u8], rnti: u16) {
    debug_assert_eq!(crc_bits.len(), 24);
    for i in 0..16 {
        crc_bits[8 + i] ^= ((rnti >> (15 - i)) & 1) as u8;
    }
}

/// Validate a received DCI codeword against a hypothesised RNTI.
///
/// Returns the DCI payload bits if the descrambled CRC matches. This is the
/// check NR-Scope runs once per (candidate, known-RNTI) pair during blind
/// decoding.
pub fn dci_check_crc(codeword: &[u8], rnti: u16) -> Option<Vec<u8>> {
    if codeword.len() < 24 {
        return None;
    }
    let (payload, crc_rx) = codeword.split_at(codeword.len() - 24);
    let mut crc_bits = crc_rx.to_vec();
    scramble_crc_with_rnti(&mut crc_bits, rnti); // XOR is its own inverse
    let mut padded = vec![1u8; 24];
    padded.extend_from_slice(payload);
    if CRC24C.compute(&padded) == bits_to_crc(&crc_bits) {
        Some(payload.to_vec())
    } else {
        None
    }
}

/// Recover the RNTI from a correctly received DCI codeword *without knowing
/// the RNTI in advance* — the paper's §3.1.2 C-RNTI discovery trick.
///
/// The transmitter sent `crc_tx = CRC(payload) ⊕ (0^8 ‖ rnti)`; the receiver
/// recomputes `CRC(payload)` locally, XORs, and reads the RNTI out of the
/// low 16 bits. The high 8 CRC bits must match exactly, which gives an
/// 8-bit confidence check against false positives (callers typically add
/// further consistency checks).
pub fn dci_recover_rnti(codeword: &[u8]) -> Option<u16> {
    if codeword.len() < 24 {
        return None;
    }
    let (payload, crc_rx) = codeword.split_at(codeword.len() - 24);
    let mut padded = vec![1u8; 24];
    padded.extend_from_slice(payload);
    let crc_local = crc_to_bits(CRC24C.compute(&padded), 24);
    // The unscrambled high 8 bits must agree, otherwise this wasn't a clean
    // decode (or not a DCI at all).
    if crc_local[0..8] != crc_rx[0..8] {
        return None;
    }
    let mut rnti: u16 = 0;
    for i in 0..16 {
        rnti = (rnti << 1) | (crc_local[8 + i] ^ crc_rx[8 + i]) as u16;
    }
    Some(rnti)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(s: &str) -> Vec<u8> {
        s.bytes().map(|b| b - b'0').collect()
    }

    #[test]
    fn crc_of_empty_is_zero() {
        assert_eq!(CRC24C.compute(&[]), 0);
        assert_eq!(CRC16.compute(&[]), 0);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let data = bits_of("110100111010110010100101010011110000");
        for crc in [CRC24A, CRC24B, CRC24C, CRC16, CRC11, CRC6] {
            let cw = crc.attach(&data);
            assert!(crc.check(&cw).is_some());
            for i in 0..cw.len() {
                let mut bad = cw.clone();
                bad[i] ^= 1;
                assert!(crc.check(&bad).is_none(), "missed flip at {i}");
            }
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT of ASCII "123456789" bit-serial MSB-first with zero
        // init is the classic XMODEM check value 0x31C3.
        let bits: Vec<u8> = b"123456789"
            .iter()
            .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1))
            .collect();
        assert_eq!(CRC16.compute(&bits), 0x31C3);
    }

    #[test]
    fn dci_crc_round_trip_with_rnti() {
        let payload = bits_of("1010011101010101010101110010101010101010");
        let rnti = 0x4601;
        let cw = dci_attach_crc(&payload, rnti);
        assert_eq!(cw.len(), payload.len() + 24);
        assert_eq!(dci_check_crc(&cw, rnti).as_deref(), Some(&payload[..]));
        // Wrong RNTI must fail.
        assert!(dci_check_crc(&cw, 0x4602).is_none());
    }

    #[test]
    fn rnti_recovery_matches_paper_trick() {
        // The §3.1.2 mechanism: recover the RNTI by XOR of local CRC with
        // the received scrambled CRC, for arbitrary payloads and RNTIs.
        for rnti in [0x0001u16, 0x4296, 0x4601, 0xFFEF] {
            let payload = bits_of("011011100101110001010010101010101010101");
            let cw = dci_attach_crc(&payload, rnti);
            assert_eq!(dci_recover_rnti(&cw), Some(rnti));
        }
    }

    #[test]
    fn rnti_recovery_rejects_corrupted_codeword() {
        let payload = bits_of("0110111001011100010100101010101010101010");
        let mut cw = dci_attach_crc(&payload, 0x4296);
        // Corrupt an unscrambled CRC bit: detection must fail (high 8 bits
        // are the confidence check).
        let n = cw.len();
        cw[n - 24] ^= 1;
        assert_eq!(dci_recover_rnti(&cw), None);
    }

    #[test]
    fn crc24c_sample_dci_is_stable() {
        // Regression pin so the polynomial can't silently change: value
        // computed by this implementation on first run and cross-checked
        // against an independent straightforward long-division routine.
        let payload = bits_of("1111000011001010");
        let mut padded = vec![1u8; 24];
        padded.extend_from_slice(&payload);
        let reference = long_division_crc(&padded, 0xB2B117, 24);
        assert_eq!(CRC24C.compute(&padded), reference);
    }

    /// Naive polynomial long-division CRC, used only as a test oracle.
    fn long_division_crc(bits: &[u8], poly: u32, len: u32) -> u32 {
        let mut msg: Vec<u8> = bits.to_vec();
        msg.extend(std::iter::repeat_n(0, len as usize));
        let gen_bits: Vec<u8> = std::iter::once(1)
            .chain((0..len).rev().map(|i| ((poly >> i) & 1) as u8))
            .collect();
        for i in 0..bits.len() {
            if msg[i] == 1 {
                for (j, &g) in gen_bits.iter().enumerate() {
                    msg[i + j] ^= g;
                }
            }
        }
        bits_to_crc(&msg[bits.len()..])
    }
}
