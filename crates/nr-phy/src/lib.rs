//! # nr-phy — 5G NR physical-layer substrate
//!
//! A from-scratch implementation of the pieces of the 3GPP New Radio
//! physical layer that the NR-Scope telemetry tool (CoNEXT '24) exercises:
//!
//! * numerology and frame structure (15/30/60 kHz SCS, TDD patterns),
//! * resource grids (PRB × OFDM symbol), REG/CCE bookkeeping,
//! * CRC family (CRC24A/B/C, CRC16, CRC11, CRC6) with DCI RNTI scrambling,
//! * Gold / pseudo-random sequences, PSS/SSS synchronisation signals,
//! * polar coding (encoder, β-expansion construction, rate matching,
//!   successive-cancellation and list decoding),
//! * digital modulation BPSK…256QAM with max-log-MAP soft demodulation,
//! * an in-tree radix-2 FFT and a CP-OFDM modulator/demodulator,
//! * PDCCH: CORESETs, search spaces, candidate hashing, the full DCI
//!   encode chain and blind decoding,
//! * MCS / CQI / TBS tables and the exact 38.214 §5.1.3.2 transport block
//!   size computation reproduced in the paper's Appendix A,
//! * statistical channel models (AWGN, Jakes-fading TDL profiles standing
//!   in for the 3GPP Pedestrian / Vehicle / Urban channels).
//!
//! Everything here is deterministic given a seed and runs on a laptop; see
//! `DESIGN.md` at the workspace root for the substitution rationale.
//!
//! This crate sits on the untrusted side of the air interface, so its
//! production code is panic-audited: `unwrap`/`expect` are denied outside
//! tests and every decode failure surfaces as a typed result.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bits;
pub mod channel;
pub mod complex;
pub mod crc;
pub mod dci;
pub mod dmrs;
pub mod fft;
pub mod frame;
pub mod grid;
pub mod mcs;
pub mod modulation;
pub mod numerology;
pub mod ofdm;
pub mod pdcch;
pub mod polar;
pub mod sequence;
pub mod sync;
pub mod tbs;
pub mod types;

pub use complex::Cf32;
pub use frame::{SlotClock, SlotDirection, TddPattern};
pub use numerology::Numerology;
pub use types::{Rnti, RntiType};
