//! Hybrid-ARQ: the gNB-side entity and the passive tracker.
//!
//! Paper §3.2.2: "The gNB allocates up to 16 HARQ processes for each UE...
//! If the UE correctly decodes the data in one TTI and sends back an ACK,
//! the gNB toggles the new_data_indicator of the DCI with the same harq_id
//! to indicate new data. If the UE NACKs, the gNB uses the same ndi for the
//! re-transmission. NR-Scope maintains an array for each UE to record the
//! ndi from previous DCIs for each harq_id to detect re-transmissions."

use serde::{Deserialize, Serialize};

/// HARQ processes per UE per direction (38.321).
pub const NUM_HARQ_PROCESSES: usize = 16;

/// State of one gNB-side HARQ process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ProcessState {
    /// Free for new data.
    Idle,
    /// Transmitted, waiting for ACK/NACK.
    InFlight,
    /// NACKed: must retransmit with the same NDI.
    NeedsRetx,
}

/// One HARQ process's bookkeeping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Process {
    state: ProcessState,
    ndi: u8,
    /// TBS of the in-flight transport block (retransmitted verbatim).
    tbs: u32,
    /// Retransmission count of the current block.
    retx_count: u8,
}

impl Default for Process {
    fn default() -> Self {
        Process {
            state: ProcessState::Idle,
            ndi: 0,
            tbs: 0,
            retx_count: 0,
        }
    }
}

/// Maximum retransmissions before the block is dropped (typical RLC/MAC
/// configuration).
pub const MAX_RETX: u8 = 4;

/// gNB-side HARQ entity for one UE, one direction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnbHarqEntity {
    processes: [Process; NUM_HARQ_PROCESSES],
}

impl Default for GnbHarqEntity {
    fn default() -> Self {
        Self::new()
    }
}

impl GnbHarqEntity {
    /// Fresh entity, all processes idle with NDI 0.
    pub fn new() -> GnbHarqEntity {
        GnbHarqEntity {
            processes: [Process::default(); NUM_HARQ_PROCESSES],
        }
    }

    /// A process needing retransmission, if any (retransmissions take
    /// scheduling priority).
    pub fn pending_retx(&self) -> Option<(u8, u32)> {
        self.processes
            .iter()
            .enumerate()
            .find(|(_, p)| p.state == ProcessState::NeedsRetx)
            .map(|(i, p)| (i as u8, p.tbs))
    }

    /// A free process for new data, if any.
    pub fn free_process(&self) -> Option<u8> {
        self.processes
            .iter()
            .position(|p| p.state == ProcessState::Idle)
            .map(|i| i as u8)
    }

    /// Start a new transmission on `harq_id`: toggles NDI and records the
    /// TBS. Returns the NDI to put in the DCI.
    pub fn start_new(&mut self, harq_id: u8, tbs: u32) -> u8 {
        let p = &mut self.processes[harq_id as usize];
        debug_assert_eq!(p.state, ProcessState::Idle, "process must be idle");
        p.ndi ^= 1;
        p.tbs = tbs;
        p.retx_count = 0;
        p.state = ProcessState::InFlight;
        p.ndi
    }

    /// Start a retransmission on `harq_id`. Returns the (unchanged) NDI.
    pub fn start_retx(&mut self, harq_id: u8) -> u8 {
        let p = &mut self.processes[harq_id as usize];
        debug_assert_eq!(p.state, ProcessState::NeedsRetx);
        p.retx_count += 1;
        p.state = ProcessState::InFlight;
        p.ndi
    }

    /// Cancel a just-started new transmission whose DCI could not be
    /// placed on the PDCCH: reverts the NDI toggle and frees the process,
    /// as if the scheduler had never picked it (a real gNB allocates CCEs
    /// before committing HARQ state; our scheduler is optimistic and
    /// compensates here).
    pub fn cancel_new(&mut self, harq_id: u8) {
        let p = &mut self.processes[harq_id as usize];
        debug_assert_eq!(p.state, ProcessState::InFlight);
        p.ndi ^= 1;
        p.state = ProcessState::Idle;
    }

    /// Cancel a just-started retransmission whose DCI could not be placed:
    /// the process returns to the needs-retransmission state unchanged.
    pub fn cancel_retx(&mut self, harq_id: u8) {
        let p = &mut self.processes[harq_id as usize];
        debug_assert_eq!(p.state, ProcessState::InFlight);
        p.retx_count -= 1;
        p.state = ProcessState::NeedsRetx;
    }

    /// Deliver HARQ feedback for `harq_id`. On NACK the process moves to
    /// retransmission unless `MAX_RETX` was reached (then the block drops
    /// and the process frees). Returns `true` if the block completed
    /// (ACK or dropped).
    pub fn feedback(&mut self, harq_id: u8, ack: bool) -> bool {
        let p = &mut self.processes[harq_id as usize];
        debug_assert_eq!(
            p.state,
            ProcessState::InFlight,
            "feedback without transmission"
        );
        // ACK and retransmission-budget exhaustion both complete the block
        // (the latter drops it); only an in-budget NACK keeps it alive.
        if ack || p.retx_count >= MAX_RETX {
            p.state = ProcessState::Idle;
            true
        } else {
            p.state = ProcessState::NeedsRetx;
            false
        }
    }

    /// Current NDI of a process (what the DCI would carry).
    pub fn ndi(&self, harq_id: u8) -> u8 {
        self.processes[harq_id as usize].ndi
    }

    /// Retransmission count of the block on `harq_id`.
    pub fn retx_count(&self, harq_id: u8) -> u8 {
        self.processes[harq_id as usize].retx_count
    }
}

/// NR-Scope's passive retransmission detector: one NDI memory per
/// (harq_id) per UE per direction — exactly the paper's "array for each UE
/// to record the ndi from previous DCIs".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HarqTracker {
    /// Last seen NDI per process; `None` until first observation.
    last_ndi: [Option<u8>; NUM_HARQ_PROCESSES],
}

impl HarqTracker {
    /// Fresh tracker.
    pub fn new() -> HarqTracker {
        HarqTracker::default()
    }

    /// Observe a DCI's (harq_id, ndi). Returns `true` if this DCI is a
    /// retransmission (same NDI as the previous DCI on that process).
    ///
    /// The first observation on a process can't be classified and counts as
    /// a new transmission, matching the paper's warm-up behaviour.
    pub fn observe(&mut self, harq_id: u8, ndi: u8) -> bool {
        let slot = &mut self.last_ndi[harq_id as usize];
        let retx = matches!(*slot, Some(prev) if prev == ndi);
        *slot = Some(ndi);
        retx
    }

    /// Forget all state (UE left the RAN).
    pub fn reset(&mut self) {
        self.last_ndi = [None; NUM_HARQ_PROCESSES];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndi_toggles_on_new_data() {
        let mut h = GnbHarqEntity::new();
        let id = h.free_process().unwrap();
        let n1 = h.start_new(id, 1000);
        assert!(h.feedback(id, true));
        let n2 = h.start_new(id, 2000);
        assert_ne!(n1, n2, "NDI must toggle for new data");
    }

    #[test]
    fn nack_keeps_ndi_and_requests_retx() {
        let mut h = GnbHarqEntity::new();
        let id = h.free_process().unwrap();
        let ndi = h.start_new(id, 5000);
        assert!(!h.feedback(id, false));
        let (rid, tbs) = h.pending_retx().unwrap();
        assert_eq!(rid, id);
        assert_eq!(tbs, 5000);
        assert_eq!(h.start_retx(id), ndi, "retransmission keeps NDI");
    }

    #[test]
    fn block_drops_after_max_retx() {
        let mut h = GnbHarqEntity::new();
        let id = h.free_process().unwrap();
        h.start_new(id, 100);
        for i in 0..MAX_RETX {
            assert!(!h.feedback(id, false), "retx {i} continues");
            h.start_retx(id);
        }
        // One more NACK exhausts the budget: block completes (dropped).
        assert!(h.feedback(id, false));
        assert!(h.pending_retx().is_none());
        assert_eq!(h.free_process(), Some(id));
    }

    #[test]
    fn sixteen_processes_available() {
        let mut h = GnbHarqEntity::new();
        for i in 0..NUM_HARQ_PROCESSES {
            let id = h.free_process().expect("process available");
            assert_eq!(id as usize, i);
            h.start_new(id, 10);
        }
        assert!(h.free_process().is_none(), "all in flight");
    }

    #[test]
    fn cancel_new_reverts_ndi_and_frees() {
        let mut h = GnbHarqEntity::new();
        let id = h.free_process().unwrap();
        let before = h.ndi(id);
        h.start_new(id, 100);
        h.cancel_new(id);
        assert_eq!(h.ndi(id), before, "NDI untoggled");
        assert_eq!(h.free_process(), Some(id), "process free again");
        // The next real transmission toggles as if nothing happened.
        let n = h.start_new(id, 100);
        assert_ne!(n, before);
    }

    #[test]
    fn cancel_retx_restores_pending_state() {
        let mut h = GnbHarqEntity::new();
        let id = h.free_process().unwrap();
        h.start_new(id, 100);
        h.feedback(id, false);
        h.start_retx(id);
        h.cancel_retx(id);
        assert_eq!(h.pending_retx(), Some((id, 100)));
        assert_eq!(h.retx_count(id), 0);
    }

    #[test]
    fn tracker_detects_retransmissions() {
        let mut gnb = GnbHarqEntity::new();
        let mut scope = HarqTracker::new();
        let id = gnb.free_process().unwrap();
        // New TX.
        let ndi = gnb.start_new(id, 999);
        assert!(!scope.observe(id, ndi), "first sight is not a retx");
        // NACK → retx with same ndi → tracker flags it.
        gnb.feedback(id, false);
        let ndi2 = gnb.start_retx(id);
        assert!(scope.observe(id, ndi2), "same NDI = retransmission");
        // ACK → new data with toggled ndi → not a retx.
        gnb.feedback(id, true);
        let ndi3 = gnb.start_new(id, 500);
        assert!(!scope.observe(id, ndi3));
    }

    #[test]
    fn tracker_reset_forgets_history() {
        let mut t = HarqTracker::new();
        t.observe(3, 1);
        assert!(t.observe(3, 1));
        t.reset();
        assert!(!t.observe(3, 1), "after reset, first sight again");
    }

    #[test]
    fn tracker_processes_are_independent() {
        let mut t = HarqTracker::new();
        assert!(!t.observe(0, 1));
        assert!(!t.observe(1, 1), "different process, no retx flag");
        assert!(t.observe(0, 1));
    }
}
