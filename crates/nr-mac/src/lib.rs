//! # nr-mac — MAC-layer substrate for the simulated gNB
//!
//! The scheduling machinery the paper's cells run and NR-Scope observes:
//!
//! * [`harq`] — HARQ entities (gNB side) and the (harq_id, ndi) tracker
//!   NR-Scope uses to detect retransmissions (paper §3.2.2),
//! * [`rnti`] — C-RNTI allocation,
//! * [`rach`] — the four-message random-access procedure state machine
//!   (paper Fig 2),
//! * [`scheduler`] — round-robin and proportional-fair downlink/uplink
//!   schedulers with a PDCCH CCE budget,
//! * [`grant`] — allocation records shared between scheduler and PHY.

pub mod grant;
pub mod harq;
pub mod rach;
pub mod rnti;
pub mod scheduler;

pub use grant::Allocation;
pub use harq::{GnbHarqEntity, HarqTracker, NUM_HARQ_PROCESSES};
pub use rach::{RachEvent, RachProcedure};
pub use rnti::RntiAllocator;
pub use scheduler::{ProportionalFair, RoundRobin, SchedUe, Scheduler, SchedulerConfig};
