//! C-RNTI allocation for the simulated gNB.

use nr_phy::types::Rnti;
use std::collections::BTreeSet;

/// Allocates C-RNTIs sequentially from the dynamic range, skipping values
/// still in use, wrapping at the top. srsRAN similarly hands out ascending
//  values starting from a base (its logs show 0x4601, 0x4602, …).
#[derive(Debug, Clone)]
pub struct RntiAllocator {
    next: u16,
    in_use: BTreeSet<u16>,
}

/// Where allocation starts (srsRAN's familiar first C-RNTI is 0x4601).
pub const FIRST_C_RNTI: u16 = 0x4601;

impl Default for RntiAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl RntiAllocator {
    /// Fresh allocator.
    pub fn new() -> RntiAllocator {
        RntiAllocator {
            next: FIRST_C_RNTI,
            in_use: BTreeSet::new(),
        }
    }

    /// Allocate the next free C-RNTI. Returns `None` only if the entire
    /// dynamic range is exhausted (tens of thousands of UEs).
    pub fn allocate(&mut self) -> Option<Rnti> {
        let span = (Rnti::C_RNTI_LAST - Rnti::C_RNTI_FIRST + 1) as u32;
        for _ in 0..span {
            let candidate = self.next;
            self.next = if self.next >= Rnti::C_RNTI_LAST {
                Rnti::C_RNTI_FIRST
            } else {
                self.next + 1
            };
            if !self.in_use.contains(&candidate) {
                self.in_use.insert(candidate);
                return Some(Rnti(candidate));
            }
        }
        None
    }

    /// Release an RNTI when the UE leaves.
    pub fn release(&mut self, rnti: Rnti) {
        self.in_use.remove(&rnti.0);
    }

    /// Number of RNTIs currently allocated.
    pub fn active_count(&self) -> usize {
        self.in_use.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_sequentially_from_srsran_base() {
        let mut a = RntiAllocator::new();
        assert_eq!(a.allocate(), Some(Rnti(0x4601)));
        assert_eq!(a.allocate(), Some(Rnti(0x4602)));
        assert_eq!(a.active_count(), 2);
    }

    #[test]
    fn released_rntis_are_reusable_after_wrap() {
        let mut a = RntiAllocator::new();
        let r1 = a.allocate().unwrap();
        a.release(r1);
        // The allocator moves forward first (no immediate reuse) …
        let r2 = a.allocate().unwrap();
        assert_ne!(r1, r2);
        assert_eq!(a.active_count(), 1);
    }

    #[test]
    fn allocations_are_unique_and_in_c_rnti_range() {
        let mut a = RntiAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let r = a.allocate().unwrap();
            assert!(r.is_c_rnti_range());
            assert!(seen.insert(r));
        }
    }

    #[test]
    fn wraps_at_top_of_range() {
        let mut a = RntiAllocator::new();
        a.next = Rnti::C_RNTI_LAST;
        assert_eq!(a.allocate(), Some(Rnti(Rnti::C_RNTI_LAST)));
        let r = a.allocate().unwrap();
        assert_eq!(r, Rnti(Rnti::C_RNTI_FIRST));
    }
}
