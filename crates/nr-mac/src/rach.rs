//! The four-message random-access procedure (paper Fig 2, §3.1.2).
//!
//! gNB-side state machine: a preamble arrives on a PRACH occasion (MSG 1);
//! the gNB answers with a Random Access Response addressed to the RA-RNTI
//! and containing a TC-RNTI (MSG 2); the UE sends its RRC Setup Request on
//! the granted PUSCH (MSG 3); the gNB answers with the RRC Setup on a
//! PDSCH scheduled by a *TC-RNTI-scrambled DCI* (MSG 4) — the one message
//! NR-Scope must catch to learn the UE's C-RNTI.

use nr_phy::types::Rnti;
use serde::{Deserialize, Serialize};

/// Slots between procedure steps in the simulated cells (processing +
/// scheduling delay; ~1–3 ms at µ=1, consistent with small-cell behaviour).
const MSG2_DELAY_SLOTS: u64 = 3;
const MSG3_DELAY_SLOTS: u64 = 4;
const MSG4_DELAY_SLOTS: u64 = 3;

/// Events the RACH engine asks the gNB to perform in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RachEvent {
    /// Send MSG 2 (RAR) on PDSCH, DCI scrambled with the RA-RNTI.
    SendMsg2 {
        /// RA-RNTI addressing the response.
        ra_rnti: Rnti,
        /// Temporary C-RNTI assigned to the UE.
        tc_rnti: Rnti,
    },
    /// UE transmits MSG 3 on PUSCH (uplink; invisible to a DL-only sniffer).
    UeSendsMsg3 {
        /// The TC-RNTI of the UE transmitting.
        tc_rnti: Rnti,
    },
    /// Send MSG 4 (RRC Setup) on PDSCH, DCI scrambled with the TC-RNTI.
    /// After this the TC-RNTI is promoted to C-RNTI.
    SendMsg4 {
        /// The TC-RNTI (becomes the C-RNTI).
        tc_rnti: Rnti,
    },
}

/// One in-flight random access procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Procedure {
    tc_rnti: Rnti,
    ra_rnti: Rnti,
    /// Slot of the preamble (MSG 1).
    msg1_slot: u64,
    /// Next step to execute.
    next: Step,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Step {
    Msg2,
    Msg3,
    Msg4,
    Done,
}

/// The gNB's RACH engine: accepts preambles, emits time-ordered events.
#[derive(Debug, Clone, Default)]
pub struct RachProcedure {
    in_flight: Vec<Procedure>,
}

impl RachProcedure {
    /// Fresh engine.
    pub fn new() -> RachProcedure {
        RachProcedure::default()
    }

    /// Register a preamble received in `slot` (a PRACH occasion). The
    /// caller provides the TC-RNTI it wants to assign. Returns the RA-RNTI
    /// the MSG 2 DCI will use.
    pub fn preamble_received(&mut self, slot: u64, tc_rnti: Rnti) -> Rnti {
        // RA-RNTI from the occasion's position within its frame (s_id = 0:
        // PRACH at symbol 0; f_id = 0: single FDM occasion).
        let t_id = (slot % 80) as u32;
        let ra_rnti = Rnti::ra_rnti(0, t_id, 0, 0);
        self.in_flight.push(Procedure {
            tc_rnti,
            ra_rnti,
            msg1_slot: slot,
            next: Step::Msg2,
        });
        ra_rnti
    }

    /// Advance to `slot`, returning every event due in it.
    pub fn tick(&mut self, slot: u64) -> Vec<RachEvent> {
        let mut events = Vec::new();
        for p in self.in_flight.iter_mut() {
            match p.next {
                Step::Msg2 if slot >= p.msg1_slot + MSG2_DELAY_SLOTS => {
                    events.push(RachEvent::SendMsg2 {
                        ra_rnti: p.ra_rnti,
                        tc_rnti: p.tc_rnti,
                    });
                    p.next = Step::Msg3;
                }
                Step::Msg3 if slot >= p.msg1_slot + MSG2_DELAY_SLOTS + MSG3_DELAY_SLOTS => {
                    events.push(RachEvent::UeSendsMsg3 { tc_rnti: p.tc_rnti });
                    p.next = Step::Msg4;
                }
                Step::Msg4
                    if slot
                        >= p.msg1_slot + MSG2_DELAY_SLOTS + MSG3_DELAY_SLOTS + MSG4_DELAY_SLOTS =>
                {
                    events.push(RachEvent::SendMsg4 { tc_rnti: p.tc_rnti });
                    p.next = Step::Done;
                }
                _ => {}
            }
        }
        self.in_flight.retain(|p| p.next != Step::Done);
        events
    }

    /// Restart the procedure for `tc_rnti` from MSG 1 at `msg1_slot`
    /// (the next PRACH occasion — used when the gNB could not place a
    /// RACH-related DCI and the UE must retry). Any existing procedure for
    /// the same TC-RNTI is replaced, never duplicated.
    pub fn retry(&mut self, msg1_slot: u64, tc_rnti: Rnti) {
        self.in_flight.retain(|p| p.tc_rnti != tc_rnti);
        self.preamble_received(msg1_slot, tc_rnti);
    }

    /// Number of procedures still in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_procedure_emits_three_events_in_order() {
        let mut rach = RachProcedure::new();
        let tc = Rnti(0x4601);
        rach.preamble_received(9, tc);
        let mut seen = Vec::new();
        for slot in 9..40 {
            for e in rach.tick(slot) {
                seen.push((slot, e));
            }
        }
        assert_eq!(seen.len(), 3);
        assert!(matches!(seen[0].1, RachEvent::SendMsg2 { tc_rnti, .. } if tc_rnti == tc));
        assert!(matches!(seen[1].1, RachEvent::UeSendsMsg3 { tc_rnti } if tc_rnti == tc));
        assert!(matches!(seen[2].1, RachEvent::SendMsg4 { tc_rnti } if tc_rnti == tc));
        // Strictly increasing slots.
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(rach.pending(), 0);
    }

    #[test]
    fn ra_rnti_depends_on_occasion() {
        let mut rach = RachProcedure::new();
        let r1 = rach.preamble_received(9, Rnti(1));
        let r2 = rach.preamble_received(19, Rnti(2));
        assert_ne!(r1, r2);
    }

    #[test]
    fn concurrent_procedures_do_not_interfere() {
        let mut rach = RachProcedure::new();
        rach.preamble_received(0, Rnti(10));
        rach.preamble_received(1, Rnti(11));
        let mut msg4 = Vec::new();
        for slot in 0..40 {
            for e in rach.tick(slot) {
                if let RachEvent::SendMsg4 { tc_rnti } = e {
                    msg4.push(tc_rnti);
                }
            }
        }
        assert_eq!(msg4, vec![Rnti(10), Rnti(11)]);
    }

    #[test]
    fn retry_replaces_rather_than_duplicates() {
        let mut rach = RachProcedure::new();
        rach.preamble_received(0, Rnti(7));
        // Blocked MSG 2 → retry; the old procedure must vanish.
        rach.retry(3, Rnti(7));
        assert_eq!(rach.pending(), 1);
        let mut msg4 = 0;
        for slot in 0..60 {
            for e in rach.tick(slot) {
                if matches!(e, RachEvent::SendMsg4 { .. }) {
                    msg4 += 1;
                }
            }
        }
        assert_eq!(msg4, 1, "exactly one MSG 4 after a retry");
    }

    #[test]
    fn skipped_slots_still_deliver_events() {
        // Ticking with gaps (e.g. only DL slots in TDD) must not lose steps.
        let mut rach = RachProcedure::new();
        rach.preamble_received(0, Rnti(5));
        let mut events = Vec::new();
        for slot in [2u64, 5, 9, 13, 17] {
            events.extend(rach.tick(slot));
        }
        assert_eq!(events.len(), 3);
    }
}
