//! Scheduler output records shared between the MAC and the PHY mapper.

use nr_phy::dci::DciFormat;
use nr_phy::types::Rnti;
use serde::{Deserialize, Serialize};

/// One scheduled allocation in one TTI — what becomes a DCI plus a PDSCH /
/// PUSCH region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The scheduled UE.
    pub rnti: Rnti,
    /// DL (1_1) or UL (0_1).
    pub format: DciFormat,
    /// First PRB.
    pub prb_start: usize,
    /// PRB count.
    pub prb_len: usize,
    /// First OFDM symbol of the data allocation.
    pub symbol_start: usize,
    /// Symbol count.
    pub symbol_len: usize,
    /// MCS index (in the UE's configured table).
    pub mcs: u8,
    /// MIMO layers.
    pub layers: usize,
    /// HARQ process.
    pub harq_id: u8,
    /// New-data indicator (as transmitted in the DCI).
    pub ndi: u8,
    /// Redundancy version.
    pub rv: u8,
    /// Whether this is a HARQ retransmission.
    pub is_retx: bool,
    /// Transport block size in bits.
    pub tbs: u32,
}

impl Allocation {
    /// REG count of the data region (PRBs × symbols) — the paper's Fig 8
    /// comparison unit.
    pub fn reg_count(&self) -> usize {
        self.prb_len * self.symbol_len
    }

    /// Bytes delivered if this block is eventually decoded.
    pub fn payload_bytes(&self) -> usize {
        (self.tbs / 8) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_and_byte_accounting() {
        let a = Allocation {
            rnti: Rnti(0x4601),
            format: DciFormat::Dl1_1,
            prb_start: 0,
            prb_len: 10,
            symbol_start: 2,
            symbol_len: 12,
            mcs: 20,
            layers: 2,
            harq_id: 0,
            ndi: 1,
            rv: 0,
            is_retx: false,
            tbs: 8000,
        };
        assert_eq!(a.reg_count(), 120);
        assert_eq!(a.payload_bytes(), 1000);
    }
}
