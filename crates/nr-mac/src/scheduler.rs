//! Downlink/uplink PRB schedulers: round-robin and proportional-fair.
//!
//! Each downlink TTI the scheduler picks which UEs get PRBs and how many,
//! bounded by the carrier width and the PDCCH's CCE budget (each scheduled
//! UE costs one DCI, and the CORESET only fits `n_cces / L` of them — with
//! 64 UEs in a cell this is the binding constraint, visible in the paper's
//! Fig 11 as the per-second scheduling cap).

use crate::grant::Allocation;
use crate::harq::GnbHarqEntity;
use nr_phy::dci::DciFormat;
use nr_phy::mcs::{select_mcs, McsTable};
use nr_phy::tbs::{transport_block_size, TbsParams};
use nr_phy::types::Rnti;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Static configuration of the scheduler.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Carrier width in PRBs.
    pub carrier_prbs: usize,
    /// Maximum DCIs per slot (CORESET CCEs / aggregation level).
    pub max_dcis_per_slot: usize,
    /// First data symbol (after the CORESET).
    pub symbol_start: usize,
    /// Data symbols per slot.
    pub symbol_len: usize,
    /// MCS table in use.
    pub mcs_table: McsTable,
    /// Target BLER for link adaptation.
    pub target_bler: f64,
    /// DMRS REs per PRB (TBS input).
    pub dmrs_per_prb: usize,
    /// xOverhead per PRB (TBS input).
    pub overhead_per_prb: usize,
    /// MIMO layers granted to every UE.
    pub layers: usize,
}

impl SchedulerConfig {
    /// A 20 MHz µ=1 cell with a 48-PRB CORESET at aggregation level 2.
    pub fn typical_20mhz() -> SchedulerConfig {
        SchedulerConfig {
            carrier_prbs: 51,
            max_dcis_per_slot: 4,
            symbol_start: 2,
            symbol_len: 12,
            mcs_table: McsTable::Qam256,
            target_bler: 0.1,
            dmrs_per_prb: 12,
            overhead_per_prb: 0,
            layers: 2,
        }
    }
}

/// Scheduler view of one UE in one TTI.
#[derive(Debug, Clone, Copy)]
pub struct SchedUe {
    /// UE identity.
    pub rnti: Rnti,
    /// Bytes waiting in the downlink (or uplink) buffer.
    pub buffer_bytes: usize,
    /// Wideband SNR estimate from CQI feedback, dB.
    pub snr_db: f64,
    /// Exponentially averaged served rate (bits/s) for PF fairness.
    pub avg_rate: f64,
}

/// A PRB scheduler. Implementations must be deterministic given their
/// construction seed and call order — the evaluation compares NR-Scope's
/// decode against the scheduler's ground truth slot by slot.
pub trait Scheduler {
    /// Produce this TTI's allocations. `harqs` supplies per-UE HARQ
    /// entities (indexed by RNTI) so retransmissions preempt new data;
    /// missing entries are created on first use.
    fn schedule(
        &mut self,
        slot: u64,
        ues: &[SchedUe],
        harqs: &mut HashMap<Rnti, GnbHarqEntity>,
        cfg: &SchedulerConfig,
    ) -> Vec<Allocation>;

    /// Human-readable name for logs and benches.
    fn name(&self) -> &'static str;
}

/// Build one allocation for a UE over a PRB span, handling HARQ.
///
/// Returns `None` when the UE has neither data nor a pending
/// retransmission.
fn build_allocation(
    ue: &SchedUe,
    harq: &mut GnbHarqEntity,
    prb_start: usize,
    prb_budget: usize,
    cfg: &SchedulerConfig,
) -> Option<Allocation> {
    if prb_budget == 0 {
        return None;
    }
    // Retransmissions first: same TBS, same NDI, bumped RV.
    if let Some((harq_id, tbs)) = harq.pending_retx() {
        let ndi = harq.start_retx(harq_id);
        let rv = [0u8, 2, 3, 1][harq.retx_count(harq_id).min(3) as usize];
        // Reuse the same PRB budget the TBS needs (approximate the original
        // span by recomputing the smallest span that fits the TBS).
        let mcs = select_mcs(cfg.mcs_table, ue.snr_db, cfg.target_bler);
        let prb_len = smallest_span_for(tbs, mcs, cfg).min(prb_budget).max(1);
        return Some(Allocation {
            rnti: ue.rnti,
            format: DciFormat::Dl1_1,
            prb_start,
            prb_len,
            symbol_start: cfg.symbol_start,
            symbol_len: cfg.symbol_len,
            mcs,
            layers: cfg.layers,
            harq_id,
            ndi,
            rv,
            is_retx: true,
            tbs,
        });
    }
    if ue.buffer_bytes == 0 {
        return None;
    }
    let harq_id = harq.free_process()?;
    let mcs = select_mcs(cfg.mcs_table, ue.snr_db, cfg.target_bler);
    // Shrink the span to what the buffer needs.
    let needed_bits = (ue.buffer_bytes * 8) as u32;
    let mut prb_len = prb_budget;
    let fitted = smallest_span_for(needed_bits, mcs, cfg);
    if fitted < prb_len {
        prb_len = fitted.max(1);
    }
    let tbs = transport_block_size(&TbsParams {
        n_prb: prb_len,
        n_symbols: cfg.symbol_len,
        dmrs_per_prb: cfg.dmrs_per_prb,
        overhead_per_prb: cfg.overhead_per_prb,
        mcs: cfg.mcs_table.entry(mcs).expect("valid MCS"),
        layers: cfg.layers,
    });
    if tbs == 0 {
        return None;
    }
    let ndi = harq.start_new(harq_id, tbs);
    Some(Allocation {
        rnti: ue.rnti,
        format: DciFormat::Dl1_1,
        prb_start,
        prb_len,
        symbol_start: cfg.symbol_start,
        symbol_len: cfg.symbol_len,
        mcs,
        layers: cfg.layers,
        harq_id,
        ndi,
        rv: 0,
        is_retx: false,
        tbs,
    })
}

/// Smallest PRB count whose TBS covers `bits` at this MCS (linear scan —
/// carrier widths are ≤ 275).
fn smallest_span_for(bits: u32, mcs: u8, cfg: &SchedulerConfig) -> usize {
    let entry = cfg.mcs_table.entry(mcs).expect("valid MCS");
    for n_prb in 1..=cfg.carrier_prbs {
        let tbs = transport_block_size(&TbsParams {
            n_prb,
            n_symbols: cfg.symbol_len,
            dmrs_per_prb: cfg.dmrs_per_prb,
            overhead_per_prb: cfg.overhead_per_prb,
            mcs: entry,
            layers: cfg.layers,
        });
        if tbs >= bits {
            return n_prb;
        }
    }
    cfg.carrier_prbs
}

/// Classic round-robin: rotates priority over UEs each slot and splits the
/// carrier evenly among those scheduled.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Fresh scheduler.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn schedule(
        &mut self,
        _slot: u64,
        ues: &[SchedUe],
        harqs: &mut HashMap<Rnti, GnbHarqEntity>,
        cfg: &SchedulerConfig,
    ) -> Vec<Allocation> {
        if ues.is_empty() {
            return Vec::new();
        }
        let n = ues.len();
        // Candidates in rotating order, keeping only those with work.
        let order: Vec<usize> = (0..n).map(|i| (self.cursor + i) % n).collect();
        self.cursor = (self.cursor + 1) % n;
        let eligible: Vec<usize> = order
            .into_iter()
            .filter(|&i| {
                let harq = harqs.entry(ues[i].rnti).or_default();
                ues[i].buffer_bytes > 0 || harq.pending_retx().is_some()
            })
            .take(cfg.max_dcis_per_slot)
            .collect();
        if eligible.is_empty() {
            return Vec::new();
        }
        let share = (cfg.carrier_prbs / eligible.len()).max(1);
        let mut allocations = Vec::new();
        let mut prb_cursor = 0usize;
        for &i in &eligible {
            let budget = share.min(cfg.carrier_prbs.saturating_sub(prb_cursor));
            let harq = harqs.entry(ues[i].rnti).or_default();
            if let Some(a) = build_allocation(&ues[i], harq, prb_cursor, budget, cfg) {
                prb_cursor += a.prb_len;
                allocations.push(a);
            }
        }
        allocations
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Proportional-fair: ranks UEs by instantaneous-rate / average-rate and
/// serves the top `max_dcis_per_slot`, splitting PRBs by metric weight.
#[derive(Debug, Default, Clone)]
pub struct ProportionalFair;

impl ProportionalFair {
    /// Fresh scheduler.
    pub fn new() -> ProportionalFair {
        ProportionalFair
    }
}

impl Scheduler for ProportionalFair {
    fn schedule(
        &mut self,
        _slot: u64,
        ues: &[SchedUe],
        harqs: &mut HashMap<Rnti, GnbHarqEntity>,
        cfg: &SchedulerConfig,
    ) -> Vec<Allocation> {
        // Metric: achievable spectral efficiency over historical rate.
        let mut ranked: Vec<(usize, f64)> = ues
            .iter()
            .enumerate()
            .filter(|(_, u)| {
                u.buffer_bytes > 0 || harqs.entry(u.rnti).or_default().pending_retx().is_some()
            })
            .map(|(i, u)| {
                let mcs = select_mcs(cfg.mcs_table, u.snr_db, cfg.target_bler);
                let eff = cfg.mcs_table.entry(mcs).expect("valid").efficiency();
                (i, eff / u.avg_rate.max(1.0))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        ranked.truncate(cfg.max_dcis_per_slot);
        if ranked.is_empty() {
            return Vec::new();
        }
        let share = (cfg.carrier_prbs / ranked.len()).max(1);
        let mut allocations = Vec::new();
        let mut prb_cursor = 0usize;
        for &(i, _) in &ranked {
            let budget = share.min(cfg.carrier_prbs.saturating_sub(prb_cursor));
            let harq = harqs.entry(ues[i].rnti).or_default();
            if let Some(a) = build_allocation(&ues[i], harq, prb_cursor, budget, cfg) {
                prb_cursor += a.prb_len;
                allocations.push(a);
            }
        }
        allocations
    }

    fn name(&self) -> &'static str {
        "proportional-fair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn run_sched(
        s: &mut dyn Scheduler,
        ues: &mut [SchedUe],
        harqs: &mut HashMap<Rnti, GnbHarqEntity>,
        cfg: &SchedulerConfig,
        slot: u64,
    ) -> Vec<Allocation> {
        s.schedule(slot, ues, harqs, cfg)
    }

    fn ue(rnti: u16, bytes: usize, snr: f64) -> SchedUe {
        SchedUe {
            rnti: Rnti(rnti),
            buffer_bytes: bytes,
            snr_db: snr,
            avg_rate: 1.0,
        }
    }

    #[test]
    fn empty_cell_schedules_nothing() {
        let cfg = SchedulerConfig::typical_20mhz();
        let mut harqs = HashMap::new();
        let mut ues = Vec::new();
        let a = run_sched(&mut RoundRobin::new(), &mut ues, &mut harqs, &cfg, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn idle_ues_get_no_grants() {
        let cfg = SchedulerConfig::typical_20mhz();
        let mut harqs = HashMap::new();
        let mut ues = vec![ue(1, 0, 20.0), ue(2, 0, 20.0)];
        let a = run_sched(&mut RoundRobin::new(), &mut ues, &mut harqs, &cfg, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn allocations_do_not_overlap_and_fit_carrier() {
        let cfg = SchedulerConfig::typical_20mhz();
        let mut harqs = HashMap::new();
        let mut ues: Vec<SchedUe> = (1..=6).map(|i| ue(i, 100_000, 25.0)).collect();
        for slot in 0..20u64 {
            let allocs = run_sched(&mut RoundRobin::new(), &mut ues, &mut harqs, &cfg, slot);
            let mut used = vec![false; cfg.carrier_prbs];
            for a in &allocs {
                assert!(a.prb_start + a.prb_len <= cfg.carrier_prbs);
                for (p, slot_used) in used
                    .iter_mut()
                    .enumerate()
                    .skip(a.prb_start)
                    .take(a.prb_len)
                {
                    assert!(!*slot_used, "PRB {p} double-booked");
                    *slot_used = true;
                }
            }
            // Feed back ACKs so HARQ frees up.
            for a in &allocs {
                harqs.get_mut(&a.rnti).unwrap().feedback(a.harq_id, true);
            }
        }
    }

    #[test]
    fn dci_budget_caps_scheduled_ues() {
        let cfg = SchedulerConfig::typical_20mhz();
        let mut harqs = HashMap::new();
        let mut rr = RoundRobin::new();
        let mut ues: Vec<SchedUe> = (1..=64).map(|i| ue(i, 1_000_000, 20.0)).collect();
        let a = run_sched(&mut rr, &mut ues, &mut harqs, &cfg, 0);
        assert!(a.len() <= cfg.max_dcis_per_slot);
        assert_eq!(a.len(), cfg.max_dcis_per_slot);
    }

    #[test]
    fn round_robin_rotates_service() {
        let cfg = SchedulerConfig {
            max_dcis_per_slot: 1,
            ..SchedulerConfig::typical_20mhz()
        };
        let mut harqs: HashMap<Rnti, GnbHarqEntity> = HashMap::new();
        let mut rr = RoundRobin::new();
        let mut served = std::collections::HashSet::new();
        let mut ues: Vec<SchedUe> = (1..=4).map(|i| ue(i, 1_000_000, 20.0)).collect();
        for slot in 0..4u64 {
            let a = run_sched(&mut rr, &mut ues, &mut harqs, &cfg, slot);
            assert_eq!(a.len(), 1);
            served.insert(a[0].rnti);
            harqs
                .get_mut(&a[0].rnti)
                .unwrap()
                .feedback(a[0].harq_id, true);
        }
        assert_eq!(served.len(), 4, "each UE served once over 4 slots");
    }

    #[test]
    fn small_buffer_gets_small_allocation() {
        let cfg = SchedulerConfig::typical_20mhz();
        let mut harqs = HashMap::new();
        let mut ues = vec![ue(1, 50, 25.0)]; // 400 bits
        let a = run_sched(&mut RoundRobin::new(), &mut ues, &mut harqs, &cfg, 0);
        assert_eq!(a.len(), 1);
        assert!(a[0].prb_len <= 2, "tiny buffer should not eat the carrier");
        assert!(a[0].tbs >= 400);
    }

    #[test]
    fn retransmission_preempts_new_data_and_keeps_tbs() {
        let cfg = SchedulerConfig::typical_20mhz();
        let mut harqs = HashMap::new();
        let mut ues = vec![ue(1, 100_000, 25.0)];
        let a1 = run_sched(&mut RoundRobin::new(), &mut ues, &mut harqs, &cfg, 0);
        let orig = a1[0];
        // NACK it.
        harqs
            .get_mut(&orig.rnti)
            .unwrap()
            .feedback(orig.harq_id, false);
        let mut rr = RoundRobin::new();
        let a2 = run_sched(&mut rr, &mut ues, &mut harqs, &cfg, 1);
        assert_eq!(a2.len(), 1);
        assert!(a2[0].is_retx);
        assert_eq!(a2[0].tbs, orig.tbs, "retx repeats the transport block");
        assert_eq!(a2[0].ndi, orig.ndi, "retx keeps NDI");
        assert_eq!(a2[0].harq_id, orig.harq_id);
    }

    #[test]
    fn pf_prefers_under_served_ues() {
        let cfg = SchedulerConfig {
            max_dcis_per_slot: 1,
            ..SchedulerConfig::typical_20mhz()
        };
        let mut harqs = HashMap::new();
        let mut pf = ProportionalFair::new();
        // Same channel, one UE historically over-served.
        let mut ues = vec![
            SchedUe {
                rnti: Rnti(1),
                buffer_bytes: 1_000_000,
                snr_db: 20.0,
                avg_rate: 1e9,
            },
            SchedUe {
                rnti: Rnti(2),
                buffer_bytes: 1_000_000,
                snr_db: 20.0,
                avg_rate: 1e3,
            },
        ];
        let a = run_sched(&mut pf, &mut ues, &mut harqs, &cfg, 0);
        assert_eq!(a[0].rnti, Rnti(2), "PF serves the starved UE");
    }

    #[test]
    fn better_snr_yields_higher_mcs_and_tbs() {
        let cfg = SchedulerConfig::typical_20mhz();
        let mut harqs = HashMap::new();
        let mut ues_low = vec![ue(1, 10_000_000, 5.0)];
        let low = run_sched(&mut RoundRobin::new(), &mut ues_low, &mut harqs, &cfg, 0);
        let mut harqs2 = HashMap::new();
        let mut ues_high = vec![ue(2, 10_000_000, 30.0)];
        let high = run_sched(&mut RoundRobin::new(), &mut ues_high, &mut harqs2, &cfg, 0);
        assert!(high[0].mcs > low[0].mcs);
        assert!(high[0].tbs > low[0].tbs);
    }
}
