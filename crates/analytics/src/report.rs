//! Plain-text figure output: each bench binary prints the same series the
//! paper plots, in a stable grep-friendly format consumed by
//! `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// Print a figure header.
pub fn figure_header(id: &str, caption: &str) -> String {
    format!("== {id} — {caption} ==")
}

/// Render one named series of (x, y) points, downsampled for readability.
pub fn series(name: &str, points: &[(f64, f64)], max_points: usize) -> String {
    let pts = crate::stats::downsample(points, max_points);
    let mut out = String::new();
    let _ = writeln!(out, "series {name} ({} points)", points.len());
    for (x, y) in pts {
        let _ = writeln!(out, "  {x:>12.4}  {y:>10.6}");
    }
    out
}

/// Render a labelled scalar row ("dl_miss_rate_pct 0.33").
pub fn scalar(name: &str, value: f64) -> String {
    format!("{name} {value:.6}")
}

/// Render a bar-group row (x label + one value per named column).
pub fn bars(x_label: &str, columns: &[(&str, f64)]) -> String {
    let mut out = format!("{x_label:>12}");
    for (name, v) in columns {
        let _ = write!(out, "  {name}={v:.4}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_scalar_shapes() {
        assert_eq!(
            figure_header("fig07a", "DCI miss rate"),
            "== fig07a — DCI miss rate =="
        );
        assert!(scalar("dl_miss", 0.331234).starts_with("dl_miss 0.331234"));
    }

    #[test]
    fn series_is_grep_friendly() {
        let s = series("1ue", &[(0.0, 1.0), (1.0, 0.5), (2.0, 0.0)], 10);
        assert!(s.starts_with("series 1ue (3 points)"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn bars_join_columns() {
        let b = bars("8", &[("dl", 0.5), ("ul", 0.25)]);
        assert!(b.contains("dl=0.5000"));
        assert!(b.contains("ul=0.2500"));
    }
}
