//! Packet-aggregation analysis (paper Appendix D, Fig 16d): "We compare
//! the TBS in each TTI and the receiving packet size to get packets per
//! TTI" — blocks carrying multiple application packets defeat
//! inter-packet-arrival-based bandwidth estimators.

use ue_sim::ue::Delivery;

/// Packets-per-TTI samples split by whether the RAN had spare capacity
/// (lone UE drains instantly, aggregating more) or competition.
#[derive(Debug, Clone, Default)]
pub struct AggregationStats {
    /// Packets in each delivered transport block.
    pub packets_per_tti: Vec<f64>,
}

impl AggregationStats {
    /// Build from a UE's ground-truth delivery log, counting only blocks
    /// that completed at least one packet.
    pub fn from_deliveries(deliveries: &[Delivery]) -> AggregationStats {
        AggregationStats {
            packets_per_tti: deliveries
                .iter()
                .filter(|d| d.packets > 0)
                .map(|d| d.packets as f64)
                .collect(),
        }
    }

    /// Mean packets per TTI.
    pub fn mean(&self) -> f64 {
        crate::stats::mean(&self.packets_per_tti)
    }

    /// Fraction of blocks aggregating more than one packet.
    pub fn multi_packet_fraction(&self) -> f64 {
        if self.packets_per_tti.is_empty() {
            return 0.0;
        }
        self.packets_per_tti.iter().filter(|&&p| p > 1.0).count() as f64
            / self.packets_per_tti.len() as f64
    }

    /// CDF points for the figure.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        crate::stats::cdf_points(&self.packets_per_tti)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(slot: u64, packets: usize) -> Delivery {
        Delivery {
            slot,
            bytes: packets * 1400,
            packets,
            was_retransmitted: false,
        }
    }

    #[test]
    fn counts_only_packet_bearing_blocks() {
        let stats = AggregationStats::from_deliveries(&[d(1, 3), d(2, 0), d(3, 1)]);
        assert_eq!(stats.packets_per_tti.len(), 2);
        assert_eq!(stats.mean(), 2.0);
        assert_eq!(stats.multi_packet_fraction(), 0.5);
    }

    #[test]
    fn empty_log_is_defined() {
        let stats = AggregationStats::from_deliveries(&[]);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.multi_packet_fraction(), 0.0);
        assert!(stats.cdf().is_empty());
    }
}
