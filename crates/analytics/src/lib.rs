//! # nrscope-analytics — evaluation machinery for the paper's figures
//!
//! Implements the paper's §5 methodology: matching NR-Scope's telemetry
//! records against the gNB ground-truth log "based on the timestamp and
//! the TTI indexes", and computing the statistics each figure plots —
//! DCI miss rates (Fig 7/13), REG-count errors (Fig 8), throughput-
//! estimation errors (Fig 9/16), UE active times (Fig 10), active-UE
//! counts (Fig 11), MCS/retransmission distributions (Fig 15), and packet
//! aggregation (Fig 16d).

pub mod aggregation;
pub mod matching;
pub mod report;
pub mod stats;
pub mod throughput_eval;

pub use matching::{match_dcis, MatchReport};
pub use stats::{ccdf_points, cdf_points, mean, percentile, r_squared};
