//! Throughput-estimation accuracy (paper §5.2.2, Figs 9 and 16a–c):
//! windowed bit-rate comparison between NR-Scope's TBS-based estimate and
//! the UE-side ground truth (tcpdump equivalent / gNB log).

use nr_phy::types::Rnti;
use nrscope::NrScope;
use ue_sim::SimUe;

/// Per-window throughput error samples for one UE.
#[derive(Debug, Clone)]
pub struct ThroughputErrors {
    /// The UE.
    pub rnti: Rnti,
    /// |estimate − truth| in kbit/s, one sample per window.
    pub errors_kbps: Vec<f64>,
    /// Ground-truth mean rate over the run, Mbit/s (for relative errors).
    pub truth_mbps: f64,
}

impl ThroughputErrors {
    /// Error at a percentile, kbit/s.
    pub fn percentile_kbps(&self, p: f64) -> f64 {
        crate::stats::percentile(&self.errors_kbps, p)
    }

    /// Median error relative to the mean rate, in percent.
    pub fn median_relative_pct(&self) -> f64 {
        if self.truth_mbps <= 0.0 {
            return 0.0;
        }
        100.0 * self.percentile_kbps(50.0) / (self.truth_mbps * 1000.0)
    }
}

/// Compare a scope session against one UE's delivery log over windows of
/// `window_slots` (1 s in the paper), within `slots`.
///
/// The estimate counts new-data TBS bits; the truth counts delivered
/// payload bytes — the same pairing the paper's tcpdump methodology uses.
pub fn throughput_errors(
    scope: &NrScope,
    ue: &SimUe,
    rnti: Rnti,
    slots: std::ops::Range<u64>,
    window_slots: u64,
    slot_s: f64,
) -> ThroughputErrors {
    let mut errors = Vec::new();
    let mut truth_bits_total = 0.0;
    let mut n_windows = 0.0;
    let mut w = slots.start;
    while w + window_slots <= slots.end {
        let win = w..w + window_slots;
        let est_bits = scope.estimated_bits(rnti, win.clone()) as f64;
        let truth_bits = ue.delivered_bytes_in(win) as f64 * 8.0;
        let window_s = window_slots as f64 * slot_s;
        let err_kbps = (est_bits - truth_bits).abs() / window_s / 1000.0;
        errors.push(err_kbps);
        truth_bits_total += truth_bits;
        n_windows += 1.0;
        w += window_slots;
    }
    let truth_mbps = if n_windows > 0.0 {
        truth_bits_total / (n_windows * window_slots as f64 * slot_s) / 1e6
    } else {
        0.0
    };
    ThroughputErrors {
        rnti,
        errors_kbps: errors,
        truth_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_sim::{CellConfig, Gnb};
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use nrscope::observe::Observer;
    use nrscope::ScopeConfig;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::MobilityScenario;

    #[test]
    fn backlogged_flow_has_sub_percent_median_error() {
        let cell = CellConfig::mosolab_n48();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 31);
        gnb.ue_arrives(SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: usize::MAX / 2,
                },
                1,
            ),
            0.0,
            60.0,
            1,
        ));
        let mut obs = Observer::new(&cell, 35.0, false, 3);
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        let slots = 10_000u64;
        for s in 0..slots {
            let out = gnb.step();
            scope.process(&obs.observe(&out, s as f64 * 0.0005));
        }
        let rnti = gnb.connected_rntis()[0];
        let ue = gnb.ue(rnti).unwrap();
        let e = throughput_errors(&scope, ue, rnti, 2000..slots, 2000, cell.slot_s());
        assert!(
            e.truth_mbps > 5.0,
            "flow runs fast: {} Mbit/s",
            e.truth_mbps
        );
        assert!(
            e.median_relative_pct() < 1.0,
            "median rel err {}%",
            e.median_relative_pct()
        );
    }

    #[test]
    fn empty_window_range_is_empty() {
        let scope = NrScope::new(ScopeConfig::default(), None);
        let ue = SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(TrafficKind::FileDownload { total_bytes: 1 }, 1),
            0.0,
            1.0,
            1,
        );
        let e = throughput_errors(&scope, &ue, Rnti(1), 0..10, 100, 0.0005);
        assert!(e.errors_kbps.is_empty());
        assert_eq!(e.truth_mbps, 0.0);
    }
}
