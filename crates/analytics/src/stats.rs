//! Distribution statistics used across the evaluation figures.

/// Linear-interpolated percentile (`p` ∈ [0, 100]) of an unsorted sample.
/// Returns 0.0 for an empty sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (v[hi] - v[lo]) * (rank - lo as f64)
    }
}

/// Arithmetic mean (0.0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Empirical CDF sampled at each distinct data point: returns
/// `(x, P[X ≤ x])` pairs sorted by `x`.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len() as f64;
    v.iter()
        .enumerate()
        .map(|(i, &x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Empirical CCDF: `(x, P[X > x])` pairs sorted by `x` — the paper plots
/// error distributions this way (Figs 8, 9, 10, 16).
pub fn ccdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    cdf_points(values)
        .into_iter()
        .map(|(x, p)| (x, 1.0 - p))
        .collect()
}

/// Coefficient of determination R² between two paired samples — the
/// paper's Fig 15 agreement metric (0.9970 for MCS, 0.9862 for
/// retransmissions).
pub fn r_squared(truth: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(truth.len(), estimate.len());
    if truth.is_empty() {
        return 0.0;
    }
    let m = mean(truth);
    let ss_tot: f64 = truth.iter().map(|t| (t - m).powi(2)).sum();
    let ss_res: f64 = truth
        .iter()
        .zip(estimate)
        .map(|(t, e)| (t - e).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Downsample a CDF/CCDF point set to at most `n` points for printing
/// (keeps the first and last points).
pub fn downsample(points: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if points.len() <= n || n < 2 {
        return points.to_vec();
    }
    let step = (points.len() - 1) as f64 / (n - 1) as f64;
    (0..n)
        .map(|i| points[(i as f64 * step).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn cdf_and_ccdf_are_complementary() {
        let v = [3.0, 1.0, 2.0];
        let cdf = cdf_points(&v);
        let ccdf = ccdf_points(&v);
        for ((xa, pa), (xb, pb)) in cdf.iter().zip(&ccdf) {
            assert_eq!(xa, xb);
            assert!((pa + pb - 1.0).abs() < 1e-12);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn r_squared_perfect_and_poor() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r_squared(&t, &t), 1.0);
        let bad = [4.0, 1.0, 3.0, 0.0];
        assert!(r_squared(&t, &bad) < 0.5);
    }

    #[test]
    fn r_squared_constant_truth() {
        let t = [2.0, 2.0];
        assert_eq!(r_squared(&t, &[2.0, 2.0]), 1.0);
        assert_eq!(r_squared(&t, &[1.0, 3.0]), 0.0);
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 / 100.0)).collect();
        let d = downsample(&pts, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], pts[0]);
        assert_eq!(*d.last().unwrap(), *pts.last().unwrap());
    }
}
