//! DCI matching against the ground-truth log (paper §5.2.1): "We match the
//! number of DCIs captured by NR-Scope and srsRAN's log using the
//! timestamp and the TTI index, through which we calculate a DCI decoding
//! miss rate."

use gnb_sim::TruthLog;
use nr_phy::dci::DciFormat;
use nr_phy::types::{Rnti, RntiType};
use nrscope::TelemetryRecord;
use std::collections::HashSet;

/// Outcome of matching a telemetry session against a truth log.
#[derive(Debug, Clone, Default)]
pub struct MatchReport {
    /// Ground-truth DL data DCIs (C-RNTI, 1_1).
    pub dl_truth: usize,
    /// DL data DCIs NR-Scope decoded and matched.
    pub dl_matched: usize,
    /// Ground-truth UL DCIs.
    pub ul_truth: usize,
    /// UL DCIs matched.
    pub ul_matched: usize,
    /// Decoded records with no truth counterpart (false positives).
    pub spurious: usize,
    /// Per-TTI REG-count absolute errors (Fig 8's variable), one entry per
    /// TTI that carried any DL data traffic.
    pub reg_errors: Vec<f64>,
}

impl MatchReport {
    /// DL DCI miss rate in percent (Fig 7's y-axis).
    pub fn dl_miss_rate_pct(&self) -> f64 {
        miss_pct(self.dl_truth, self.dl_matched)
    }

    /// UL DCI miss rate in percent.
    pub fn ul_miss_rate_pct(&self) -> f64 {
        miss_pct(self.ul_truth, self.ul_matched)
    }

    /// Mean REG error per TTI (the paper reports an average of 0.77).
    pub fn mean_reg_error(&self) -> f64 {
        crate::stats::mean(&self.reg_errors)
    }

    /// Fraction of TTIs with zero REG error (paper: > 99%).
    pub fn zero_reg_fraction(&self) -> f64 {
        if self.reg_errors.is_empty() {
            return 1.0;
        }
        self.reg_errors.iter().filter(|&&e| e == 0.0).count() as f64 / self.reg_errors.len() as f64
    }
}

fn miss_pct(truth: usize, matched: usize) -> f64 {
    if truth == 0 {
        0.0
    } else {
        100.0 * (truth.saturating_sub(matched)) as f64 / truth as f64
    }
}

/// Match decoded records against the truth log over `slots`.
///
/// A record matches when the truth log contains a DCI with the same
/// (slot, RNTI, format); REG errors compare the summed DL REG counts per
/// TTI. `slot_offset` aligns the sniffer's local slot counter with the
/// gNB's absolute slot (0 when the sniffer starts with the cell).
pub fn match_dcis(
    truth: &TruthLog,
    records: &[TelemetryRecord],
    slots: std::ops::Range<u64>,
    slot_offset: i64,
) -> MatchReport {
    let mut report = MatchReport::default();
    // Index decoded records by (gnb_slot, rnti, format).
    let decoded: HashSet<(u64, Rnti, DciFormat)> = records
        .iter()
        .filter(|r| r.rnti_type == RntiType::C)
        .filter_map(|r| {
            let gnb_slot = r.slot as i64 + slot_offset;
            u64::try_from(gnb_slot).ok().map(|s| (s, r.rnti, r.format))
        })
        .collect();
    let mut truth_keys: HashSet<(u64, Rnti, DciFormat)> = HashSet::new();
    for rec in truth.records() {
        if !slots.contains(&rec.slot) || rec.rnti_type != RntiType::C {
            continue;
        }
        truth_keys.insert((rec.slot, rec.rnti, rec.alloc.format));
        let hit = decoded.contains(&(rec.slot, rec.rnti, rec.alloc.format));
        match rec.alloc.format {
            DciFormat::Dl1_1 => {
                report.dl_truth += 1;
                if hit {
                    report.dl_matched += 1;
                }
            }
            DciFormat::Ul0_1 => {
                report.ul_truth += 1;
                if hit {
                    report.ul_matched += 1;
                }
            }
        }
    }
    report.spurious = decoded
        .iter()
        .filter(|k| slots.contains(&k.0) && !truth_keys.contains(k))
        .count();
    // Per-TTI REG error for TTIs with DL data traffic.
    let mut per_slot_truth: std::collections::HashMap<u64, usize> = Default::default();
    for rec in truth.records() {
        if slots.contains(&rec.slot)
            && rec.rnti_type == RntiType::C
            && rec.alloc.format == DciFormat::Dl1_1
        {
            *per_slot_truth.entry(rec.slot).or_default() += rec.alloc.reg_count();
        }
    }
    let mut per_slot_decoded: std::collections::HashMap<u64, usize> = Default::default();
    for r in records {
        if r.rnti_type != RntiType::C || r.format != DciFormat::Dl1_1 {
            continue;
        }
        let gnb_slot = r.slot as i64 + slot_offset;
        if let Ok(s) = u64::try_from(gnb_slot) {
            if slots.contains(&s) {
                *per_slot_decoded.entry(s).or_default() += r.reg_count();
            }
        }
    }
    for (slot, truth_regs) in &per_slot_truth {
        let got = per_slot_decoded.get(slot).copied().unwrap_or(0);
        report
            .reg_errors
            .push((*truth_regs as f64 - got as f64).abs());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_sim::{CellConfig, Gnb};
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use nrscope::observe::Observer;
    use nrscope::{NrScope, ScopeConfig};
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn run(snr_db: f64, slots: u64) -> (Gnb, NrScope) {
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 21);
        for i in 1..=2u64 {
            gnb.ue_arrives(SimUe::new(
                i,
                ChannelProfile::Awgn,
                MobilityScenario::Static,
                TrafficSource::new(
                    TrafficKind::Cbr {
                        rate_bps: 3e6,
                        packet_bytes: 1200,
                    },
                    i,
                ),
                0.0,
                300.0,
                i,
            ));
        }
        let mut obs = Observer::new(&cell, snr_db, false, 7);
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        for s in 0..slots {
            let out = gnb.step();
            let observed = obs.observe(&out, s as f64 * 0.0005);
            scope.process(&observed);
        }
        (gnb, scope)
    }

    #[test]
    fn high_snr_miss_rate_is_tiny() {
        let (gnb, scope) = run(35.0, 6000);
        let report = match_dcis(gnb.truth(), scope.records(), 0..6000, 0);
        assert!(report.dl_truth > 500, "dl_truth {}", report.dl_truth);
        assert!(report.ul_truth > 100, "ul_truth {}", report.ul_truth);
        assert!(
            report.dl_miss_rate_pct() < 0.5,
            "dl miss {}",
            report.dl_miss_rate_pct()
        );
        assert!(report.ul_miss_rate_pct() < 0.5);
        assert_eq!(report.spurious, 0);
        // REG errors almost always zero (paper: > 99%).
        assert!(report.zero_reg_fraction() > 0.98);
    }

    #[test]
    fn low_snr_increases_misses() {
        let (gnb, scope) = run(-3.0, 4000);
        let report = match_dcis(gnb.truth(), scope.records(), 0..4000, 0);
        let (gnb2, scope2) = run(35.0, 4000);
        let report2 = match_dcis(gnb2.truth(), scope2.records(), 0..4000, 0);
        assert!(
            report.dl_miss_rate_pct() > report2.dl_miss_rate_pct(),
            "low SNR {} vs high SNR {}",
            report.dl_miss_rate_pct(),
            report2.dl_miss_rate_pct()
        );
    }

    #[test]
    fn empty_inputs_are_well_defined() {
        let report = match_dcis(&TruthLog::new(), &[], 0..100, 0);
        assert_eq!(report.dl_miss_rate_pct(), 0.0);
        assert_eq!(report.zero_reg_fraction(), 1.0);
        assert_eq!(report.mean_reg_error(), 0.0);
    }
}
