//! Fig 11 — CDF of the number of active UEs per second and per minute.
//!
//! Paper: fewer than 60 UEs in most one-minute windows.

use gnb_sim::CellConfig;
use nrscope_analytics::{cdf_points, percentile, report};
use nrscope_bench::{capture_seconds, run_population};
use ue_sim::arrival::{active_per_window, ArrivalConfig};

fn main() {
    println!(
        "{}",
        report::figure_header("fig11", "active UEs per second / minute, T-Mobile cells")
    );
    let seconds = capture_seconds(120.0);
    for (cell_name, cell, arrivals) in [
        (
            "Cell 1",
            CellConfig::tmobile_n25(),
            ArrivalConfig::tmobile_cell1(),
        ),
        (
            "Cell 2",
            CellConfig::tmobile_n71(),
            ArrivalConfig::tmobile_cell2(),
        ),
    ] {
        let p = run_population(cell, arrivals, seconds, 3);
        let sessions = p.population.sessions();
        for (window_name, window_s) in [("1 Second", 1.0), ("1 Minute", 60.0)] {
            let counts: Vec<f64> = active_per_window(&sessions, seconds, window_s)
                .into_iter()
                .map(|c| c as f64)
                .collect();
            println!(
                "{}",
                report::scalar(
                    &format!("{cell_name}_{window_name}_p95_ues"),
                    percentile(&counts, 95.0),
                )
            );
            println!(
                "{}",
                report::series(
                    &format!("{cell_name}, {window_name}"),
                    &cdf_points(&counts),
                    10,
                )
            );
        }
    }
    println!();
    println!("paper: < 60 distinct UEs in most one-minute windows");
}
