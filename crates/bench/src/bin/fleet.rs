//! fleet — multi-cell bulkhead isolation, warm restart, and continuity.
//!
//! Three experiments, frozen into `BENCH_fleet.json`:
//!
//!   1. **Sweep**: cell count vs sustained slots/sec/cell over one shared
//!      worker pool (volatile shards, no faults).
//!   2. **Baseline**: an 8-cell durable fleet with a scripted handover and
//!      no faults — records each shard's p99 enqueue→done slot latency
//!      and byte parity.
//!   3. **Fault matrix**: the identical run with one shard *killed*
//!      (injected panic), one *wedged* (injected stall past the
//!      watchdog), and one *overloaded* (per-slot delay, so it sheds its
//!      own queue). Asserts, exiting non-zero on breach:
//!        - every healthy shard's p99 stays within 10% of its own
//!          no-fault baseline (plus a small scheduler-granularity floor);
//!        - every healthy shard's byte parity vs gNB ground truth stays
//!          in [0.88, 1.02] — and so does the killed and the wedged
//!          shard's, which doubles as the exact-slot-resume check (a
//!          journal replayed twice would push parity past 1.02);
//!        - killed and wedged shards warm-restart from their own
//!          checkpoints (`restarts ≥ 1`, recovery report `resumed`) and
//!          every shard's final watermark equals the slots fed;
//!        - every shard ends Healthy / synced / at the `full` rung;
//!        - the handed-over C-RNTI is matched cross-cell: exactly one
//!          continuation, so the fleet counts one user, not two.
//!
//! `--short` shrinks the run for CI; `NRSCOPE_SECONDS` scales the fault
//! phases (script points are fractions of the total).

use gnb_sim::{CellConfig, MultiCellSim};
use nr_phy::channel::ChannelProfile;
use nr_phy::types::Pci;
use nrscope::observe::Observer;
use nrscope::worker::InjectedFault;
use nrscope::{
    FaultPlan, Fidelity, Fleet, FleetConfig, FleetSnapshot, GovernorConfig, PersistConfig,
    ScopeConfig, ShardSpec,
};
use nrscope_bench::capture_seconds;
use std::path::Path;
use std::time::{Duration, Instant};
use ue_sim::traffic::{TrafficKind, TrafficSource};
use ue_sim::{MobilityScenario, SimUe};

/// Tolerance floor on the healthy-shard p99 comparison: worker-rotation
/// and scheduler jitter on a loaded (possibly single-core) CI host,
/// independent of the baseline. A genuine bulkhead leak is orders of
/// magnitude above it — a leaked wedge parks siblings behind a 300 ms
/// stall, a leaked overload behind a 20 ms/slot server.
const P99_FLOOR_NS: u64 = 8_000_000;

fn p99_us(mut ns: Vec<u64>) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    ns.sort_unstable();
    ns[(ns.len() - 1) * 99 / 100] as f64 / 1e3
}

/// N distinct cells: cycle the presets, giving clones past the first
/// round fresh PCIs so every shard watches a distinct cell identity.
fn fleet_cells(n: usize) -> Vec<CellConfig> {
    let presets = [
        CellConfig::srsran_n41,
        CellConfig::mosolab_n48,
        CellConfig::amarisoft_n78,
        CellConfig::tmobile_n25,
        CellConfig::tmobile_n71,
    ];
    (0..n)
        .map(|i| {
            let mut cell = presets[i % presets.len()]();
            if i >= presets.len() {
                cell.pci = Pci((cell.pci.0 + 37 * (i / presets.len()) as u16) % 1008);
            }
            cell
        })
        .collect()
}

fn attach_static_ues(sim: &mut MultiCellSim, horizon_s: f64, seed: u64) {
    for lane in 0..sim.len() {
        for k in 0..2u64 {
            sim.lane_mut(lane).ue_arrives(SimUe::new(
                lane as u64 * 10 + k + 1,
                ChannelProfile::Awgn,
                MobilityScenario::Static,
                TrafficSource::new(
                    TrafficKind::FileDownload {
                        total_bytes: usize::MAX / 2,
                    },
                    seed * 1000 + lane as u64 * 10 + k,
                ),
                0.0,
                horizon_s,
                seed * 7777 + lane as u64 * 10 + k,
            ));
        }
    }
}

/// The roaming UE: attaches on lane 0 at start, hands over to lane 1.
const ROAMER_ID: u64 = 999;

fn attach_roamer(sim: &mut MultiCellSim, horizon_s: f64, seed: u64) {
    sim.lane_mut(0).ue_arrives(SimUe::new(
        ROAMER_ID,
        ChannelProfile::Awgn,
        MobilityScenario::Static,
        TrafficSource::new(
            TrafficKind::FileDownload {
                total_bytes: usize::MAX / 2,
            },
            seed * 31 + ROAMER_ID,
        ),
        0.0,
        horizon_s,
        seed * 131 + ROAMER_ID,
    ));
}

fn shard_scope_config(ue_expiry_slots: u64) -> ScopeConfig {
    ScopeConfig {
        fidelity: Fidelity::Message,
        ue_expiry_slots,
        governor: GovernorConfig {
            enabled: true,
            promote_after_slots: 60,
            ..GovernorConfig::default()
        },
        ..ScopeConfig::default()
    }
}

/// Throughput sweep: volatile fleet, no faults, paced feeding; returns
/// sustained slots/sec/cell.
fn sweep_point(n_cells: usize, slots: u64, seed: u64) -> f64 {
    let cells = fleet_cells(n_cells);
    let slot_s = cells[0].slot_s();
    let mut sim = MultiCellSim::new(cells.clone(), seed);
    attach_static_ues(&mut sim, slots as f64 * slot_s + 10.0, seed);
    let mut observers: Vec<Observer> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| Observer::new(c, 30.0, false, seed ^ (0xC0FFEE + i as u64)))
        .collect();
    let specs = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ShardSpec::volatile(format!("cell{i}"), Some(c.pci), shard_scope_config(20_000))
        })
        .collect();
    let cfg = FleetConfig {
        shard_queue_depth: 256,
        ..FleetConfig::default()
    };
    let fleet = Fleet::new(cfg, specs).expect("volatile fleet");
    let t0 = Instant::now();
    for s in 0..slots {
        let outs = sim.step();
        for (i, out) in outs.iter().enumerate() {
            let cap = observers[i].capture(out, s as f64 * slot_s);
            fleet.feed(i, s, cap);
        }
        if s.is_multiple_of(64) {
            fleet.supervise();
            while (0..n_cells).any(|i| fleet.shard_status(i).queue_len > 128) {
                fleet.supervise();
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    fleet.quiesce(Duration::from_secs(60));
    let wall = t0.elapsed().as_secs_f64();
    fleet.finish();
    slots as f64 / wall
}

/// The fault script, as slot indices (all fractions of the total so
/// `NRSCOPE_SECONDS` scales the run).
struct Script {
    total: u64,
    handover_at: u64,
    ue_expiry: u64,
    kill_at: u64,
    wedge_at: u64,
    overload_on: u64,
    overload_off: u64,
    parity_range: std::ops::Range<u64>,
}

/// Fault-phase queue depth: the overload window must exceed it so the
/// overloaded shard demonstrably sheds its own queue.
const FAULT_QUEUE_DEPTH: usize = 512;

impl Script {
    fn for_total(total: u64) -> Script {
        let overload_on = total * 52 / 100;
        Script {
            total,
            handover_at: total * 30 / 100,
            ue_expiry: (total * 15 / 100).max(600),
            kill_at: total * 45 / 100,
            wedge_at: total * 47 / 100,
            overload_on,
            overload_off: overload_on + (total * 12 / 100).max(FAULT_QUEUE_DEPTH as u64 + 300),
            parity_range: total / 4..total * 9 / 10,
        }
    }
}

const KILL_SHARD: usize = 2;
const WEDGE_SHARD: usize = 4;
const OVERLOAD_SHARD: usize = 6;

struct PhaseResult {
    p99_us: Vec<f64>,
    parity: Vec<f64>,
    snapshot: FleetSnapshot,
    watermarks: Vec<u64>,
    recovered_resumed: Vec<bool>,
    recovered_slot: Vec<u64>,
    wall_s: f64,
}

/// One 8-cell durable run: scripted handover always; fault matrix only
/// when `faults` is set. Returns per-shard p99 latency, parity, the
/// closing rollup, and recovery evidence.
fn fleet_phase(script: &Script, dir: &Path, faults: bool, seed: u64) -> PhaseResult {
    let n = 8usize;
    let cells = fleet_cells(n);
    // Lanes are stepped in lock-step slot indices; each observer gets
    // its own cell's wall time (µ0 and µ1 cells have different TTIs).
    let lane_slot_s: Vec<f64> = cells.iter().map(|c| c.slot_s()).collect();
    let horizon = script.total as f64 * lane_slot_s.iter().cloned().fold(0.0, f64::max) + 10.0;
    let mut sim = MultiCellSim::new(cells.clone(), seed);
    attach_static_ues(&mut sim, horizon, seed);
    attach_roamer(&mut sim, horizon, seed);
    sim.schedule_handover(script.handover_at, ROAMER_ID, 0, 1);

    let mut observers: Vec<Observer> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| Observer::new(c, 30.0, false, seed ^ (0xFEED + i as u64)))
        .collect();
    let specs = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ShardSpec::durable(
                format!("cell{i}"),
                Some(c.pci),
                shard_scope_config(script.ue_expiry),
                PersistConfig {
                    checkpoint_every_slots: 256,
                    ..PersistConfig::new(dir.join(format!("shard{i}")))
                },
            )
        })
        .collect();
    let cfg = FleetConfig {
        workers: 4,
        shard_queue_depth: FAULT_QUEUE_DEPTH,
        watchdog_ms: 80,
        restart_backoff_ms: 5,
        ..FleetConfig::default()
    };
    let fleet = Fleet::new(cfg, specs).expect("durable fleet");

    let t0 = Instant::now();
    for s in 0..script.total {
        if faults {
            if s == script.kill_at {
                fleet.inject_fault(KILL_SHARD, FaultPlan::OneShot(InjectedFault::Panic));
            }
            if s == script.wedge_at {
                fleet.inject_fault(
                    WEDGE_SHARD,
                    FaultPlan::OneShot(InjectedFault::Delay(Duration::from_millis(300))),
                );
            }
            if s == script.overload_on {
                fleet.inject_fault(
                    OVERLOAD_SHARD,
                    FaultPlan::EverySlot(Duration::from_millis(20)),
                );
            }
            if s == script.overload_off {
                fleet.inject_fault(OVERLOAD_SHARD, FaultPlan::None);
            }
        }
        let outs = sim.step();
        for (i, out) in outs.iter().enumerate() {
            let cap = observers[i].capture(out, s as f64 * lane_slot_s[i]);
            fleet.feed(i, s, cap);
        }
        if s.is_multiple_of(8) {
            fleet.supervise();
            // Pace: keep every non-overloaded queue shallow so enqueue→
            // done latency measures the pipeline, not the driver burst.
            // The overloaded shard is deliberately left to back up and
            // shed — that is the experiment.
            let overloading = faults && s >= script.overload_on && s < script.overload_off;
            loop {
                let deep = (0..n).any(|i| {
                    (!overloading || i != OVERLOAD_SHARD) && fleet.shard_status(i).queue_len > 24
                });
                if !deep {
                    break;
                }
                fleet.supervise();
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    // Let faulted shards finish recovering: queues drained, every shard
    // healthy again.
    let deadline = Instant::now() + Duration::from_secs(60);
    fleet.quiesce(Duration::from_secs(60));
    while Instant::now() < deadline {
        fleet.supervise();
        let all_healthy = (0..n).all(|i| {
            fleet.shard_status(i).health == nrscope::ShardHealth::Healthy
                && fleet.shard_status(i).queue_len == 0
        });
        if all_healthy {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    fleet.quiesce(Duration::from_secs(10));
    let wall_s = t0.elapsed().as_secs_f64();

    let p99: Vec<f64> = (0..n).map(|i| p99_us(fleet.take_latencies(i))).collect();
    let mut parity = Vec::with_capacity(n);
    let mut watermarks = Vec::with_capacity(n);
    for i in 0..n {
        let range = script.parity_range.clone();
        let rntis = sim.lane(i).connected_rntis();
        let (est, truth) = fleet
            .with_scope(i, |scope| {
                let mut est = 0u64;
                let mut truth = 0u64;
                for r in &rntis {
                    est += scope.estimated_bits(*r, range.clone());
                    truth += sim
                        .lane(i)
                        .ue(*r)
                        .map_or(0, |u| u.delivered_bytes_in(range.clone()) as u64 * 8);
                }
                (est, truth)
            })
            .unwrap_or((0, 0));
        parity.push(if truth == 0 {
            0.0
        } else {
            est as f64 / truth as f64
        });
        watermarks.push(fleet.with_scope(i, |s| s.slot_watermark()).unwrap_or(0));
    }
    let recovered_resumed: Vec<bool> = (0..n)
        .map(|i| {
            fleet
                .shard_status(i)
                .last_recovery
                .map(|r| r.resumed)
                .unwrap_or(false)
        })
        .collect();
    let recovered_slot: Vec<u64> = (0..n)
        .map(|i| {
            fleet
                .shard_status(i)
                .last_recovery
                .map(|r| r.resumed_slot)
                .unwrap_or(0)
        })
        .collect();
    let snapshot = fleet.finish();
    PhaseResult {
        p99_us: p99,
        parity,
        snapshot,
        watermarks,
        recovered_resumed,
        recovered_slot,
        wall_s,
    }
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    // µ=1 slots: 0.5 ms each. Script points scale with the total.
    let seconds = capture_seconds(if short { 2.75 } else { 5.0 });
    let total = (seconds / 0.0005).round() as u64;
    let script = Script::for_total(total);
    let n = 8usize;

    let dir = std::env::temp_dir().join(format!("nrscope-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Sweep.
    let sweep_counts: &[usize] = if short {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 12]
    };
    let sweep_slots: u64 = if short { 1500 } else { 4000 };
    let sweep: Vec<(usize, f64)> = sweep_counts
        .iter()
        .map(|&c| (c, sweep_point(c, sweep_slots, 40 + c as u64)))
        .collect();

    // 2. Baseline (no faults) and 3. fault matrix — identical otherwise.
    let base = fleet_phase(&script, &dir.join("base"), false, 17);
    let fault = fleet_phase(&script, &dir.join("fault"), true, 17);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Assertions ------------------------------------------------
    let mut breaches: Vec<String> = Vec::new();
    let faulted = [KILL_SHARD, WEDGE_SHARD, OVERLOAD_SHARD];
    for i in 0..n {
        let healthy = !faulted.contains(&i);
        if healthy {
            let limit = (base.p99_us[i] * 1.10 * 1e3) as u64 + P99_FLOOR_NS;
            let got = (fault.p99_us[i] * 1e3) as u64;
            if got > limit {
                breaches.push(format!(
                    "shard {i}: healthy p99 {:.0}µs exceeds baseline {:.0}µs +10% (+{}µs floor)",
                    fault.p99_us[i],
                    base.p99_us[i],
                    P99_FLOOR_NS / 1000
                ));
            }
        }
        // Parity holds on healthy shards AND on the killed/wedged ones
        // (exact-slot resume: replaying the journal twice would push the
        // estimate past 1.02). The overloaded shard shed real slots.
        if i != OVERLOAD_SHARD && !(0.88..=1.02).contains(&fault.parity[i]) {
            breaches.push(format!(
                "shard {i}: parity {:.4} outside [0.88, 1.02]",
                fault.parity[i]
            ));
        }
        if fault.watermarks[i] != script.total {
            breaches.push(format!(
                "shard {i}: watermark {} != slots fed {} (lost or skipped slots)",
                fault.watermarks[i], script.total
            ));
        }
        let cell = &fault.snapshot.cells[i];
        if cell.health != "healthy" || cell.sync != "synced" || cell.load_rung != "full" {
            breaches.push(format!(
                "shard {i}: ended {}/{}/{} (want healthy/synced/full)",
                cell.health, cell.sync, cell.load_rung
            ));
        }
    }
    let kill_cell = &fault.snapshot.cells[KILL_SHARD];
    if kill_cell.panics < 1 || kill_cell.restarts < 1 || !fault.recovered_resumed[KILL_SHARD] {
        breaches.push(format!(
            "killed shard: panics={} restarts={} resumed={} (want ≥1/≥1/true)",
            kill_cell.panics, kill_cell.restarts, fault.recovered_resumed[KILL_SHARD]
        ));
    }
    let wedge_cell = &fault.snapshot.cells[WEDGE_SHARD];
    if wedge_cell.wedges < 1 || wedge_cell.restarts < 1 || !fault.recovered_resumed[WEDGE_SHARD] {
        breaches.push(format!(
            "wedged shard: wedges={} restarts={} resumed={} (want ≥1/≥1/true)",
            wedge_cell.wedges, wedge_cell.restarts, fault.recovered_resumed[WEDGE_SHARD]
        ));
    }
    let over_cell = &fault.snapshot.cells[OVERLOAD_SHARD];
    if over_cell.sheds < 1 {
        breaches.push("overloaded shard: shed no slots (overload not exercised)".into());
    }
    for i in 0..n {
        if i != OVERLOAD_SHARD && fault.snapshot.cells[i].sheds > 0 {
            breaches.push(format!(
                "shard {i}: shed {} slots — backpressure leaked across a bulkhead",
                fault.snapshot.cells[i].sheds
            ));
        }
    }
    if fault.snapshot.continuations != 1 {
        breaches.push(format!(
            "continuity: {} continuations (want exactly 1 for the scripted handover)",
            fault.snapshot.continuations
        ));
    }
    // 2 static UEs per cell + the roamer admitted on both lane 0 and 1.
    let want_users = 2 * n as u64 + 1;
    if fault.snapshot.distinct_users != want_users {
        breaches.push(format!(
            "continuity: {} distinct users (want {})",
            fault.snapshot.distinct_users, want_users
        ));
    }

    // ---- Report ----------------------------------------------------
    let sweep_json = sweep
        .iter()
        .map(|(c, r)| format!("{{\"cells\": {c}, \"slots_per_sec_per_cell\": {r:.1}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let shard_rows = (0..n)
        .map(|i| {
            let cell = &fault.snapshot.cells[i];
            format!(
                concat!(
                    "{{\"shard\": {}, \"name\": \"{}\", \"role\": \"{}\", ",
                    "\"base_p99_us\": {:.1}, \"fault_p99_us\": {:.1}, ",
                    "\"parity\": {:.4}, \"watermark\": {}, ",
                    "\"health\": \"{}\", \"sync\": \"{}\", \"load_rung\": \"{}\", ",
                    "\"sheds\": {}, \"panics\": {}, \"wedges\": {}, \"restarts\": {}, ",
                    "\"resumed\": {}, \"resumed_slot\": {}}}"
                ),
                i,
                cell.name,
                match i {
                    KILL_SHARD => "killed",
                    WEDGE_SHARD => "wedged",
                    OVERLOAD_SHARD => "overloaded",
                    _ => "healthy",
                },
                base.p99_us[i],
                fault.p99_us[i],
                fault.parity[i],
                fault.watermarks[i],
                cell.health,
                cell.sync,
                cell.load_rung,
                cell.sheds,
                cell.panics,
                cell.wedges,
                cell.restarts,
                fault.recovered_resumed[i],
                fault.recovered_slot[i],
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let breach_json = breaches
        .iter()
        .map(|b| format!("\"{}\"", b.replace('"', "'")))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet\",\n",
            "  \"short\": {short},\n",
            "  \"cells\": {n},\n",
            "  \"slots_per_cell\": {total},\n",
            "  \"baseline_wall_s\": {base_wall:.3},\n",
            "  \"fault_wall_s\": {fault_wall:.3},\n",
            "  \"sweep\": [{sweep}],\n",
            "  \"fault_matrix\": {{\"killed\": {kill}, \"wedged\": {wedge}, \"overloaded\": {over}}},\n",
            "  \"shards\": [\n    {rows}\n  ],\n",
            "  \"continuations\": {cont},\n",
            "  \"total_discovered\": {disc},\n",
            "  \"distinct_users\": {users},\n",
            "  \"breaches\": [{breach}]\n",
            "}}\n"
        ),
        short = short,
        n = n,
        total = script.total,
        base_wall = base.wall_s,
        fault_wall = fault.wall_s,
        sweep = sweep_json,
        kill = KILL_SHARD,
        wedge = WEDGE_SHARD,
        over = OVERLOAD_SHARD,
        rows = shard_rows,
        cont = fault.snapshot.continuations,
        disc = fault.snapshot.total_discovered,
        users = fault.snapshot.distinct_users,
        breach = breach_json,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");

    println!(
        "fleet bench ({} slots/cell × {n} cells, short={short})",
        script.total
    );
    for (c, r) in &sweep {
        println!("  sweep {c:>2} cells   {r:>10.1} slots/sec/cell");
    }
    println!(
        "  baseline wall    {:.2} s, fault wall {:.2} s",
        base.wall_s, fault.wall_s
    );
    for i in 0..n {
        let cell = &fault.snapshot.cells[i];
        println!(
            "  shard {i} ({:>10}) p99 {:>9.1} µs (base {:>9.1}) parity {:.4} sheds {:>4} restarts {}",
            match i {
                KILL_SHARD => "killed",
                WEDGE_SHARD => "wedged",
                OVERLOAD_SHARD => "overloaded",
                _ => "healthy",
            },
            fault.p99_us[i],
            base.p99_us[i],
            fault.parity[i],
            cell.sheds,
            cell.restarts,
        );
    }
    println!(
        "  continuity: {} continuation(s), {} distinct users ({} admissions)",
        fault.snapshot.continuations,
        fault.snapshot.distinct_users,
        fault.snapshot.total_discovered
    );
    println!("wrote BENCH_fleet.json");
    if !breaches.is_empty() {
        eprintln!("ISOLATION BREACHES:");
        for b in &breaches {
            eprintln!("  - {b}");
        }
        std::process::exit(1);
    }
}
