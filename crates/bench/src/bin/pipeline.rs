//! pipeline — end-to-end gnb-sim → scope throughput and per-stage latency.
//!
//! Drives the full sniffer pipeline and freezes the shared metrics
//! registry into `BENCH_pipeline.json`: slots/sec, metrics-disabled
//! baseline (overhead check), DCIs decoded, and per-stage
//! count/mean/p50/p99 for every instrumented stage.
//!
//! Three phases share one registry so a single snapshot covers the whole
//! pipeline:
//!   1. message-fidelity lock-step run (capture, PDCCH search, DCI decode,
//!      classify, tracking, slot envelope) — timed twice, metrics off then
//!      on, for the overhead figure;
//!   2. worker-pool run over the same cell (queue wait, queue depth);
//!   3. short IQ run (radio capture, OFDM demod).
//!
//! `--short` (or `NRSCOPE_SECONDS`) shrinks the run for CI smoke tests.
//!
//! Methodology: every overhead figure compares the best (minimum) wall
//! time of N repeats of each variant, after a shared warmup run. A single
//! cold pair used to report *negative* overheads (the second run won on
//! warmed caches, not merit); best-of-N compares steady-state against
//! steady-state, and any residual ratio within the documented
//! [`NOISE_FLOOR_PCT`] is reported as zero rather than as a spurious
//! speedup. The durability gate (`journaled ≥ 0.9 × baseline`) exits
//! non-zero on breach, with the same floor as tolerance.

use gnb_sim::{CellConfig, Gnb};
use nr_mac::RoundRobin;
use nr_phy::channel::ChannelProfile;
use nrscope::observe::Observer;
use nrscope::worker::{PoolConfig, WorkerPool};
use nrscope::{
    Fidelity, LoadRung, Metrics, NrScope, PersistConfig, PersistentSession, ScopeConfig,
};
use nrscope_bench::capture_seconds;
use std::sync::Arc;
use std::time::Instant;
use ue_sim::traffic::{TrafficKind, TrafficSource};
use ue_sim::{MobilityScenario, SimUe};

/// Wall-clock noise floor for best-of-N ratio comparisons, in percent.
/// Repeated identical runs differ by about this much (measured as the
/// same-binary spread on a single-core shared host, where scheduler
/// interference lands entirely on the benched thread); overhead deltas
/// inside the floor are measurement noise, not signal.
const NOISE_FLOOR_PCT: f64 = 3.0;

/// Report a best-of-N overhead: a *negative* delta inside the noise floor
/// collapses to zero (a variant cannot be faster for doing strictly more
/// work — that is jitter), while positive deltas and anything beyond the
/// floor are surfaced as measured.
fn clamp_overhead(raw_pct: f64) -> f64 {
    if (-NOISE_FLOOR_PCT..0.0).contains(&raw_pct) {
        0.0
    } else {
        raw_pct
    }
}

fn build_gnb(cell: &CellConfig, n_ues: usize, active_s: f64, seed: u64) -> Gnb {
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    for i in 0..n_ues {
        gnb.ue_arrives(SimUe::new(
            i as u64 + 1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 3e6,
                    packet_bytes: 1200,
                },
                seed * 1000 + i as u64,
            ),
            0.0,
            active_s,
            seed * 7777 + i as u64,
        ));
    }
    gnb
}

/// Message-fidelity lock-step run; returns (slots, wall seconds) plus the
/// live session for the pool phase.
fn message_phase(
    cell: &CellConfig,
    seconds: f64,
    seed: u64,
    metrics: Arc<Metrics>,
) -> (u64, f64, Gnb, Observer, NrScope) {
    let slot_s = cell.slot_s();
    let slots = (seconds / slot_s).round() as u64;
    let mut gnb = build_gnb(cell, 4, seconds + 10.0, seed);
    let mut observer = Observer::new(cell, 30.0, false, seed ^ 0xC0FFEE);
    observer.set_metrics(Arc::clone(&metrics));
    let cfg = ScopeConfig {
        fidelity: Fidelity::Message,
        metrics_enabled: metrics.is_enabled(),
        ..ScopeConfig::default()
    };
    let mut scope = NrScope::with_metrics(cfg, Some(cell.pci), metrics);
    let t0 = Instant::now();
    for s in 0..slots {
        let out = gnb.step();
        let observed = observer.observe(&out, s as f64 * slot_s);
        scope.process(&observed);
    }
    (slots, t0.elapsed().as_secs_f64(), gnb, observer, scope)
}

/// Feed further slots from the live session through a metered worker pool
/// (populates the queue-wait stage and queue-depth gauge).
fn pool_phase(
    gnb: &mut Gnb,
    observer: &mut Observer,
    scope: &NrScope,
    slot_s: f64,
    start_slot: u64,
    n_jobs: u64,
    metrics: Arc<Metrics>,
) -> usize {
    let mut pool = WorkerPool::with_metrics(PoolConfig::new(2), metrics);
    for s in 0..n_jobs {
        let out = gnb.step();
        let observed = observer.observe(&out, (start_slot + s) as f64 * slot_s);
        if let Some(job) = scope.slot_job(observed) {
            let _ = pool.submit(job);
        }
    }
    pool.finish().len()
}

/// Sustained slots/sec with the degradation ladder pinned at each rung:
/// one loaded session (64 backlogged UEs, so UE-specific search is the
/// dominant term) re-timed per forced rung. The spread between `full` and
/// `broadcast_only` is the headroom each demotion buys the governor.
fn rung_phase(cell: &CellConfig, slots: u64, seed: u64) -> Vec<(&'static str, f64)> {
    let slot_s = cell.slot_s();
    let horizon = (slots * 6) as f64 * slot_s + 10.0;
    let mut gnb = build_gnb(cell, 64, horizon, seed);
    let mut observer = Observer::new(cell, 30.0, false, seed ^ 0xBEEF);
    let mut scope = NrScope::new(
        ScopeConfig {
            fidelity: Fidelity::Message,
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );
    // Attach the population first so every rung is timed against the same
    // hypothesis load.
    let mut s = 0u64;
    for _ in 0..slots {
        let out = gnb.step();
        scope.process(&observer.observe(&out, s as f64 * slot_s));
        s += 1;
    }
    let mut rates = Vec::new();
    for rung in LoadRung::ALL {
        scope.force_rung(Some(rung));
        let t0 = Instant::now();
        for _ in 0..slots {
            let out = gnb.step();
            scope.process(&observer.observe(&out, s as f64 * slot_s));
            s += 1;
        }
        rates.push((rung.name(), slots as f64 / t0.elapsed().as_secs_f64()));
    }
    scope.force_rung(None);
    rates
}

/// Durability overhead: the same lock-step run three ways — plain scope,
/// journal-only session (per-slot append + OS flush, the unavoidable
/// durability syscall), and the full session with cadence checkpoints
/// streamed from the background writer. Returns each run's
/// (slots/sec, p99 slot µs). The journal-vs-checkpoint split matters:
/// journaling is the per-slot price of losing at most one slot to
/// `kill -9`; checkpoints are asynchronous and skip-if-busy, so their
/// p99 delta over journal-only is the figure that must stay small.
fn persist_phase(cell: &CellConfig, slots: u64, seed: u64, reps: usize) -> [(f64, f64); 3] {
    fn p99_us(mut ns: Vec<u64>) -> f64 {
        ns.sort_unstable();
        ns[(ns.len() - 1) * 99 / 100] as f64 / 1e3
    }
    let slot_s = cell.slot_s();
    let run = |session: &mut dyn FnMut(&nrscope::Capture)| -> (f64, f64) {
        let mut gnb = build_gnb(cell, 4, slots as f64 * slot_s + 10.0, seed);
        let mut observer = Observer::new(cell, 30.0, false, seed ^ 0xD15C);
        let mut lat = Vec::with_capacity(slots as usize);
        let t0 = Instant::now();
        for s in 0..slots {
            let out = gnb.step();
            let cap = observer.capture(&out, s as f64 * slot_s);
            let c0 = Instant::now();
            session(&cap);
            lat.push(c0.elapsed().as_nanos() as u64);
        }
        (slots as f64 / t0.elapsed().as_secs_f64(), p99_us(lat))
    };
    let durable_run = |checkpoint_every_slots: u64| -> (f64, f64) {
        let dir =
            std::env::temp_dir().join(format!("nrscope-bench-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut session, _) = PersistentSession::open(
            PersistConfig {
                checkpoint_every_slots,
                ..PersistConfig::new(&dir)
            },
            ScopeConfig::default(),
            Some(cell.pci),
        )
        .expect("open persistent session");
        let result = run(&mut |cap| {
            session.process_capture(cap);
        });
        session.finalize().expect("finalize persistent session");
        let _ = std::fs::remove_dir_all(&dir);
        result
    };

    // Best-of-N per variant: keep the fastest wall time and the lowest
    // p99 each variant achieved. Interleaving the variants (rather than
    // N× base, then N× journal, …) spreads any machine-wide drift —
    // thermal, background load — evenly across all three.
    let mut best = [(0.0f64, f64::INFINITY); 3];
    for _ in 0..reps.max(1) {
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        let samples = [
            run(&mut |cap| {
                scope.process_capture(cap);
            }),
            durable_run(u64::MAX),
            durable_run(512),
        ];
        for (b, (sps, p99)) in best.iter_mut().zip(samples) {
            b.0 = b.0.max(sps);
            b.1 = b.1.min(p99);
        }
    }
    best
}

/// Short IQ-fidelity run (populates radio capture and OFDM demod stages).
fn iq_phase(cell: &CellConfig, slots: u64, seed: u64, metrics: Arc<Metrics>) {
    let slot_s = cell.slot_s();
    let mut gnb = build_gnb(cell, 2, slots as f64 * slot_s + 10.0, seed);
    let mut observer = Observer::new(cell, 30.0, true, seed ^ 0xFACE);
    observer.set_metrics(Arc::clone(&metrics));
    let cfg = ScopeConfig {
        fidelity: Fidelity::Iq,
        ..ScopeConfig::default()
    };
    let mut scope = NrScope::with_metrics(cfg, None, metrics);
    for s in 0..slots {
        let out = gnb.step();
        let observed = observer.observe(&out, s as f64 * slot_s);
        scope.process(&observed);
    }
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let seconds = capture_seconds(if short { 2.0 } else { 10.0 });
    let iq_slots: u64 = if short { 100 } else { 400 };
    let pool_jobs: u64 = if short { 500 } else { 2000 };
    let cell = CellConfig::srsran_n41();
    let slot_s = cell.slot_s();

    let reps: usize = if short { 2 } else { 3 };

    // Warmup (page-in, allocator, branch predictors) so the off/on
    // comparison below measures the registry, not cold-start effects.
    message_phase(&cell, (seconds * 0.25).min(1.0), 7, Metrics::shared(false));

    // Baseline and instrumented runs, interleaved best-of-N: a single
    // cold pair used to report negative overheads because whichever
    // variant ran second won on warmed caches. Each repeat is identical
    // (same seed), so the fastest wall time per variant is its
    // steady-state cost. The *last* instrumented run's registry and live
    // session are kept for the pool/IQ phases.
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut kept = None;
    for _ in 0..reps {
        let (_, w_off, _, _, _) = message_phase(&cell, seconds, 1, Metrics::shared(false));
        wall_off = wall_off.min(w_off);
        let m = Metrics::shared(true);
        let (slots, w_on, gnb, observer, scope) = message_phase(&cell, seconds, 1, Arc::clone(&m));
        wall_on = wall_on.min(w_on);
        kept = Some((slots, gnb, observer, scope, m));
    }
    let (slots, mut gnb, mut observer, scope, metrics) = kept.expect("reps >= 1");
    let pool_results = pool_phase(
        &mut gnb,
        &mut observer,
        &scope,
        slot_s,
        slots,
        pool_jobs,
        Arc::clone(&metrics),
    );
    iq_phase(&cell, iq_slots, 3, Arc::clone(&metrics));
    let rung_slots: u64 = if short { 400 } else { 6000 };
    let rung_rates = rung_phase(&cell, rung_slots, 5);
    let persist_slots: u64 = if short { 1200 } else { 6000 };
    // The durability gate below exits non-zero on breach, so this phase
    // gets three times the best-of repetitions of the others: it is the
    // cheapest phase by far, and the extra repeats keep a scheduling
    // hiccup on a loaded machine from reading as a durability regression.
    let [(base_sps, base_p99), (journal_sps, journal_p99), (persist_sps, persist_p99)] =
        persist_phase(&cell, persist_slots, 11, reps * 3);
    // Checkpoints are asynchronous; their p99 cost over journal-only is
    // the durability-design figure of merit (the group-commit append is
    // the floor any crash-safe design pays).
    let checkpoint_p99_overhead_pct = clamp_overhead((persist_p99 / journal_p99 - 1.0) * 100.0);

    // Durability gate: group commit exists to keep journaled throughput
    // within 10% of the non-durable baseline; tolerate the noise floor on
    // top so a borderline run doesn't flap CI.
    let persist_ratio = journal_sps / base_sps;
    let persist_ratio_min = 0.9 * (1.0 - NOISE_FLOOR_PCT / 100.0);
    let persist_gate_ok = persist_ratio >= persist_ratio_min;

    let snap = metrics.snapshot();
    let slots_per_sec = slots as f64 / wall_on;
    let slots_per_sec_off = slots as f64 / wall_off;
    let overhead_pct = clamp_overhead((wall_on / wall_off - 1.0) * 100.0);
    let dcis = snap.counter("dcis_decoded").unwrap_or(0);
    let rung_json = rung_rates
        .iter()
        .map(|(name, rate)| format!("\"{name}\": {rate:.1}"))
        .collect::<Vec<_>>()
        .join(", ");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeline\",\n",
            "  \"short\": {short},\n",
            "  \"seconds_simulated\": {seconds},\n",
            "  \"slots\": {slots},\n",
            "  \"wall_s\": {wall_on:.6},\n",
            "  \"best_of\": {reps},\n",
            "  \"noise_floor_pct\": {floor:.1},\n",
            "  \"slots_per_sec\": {sps:.1},\n",
            "  \"slots_per_sec_metrics_off\": {sps_off:.1},\n",
            "  \"metrics_overhead_pct\": {ovh:.2},\n",
            "  \"dcis_decoded\": {dcis},\n",
            "  \"pool_jobs\": {pool_jobs},\n",
            "  \"pool_results\": {pool_results},\n",
            "  \"rung_slots_per_sec\": {{{rungs}}},\n",
            "  \"persist_slots\": {persist_slots},\n",
            "  \"persist_baseline_slots_per_sec\": {base_sps:.1},\n",
            "  \"persist_journal_only_slots_per_sec\": {journal_sps:.1},\n",
            "  \"persist_slots_per_sec\": {persist_sps:.1},\n",
            "  \"persist_baseline_p99_us\": {base_p99:.2},\n",
            "  \"persist_journal_only_p99_us\": {journal_p99:.2},\n",
            "  \"persist_p99_us\": {persist_p99:.2},\n",
            "  \"checkpoint_p99_overhead_pct\": {ckpt_ovh:.2},\n",
            "  \"persist_gate_ratio\": {gate_ratio:.4},\n",
            "  \"persist_gate_min_ratio\": {gate_min:.4},\n",
            "  \"persist_gate_ok\": {gate_ok},\n",
            "  \"metrics\": {snap}\n",
            "}}\n"
        ),
        short = short,
        seconds = seconds,
        reps = reps,
        floor = NOISE_FLOOR_PCT,
        slots = slots,
        wall_on = wall_on,
        sps = slots_per_sec,
        sps_off = slots_per_sec_off,
        ovh = overhead_pct,
        dcis = dcis,
        pool_jobs = pool_jobs,
        pool_results = pool_results,
        rungs = rung_json,
        persist_slots = persist_slots,
        base_sps = base_sps,
        journal_sps = journal_sps,
        persist_sps = persist_sps,
        base_p99 = base_p99,
        journal_p99 = journal_p99,
        persist_p99 = persist_p99,
        ckpt_ovh = checkpoint_p99_overhead_pct,
        gate_ratio = persist_ratio,
        gate_min = persist_ratio_min,
        gate_ok = persist_gate_ok,
        snap = snap.to_json(),
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");

    println!("pipeline bench ({} s simulated, short={short})", seconds);
    println!(
        "  slots/sec          {slots_per_sec:>12.1}  (metrics off {slots_per_sec_off:.1}, overhead {overhead_pct:+.2}%)"
    );
    println!("  dcis decoded       {dcis:>12}");
    println!("  pool jobs/results  {pool_jobs:>6}/{pool_results}");
    for (name, rate) in &rung_rates {
        println!("  slots/sec @ {name:<15} {rate:>10.1}");
    }
    println!(
        "  persist p99 slot   {persist_p99:>9.2} µs  (journal-only {journal_p99:.2} µs, baseline {base_p99:.2} µs)"
    );
    println!(
        "  checkpoint cost    {checkpoint_p99_overhead_pct:>+8.2}% p99 over journal-only ({persist_sps:.0} vs {journal_sps:.0} vs {base_sps:.0} slots/s)"
    );
    println!(
        "  durability gate    journaled/baseline {persist_ratio:.3} (min {persist_ratio_min:.3}) -> {}",
        if persist_gate_ok { "ok" } else { "BREACH" }
    );
    println!();
    print!("{}", snap.summary());
    println!();
    println!("wrote BENCH_pipeline.json");
    if !persist_gate_ok {
        eprintln!(
            "durability gate breached: journaled {journal_sps:.0} slots/s is below \
             {persist_ratio_min:.3} x baseline {base_sps:.0} slots/s"
        );
        std::process::exit(1);
    }
}
