//! Fig 8 — CCDF of per-TTI REG-count estimation error.
//!
//! Same sessions as Fig 7: srsRAN 1–4 UEs at IQ fidelity, Amarisoft 8–64
//! at message fidelity. Paper result: an average error of 0.77 REGs per
//! TTI, zero in > 99% of TTIs.

use gnb_sim::CellConfig;
use nrscope::Fidelity;
use nrscope_analytics::{ccdf_points, match_dcis, report};
use nrscope_bench::{capture_seconds, SessionSpec};
use ue_sim::traffic::TrafficKind;

fn main() {
    println!(
        "{}",
        report::figure_header("fig08a", "REG error CCDF, srsRAN cell (IQ fidelity)")
    );
    let iq_seconds = capture_seconds(4.0);
    for n_ues in [1usize, 2, 3, 4] {
        let mut spec = SessionSpec::new(CellConfig::srsran_n41());
        spec.n_ues = n_ues;
        spec.fidelity = Fidelity::Iq;
        spec.seconds = iq_seconds;
        spec.sniffer_snr_db = 22.0;
        spec.traffic = TrafficKind::Cbr {
            rate_bps: 3e6,
            packet_bytes: 1200,
        };
        spec.seed = n_ues as u64;
        let session = spec.run();
        let m = match_dcis(
            session.gnb.truth(),
            session.scope.records(),
            0..session.slots,
            0,
        );
        println!(
            "{}",
            report::scalar(&format!("{n_ues}ue_mean_reg_error"), m.mean_reg_error())
        );
        println!(
            "{}",
            report::scalar(&format!("{n_ues}ue_zero_fraction"), m.zero_reg_fraction())
        );
        println!(
            "{}",
            report::series(&format!("{n_ues} UEs"), &ccdf_points(&m.reg_errors), 12)
        );
    }
    println!();
    println!(
        "{}",
        report::figure_header(
            "fig08b",
            "REG error CCDF, Amarisoft cell (message fidelity)"
        )
    );
    let msg_seconds = capture_seconds(30.0);
    for n_ues in [8usize, 16, 32, 64] {
        let mut spec = SessionSpec::new(CellConfig::amarisoft_n78());
        spec.n_ues = n_ues;
        spec.seconds = msg_seconds;
        spec.sniffer_snr_db = 24.0;
        spec.traffic = TrafficKind::Poisson {
            pkts_per_s: 60.0,
            mean_bytes: 900,
        };
        spec.seed = 100 + n_ues as u64;
        let session = spec.run();
        let m = match_dcis(
            session.gnb.truth(),
            session.scope.records(),
            0..session.slots,
            0,
        );
        println!(
            "{}",
            report::scalar(&format!("{n_ues}ue_mean_reg_error"), m.mean_reg_error())
        );
        println!(
            "{}",
            report::scalar(&format!("{n_ues}ue_zero_fraction"), m.zero_reg_fraction())
        );
        println!(
            "{}",
            report::series(&format!("{n_ues} UEs"), &ccdf_points(&m.reg_errors), 12)
        );
    }
    println!();
    println!("paper: average 0.77 REG error per TTI; >99% of TTIs exactly zero");
}
