//! Fig 9 — throughput estimation accuracy (CCDF of windowed error).
//!
//! (a) Mosolab cell, 1–4 UEs watching video / downloading (ground truth:
//!     the UE delivery log, the tcpdump equivalent).
//! (b) Amarisoft cell, 8–64 UEs (ground truth: gNB log).
//! (c) T-Mobile cells, one UE, indoor/outdoor/moving.
//!
//! Paper results: 75th-percentile error 2.33 kbps (Mosolab), 95th 35.9 kbps
//! (Amarisoft), median 42.56 kbps (T-Mobile); overall errors under 0.9% of
//! the 3.3–5.7 Mbit/s mean flow rates.

use gnb_sim::CellConfig;
use nrscope_analytics::throughput_eval::throughput_errors;
use nrscope_analytics::{ccdf_points, mean, report};
use nrscope_bench::{capture_seconds, SessionSpec};
use ue_sim::traffic::TrafficKind;
use ue_sim::MobilityScenario;

fn window_errors(session: &nrscope_bench::Session, window: u64, slot_s: f64) -> (Vec<f64>, f64) {
    let mut all = Vec::new();
    let mut rates = Vec::new();
    for rnti in session.gnb.connected_rntis() {
        let ue = session.gnb.ue(rnti).expect("connected");
        let e = throughput_errors(
            &session.scope,
            ue,
            rnti,
            window..session.slots,
            window,
            slot_s,
        );
        rates.push(e.truth_mbps);
        all.extend(e.errors_kbps);
    }
    (all, mean(&rates))
}

fn main() {
    let seconds = capture_seconds(40.0);
    println!(
        "{}",
        report::figure_header("fig09a", "throughput error CCDF, Mosolab cell")
    );
    for n_ues in [1usize, 2, 3, 4] {
        let mut spec = SessionSpec::new(CellConfig::mosolab_n48());
        spec.n_ues = n_ues;
        spec.seconds = seconds;
        spec.traffic = TrafficKind::Video {
            bitrate_bps: 4.0e6,
            chunk_s: 1.0,
        };
        spec.seed = n_ues as u64;
        let session = spec.run();
        let slot_s = session.gnb.cfg.slot_s();
        let (errors, rate) = window_errors(&session, 2000, slot_s);
        println!(
            "{}",
            report::scalar(
                &format!("{n_ues}ue_p75_kbps"),
                nrscope_analytics::percentile(&errors, 75.0)
            )
        );
        println!(
            "{}",
            report::scalar(&format!("{n_ues}ue_mean_rate_mbps"), rate)
        );
        println!(
            "{}",
            report::series(&format!("{n_ues} UEs"), &ccdf_points(&errors), 10)
        );
    }
    println!();
    println!(
        "{}",
        report::figure_header("fig09b", "throughput error CCDF, Amarisoft cell")
    );
    for n_ues in [8usize, 16, 32, 64] {
        let mut spec = SessionSpec::new(CellConfig::amarisoft_n78());
        spec.n_ues = n_ues;
        spec.seconds = seconds;
        spec.traffic = TrafficKind::Poisson {
            pkts_per_s: 80.0,
            mean_bytes: 1000,
        };
        spec.seed = 50 + n_ues as u64;
        let session = spec.run();
        let slot_s = session.gnb.cfg.slot_s();
        let (errors, rate) = window_errors(&session, 2000, slot_s);
        println!(
            "{}",
            report::scalar(
                &format!("{n_ues}ue_p95_kbps"),
                nrscope_analytics::percentile(&errors, 95.0)
            )
        );
        println!(
            "{}",
            report::scalar(&format!("{n_ues}ue_mean_rate_mbps"), rate)
        );
        println!(
            "{}",
            report::series(&format!("{n_ues} UEs"), &ccdf_points(&errors), 10)
        );
    }
    println!();
    println!(
        "{}",
        report::figure_header(
            "fig09c",
            "throughput error CCDF, T-Mobile cells by UE status"
        )
    );
    for (cell_name, cell) in [
        ("cell1", CellConfig::tmobile_n25()),
        ("cell2", CellConfig::tmobile_n71()),
    ] {
        for scenario in MobilityScenario::all() {
            let mut spec = SessionSpec::new(cell.clone());
            spec.n_ues = 1;
            spec.scenario = scenario;
            spec.seconds = seconds;
            spec.sniffer_snr_db = 18.0; // commercial-cell placement
            spec.traffic = TrafficKind::Video {
                bitrate_bps: 5.0e6,
                chunk_s: 1.0,
            };
            spec.seed = 7;
            let session = spec.run();
            let slot_s = session.gnb.cfg.slot_s();
            // µ=0: 1 ms slots → 1000-slot (1 s) windows.
            let (errors, _) = window_errors(&session, 1000, slot_s);
            println!(
                "{}",
                report::scalar(
                    &format!("{scenario}_{cell_name}_median_kbps"),
                    nrscope_analytics::percentile(&errors, 50.0),
                )
            );
            println!(
                "{}",
                report::series(
                    &format!("{scenario} ({cell_name})"),
                    &ccdf_points(&errors),
                    8
                )
            );
        }
    }
    println!();
    println!("paper: Mosolab p75 2.33 kbps; Amarisoft p95 35.9 kbps; T-Mobile median 42.6 kbps; avg error <0.9%");
}
