//! Fig 14 — spare-capacity estimation, two UEs in the Mosolab cell.
//!
//! (a) Per-UE bit-rate time series: NR-Scope's estimate tracks the
//!     tcpdump-equivalent ground truth, plus the fair-share spare rate.
//! (b) Used vs fair-share-spare PRBs per TTI.
//!
//! Paper: the estimate "tracks just under ground truth"; both UEs get the
//! same spare REs but different spare bit rates because their MCS differ.

use gnb_sim::CellConfig;
use nr_phy::channel::ChannelProfile;
use nrscope_analytics::report;
use nrscope_bench::{capture_seconds, SessionSpec};
use ue_sim::traffic::TrafficKind;

fn main() {
    println!(
        "{}",
        report::figure_header("fig14", "spare capacity estimation, 2 UEs, Mosolab cell")
    );
    let seconds = capture_seconds(40.0);
    let mut spec = SessionSpec::new(CellConfig::mosolab_n48());
    spec.n_ues = 2;
    spec.seconds = seconds;
    // Different channel quality → different MCS for the two UEs.
    spec.profile = ChannelProfile::Pedestrian;
    spec.traffic = TrafficKind::Video {
        bitrate_bps: 8.0e6,
        chunk_s: 1.0,
    };
    spec.seed = 5;
    let session = spec.run();
    let slot_s = session.gnb.cfg.slot_s();
    let window = 2000u64; // 1 s
    let rntis = session.gnb.connected_rntis();
    // (a) throughput time series: estimate vs truth per second.
    for (i, rnti) in rntis.iter().enumerate() {
        let ue = session.gnb.ue(*rnti).unwrap();
        let mut est_series = Vec::new();
        let mut truth_series = Vec::new();
        let mut w = window;
        while w + window <= session.slots {
            let t = (w as f64) * slot_s;
            let est = session.scope.estimated_bits(*rnti, w..w + window) as f64
                / (window as f64 * slot_s)
                / 1e6;
            let tru =
                ue.delivered_bytes_in(w..w + window) as f64 * 8.0 / (window as f64 * slot_s) / 1e6;
            est_series.push((t, est));
            truth_series.push((t, tru));
            w += window;
        }
        println!(
            "{}",
            report::series(
                &format!("UE{} NR-Scope est (Mbit/s)", i + 1),
                &est_series,
                10
            )
        );
        println!(
            "{}",
            report::series(
                &format!("UE{} tcpdump truth (Mbit/s)", i + 1),
                &truth_series,
                10
            )
        );
    }
    // Spare shares per TTI: used REs + fair-share spare per UE.
    let spare = session.scope.spare_log();
    let mid = &spare[spare.len() / 2..(spare.len() / 2 + 50).min(spare.len())];
    for (i, rnti) in rntis.iter().enumerate() {
        let used: Vec<(f64, f64)> = mid
            .iter()
            .filter_map(|(slot, shares)| {
                shares
                    .iter()
                    .find(|s| s.rnti == *rnti)
                    .map(|s| (*slot as f64, s.used_res as f64 / 12.0))
            })
            .collect();
        let spare_prbs: Vec<(f64, f64)> = mid
            .iter()
            .filter_map(|(slot, shares)| {
                shares
                    .iter()
                    .find(|s| s.rnti == *rnti)
                    .map(|s| (*slot as f64, s.spare_res as f64 / 12.0 / 12.0))
            })
            .collect();
        println!(
            "{}",
            report::series(&format!("UE{} used PRBs", i + 1), &used, 10)
        );
        println!(
            "{}",
            report::series(
                &format!("UE{} fair-share spare PRBs", i + 1),
                &spare_prbs,
                10
            )
        );
        // Spare bit rates differ across UEs at equal spare REs (paper's point).
        let mean_spare_bits: f64 = mid
            .iter()
            .filter_map(|(_, shares)| {
                shares
                    .iter()
                    .find(|s| s.rnti == *rnti)
                    .map(|s| s.spare_bits)
            })
            .sum::<f64>()
            / mid.len().max(1) as f64;
        println!(
            "{}",
            report::scalar(
                &format!("ue{}_mean_spare_bits_per_tti", i + 1),
                mean_spare_bits
            )
        );
    }
    println!();
    println!("paper: estimate tracks just under truth; equal spare REs, different spare bit rates per UE");
}
