//! fuzz_decode — seeded hostile-cell + structured-mutation soak.
//!
//! Drives the sniffer with the gNB simulator's full hostile emission
//! profile (ghost MSG 4s, reserved-bit violations, malformed DCI fields,
//! broken and contradictory RRC encodings) *and* seeded structured
//! mutations of the captured slots (bit flips, truncation, extension,
//! duplication, noise replacement), until at least the target number of
//! mutated decode attempts has been executed — 1M+ in the full run.
//!
//! Hard properties checked, process exit 1 on any breach:
//!   * **no panic** — the soak runs to completion (a panic aborts the
//!     process, so completion is the proof);
//!   * **no ghost UE admitted** — zero false admissions: nothing is ever
//!     tracked or promoted that the cell did not genuinely serve;
//!   * **no accounting drift** — every legitimate UE's estimated bits stay
//!     inside the parity band [0.88, 1.02] of the gNB truth log.
//!
//! Results land in `BENCH_adversarial.json` (rejects/sec, attempt counts,
//! false-admission count). `--short` shrinks the run for CI smoke tests;
//! `NRSCOPE_FUZZ_ATTEMPTS` overrides the attempt target outright.

use gnb_sim::{CellConfig, Gnb, HostileConfig};
use nr_mac::RoundRobin;
use nr_phy::channel::ChannelProfile;
use nr_phy::types::{Rnti, RntiType};
use nrscope::observe::{ObservedSlot, Observer, PdschPayload};
use nrscope::{NrScope, ScopeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Instant;
use ue_sim::traffic::{TrafficKind, TrafficSource};
use ue_sim::{MobilityScenario, SimUe};

/// One round of structured mutations (mirrors `tests/adversarial.rs`).
fn mutate(observed: &mut ObservedSlot, rng: &mut StdRng) {
    let ObservedSlot::Message { dcis, pdsch, .. } = observed else {
        return;
    };
    for _ in 0..1 + rng.gen_range(0usize..3) {
        match rng.gen_range(0u32..6) {
            0 => {
                if let Some(d) = pick_mut(dcis, rng) {
                    for _ in 0..1 + rng.gen_range(0usize..4) {
                        if !d.scrambled_bits.is_empty() {
                            let i = rng.gen_range(0usize..d.scrambled_bits.len());
                            d.scrambled_bits[i] ^= 1;
                        }
                    }
                }
            }
            1 => {
                if let Some(d) = pick_mut(dcis, rng) {
                    let keep = rng.gen_range(0usize..d.scrambled_bits.len().max(1));
                    d.scrambled_bits.truncate(keep);
                }
            }
            2 => {
                if let Some(d) = pick_mut(dcis, rng) {
                    for _ in 0..1 + rng.gen_range(0usize..40) {
                        d.scrambled_bits.push(rng.gen_range(0u8..2));
                    }
                }
            }
            3 => {
                if let Some(d) = pick_mut(dcis, rng) {
                    for b in d.scrambled_bits.iter_mut() {
                        *b = rng.gen_range(0u8..2);
                    }
                }
            }
            4 => {
                if let Some(d) = pick_mut(dcis, rng) {
                    let copy = d.clone();
                    dcis.push(copy);
                }
            }
            _ => {
                if let Some((_, p)) = pick_mut(pdsch, rng) {
                    let bits = match p {
                        PdschPayload::Sib1(b) | PdschPayload::RrcSetup(b) => b,
                        PdschPayload::Rar(_) => continue,
                    };
                    match rng.gen_range(0u32..3) {
                        0 if !bits.is_empty() => {
                            let i = rng.gen_range(0usize..bits.len());
                            bits[i] ^= 1;
                        }
                        1 => bits.truncate(bits.len() / 2),
                        _ => bits.extend([1u8, 0, 1, 1, 0, 1, 0, 0]),
                    }
                }
            }
        }
    }
}

fn pick_mut<'a, T>(v: &'a mut [T], rng: &mut StdRng) -> Option<&'a mut T> {
    if v.is_empty() {
        None
    } else {
        let i = rng.gen_range(0usize..v.len());
        v.get_mut(i)
    }
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let target_attempts: u64 = std::env::var("NRSCOPE_FUZZ_ATTEMPTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if short { 60_000 } else { 1_000_000 });
    let seed: u64 = std::env::var("NRSCOPE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xF0220);

    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    gnb.arm_hostile(HostileConfig {
        seed: seed ^ 0xAD,
        ..HostileConfig::default()
    });
    for i in 1..=3u64 {
        gnb.ue_arrives(SimUe::new(
            i,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 2e6,
                    packet_bytes: 1200,
                },
                i,
            ),
            0.0,
            1e9, // active for the whole soak
            i,
        ));
    }
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let slot_s = cell.slot_s();

    // Phase A — hostile soak, capture unmutated: every candidate decode
    // runs against a cell that is actively lying, so each one counts as
    // an adversarial decode attempt. Legitimate codewords survive intact,
    // so the full accounting parity band applies here.
    //
    // Phase B — hostile + structured mutation: 3 slots in 4 are mutated
    // (the clean quarter keeps the session synced). Mutation destroys
    // legitimate codewords too, so the completeness side of parity cannot
    // hold; the properties here are no panic, no ghost, and no *phantom*
    // bytes (a mutated capture can lose real grants but must never invent
    // them — HARQ/NDI dedup has to absorb duplicated candidates).
    let start = Instant::now();
    let mut slots = 0u64;
    let mut mutated_slots = 0u64;
    let mut attempts = 0u64;
    while attempts < target_attempts / 2 {
        let out = gnb.step();
        let observed = obs.observe(&out, slots as f64 * slot_s);
        if let ObservedSlot::Message { dcis, .. } = &observed {
            attempts += dcis.len() as u64;
        }
        scope.process(&observed);
        slots += 1;
    }
    let phase_a_end = slots;
    // Parity is measured per phase, at phase end, over a window inside
    // the throughput-history retention (older history is pruned by
    // design, so a late query over an early window would read zero).
    let window = |end: u64| {
        let w = (end / 2).min(nrscope::throughput::DEFAULT_HISTORY_RETENTION_SLOTS / 2);
        end - w..end
    };
    let parity_a: Vec<(Rnti, f64, f64)> = gnb
        .connected_rntis()
        .into_iter()
        .map(|r| {
            let est = scope.estimated_bits(r, window(phase_a_end)) as f64;
            let truth = gnb
                .ue(r)
                .map(|u| u.delivered_bytes_in(window(phase_a_end)))
                .unwrap_or(0) as f64
                * 8.0;
            (r, est, truth)
        })
        .collect();
    while attempts < target_attempts {
        let out = gnb.step();
        let mut observed = obs.observe(&out, slots as f64 * slot_s);
        if !slots.is_multiple_of(4) {
            mutate(&mut observed, &mut rng);
            mutated_slots += 1;
        }
        if let ObservedSlot::Message { dcis, .. } = &observed {
            attempts += dcis.len() as u64;
        }
        scope.process(&observed);
        slots += 1;
    }
    let wall_s = start.elapsed().as_secs_f64();

    // Ground truth: every RNTI the cell genuinely addressed.
    let real: BTreeSet<Rnti> = gnb
        .truth()
        .records()
        .iter()
        .filter(|r| matches!(r.rnti_type, RntiType::C | RntiType::Tc))
        .map(|r| r.rnti)
        .collect();

    // False admissions: anything tracked or ever promoted beyond the
    // genuinely served UEs.
    let ghost_tracked = scope
        .tracked_rntis()
        .iter()
        .filter(|r| !real.contains(r))
        .count() as u64;
    let excess_promotes = scope
        .total_discovered()
        .saturating_sub(gnb.connected_rntis().len() as u64);
    let false_admissions = ghost_tracked + excess_promotes;

    // Accounting drift of the legitimate UEs. Phase A (intact captures,
    // steady state): full parity band. Phase B (mutated captures): an
    // estimate may fall short of truth — the mutations destroyed real
    // codewords — but must never exceed the band's ceiling: phantom bytes
    // would mean corrupted input was credited to a real UE.
    let mut worst_ratio = 1.0f64;
    let mut parity_ok = true;
    for (rnti, est_a, truth_a) in parity_a {
        let est_b = scope.estimated_bits(rnti, window(slots)) as f64;
        let truth_b = gnb
            .ue(rnti)
            .map(|u| u.delivered_bytes_in(window(slots)))
            .unwrap_or(0) as f64
            * 8.0;
        if truth_a <= 0.0 || truth_b <= 0.0 {
            parity_ok = false;
            continue;
        }
        let ra = est_a / truth_a;
        if (ra - 1.0).abs() > (worst_ratio - 1.0).abs() {
            worst_ratio = ra;
        }
        parity_ok &= (0.88..=1.02).contains(&ra);
        parity_ok &= est_b / truth_b <= 1.02;
    }

    let rejects = scope.stats.validation_rejects + scope.stats.parse_rejects;
    let rejects_per_sec = rejects as f64 / wall_s;
    let pass = false_admissions == 0 && parity_ok;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"adversarial\",\n",
            "  \"short\": {short},\n",
            "  \"seed\": {seed},\n",
            "  \"slots\": {slots},\n",
            "  \"mutated_slots\": {mutated_slots},\n",
            "  \"decode_attempts\": {attempts},\n",
            "  \"wall_s\": {wall:.6},\n",
            "  \"validation_rejects\": {vrej},\n",
            "  \"parse_rejects\": {prej},\n",
            "  \"rejects_per_sec\": {rps:.1},\n",
            "  \"ghosts_quarantined\": {gq},\n",
            "  \"quarantine_size\": {qs},\n",
            "  \"false_admissions\": {fa},\n",
            "  \"panics\": 0,\n",
            "  \"worst_parity_ratio\": {wr:.4},\n",
            "  \"parity_band\": [0.88, 1.02],\n",
            "  \"pass\": {pass}\n",
            "}}\n",
        ),
        short = short,
        seed = seed,
        slots = slots,
        mutated_slots = mutated_slots,
        attempts = attempts,
        wall = wall_s,
        vrej = scope.stats.validation_rejects,
        prej = scope.stats.parse_rejects,
        rps = rejects_per_sec,
        gq = scope.stats.ghosts_quarantined,
        qs = scope.quarantined_rntis().len(),
        fa = false_admissions,
        wr = worst_ratio,
        pass = pass,
    );
    std::fs::write("BENCH_adversarial.json", &json).expect("write BENCH_adversarial.json");
    println!("{json}");
    println!(
        "fuzz_decode: {attempts} mutated decode attempts over {slots} slots in {wall_s:.1}s \
         ({rejects} typed rejects, {false_admissions} false admissions)"
    );
    println!("wrote BENCH_adversarial.json");
    if !pass {
        eprintln!("fuzz_decode: INVARIANT BREACH (false_admissions={false_admissions}, parity_ok={parity_ok})");
        std::process::exit(1);
    }
}
