//! Fig 7 — DCI miss rate vs number of UEs.
//!
//! (a) srsRAN cell with 1–4 phone-like UEs, full IQ fidelity (the misses
//!     emerge from the OFDM/polar receive chain).
//! (b) Amarisoft cell with 8–64 emulated UEs, message fidelity (the
//!     calibrated corruption model; IQ at 64 UEs would add nothing but
//!     wall-clock — DESIGN.md).
//!
//! Paper result: miss rates of 0.33%/0.28% (DL/UL) in srsRAN and
//! 0.93%/0.31% in the Amarisoft network — "two 9's of reliability".

use gnb_sim::CellConfig;
use nrscope::Fidelity;
use nrscope_analytics::{match_dcis, report};
use nrscope_bench::{capture_seconds, SessionSpec};
use ue_sim::traffic::TrafficKind;

fn main() {
    println!(
        "{}",
        report::figure_header("fig07a", "DCI miss rate, srsRAN cell (IQ fidelity)")
    );
    let iq_seconds = capture_seconds(4.0);
    for n_ues in [1usize, 2, 3, 4] {
        let mut spec = SessionSpec::new(CellConfig::srsran_n41());
        spec.n_ues = n_ues;
        spec.fidelity = Fidelity::Iq;
        spec.seconds = iq_seconds;
        spec.sniffer_snr_db = 22.0;
        spec.traffic = TrafficKind::Cbr {
            rate_bps: 3e6,
            packet_bytes: 1200,
        };
        spec.seed = n_ues as u64;
        let session = spec.run();
        let m = match_dcis(
            session.gnb.truth(),
            session.scope.records(),
            0..session.slots,
            0,
        );
        println!(
            "{}",
            report::bars(
                &format!("{n_ues} UEs"),
                &[
                    ("dl_miss_pct", m.dl_miss_rate_pct()),
                    ("ul_miss_pct", m.ul_miss_rate_pct()),
                    ("dl_dcis", m.dl_truth as f64),
                    ("ul_dcis", m.ul_truth as f64),
                ],
            )
        );
    }

    println!();
    println!(
        "{}",
        report::figure_header("fig07b", "DCI miss rate, Amarisoft cell (message fidelity)")
    );
    let msg_seconds = capture_seconds(30.0);
    for n_ues in [8usize, 16, 32, 64] {
        let mut spec = SessionSpec::new(CellConfig::amarisoft_n78());
        spec.n_ues = n_ues;
        spec.seconds = msg_seconds;
        spec.sniffer_snr_db = 24.0;
        spec.traffic = TrafficKind::Poisson {
            pkts_per_s: 60.0,
            mean_bytes: 900,
        };
        spec.seed = 100 + n_ues as u64;
        let session = spec.run();
        let m = match_dcis(
            session.gnb.truth(),
            session.scope.records(),
            0..session.slots,
            0,
        );
        println!(
            "{}",
            report::bars(
                &format!("{n_ues} UEs"),
                &[
                    ("dl_miss_pct", m.dl_miss_rate_pct()),
                    ("ul_miss_pct", m.ul_miss_rate_pct()),
                    ("dl_dcis", m.dl_truth as f64),
                    ("ul_dcis", m.ul_truth as f64),
                ],
            )
        );
    }
    println!();
    println!("paper: srsRAN 0.33%/0.28% DL/UL; Amarisoft 0.93%/0.31% DL/UL");
}
