//! Fig 12 — slot processing time vs number of UEs, one or four DCI
//! threads, on a 20 MHz (Amarisoft) and a 10 MHz (T-Mobile) carrier.
//!
//! The computation is the paper's §5.3.2 `O(n log n + m)`: per-slot
//! FFT/demodulation plus per-known-UE DCI decoding. Run at IQ fidelity so
//! both terms are real work. Also exercises the `--decode-rrc-always`
//! ablation (DESIGN.md): the cost of re-decoding the RRC Setup PDSCH for
//! every discovered UE instead of using the cache.

use gnb_sim::CellConfig;
use nr_phy::dci::DciSizing;
use nr_phy::pdcch::SearchBudget;
use nr_phy::types::Rnti;
use nrscope::decoder::{DecoderContext, Hypotheses};
use nrscope::observe::{ObservedSlot, Observer};
use nrscope::worker::{process_slot, JobPriority, SlotJob};
use nrscope::Fidelity;
use nrscope_analytics::report;
use nrscope_bench::SessionSpec;
use ue_sim::traffic::TrafficKind;

/// Capture a handful of IQ slots (with live DCIs) from a loaded cell.
fn capture(cell: &CellConfig, n_slots: usize, seed: u64) -> Vec<(ObservedSlot, usize)> {
    let mut spec = SessionSpec::new(cell.clone());
    spec.n_ues = 4;
    spec.fidelity = Fidelity::Message; // drive the gNB cheaply first
    spec.seconds = 0.5;
    spec.seed = seed;
    spec.traffic = TrafficKind::Cbr {
        rate_bps: 4e6,
        packet_bytes: 1200,
    };
    let mut gnb = spec.run().gnb;
    let mut observer = Observer::new(cell, 28.0, true, seed);
    let mut out = Vec::new();
    let slot_s = cell.slot_s();
    let mut s = 0u64;
    while out.len() < n_slots {
        let slot = gnb.step();
        let sif = slot.slot_in_frame;
        if slot.dcis.is_empty() {
            s += 1;
            continue;
        }
        out.push((observer.observe(&slot, s as f64 * slot_s), sif));
        s += 1;
    }
    out
}

fn mean_processing_us(
    slots: &[(ObservedSlot, usize)],
    ctx: &DecoderContext,
    n_ues: usize,
    threads: usize,
) -> f64 {
    // Hypothesis list of n_ues RNTIs (real ones may be among them; cost is
    // what matters and it is per-hypothesis).
    let c_rntis: Vec<Rnti> = (0..n_ues).map(|i| Rnti(0x4601 + i as u16)).collect();
    let mut total_us = 0.0;
    for (observed, slot_in_frame) in slots {
        let job = SlotJob {
            slot: 0,
            slot_in_frame: *slot_in_frame,
            observed: observed.clone(),
            ctx: ctx.clone(),
            hyp: Hypotheses {
                c_rntis: c_rntis.clone(),
                allow_recovery: true,
                ..Hypotheses::default()
            },
            dci_threads: threads,
            fault: None,
            priority: JobPriority::Data,
            budget: SearchBudget::unlimited(),
        };
        let r = process_slot(&job);
        total_us += r.processing.as_secs_f64() * 1e6;
    }
    total_us / slots.len() as f64
}

fn main() {
    println!(
        "{}",
        report::figure_header("fig12", "slot processing time vs UE hypotheses")
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host_cores {cores}  (the paper's 4-thread speedup needs >= 4 cores; on fewer, sharding only adds overhead)");
    let cases = [
        ("Amarisoft 20MHz", CellConfig::amarisoft_n78(), 1u64),
        ("T-Mobile 10MHz", CellConfig::tmobile_n25(), 2u64),
    ];
    for (name, cell, seed) in cases {
        let slots = capture(&cell, 6, seed);
        let ctx = DecoderContext {
            coreset: cell.coreset,
            pci: cell.pci.0,
            common_sizing: DciSizing {
                bwp_prbs: cell.coreset.n_prb,
            },
            ue_sizing: Some(DciSizing {
                bwp_prbs: cell.carrier_prbs,
            }),
        };
        for threads in [1usize, 4] {
            let series: Vec<(f64, f64)> = [1usize, 2, 4, 8, 16, 32, 64, 128]
                .iter()
                .map(|&m| (m as f64, mean_processing_us(&slots, &ctx, m, threads)))
                .collect();
            println!(
                "{}",
                report::series(&format!("{name}, {threads} thread(s) (us)"), &series, 8)
            );
        }
    }
    println!();
    println!("paper: linear growth with UE count; four threads keep 20 MHz under one TTI up to ~195-285 UEs");
}
