//! chaos — the composed-chaos soak: every fault class armed at once.
//!
//! Three legs, frozen into `BENCH_chaos.json`:
//!
//! 1. **baseline** — a clean supervised run (no faults) that yields the
//!    byte-parity yardstick.
//! 2. **chaos** — [`ChaosSchedule::compose`] with [`ChaosArms::all`]:
//!    front-end impairments, child overload dwell, storage-fault windows,
//!    an oscillator model with a scripted timing step, hostile air, two
//!    `kill -9`s, a scripted slot-loop hang, and a journal-writer wedge —
//!    all on one seeded timeline, with the invariant monitors evaluated
//!    on every fed slot.
//! 3. **fleet** — a three-shard fleet with a scripted shard hang (a
//!    pathological in-flight delay) that the watchdog must fence without
//!    starving the sibling shards (the bulkhead-isolation monitor).
//!
//! The gate exits non-zero unless: every monitor stays green, zero
//! panics escape any leg, the scripted hang is detected within the hang
//! deadline (plus scheduling slop) and the child is restarted, both
//! kill-9s are survived, the restart breaker never opens under the
//! default budget, legitimate byte parity under full chaos stays within
//! `[0.88, 1.02]` of the no-fault baseline, and the fleet leg fences its
//! hang with zero breaker-parked cells.
//!
//! `--short` shrinks the horizons for CI smoke tests.

use gnb_sim::{CellConfig, Gnb, HostileConfig};
use nr_mac::RoundRobin;
use nr_phy::channel::ChannelProfile;
use nr_phy::types::{Pci, Rnti};
use nrscope::chaos::{
    drive_supervised, monitor_statuses, ranges_of, standard_monitors, BulkheadIsolationMonitor,
    ChaosArms, ChaosSchedule, DriveStats, InvariantMonitor, MonitorStatus,
};
use nrscope::observe::Observer;
use nrscope::supervise::{self, BreakerState, RestartCause, Supervisor};
use nrscope::{
    ClockRecovery, ClockRecoveryConfig, FaultPlan, Fleet, FleetConfig, HangTarget, InjectedFault,
    Metrics, ScopeConfig, ShardSpec, CHAOS_PLAN_FILE,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Everything scripted derives from this seed (reproducibility rule).
const SEED: u64 = 0xC0_FFEE;
/// Hang-detection latency slop on top of the hang deadline: pipe polls,
/// scheduler jitter, and the force-kill itself.
const HANG_SLOP_MS: u64 = 1_000;
/// Parity gate relative to the clean baseline (same bound the supervised
/// soak example enforces).
const PARITY_MIN: f64 = 0.88;
const PARITY_MAX: f64 = 1.02;

fn session_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nrscope-bench-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create session dir");
    dir
}

/// The supervised legs' config: deadlines tightened so hang detection is
/// measured in hundreds of milliseconds, not the production 2 s.
fn tuned_config(short: bool) -> ScopeConfig {
    let mut cfg = ScopeConfig::default();
    cfg.supervise.heartbeat_interval_ms = if short { 50 } else { 100 };
    cfg.supervise.hang_deadline_ms = if short { 400 } else { 800 };
    cfg
}

fn build_gnb(cell: &CellConfig, n_ues: u64, seed: u64) -> Gnb {
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    for i in 1..=n_ues {
        gnb.ue_arrives(ue_sim::SimUe::new(
            i,
            ChannelProfile::Awgn,
            ue_sim::MobilityScenario::Static,
            // Permanent backlog: every slot carries data, so parity
            // between scope estimate and gNB truth is tight.
            ue_sim::traffic::TrafficSource::new(
                ue_sim::traffic::TrafficKind::FileDownload {
                    total_bytes: 1 << 30,
                },
                seed + i,
            ),
            0.05 * i as f64,
            600.0,
            seed * 31 + i,
        ));
    }
    gnb
}

/// One supervised leg's outcome (baseline and chaos share the shape).
struct LegResult {
    name: &'static str,
    slots: u64,
    acked: u64,
    lost: u64,
    hangs_detected: u64,
    hang_detect_ms_max: u64,
    killed_restarts: u64,
    hang_restarts: u64,
    breaker_openings: u64,
    breaker_final: &'static str,
    parity_ratio: f64,
    monitors: Vec<MonitorStatus>,
    ok: bool,
    detail: String,
}

impl LegResult {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\": \"{name}\", \"slots\": {slots}, \"acked\": {acked}, ",
                "\"lost\": {lost}, \"hangs_detected\": {hangs}, ",
                "\"hang_detect_ms_max\": {detect}, \"killed_restarts\": {killed}, ",
                "\"hang_restarts\": {hrestarts}, \"breaker_openings\": {openings}, ",
                "\"breaker_final\": \"{breaker}\", \"parity_ratio\": {parity:.4}, ",
                "\"monitors\": {monitors}, \"ok\": {ok}, \"detail\": {detail}}}"
            ),
            name = self.name,
            slots = self.slots,
            acked = self.acked,
            lost = self.lost,
            hangs = self.hangs_detected,
            detect = self.hang_detect_ms_max,
            killed = self.killed_restarts,
            hrestarts = self.hang_restarts,
            openings = self.breaker_openings,
            breaker = self.breaker_final,
            parity = self.parity_ratio,
            monitors = serde_json::to_string(&self.monitors).expect("monitor statuses"),
            ok = self.ok,
            detail = serde_json::to_string(&self.detail).expect("detail string"),
        )
    }

    fn failed(name: &'static str, detail: String) -> LegResult {
        LegResult {
            name,
            slots: 0,
            acked: 0,
            lost: 0,
            hangs_detected: 0,
            hang_detect_ms_max: 0,
            killed_restarts: 0,
            hang_restarts: 0,
            breaker_openings: 0,
            breaker_final: "unknown",
            parity_ratio: 0.0,
            monitors: Vec::new(),
            ok: false,
            detail,
        }
    }
}

fn breaker_name(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    }
}

/// Aggregate parity over the leg's observed ranges: Σ estimated bits /
/// Σ ground-truth bits across every connected UE.
fn parity_ratio(sup: &mut Supervisor, gnb: &Gnb, stats: &DriveStats) -> Option<f64> {
    let ranges = ranges_of(&stats.observed);
    if ranges.is_empty() {
        return None;
    }
    let reply = sup.request_report(ranges.clone())?;
    let mut truth_bits = 0u64;
    let mut est_bits = 0u64;
    for rnti in gnb.connected_rntis() {
        let ue = gnb.ue(rnti).expect("connected UE");
        truth_bits += ranges
            .iter()
            .map(|&(a, b)| ue.delivered_bytes_in(a..b) as u64 * 8)
            .sum::<u64>();
        est_bits += reply
            .per_ue
            .iter()
            .find(|(r, _)| *r == rnti)
            .map(|(_, bits)| bits.iter().sum::<u64>())
            .unwrap_or(0);
    }
    Some(est_bits as f64 / truth_bits.max(1) as f64)
}

/// Run one supervised leg under `schedule`. The baseline passes
/// [`ChaosArms::none`]-composed schedules (nothing fires); the chaos leg
/// passes the full composition.
fn supervised_leg(
    name: &'static str,
    short: bool,
    schedule: &ChaosSchedule,
    mut monitors: Vec<Box<dyn InvariantMonitor>>,
    ghosts: Vec<Rnti>,
) -> LegResult {
    let cell = CellConfig::srsran_n41();
    let dir = session_dir(name);
    let scope_cfg = tuned_config(short);
    std::fs::write(dir.join(supervise::CONFIG_FILE), scope_cfg.to_json())
        .expect("write scope config");
    if schedule.has_child_faults() {
        std::fs::write(dir.join(CHAOS_PLAN_FILE), schedule.child_plan().to_json())
            .expect("write chaos plan");
    }

    let mut gnb = build_gnb(&cell, 3, SEED);
    let mut obs = Observer::new(&cell, 35.0, false, SEED ^ 0xD15C);
    if let Some(sched) = schedule.impairment_schedule() {
        obs.set_impairments(sched);
    }
    if schedule.clock_static_ppm != 0.0 {
        let mut model = cell
            .clock_model(SEED ^ 0xC10C)
            .with_static_ppm(schedule.clock_static_ppm)
            .with_drift_ppm_per_s(schedule.clock_drift_ppm_per_s);
        if let Some((slot, us)) = schedule.clock_step {
            model = model.with_step(slot, us);
        }
        obs.set_clock(model);
    }
    let hostile = HostileConfig::seeded(schedule.seed);
    let hostile_windows = schedule.hostile_windows.clone();
    let slot_s = cell.slot_s();
    // The timing-recovery loop is front-end-local: the parent owns the
    // radio, so the parent closes the loop (exactly as a real SDR host
    // would) — the child receives already-corrected captures.
    let mut recovery = ClockRecovery::new(ClockRecoveryConfig::default());

    let exe = std::env::current_exe().expect("current exe path");
    let args = vec![
        "--child".to_string(),
        dir.display().to_string(),
        cell.pci.0.to_string(),
    ];
    let metrics = Arc::new(Metrics::new(true));
    let mut sup = Supervisor::new(&exe, &args, &[], scope_cfg.supervise, metrics);
    let hello = match sup.start() {
        Ok(h) => h,
        Err(e) => return LegResult::failed(name, format!("child failed to start: {e}")),
    };
    if hello.report.resumed {
        return LegResult::failed(name, "first start claimed to resume prior state".into());
    }

    let stats = drive_supervised(&mut sup, schedule, &ghosts, &mut monitors, |seq| {
        for &(a, b) in &hostile_windows {
            if seq == a {
                gnb.arm_hostile(hostile);
            }
            if seq == b {
                gnb.disarm_hostile();
            }
        }
        let out = gnb.step();
        let cap = obs.capture(&out, seq as f64 * slot_s);
        if let Some(cobs) = obs.take_clock_observable() {
            recovery.on_slot(&cobs);
            obs.apply_clock_correction(recovery.correction_us(), recovery.correction_cfo_hz());
        }
        cap
    });

    let parity = parity_ratio(&mut sup, &gnb, &stats);
    let sup_stats = sup.stats();
    let killed_restarts = sup
        .restart_log()
        .iter()
        .filter(|e| e.cause == RestartCause::Killed)
        .count() as u64;
    let hang_restarts = sup
        .restart_log()
        .iter()
        .filter(|e| e.cause == RestartCause::Hang)
        .count() as u64;
    let breaker_final = breaker_name(sup.breaker_state());
    let _ = sup.finish();

    let statuses = monitor_statuses(&monitors);
    let monitors_green = statuses.iter().all(|m| m.ok);
    let detect_max = stats
        .hang_observations
        .iter()
        .map(|h| h.detect_ms)
        .max()
        .unwrap_or(0);
    let hang_bound = scope_cfg.supervise.hang_deadline_ms + HANG_SLOP_MS;

    let want_faults = !schedule.kill_slots.is_empty();
    let mut ok = monitors_green
        && parity.is_some()
        && sup_stats.breaker_openings == 0
        && breaker_final == "closed"
        && stats.final_sync_synced;
    if want_faults {
        // The chaos leg must have *survived* its script, not dodged it.
        ok = ok
            && killed_restarts >= 2
            && hang_restarts >= 1
            && !stats.hang_observations.is_empty()
            && detect_max <= hang_bound;
    }
    let detail = format!(
        "acked={} lost={} hangs={} detect_max={}ms (bound {}ms) kills={} \
         breaker={} parity={:?} monitors_green={}",
        stats.acked,
        stats.lost_child_down + stats.lost_lame_duck,
        sup_stats.hangs_detected,
        detect_max,
        hang_bound,
        killed_restarts,
        breaker_final,
        parity,
        monitors_green,
    );
    let _ = std::fs::remove_dir_all(&dir);
    LegResult {
        name,
        slots: stats.slots,
        acked: stats.acked,
        lost: stats.lost_child_down + stats.lost_lame_duck,
        hangs_detected: sup_stats.hangs_detected,
        hang_detect_ms_max: detect_max,
        killed_restarts,
        hang_restarts,
        breaker_openings: sup_stats.breaker_openings,
        breaker_final,
        parity_ratio: parity.unwrap_or(0.0),
        monitors: statuses,
        ok,
        detail,
    }
}

/// The fleet leg's outcome.
struct FleetLegResult {
    slots: u64,
    wedges: u64,
    restarts: u64,
    breaker_open_cells: u64,
    unhealthy_cells: u64,
    monitors: Vec<MonitorStatus>,
    ok: bool,
    detail: String,
}

impl FleetLegResult {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\": \"fleet\", \"slots\": {slots}, \"wedges\": {wedges}, ",
                "\"restarts\": {restarts}, \"breaker_open_cells\": {open}, ",
                "\"unhealthy_cells\": {unhealthy}, \"monitors\": {monitors}, ",
                "\"ok\": {ok}, \"detail\": {detail}}}"
            ),
            slots = self.slots,
            wedges = self.wedges,
            restarts = self.restarts,
            open = self.breaker_open_cells,
            unhealthy = self.unhealthy_cells,
            monitors = serde_json::to_string(&self.monitors).expect("monitor statuses"),
            ok = self.ok,
            detail = serde_json::to_string(&self.detail).expect("detail string"),
        )
    }
}

/// Three shards, one scripted shard hang (a pathological in-flight
/// delay), a 50 ms watchdog: the hang must be fenced and warm-restarted
/// while the sibling shards keep advancing (bulkhead isolation), and the
/// default restart budget must absorb it without parking anything.
fn fleet_leg(short: bool) -> FleetLegResult {
    let slots: u64 = if short { 4_000 } else { 8_000 };
    let schedule = ChaosSchedule::compose(
        SEED ^ 0xF1EE7,
        slots,
        ChaosArms {
            hangs: true,
            ..ChaosArms::none()
        },
    );
    let cell = CellConfig::srsran_n41();
    let cfg = FleetConfig {
        workers: 2,
        watchdog_ms: 50,
        ..FleetConfig::default()
    };
    let specs: Vec<ShardSpec> = (0..3)
        .map(|i| ShardSpec::volatile(format!("cell-{i}"), Some(cell.pci), ScopeConfig::default()))
        .collect();
    let n_shards = specs.len();
    let fleet = match Fleet::new(cfg, specs) {
        Ok(f) => f,
        Err(e) => {
            return FleetLegResult {
                slots,
                wedges: 0,
                restarts: 0,
                breaker_open_cells: 0,
                unhealthy_cells: 0,
                monitors: Vec::new(),
                ok: false,
                detail: format!("fleet failed to start: {e}"),
            }
        }
    };

    let mut feeds: Vec<(Gnb, Observer)> = (0..n_shards as u64)
        .map(|i| {
            (
                build_gnb(&cell, 2, SEED + 100 * i),
                Observer::new(&cell, 35.0, false, SEED ^ (0xF00 + i)),
            )
        })
        .collect();
    // A shard hang longer than the watchdog deadline, capped so the
    // bench's wall clock stays bounded.
    let shard_hangs: Vec<(usize, u64, u64)> = schedule
        .hangs
        .hangs
        .iter()
        .filter_map(|p| match p.target {
            HangTarget::FleetShard(s) => Some((s % n_shards, p.slot, p.duration_ms.min(1_500))),
            _ => None,
        })
        .collect();

    let mut monitor = BulkheadIsolationMonitor::new(512);
    let slot_s = cell.slot_s();
    for seq in 0..slots {
        for &(shard, at, dur_ms) in &shard_hangs {
            if seq == at {
                fleet.inject_fault(
                    shard,
                    FaultPlan::OneShot(InjectedFault::Delay(Duration::from_millis(dur_ms))),
                );
            }
        }
        for (shard, (gnb, obs)) in feeds.iter_mut().enumerate() {
            let out = gnb.step();
            let cap = obs.capture(&out, seq as f64 * slot_s);
            fleet.feed(shard, seq, cap);
        }
        if seq % 64 == 63 {
            fleet.supervise();
            // Pacing: give the shared workers real time per chunk so a
            // rollup gap of 512 slots spans several watchdog periods.
            std::thread::sleep(Duration::from_millis(1));
        }
        if seq % 512 == 511 {
            monitor.on_fleet(seq, &fleet.rollup());
        }
    }
    fleet.quiesce(Duration::from_secs(10));
    let snap = fleet.rollup();
    let wedges: u64 = snap.cells.iter().map(|c| c.hangs_detected).sum();
    let restarts: u64 = snap.cells.iter().map(|c| c.restarts).sum();
    let unhealthy = snap.cells.iter().filter(|c| c.health != "healthy").count() as u64;
    let breaker_open_cells = snap.breaker_open_cells;
    fleet.finish();

    let monitors: Vec<Box<dyn InvariantMonitor>> = vec![Box::new(monitor)];
    let statuses = monitor_statuses(&monitors);
    let monitors_green = statuses.iter().all(|m| m.ok);
    let ok = monitors_green
        && !shard_hangs.is_empty()
        && wedges >= 1
        && restarts >= 1
        && breaker_open_cells == 0
        && unhealthy == 0;
    let detail = format!(
        "scripted_hangs={} wedges={wedges} restarts={restarts} \
         breaker_open_cells={breaker_open_cells} unhealthy={unhealthy} \
         monitors_green={monitors_green}",
        shard_hangs.len()
    );
    FleetLegResult {
        slots,
        wedges,
        restarts,
        breaker_open_cells,
        unhealthy_cells: unhealthy,
        monitors: statuses,
        ok,
        detail,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 4 && args[1] == "--child" {
        // Child mode: recover from the session directory, apply any
        // scripted chaos plan found there, and serve slots.
        let pci: u16 = args[3].parse().expect("child PCI argument");
        supervise::run_child(Path::new(&args[2]), Some(Pci(pci))).expect("child pipeline");
        return;
    }
    let short = args.iter().any(|a| a == "--short");
    let horizon: u64 = if short { 6_000 } else { 12_000 };

    let baseline_schedule = ChaosSchedule::compose(SEED, horizon, ChaosArms::none());
    let chaos_schedule = ChaosSchedule::compose(SEED, horizon, ChaosArms::all());
    // The chaos-gate preconditions the composition engine promises.
    assert!(
        chaos_schedule.kill_slots.len() >= 2,
        "compose arms >= 2 kills"
    );
    assert!(
        chaos_schedule
            .hangs
            .hangs
            .iter()
            .any(|p| p.target == HangTarget::SlotLoop),
        "compose arms a scripted slot-loop hang"
    );
    let ghosts = vec![Rnti(HostileConfig::default().persistent_ghost_rnti)];

    let mut panics = 0u64;
    let mut run_supervised = |name: &'static str,
                              schedule: &ChaosSchedule,
                              monitors: Vec<Box<dyn InvariantMonitor>>,
                              ghosts: Vec<Rnti>|
     -> LegResult {
        match catch_unwind(AssertUnwindSafe(|| {
            supervised_leg(name, short, schedule, monitors, ghosts)
        })) {
            Ok(r) => r,
            Err(_) => {
                panics += 1;
                LegResult::failed(name, "leg panicked".into())
            }
        }
    };

    let baseline = run_supervised("baseline", &baseline_schedule, Vec::new(), Vec::new());
    let chaos = run_supervised(
        "chaos",
        &chaos_schedule,
        standard_monitors(ghosts.clone()),
        ghosts,
    );
    let fleet = match catch_unwind(AssertUnwindSafe(|| fleet_leg(short))) {
        Ok(r) => r,
        Err(_) => {
            panics += 1;
            FleetLegResult {
                slots: 0,
                wedges: 0,
                restarts: 0,
                breaker_open_cells: 0,
                unhealthy_cells: 0,
                monitors: Vec::new(),
                ok: false,
                detail: "fleet leg panicked".into(),
            }
        }
    };

    // Parity under full chaos, relative to the clean baseline.
    let rel_parity = if baseline.parity_ratio > 0.0 {
        chaos.parity_ratio / baseline.parity_ratio
    } else {
        0.0
    };
    let parity_ok = (PARITY_MIN..=PARITY_MAX).contains(&rel_parity);
    let all_ok = panics == 0 && baseline.ok && chaos.ok && fleet.ok && parity_ok;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"chaos\",\n",
            "  \"short\": {short},\n",
            "  \"seed\": {seed},\n",
            "  \"horizon_slots\": {horizon},\n",
            "  \"relative_parity\": {rel:.4},\n",
            "  \"parity_bounds\": [{pmin}, {pmax}],\n",
            "  \"panics\": {panics},\n",
            "  \"legs\": [\n    {baseline},\n    {chaos},\n    {fleet}\n  ],\n",
            "  \"gate_ok\": {ok}\n",
            "}}\n"
        ),
        short = short,
        seed = SEED,
        horizon = horizon,
        rel = rel_parity,
        pmin = PARITY_MIN,
        pmax = PARITY_MAX,
        panics = panics,
        baseline = baseline.to_json(),
        chaos = chaos.to_json(),
        fleet = fleet.to_json(),
        ok = all_ok,
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");

    println!("chaos bench ({horizon} slots/leg, short={short})");
    for leg in [&baseline, &chaos] {
        println!(
            "  {:<9} acked {:>6}/{:<6} parity {:.4}  hangs {} (max {} ms)  kills {}  breaker {:<9} {}",
            leg.name,
            leg.acked,
            leg.slots,
            leg.parity_ratio,
            leg.hangs_detected,
            leg.hang_detect_ms_max,
            leg.killed_restarts,
            leg.breaker_final,
            if leg.ok { "ok" } else { "FAIL" }
        );
        println!("    {}", leg.detail);
    }
    println!(
        "  fleet     wedges {}  restarts {}  breaker-open cells {}  {}",
        fleet.wedges,
        fleet.restarts,
        fleet.breaker_open_cells,
        if fleet.ok { "ok" } else { "FAIL" }
    );
    println!("    {}", fleet.detail);
    println!("  relative parity    {rel_parity:.4} (bounds [{PARITY_MIN}, {PARITY_MAX}])");
    println!("  panics             {panics}");
    println!("wrote BENCH_chaos.json");
    if !all_ok {
        eprintln!("chaos gate breached: see leg details above");
        std::process::exit(1);
    }
}
