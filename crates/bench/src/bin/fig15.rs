//! Fig 15 — MCS index and retransmission-ratio CDFs under emulated
//! channels (Normal / AWGN / Pedestrian / Vehicle / Urban), 64 UEs on the
//! Amarisoft cell.
//!
//! Paper: better channels get higher MCS and lower retransmission ratios;
//! NR-Scope's distributions agree with ground truth at R² = 0.9970 (MCS)
//! and 0.9862 (retransmissions).

use gnb_sim::CellConfig;
use nr_phy::channel::ChannelProfile;
use nr_phy::dci::DciFormat;
use nr_phy::types::RntiType;
use nrscope_analytics::{cdf_points, mean, r_squared, report};
use nrscope_bench::{capture_seconds, SessionSpec};
use ue_sim::traffic::TrafficKind;

fn main() {
    println!(
        "{}",
        report::figure_header("fig15", "MCS and retransmission ratio by channel condition")
    );
    let seconds = capture_seconds(20.0);
    let mut all_truth_mcs: Vec<f64> = Vec::new();
    let mut all_scope_mcs: Vec<f64> = Vec::new();
    let mut all_truth_retx: Vec<f64> = Vec::new();
    let mut all_scope_retx: Vec<f64> = Vec::new();
    for profile in ChannelProfile::all() {
        let mut spec = SessionSpec::new(CellConfig::amarisoft_n78());
        spec.n_ues = 64;
        spec.profile = profile;
        spec.seconds = seconds;
        spec.traffic = TrafficKind::Poisson {
            pkts_per_s: 40.0,
            mean_bytes: 900,
        };
        spec.seed = profile.name().len() as u64;
        let session = spec.run();
        // NR-Scope's view.
        let scope_mcs: Vec<f64> = session
            .scope
            .records()
            .iter()
            .filter(|r| r.format == DciFormat::Dl1_1)
            .map(|r| r.mcs as f64)
            .collect();
        let scope_retx_ratio = {
            let n = session.scope.stats.dl_dcis.max(1) as f64;
            100.0 * session.scope.stats.retransmissions as f64 / n
        };
        // Ground truth from the gNB log.
        let truth_mcs: Vec<f64> = session
            .gnb
            .truth()
            .records()
            .iter()
            .filter(|r| r.rnti_type == RntiType::C && r.alloc.format == DciFormat::Dl1_1)
            .map(|r| r.alloc.mcs as f64)
            .collect();
        let truth_retx_ratio = {
            let recs: Vec<_> = session
                .gnb
                .truth()
                .records()
                .iter()
                .filter(|r| r.rnti_type == RntiType::C && r.alloc.format == DciFormat::Dl1_1)
                .collect();
            let n = recs.len().max(1) as f64;
            100.0 * recs.iter().filter(|r| r.alloc.is_retx).count() as f64 / n
        };
        println!(
            "{}",
            report::bars(
                profile.name(),
                &[
                    ("scope_mean_mcs", mean(&scope_mcs)),
                    ("truth_mean_mcs", mean(&truth_mcs)),
                    ("scope_retx_pct", scope_retx_ratio),
                    ("truth_retx_pct", truth_retx_ratio),
                ],
            )
        );
        println!(
            "{}",
            report::series(
                &format!("{} MCS CDF", profile.name()),
                &cdf_points(&scope_mcs),
                8
            )
        );
        all_truth_mcs.push(mean(&truth_mcs));
        all_scope_mcs.push(mean(&scope_mcs));
        all_truth_retx.push(truth_retx_ratio);
        all_scope_retx.push(scope_retx_ratio);
    }
    println!();
    println!(
        "{}",
        report::scalar("r2_mcs", r_squared(&all_truth_mcs, &all_scope_mcs))
    );
    println!(
        "{}",
        report::scalar("r2_retx", r_squared(&all_truth_retx, &all_scope_retx))
    );
    println!("paper: R2 0.9970 (MCS) and 0.9862 (retransmission) vs ground truth");
}
