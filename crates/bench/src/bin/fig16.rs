//! Fig 16 — (a–c) throughput-error CCDFs split by UE scenario (static /
//! blocked / moving) in the Mosolab cell; (d) packets-per-TTI aggregation
//! CDF with spare capacity vs under competition.

use gnb_sim::CellConfig;
use nrscope_analytics::aggregation::AggregationStats;
use nrscope_analytics::throughput_eval::throughput_errors;
use nrscope_analytics::{ccdf_points, cdf_points, percentile, report};
use nrscope_bench::{capture_seconds, SessionSpec};
use ue_sim::traffic::TrafficKind;
use ue_sim::MobilityScenario;

fn main() {
    let seconds = capture_seconds(40.0);
    for (fig, scenario) in [
        ("fig16a", MobilityScenario::Static),
        ("fig16b", MobilityScenario::Blocked),
        ("fig16c", MobilityScenario::Moving),
    ] {
        println!(
            "{}",
            report::figure_header(
                fig,
                &format!("throughput error CCDF, {scenario} UEs, Mosolab cell")
            )
        );
        for n_ues in [1usize, 2, 3, 4] {
            let mut spec = SessionSpec::new(CellConfig::mosolab_n48());
            spec.n_ues = n_ues;
            spec.scenario = scenario;
            spec.seconds = seconds;
            spec.traffic = TrafficKind::Video {
                bitrate_bps: 4.0e6,
                chunk_s: 1.0,
            };
            spec.seed = n_ues as u64 * 3 + 1;
            let session = spec.run();
            let slot_s = session.gnb.cfg.slot_s();
            let mut errors = Vec::new();
            for rnti in session.gnb.connected_rntis() {
                let ue = session.gnb.ue(rnti).unwrap();
                let e =
                    throughput_errors(&session.scope, ue, rnti, 2000..session.slots, 2000, slot_s);
                errors.extend(e.errors_kbps);
            }
            println!(
                "{}",
                report::scalar(&format!("{n_ues}ue_median_kbps"), percentile(&errors, 50.0))
            );
            println!(
                "{}",
                report::series(&format!("{n_ues} UEs"), &ccdf_points(&errors), 8)
            );
        }
        println!();
    }

    println!(
        "{}",
        report::figure_header("fig16d", "packets per TTI (aggregation)")
    );
    // Spare capacity: a lone UE gets whole-carrier blocks (aggregation
    // high); with competition blocks shrink.
    // Heavy Poisson load: with the cell to itself a UE's queued packets
    // drain in wide, multi-packet blocks; under competition each UE's PRB
    // share shrinks and so does per-block aggregation.
    for (label, n_ues) in [("Spare", 1usize), ("With Competition", 4)] {
        let mut spec = SessionSpec::new(CellConfig::mosolab_n48());
        spec.n_ues = n_ues;
        spec.seconds = seconds.min(20.0);
        spec.traffic = TrafficKind::Poisson {
            pkts_per_s: 2500.0,
            mean_bytes: 1200,
        };
        spec.seed = 11 + n_ues as u64;
        let session = spec.run();
        let mut all = Vec::new();
        for rnti in session.gnb.connected_rntis() {
            let ue = session.gnb.ue(rnti).unwrap();
            all.extend(AggregationStats::from_deliveries(&ue.deliveries).packets_per_tti);
        }
        let stats = AggregationStats {
            packets_per_tti: all,
        };
        println!(
            "{}",
            report::scalar(&format!("{label}_mean_pkts_per_tti"), stats.mean())
        );
        println!(
            "{}",
            report::scalar(
                &format!("{label}_multi_pkt_fraction"),
                stats.multi_packet_fraction()
            )
        );
        println!(
            "{}",
            report::series(label, &cdf_points(&stats.packets_per_tti), 10)
        );
    }
    println!();
    println!(
        "paper: blocks aggregate multiple packets per TTI, defeating inter-arrival-time estimators"
    );
}
