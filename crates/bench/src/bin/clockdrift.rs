//! clockdrift — clock-domain robustness gate over the timing-recovery loop.
//!
//! Runs the closed-loop sniffer (observer oscillator model → clock
//! observables → PI recovery loop → correction command) through three
//! phases and freezes the results into `BENCH_clockdrift.json`.
//!
//! The gate exits non-zero unless:
//!   * zero panics escaped any phase;
//!   * under ±20 ppm oscillator error (static offset + temperature walk)
//!     the loop ends `Locked`, the drift estimate lands near truth, and
//!     decoded-DCI parity against an ideal-clock baseline stays within
//!     `[0.88, 1.02]`;
//!   * a 2 µs timing step is reacquired within a bounded excursion
//!     (SSB-snap + relock streak — hundreds of slots at most, far inside
//!     the loop's `max_reacquire_slots` giving-up horizon);
//!   * a simulated `kill -9` straddling an SFN wrap resumes and replays
//!     exactly: the continued session equals the uninterrupted reference
//!     and the derived SFN matches the air-truth SFN on every slot
//!     through the mod-1024 wrap.
//!
//! `--short` (or `NRSCOPE_SECONDS`) shrinks the drift/step phases for CI
//! smoke tests; the wrap phase always runs the full 20,480-slot frame
//! cycle (the skip windows keep it cheap).

use gnb_sim::{CellConfig, Gnb};
use nr_mac::RoundRobin;
use nr_phy::channel::ChannelProfile;
use nrscope::observe::{Capture, Observer};
use nrscope::{
    ClockLock, ClockObservable, ClockRecoveryConfig, NrScope, PersistConfig, PersistentSession,
    ScopeConfig,
};
use nrscope_bench::capture_seconds;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use ue_sim::traffic::{TrafficKind, TrafficSource};
use ue_sim::{MobilityScenario, SimUe};

/// Decoded-DCI parity band vs the ideal-clock baseline (the headline
/// requirement: a corrected oscillator costs at most 12%, and cannot
/// "gain" more than RNG jitter).
const PARITY_MIN: f64 = 0.88;
const PARITY_MAX: f64 = 1.02;

/// Reacquisition bound for the 2 µs step: next SSB (≤ 40 slots) plus the
/// coarse pull-in and the relock streak, with margin. Far inside the
/// loop's own `max_reacquire_slots` (1000) giving-up horizon.
const REACQUIRE_BOUND_SLOTS: u64 = 300;

fn cbr_ue(id: u64, seed: u64) -> SimUe {
    SimUe::new(
        id,
        ChannelProfile::Awgn,
        MobilityScenario::Static,
        TrafficSource::new(
            TrafficKind::Cbr {
                rate_bps: 2e6,
                packet_bytes: 1200,
            },
            seed * 1000 + id,
        ),
        0.0,
        600.0,
        seed * 7777 + id,
    )
}

fn decoded_dcis(scope: &NrScope) -> u64 {
    let s = &scope.stats;
    s.si_dcis + s.ra_dcis + s.tc_dcis + s.dl_dcis + s.ul_dcis
}

struct PhaseResult {
    name: &'static str,
    slots: u64,
    slots_per_sec: f64,
    lock: &'static str,
    drift_ppb: i64,
    timing_slips: u64,
    ok: bool,
    detail: String,
}

impl PhaseResult {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\": \"{name}\", \"slots\": {slots}, ",
                "\"slots_per_sec\": {sps:.1}, \"lock\": \"{lock}\", ",
                "\"drift_ppb\": {drift}, \"timing_slips\": {slips}, ",
                "\"ok\": {ok}, \"detail\": \"{detail}\"}}"
            ),
            name = self.name,
            slots = self.slots,
            sps = self.slots_per_sec,
            lock = self.lock,
            drift = self.drift_ppb,
            slips = self.timing_slips,
            ok = self.ok,
            detail = self.detail,
        )
    }

    fn panicked(name: &'static str) -> PhaseResult {
        PhaseResult {
            name,
            slots: 0,
            slots_per_sec: 0.0,
            lock: "panicked",
            drift_ppb: 0,
            timing_slips: 0,
            ok: false,
            detail: "phase panicked".to_string(),
        }
    }
}

fn lock_name(lock: Option<ClockLock>) -> &'static str {
    match lock {
        Some(ClockLock::Locked) => "locked",
        Some(ClockLock::Pulling) => "pulling",
        Some(ClockLock::Unlocked) => "unlocked",
        None => "ideal",
    }
}

/// One closed-loop run: UEs attach at `attach_at` (after the pull-in
/// window, so both the clocked run and the baseline track the same RNTI
/// population), `ppm` = 0 means ideal clock.
fn drive_parity_run(cell: &CellConfig, slots: u64, attach_at: u64, ppm: f64) -> NrScope {
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
    let slot_s = cell.slot_s();
    let mut obs = Observer::new(cell, 35.0, false, 5);
    if ppm != 0.0 {
        obs.set_clock(
            cell.clock_model(3)
                .with_static_ppm(ppm)
                .with_random_walk(0.02),
        );
    }
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    for s in 0..slots {
        if s == attach_at {
            gnb.ue_arrives(cbr_ue(1, 11));
            gnb.ue_arrives(cbr_ue(2, 11));
        }
        let out = gnb.step();
        scope.process_observer_slot(&mut obs, &out, s as f64 * slot_s);
    }
    scope
}

/// ±20 ppm oscillator: lock held, drift estimate near truth, decoded-DCI
/// parity with the ideal-clock baseline inside the band.
fn drift_phase(cell: &CellConfig, slots: u64) -> PhaseResult {
    let attach_at = 800.min(slots / 4);
    let t0 = Instant::now();
    let base = drive_parity_run(cell, slots, attach_at, 0.0);
    let plus = drive_parity_run(cell, slots, attach_at, 20.0);
    let minus = drive_parity_run(cell, slots, attach_at, -20.0);
    let wall = t0.elapsed().as_secs_f64();

    let base_dcis = decoded_dcis(&base).max(1);
    let ratio_plus = decoded_dcis(&plus) as f64 / base_dcis as f64;
    let ratio_minus = decoded_dcis(&minus) as f64 / base_dcis as f64;
    // Byte parity: the per-UE bit estimates of the corrected runs
    // against the ideal-clock baseline, summed over its tracked RNTIs.
    let bits = |s: &NrScope| -> u64 {
        base.tracked_rntis()
            .iter()
            .map(|&r| s.estimated_bits(r, 0..slots))
            .sum::<u64>()
            .max(1)
    };
    let byte_plus = bits(&plus) as f64 / bits(&base) as f64;
    let byte_minus = bits(&minus) as f64 / bits(&base) as f64;
    let band = PARITY_MIN..=PARITY_MAX;
    let ok = plus.clock_lock() == Some(ClockLock::Locked)
        && minus.clock_lock() == Some(ClockLock::Locked)
        && (plus.clock_drift_ppb() - 20_000).abs() < 5_000
        && (minus.clock_drift_ppb() + 20_000).abs() < 5_000
        && band.contains(&ratio_plus)
        && band.contains(&ratio_minus)
        && band.contains(&byte_plus)
        && band.contains(&byte_minus)
        && plus.stats.timing_slips > 0;
    let detail = format!(
        "dci_ratio_plus={ratio_plus:.3} dci_ratio_minus={ratio_minus:.3} \
         byte_ratio_plus={byte_plus:.3} byte_ratio_minus={byte_minus:.3} \
         drift_plus={}ppb drift_minus={}ppb band=[{PARITY_MIN},{PARITY_MAX}]",
        plus.clock_drift_ppb(),
        minus.clock_drift_ppb()
    );
    PhaseResult {
        name: "drift_20ppm",
        slots: slots * 3,
        slots_per_sec: (slots * 3) as f64 / wall,
        lock: lock_name(plus.clock_lock()),
        drift_ppb: plus.clock_drift_ppb(),
        timing_slips: plus.stats.timing_slips,
        ok,
        detail,
    }
}

/// A 2 µs timing step mid-run: the loop formally drops out of `Locked`
/// (short pulling horizon), reacquires through the SSB path, and the
/// excursion stays inside the documented bound.
fn step_phase(cell: &CellConfig, slots: u64) -> PhaseResult {
    let step_at = (slots / 2) | 1; // odd ⇒ never an SSB slot (those are % 40 == 0)
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 13);
    gnb.ue_arrives(cbr_ue(1, 13));
    gnb.ue_arrives(cbr_ue(2, 13));
    let slot_s = cell.slot_s();
    let mut obs = Observer::new(cell, 35.0, false, 5);
    obs.set_clock(
        cell.clock_model(7)
            .with_static_ppm(5.0)
            .with_step(step_at, 2.0),
    );
    let mut scope = NrScope::new(
        ScopeConfig {
            clock: ClockRecoveryConfig {
                // Short pulling horizon: the excursion is visible as a
                // formal lock drop instead of hiding in the hysteresis.
                pulling_after_slots: 10,
                ..ClockRecoveryConfig::default()
            },
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );
    let t0 = Instant::now();
    // The loop rides its hysteresis for a few slots after the step, so
    // the excursion is drop → relock, not step → first-Locked-slot.
    let mut dropped_at = None;
    let mut relocked_at = None;
    for s in 0..slots {
        let out = gnb.step();
        scope.process_observer_slot(&mut obs, &out, s as f64 * slot_s);
        if s >= step_at && relocked_at.is_none() {
            match scope.clock_lock() {
                Some(ClockLock::Locked) if dropped_at.is_some() => relocked_at = Some(s),
                Some(ClockLock::Locked) | None => {}
                _ => dropped_at = dropped_at.or(Some(s)),
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let excursion = relocked_at.map(|s| s - step_at);
    let ok = scope.stats.clock_lock_losses >= 1
        && excursion.is_some_and(|e| e <= REACQUIRE_BOUND_SLOTS)
        && scope.clock_lock() == Some(ClockLock::Locked);
    let detail = format!(
        "step_at={step_at} excursion={excursion:?} bound={REACQUIRE_BOUND_SLOTS} \
         lock_losses={} steps={}",
        scope.stats.clock_lock_losses, scope.stats.clock_steps
    );
    PhaseResult {
        name: "step_2us_reacquire",
        slots,
        slots_per_sec: slots as f64 / wall,
        lock: lock_name(scope.clock_lock()),
        drift_ppb: scope.clock_drift_ppb(),
        timing_slips: scope.stats.timing_slips,
        ok,
        detail,
    }
}

/// Kill -9 straddling the SFN wrap: a persistent session is leaked (no
/// drop-time drain) a hundred slots before the mod-1024 wrap, resumed,
/// and must replay + continue exactly — equal to an uninterrupted
/// reference, with the derived SFN matching air truth on every slot.
fn wrap_phase(cell: &CellConfig) -> PhaseResult {
    const WRAP: u64 = 20_480; // 1024 frames × 20 slots at µ=1
    const SKIP_TO: u64 = 20_200;
    const KILL_AT: u64 = 20_380;
    const END: u64 = 20_900;
    let slot_s = cell.slot_s();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 17);
    gnb.ue_arrives(cbr_ue(1, 17));
    let mut obs = Observer::new(cell, 35.0, false, 9);
    obs.set_clock(
        cell.clock_model(19)
            .with_static_ppm(10.0)
            .with_random_walk(0.02),
    );

    // Tape the two processed windows (anchor acquisition, then the wrap
    // straddle) with a reference scope closing the recovery loop; the
    // stretch in between is skipped — the cell keeps running, the
    // sniffer fast-forwards, exactly the volatile-shard adoption story.
    let mut reference = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    let mut tape: Vec<(u64, u32, Capture, Option<ClockObservable>)> = Vec::new();
    let t0 = Instant::now();
    let mut air_slot = 0u64;
    for (start, end) in [(0u64, 400u64), (SKIP_TO, END)] {
        while air_slot < start {
            let _ = gnb.step();
            air_slot += 1;
        }
        if start > 0 {
            reference.fast_forward(start);
        }
        while air_slot < end {
            let out = gnb.step();
            air_slot += 1;
            let cap = obs.capture(&out, out.slot as f64 * slot_s);
            let cobs = obs.take_clock_observable();
            if let Some(o) = &cobs {
                reference.note_clock_observable(o);
                let (timing_us, cfo_hz) = reference.clock_command();
                obs.apply_clock_correction(timing_us, cfo_hz);
            }
            reference.process_capture(&cap);
            tape.push((out.slot, out.sfn, cap, cobs));
        }
    }

    let dir = std::env::temp_dir().join(format!("nrscope-bench-clockdrift-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || PersistConfig {
        checkpoint_every_slots: 512,
        ..PersistConfig::new(&dir)
    };
    let replay = |session: &mut PersistentSession,
                  tape: &[(u64, u32, Capture, Option<ClockObservable>)]| {
        let mut sfn_mismatches = 0u64;
        for (slot, sfn, cap, cobs) in tape {
            if session.scope().slot_watermark() < *slot && *slot >= SKIP_TO {
                // Crossing into the second window: skip like the taping
                // run did (the fast-forward itself is re-derived from the
                // tape position, not trusted to survive the kill).
                session.scope_mut().fast_forward(SKIP_TO);
            }
            if let Some(o) = cobs {
                session.scope_mut().note_clock_observable(o);
            }
            if session.scope().cell.mib.is_some() && session.scope().derived_sfn() != *sfn {
                sfn_mismatches += 1;
            }
            session.process_capture(cap);
        }
        sfn_mismatches
    };

    let kill_idx = tape.iter().position(|(s, ..)| *s == KILL_AT).unwrap();
    let (mut session, _) = PersistentSession::open(cfg(), ScopeConfig::default(), Some(cell.pci))
        .expect("open wrap session");
    let mut mismatches = replay(&mut session, &tape[..kill_idx]);
    // kill -9: leaked, no finalize, no drop-time drain.
    std::mem::forget(session);
    std::thread::sleep(Duration::from_millis(50));

    let (mut session, report) =
        PersistentSession::open(cfg(), ScopeConfig::default(), Some(cell.pci))
            .expect("reopen wrap session");
    let resumed = report.resumed_slot;
    let resume_idx = tape
        .iter()
        .position(|(s, ..)| *s == resumed)
        .unwrap_or(kill_idx);
    mismatches += replay(&mut session, &tape[resume_idx..]);
    let wall = t0.elapsed().as_secs_f64();

    let continued = session.scope().session_state();
    let uninterrupted = reference.session_state();
    let exact = continued.slot == uninterrupted.slot
        && serde_json::to_string(&continued.tracker).unwrap()
            == serde_json::to_string(&uninterrupted.tracker).unwrap()
        && continued.clock == uninterrupted.clock
        && continued.stats.dl_dcis == uninterrupted.stats.dl_dcis
        && continued.stats.timing_slips == uninterrupted.stats.timing_slips;
    let wrapped = reference.derived_sfn() < 100; // 20,900 slots = SFN 21 after wrap
    let ok = report.resumed && resumed <= KILL_AT && mismatches == 0 && exact && wrapped;
    let detail = format!(
        "resumed={resumed} kill_at={KILL_AT} wrap_slot={WRAP} sfn_mismatches={mismatches} \
         exact_replay={exact} final_sfn={}",
        reference.derived_sfn()
    );
    session.finalize().expect("finalize wrap session");
    let _ = std::fs::remove_dir_all(&dir);
    PhaseResult {
        name: "sfn_wrap_kill9",
        slots: tape.len() as u64,
        slots_per_sec: tape.len() as f64 / wall,
        lock: lock_name(reference.clock_lock()),
        drift_ppb: reference.clock_drift_ppb(),
        timing_slips: reference.stats.timing_slips,
        ok,
        detail,
    }
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let cell = CellConfig::srsran_n41();
    let slot_s = cell.slot_s();
    let seconds = capture_seconds(if short { 1.5 } else { 4.0 });
    // Enough room for CFO pull-in + attach + a meaningful parity window.
    let phase_slots = ((seconds / slot_s).round() as u64).max(3_000);

    let mut panics = 0u64;
    let mut run = |f: &dyn Fn() -> PhaseResult, name: &'static str| -> PhaseResult {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(_) => {
                panics += 1;
                PhaseResult::panicked(name)
            }
        }
    };
    let phases = [
        run(&|| drift_phase(&cell, phase_slots), "drift_20ppm"),
        run(&|| step_phase(&cell, phase_slots), "step_2us_reacquire"),
        run(&|| wrap_phase(&cell), "sfn_wrap_kill9"),
    ];

    let all_ok = panics == 0 && phases.iter().all(|p| p.ok);
    let phases_json = phases
        .iter()
        .map(|p| format!("    {}", p.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"clockdrift\",\n",
            "  \"short\": {short},\n",
            "  \"phase_slots\": {phase_slots},\n",
            "  \"parity_band\": [{pmin}, {pmax}],\n",
            "  \"reacquire_bound_slots\": {bound},\n",
            "  \"panics\": {panics},\n",
            "  \"phases\": [\n{phases}\n  ],\n",
            "  \"gate_ok\": {ok}\n",
            "}}\n"
        ),
        short = short,
        phase_slots = phase_slots,
        pmin = PARITY_MIN,
        pmax = PARITY_MAX,
        bound = REACQUIRE_BOUND_SLOTS,
        panics = panics,
        phases = phases_json,
        ok = all_ok,
    );
    std::fs::write("BENCH_clockdrift.json", &json).expect("write BENCH_clockdrift.json");

    println!("clockdrift bench ({phase_slots} slots/phase, short={short})");
    for p in &phases {
        println!(
            "  {:<20} {:>9} slots  {:>10.1} slots/s  lock {:<8} drift {:>7} ppb  {}",
            p.name,
            p.slots,
            p.slots_per_sec,
            p.lock,
            p.drift_ppb,
            if p.ok { "ok" } else { "FAIL" }
        );
        println!("    {}", p.detail);
    }
    println!("  panics             {panics:>10}");
    println!("wrote BENCH_clockdrift.json");
    if !all_ok {
        eprintln!("clockdrift gate breached: see phase details above");
        std::process::exit(1);
    }
}
