//! Fig 10 — CCDF of UE active time in the T-Mobile cells, by time of day.
//!
//! Paper: 400–600 distinct UEs per 10 min in cell 1 (100–200 in cell 2);
//! 90% of UEs stay under 35 s — the "come-and-go" pattern.

use gnb_sim::CellConfig;
use nrscope_analytics::{ccdf_points, percentile, report};
use nrscope_bench::{capture_seconds, run_population};
use ue_sim::arrival::ArrivalConfig;

fn main() {
    println!(
        "{}",
        report::figure_header("fig10", "UE active time CCDF, T-Mobile cells")
    );
    let seconds = capture_seconds(120.0);
    let scale = seconds / 600.0;
    // Time-of-day load factors relative to the fitted base rate.
    for (label, load) in [("Morning", 0.8), ("Afternoon", 1.2), ("Night", 0.6)] {
        for (cell_name, cell, base) in [
            (
                "1",
                CellConfig::tmobile_n25(),
                ArrivalConfig::tmobile_cell1(),
            ),
            (
                "2",
                CellConfig::tmobile_n71(),
                ArrivalConfig::tmobile_cell2(),
            ),
        ] {
            let arrivals = ArrivalConfig {
                arrivals_per_s: base.arrivals_per_s * load,
                ..base
            };
            let seed = (load * 10.0) as u64 * 100 + cell_name.len() as u64;
            let p = run_population(cell, arrivals, seconds, seed);
            let durations = p.population.durations_s();
            println!(
                "{}",
                report::scalar(
                    &format!("{label}_{cell_name}_distinct_ues_per_10min"),
                    p.population.total_sessions() as f64 / scale,
                )
            );
            println!(
                "{}",
                report::scalar(
                    &format!("{label}_{cell_name}_p90_active_s"),
                    percentile(&durations, 90.0),
                )
            );
            println!(
                "{}",
                report::scalar(
                    &format!("{label}_{cell_name}_scope_discovered"),
                    p.scope.total_discovered() as f64,
                )
            );
            println!(
                "{}",
                report::series(
                    &format!("{label} ({cell_name})"),
                    &ccdf_points(&durations),
                    10,
                )
            );
        }
    }
    println!();
    println!("paper: 400-600 UEs/10min (cell 1), 100-200 (cell 2); 90% of UEs < 35 s");
}
