//! durafault — storage-fault matrix over the durable pipeline.
//!
//! Runs the durable session against a seeded `FaultyBackend` through four
//! fault schedules — transient write-error burst, dead disk (persistent
//! `EIO`), disk full (`ENOSPC`), and recovery with re-promotion + a
//! simulated `kill -9` resume — and freezes the results into
//! `BENCH_durafault.json`.
//!
//! The gate exits non-zero unless, across every schedule:
//!   * zero panics escaped any phase;
//!   * decode throughput stayed within 10% of the clean-disk baseline
//!     while the disk was faulting (plus the shared noise floor);
//!   * the durability ladder moved as designed, observed through the
//!     `durability_rung` gauge — retries without demotion for the
//!     transient burst, demotion to `NonDurable` for the dead disk, an
//!     emergency prune for `ENOSPC`, and full re-promotion to `Durable`
//!     after recovery;
//!   * resume after the simulated kill lost no more slots than the
//!     session's honestly-reported loss window.
//!
//! `--short` (or `NRSCOPE_SECONDS`) shrinks the run for CI smoke tests.

use gnb_sim::{CellConfig, Gnb};
use nr_mac::RoundRobin;
use nr_phy::channel::ChannelProfile;
use nrscope::observe::Observer;
use nrscope::{
    Counter, DurabilityRung, FaultKind, FaultyBackend, Gauge, PersistConfig, PersistentSession,
    ScopeConfig, StorageFaultSchedule, StoragePolicy,
};
use nrscope_bench::capture_seconds;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ue_sim::traffic::{TrafficKind, TrafficSource};
use ue_sim::{MobilityScenario, SimUe};

/// Wall-clock noise floor for throughput-ratio comparisons, in percent
/// (same figure the `pipeline` bench documents).
const NOISE_FLOOR_PCT: f64 = 3.0;

/// Throughput during faults must stay within 10% of baseline (the
/// tentpole's headline requirement), noise floor on top.
fn ratio_min() -> f64 {
    0.9 * (1.0 - NOISE_FLOOR_PCT / 100.0)
}

fn build_gnb(cell: &CellConfig, n_ues: usize, active_s: f64, seed: u64) -> Gnb {
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), seed);
    for i in 0..n_ues {
        gnb.ue_arrives(SimUe::new(
            i as u64 + 1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 3e6,
                    packet_bytes: 1200,
                },
                seed * 1000 + i as u64,
            ),
            0.0,
            active_s,
            seed * 7777 + i as u64,
        ));
    }
    gnb
}

/// One phase's cell feed: a gNB + observer pair that survives across
/// `drive` calls so the tracked-UE population persists through faults.
struct Feed {
    gnb: Gnb,
    observer: Observer,
    slot_s: f64,
    next: u64,
}

impl Feed {
    fn new(cell: &CellConfig, horizon_slots: u64, seed: u64) -> Feed {
        let slot_s = cell.slot_s();
        Feed {
            gnb: build_gnb(cell, 4, horizon_slots as f64 * slot_s + 10.0, seed),
            observer: Observer::new(cell, 30.0, false, seed ^ 0xD15C),
            slot_s,
            next: 0,
        }
    }

    /// Feed `slots` captures through the session; returns wall seconds.
    fn drive(&mut self, session: &mut PersistentSession, slots: u64) -> f64 {
        let t0 = Instant::now();
        for _ in 0..slots {
            let out = self.gnb.step();
            let cap = self.observer.capture(&out, self.next as f64 * self.slot_s);
            session.process_capture(&cap);
            self.next += 1;
        }
        t0.elapsed().as_secs_f64()
    }
}

fn phase_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nrscope-bench-durafault-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_session(
    dir: &PathBuf,
    cell: &CellConfig,
    backend: Option<&FaultyBackend>,
    storage: StoragePolicy,
) -> PersistentSession {
    let mut cfg = PersistConfig {
        checkpoint_every_slots: 512,
        storage,
        ..PersistConfig::new(dir)
    };
    if let Some(b) = backend {
        cfg = cfg.with_backend(Arc::new(b.clone()));
    }
    let (session, _) = PersistentSession::open(cfg, ScopeConfig::default(), Some(cell.pci))
        .expect("open durable session");
    session
}

/// One fault schedule's outcome.
struct PhaseResult {
    name: &'static str,
    slots: u64,
    slots_per_sec: f64,
    ratio_vs_baseline: f64,
    retries: u64,
    demotions: u64,
    emergency_prunes: u64,
    journal_write_failures: u64,
    final_rung: &'static str,
    ok: bool,
    detail: String,
}

impl PhaseResult {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\": \"{name}\", \"slots\": {slots}, ",
                "\"slots_per_sec\": {sps:.1}, \"ratio_vs_baseline\": {ratio:.4}, ",
                "\"storage_retries\": {retries}, \"storage_demotions\": {demotions}, ",
                "\"emergency_prunes\": {prunes}, \"journal_write_failures\": {jwf}, ",
                "\"final_rung\": \"{rung}\", \"ok\": {ok}, \"detail\": \"{detail}\"}}"
            ),
            name = self.name,
            slots = self.slots,
            sps = self.slots_per_sec,
            ratio = self.ratio_vs_baseline,
            retries = self.retries,
            demotions = self.demotions,
            prunes = self.emergency_prunes,
            jwf = self.journal_write_failures,
            rung = self.final_rung,
            ok = self.ok,
            detail = self.detail,
        )
    }
}

fn snapshot_counters(session: &PersistentSession) -> (u64, u64, u64, u64) {
    let m = session.scope().metrics();
    (
        m.counter(Counter::StorageRetries),
        m.counter(Counter::StorageDemotions),
        m.counter(Counter::EmergencyPrunes),
        m.counter(Counter::JournalWriteFailures),
    )
}

/// Clean-disk baseline: the yardstick every faulted run is measured
/// against.
fn baseline_phase(cell: &CellConfig, slots: u64) -> f64 {
    let dir = phase_dir("baseline");
    let mut session = open_session(&dir, cell, None, StoragePolicy::default());
    let mut feed = Feed::new(cell, slots, 11);
    let wall = feed.drive(&mut session, slots);
    session.finalize().expect("finalize baseline");
    let _ = std::fs::remove_dir_all(&dir);
    slots as f64 / wall
}

/// Transient burst: a bounded window of write `EIO`s. The ladder must
/// absorb it with retries — no demotion — and climb back to `Durable`.
fn transient_phase(cell: &CellConfig, slots: u64, base_sps: f64) -> PhaseResult {
    let dir = phase_dir("transient");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(21));
    let mut session = open_session(&dir, cell, Some(&backend), StoragePolicy::default());
    let mut feed = Feed::new(cell, slots * 2, 13);
    // Warm up to just past a checkpoint boundary, so the next few write
    // ops belong to the journal writer, not a racing background
    // checkpoint; the barrier + sleep drain anything already in flight.
    let warm = (slots / 4 / 512) * 512 + 128;
    let mut wall = feed.drive(&mut session, warm);
    session.flush_barrier();
    std::thread::sleep(Duration::from_millis(10));
    // Two consecutive write EIOs from the next journal append on: both
    // are retried (well under the retry budget of 4) and the write lands
    // on the third attempt.
    let w = backend.writes();
    backend.arm(FaultKind::WriteEio, w..w + 2);
    wall += feed.drive(&mut session, slots - warm);
    session.flush_barrier();
    let (retries, demotions, prunes, jwf) = snapshot_counters(&session);
    let rung = session.durability_rung();
    let gauge = session.scope().metrics().gauge(Gauge::DurabilityRung);
    let sps = slots as f64 / wall;
    let ratio = sps / base_sps;
    let ok = retries >= 1
        && demotions == 0
        && rung == DurabilityRung::Durable
        && gauge == DurabilityRung::Durable as u64
        && ratio >= ratio_min();
    let detail = format!(
        "retries={retries} demotions={demotions} rung={} gauge={gauge} ratio={ratio:.3}",
        rung.name()
    );
    session.finalize().expect("finalize transient");
    let _ = std::fs::remove_dir_all(&dir);
    PhaseResult {
        name: "transient_burst",
        slots,
        slots_per_sec: sps,
        ratio_vs_baseline: ratio,
        retries,
        demotions,
        emergency_prunes: prunes,
        journal_write_failures: jwf,
        final_rung: rung.name(),
        ok,
        detail,
    }
}

/// Dead disk: every write fails from mid-phase on. The session must
/// demote to `NonDurable` (observed via the gauge), keep decoding at
/// full speed, and report its loss window as unbounded.
fn dead_disk_phase(cell: &CellConfig, slots: u64, base_sps: f64) -> PhaseResult {
    let dir = phase_dir("dead-disk");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(22));
    let mut session = open_session(&dir, cell, Some(&backend), StoragePolicy::default());
    let mut feed = Feed::new(cell, slots * 8, 14);
    feed.drive(&mut session, slots / 4);
    backend.arm(FaultKind::WriteEio, backend.writes()..u64::MAX);
    // Timed stretch under the dead disk: the hot path must not inherit
    // the writer thread's retry stalls.
    let mut wall = feed.drive(&mut session, slots);
    let mut driven = slots;
    // The first failing batch spends the full retry ladder (~15 ms of
    // writer-thread backoff) before the demotion lands; drive until the
    // session observes it, bounded so a bug cannot hang the bench.
    while session.durability_rung() != DurabilityRung::NonDurable && driven < slots * 6 {
        wall += feed.drive(&mut session, 64);
        driven += 64;
    }
    let (retries, demotions, prunes, jwf) = snapshot_counters(&session);
    let rung = session.durability_rung();
    let gauge = session.scope().metrics().gauge(Gauge::DurabilityRung);
    let loss = session.reported_loss_window();
    let sps = driven as f64 / wall;
    let ratio = sps / base_sps;
    let ok = demotions >= 1
        && rung == DurabilityRung::NonDurable
        && gauge == DurabilityRung::NonDurable as u64
        && loss.is_none()
        && jwf >= 1
        && ratio >= ratio_min();
    let detail = format!(
        "demotions={demotions} rung={} gauge={gauge} loss_window={loss:?} ratio={ratio:.3}",
        rung.name()
    );
    // No finalize: the disk is dead, a final checkpoint would (rightly)
    // fail. Drop drains what it can and moves on — exactly the unattended
    // deployment story.
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
    PhaseResult {
        name: "dead_disk",
        slots: driven,
        slots_per_sec: sps,
        ratio_vs_baseline: ratio,
        retries,
        demotions,
        emergency_prunes: prunes,
        journal_write_failures: jwf,
        final_rung: rung.name(),
        ok,
        detail,
    }
}

/// Disk full: one `ENOSPC` write. The ladder must fire the emergency
/// prune, retry into the reclaimed space, and never demote.
fn disk_full_phase(cell: &CellConfig, slots: u64, base_sps: f64) -> PhaseResult {
    let dir = phase_dir("disk-full");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(23));
    let mut session = open_session(&dir, cell, Some(&backend), StoragePolicy::default());
    let mut feed = Feed::new(cell, slots * 2, 15);
    // Past at least one checkpoint cadence (something to prune), landing
    // just after a boundary so the armed op hits the journal writer, not
    // a racing background checkpoint.
    let warm = (slots / 2 / 512) * 512 + 128;
    let mut wall = feed.drive(&mut session, warm);
    session.flush_barrier();
    std::thread::sleep(Duration::from_millis(10));
    let w = backend.writes();
    backend.arm(FaultKind::WriteEnospc, w..w + 1);
    wall += feed.drive(&mut session, slots - warm);
    session.flush_barrier();
    let (retries, demotions, prunes, jwf) = snapshot_counters(&session);
    let rung = session.durability_rung();
    let sps = slots as f64 / wall;
    let ratio = sps / base_sps;
    let ok = prunes >= 1
        && retries >= 1
        && demotions == 0
        && rung != DurabilityRung::NonDurable
        && ratio >= ratio_min();
    let detail = format!(
        "prunes={prunes} retries={retries} demotions={demotions} rung={} ratio={ratio:.3}",
        rung.name()
    );
    session.finalize().expect("finalize disk-full");
    let _ = std::fs::remove_dir_all(&dir);
    PhaseResult {
        name: "disk_full",
        slots,
        slots_per_sec: sps,
        ratio_vs_baseline: ratio,
        retries,
        demotions,
        emergency_prunes: prunes,
        journal_write_failures: jwf,
        final_rung: rung.name(),
        ok,
        detail,
    }
}

/// Recovery: dead disk → demotion → the disk comes back → the background
/// probe re-promotes → a simulated `kill -9` → resume must lose no more
/// than the loss window the session was reporting at the kill.
fn recovery_phase(cell: &CellConfig, slots: u64, base_sps: f64) -> PhaseResult {
    let dir = phase_dir("recovery");
    let backend = FaultyBackend::new(StorageFaultSchedule::new(24));
    let policy = StoragePolicy {
        reprobe_interval_slots: 256, // probe quickly: bench, not production
        ..StoragePolicy::default()
    };
    let mut session = open_session(&dir, cell, Some(&backend), policy);
    let mut feed = Feed::new(cell, slots * 16, 16);
    feed.drive(&mut session, slots / 4);
    let mut driven = slots / 4;
    backend.arm(FaultKind::WriteEio, backend.writes()..u64::MAX);
    while session.durability_rung() != DurabilityRung::NonDurable && driven < slots * 4 {
        feed.drive(&mut session, 64);
        driven += 64;
    }
    let demoted = session.durability_rung() == DurabilityRung::NonDurable;
    // The disk comes back; the probe cadence must notice and re-anchor.
    backend.clear_faults();
    while session.durability_rung() != DurabilityRung::Durable && driven < slots * 12 {
        feed.drive(&mut session, 64);
        driven += 64;
    }
    let repromoted = session.durability_rung() == DurabilityRung::Durable;
    let gauge = session.scope().metrics().gauge(Gauge::DurabilityRung);
    // The convergence loops above pay one-off costs by design (the retry
    // ladder's backoff, the re-anchor checkpoint, probe cadence waits), so
    // the throughput gate measures the recovered steady state: a timed
    // durable stretch after re-promotion must be back within 10%.
    let timed = slots;
    let wall = feed.drive(&mut session, timed);
    driven += timed;
    // Post-recovery promise check: barrier, then an un-flushed tail, then
    // a simulated kill -9 (session leaked, no drop-time drain).
    session.flush_barrier();
    let durable_wm = session.durable_watermark();
    let tail = 256u64;
    feed.drive(&mut session, tail);
    driven += tail;
    let wm_at_kill = session.scope().slot_watermark();
    let loss_promised = session.reported_loss_window();
    let (retries, demotions, prunes, jwf) = snapshot_counters(&session);
    std::mem::forget(session);
    // The leaked writer thread drains anything still queued in microseconds;
    // let it settle so reopening reads a quiescent journal.
    std::thread::sleep(Duration::from_millis(50));
    let reopened = open_session(&dir, cell, Some(&backend), policy);
    let resumed_slot = reopened.scope().slot_watermark();
    drop(reopened);
    let lost = wm_at_kill.saturating_sub(resumed_slot);
    let honoured = match loss_promised {
        Some(window) => resumed_slot >= durable_wm && lost <= window,
        None => false, // a re-promoted session must promise a bounded window
    };
    let sps = timed as f64 / wall;
    let ratio = sps / base_sps;
    let ok = demoted
        && repromoted
        && gauge == DurabilityRung::Durable as u64
        && honoured
        && ratio >= ratio_min();
    let detail = format!(
        "demoted={demoted} repromoted={repromoted} resumed={resumed_slot} \
         kill_wm={wm_at_kill} lost={lost} window={loss_promised:?} ratio={ratio:.3}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    PhaseResult {
        name: "recovery",
        slots: driven,
        slots_per_sec: sps,
        ratio_vs_baseline: ratio,
        retries,
        demotions,
        emergency_prunes: prunes,
        journal_write_failures: jwf,
        final_rung: if repromoted { "durable" } else { "non_durable" },
        ok,
        detail,
    }
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let cell = CellConfig::srsran_n41();
    let slot_s = cell.slot_s();
    let seconds = capture_seconds(if short { 0.6 } else { 3.0 });
    let phase_slots = ((seconds / slot_s).round() as u64).max(600);

    // Warmup (page-in, allocator), then best-of-N interleaved rounds: the
    // baseline is re-measured every round so wall-clock noise hits both
    // sides of each ratio, and each phase keeps its best round. The
    // baseline is itself a clean durable run, so every ratio compares
    // durable-vs-durable.
    baseline_phase(&cell, phase_slots / 4);
    const ROUNDS: usize = 3;
    let mut panics = 0u64;
    let mut base_sps = 0.0f64;
    let mut best: [Option<PhaseResult>; 4] = [None, None, None, None];
    for _ in 0..ROUNDS {
        let base = baseline_phase(&cell, phase_slots);
        base_sps = base_sps.max(base);
        let mut run = |f: &dyn Fn() -> PhaseResult, name: &'static str| -> PhaseResult {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(r) => r,
                Err(_) => {
                    panics += 1;
                    PhaseResult {
                        name,
                        slots: 0,
                        slots_per_sec: 0.0,
                        ratio_vs_baseline: 0.0,
                        retries: 0,
                        demotions: 0,
                        emergency_prunes: 0,
                        journal_write_failures: 0,
                        final_rung: "panicked",
                        ok: false,
                        detail: "phase panicked".to_string(),
                    }
                }
            }
        };
        let round = [
            run(
                &|| transient_phase(&cell, phase_slots, base),
                "transient_burst",
            ),
            run(&|| dead_disk_phase(&cell, phase_slots, base), "dead_disk"),
            run(&|| disk_full_phase(&cell, phase_slots, base), "disk_full"),
            run(&|| recovery_phase(&cell, phase_slots, base), "recovery"),
        ];
        for (slot, result) in best.iter_mut().zip(round) {
            let better = match slot {
                None => true,
                Some(prev) => {
                    (result.ok, result.ratio_vs_baseline) > (prev.ok, prev.ratio_vs_baseline)
                }
            };
            if better {
                *slot = Some(result);
            }
        }
    }
    let phases: Vec<PhaseResult> = best.into_iter().map(|p| p.expect("round ran")).collect();

    let all_ok = panics == 0 && phases.iter().all(|p| p.ok);
    let phases_json = phases
        .iter()
        .map(|p| format!("    {}", p.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"durafault\",\n",
            "  \"short\": {short},\n",
            "  \"phase_slots\": {phase_slots},\n",
            "  \"noise_floor_pct\": {floor:.1},\n",
            "  \"ratio_min\": {ratio_min:.4},\n",
            "  \"baseline_slots_per_sec\": {base_sps:.1},\n",
            "  \"panics\": {panics},\n",
            "  \"phases\": [\n{phases}\n  ],\n",
            "  \"gate_ok\": {ok}\n",
            "}}\n"
        ),
        short = short,
        phase_slots = phase_slots,
        floor = NOISE_FLOOR_PCT,
        ratio_min = ratio_min(),
        base_sps = base_sps,
        panics = panics,
        phases = phases_json,
        ok = all_ok,
    );
    std::fs::write("BENCH_durafault.json", &json).expect("write BENCH_durafault.json");

    println!("durafault bench ({phase_slots} slots/phase, short={short})");
    println!("  baseline           {base_sps:>10.1} slots/s (durable, clean disk)");
    for p in &phases {
        println!(
            "  {:<16} {:>10.1} slots/s  ratio {:.3}  rung {:<16} {}",
            p.name,
            p.slots_per_sec,
            p.ratio_vs_baseline,
            p.final_rung,
            if p.ok { "ok" } else { "FAIL" }
        );
        println!("    {}", p.detail);
    }
    println!("  panics             {panics:>10}");
    println!("wrote BENCH_durafault.json");
    if !all_ok {
        eprintln!("durafault gate breached: see phase details above");
        std::process::exit(1);
    }
}
