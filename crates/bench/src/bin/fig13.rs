//! Fig 13 — DCI miss rate across floor positions (64 UEs, Amarisoft cell).
//!
//! The sniffer's placement sets its receive SNR through the indoor
//! path-loss model (`ue_sim::mobility::FloorPosition`); misses rise where
//! signal quality is poor. Paper: near-zero across most of the floor, up
//! to ~7% in the worst corners.

use gnb_sim::CellConfig;
use nrscope_analytics::{match_dcis, report};
use nrscope_bench::{capture_seconds, SessionSpec};
use ue_sim::mobility::FloorPosition;
use ue_sim::traffic::TrafficKind;

fn main() {
    println!(
        "{}",
        report::figure_header("fig13", "DCI miss rate across the floor (64 UEs)")
    );
    let seconds = capture_seconds(15.0);
    // A 10 m × 7 m floor grid like the paper's: positions by distance to
    // the gNB and intervening walls.
    let positions = [
        (
            "1m_open",
            FloorPosition {
                distance_m: 1.0,
                walls: 0,
            },
        ),
        (
            "3m_open",
            FloorPosition {
                distance_m: 3.0,
                walls: 0,
            },
        ),
        (
            "5m_1wall",
            FloorPosition {
                distance_m: 5.0,
                walls: 1,
            },
        ),
        (
            "7m_1wall",
            FloorPosition {
                distance_m: 7.0,
                walls: 1,
            },
        ),
        (
            "10m_2walls",
            FloorPosition {
                distance_m: 10.0,
                walls: 2,
            },
        ),
        (
            "12m_3walls",
            FloorPosition {
                distance_m: 12.0,
                walls: 3,
            },
        ),
        (
            "14m_4walls",
            FloorPosition {
                distance_m: 14.0,
                walls: 4,
            },
        ),
        (
            "16m_5walls",
            FloorPosition {
                distance_m: 16.0,
                walls: 5,
            },
        ),
    ];
    for (i, (label, pos)) in positions.into_iter().enumerate() {
        let mut spec = SessionSpec::new(CellConfig::amarisoft_n78());
        spec.n_ues = 64;
        spec.seconds = seconds;
        spec.sniffer_snr_db = pos.snr_db();
        spec.traffic = TrafficKind::Poisson {
            pkts_per_s: 40.0,
            mean_bytes: 800,
        };
        spec.seed = 9 + i as u64;
        let session = spec.run();
        let m = match_dcis(
            session.gnb.truth(),
            session.scope.records(),
            0..session.slots,
            0,
        );
        println!(
            "{}",
            report::bars(
                label,
                &[
                    ("snr_db", pos.snr_db()),
                    ("dl_miss_pct", m.dl_miss_rate_pct()),
                    ("ul_miss_pct", m.ul_miss_rate_pct()),
                ],
            )
        );
    }
    println!();
    println!("paper: mostly near zero; up to ~7% where signal quality is bad");
}
