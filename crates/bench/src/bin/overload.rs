//! overload — deterministic overload-soak smoke for the governor ladder.
//!
//! Replays the seeded oversubscribed scenario from `tests/overload.rs`
//! (16 backlogged UEs, a cost spike, two arrivals while blind, then a
//! load drop) with modelled latency, and writes `BENCH_overload.json`.
//! Exits non-zero when a smoke invariant fails, so CI can gate on it:
//!
//!   * bounded latency — even mid-spike the smoothed slot latency stays
//!     under twice the budget (upward probes cost at most a
//!     `demote_after_slots` run of overload before the ladder re-demotes;
//!     unmitigated Full search would sit at ~2.4x budget), and the final
//!     100 slots are miss-free;
//!   * monotone recovery — after the load drops, the rung index never
//!     increases again;
//!   * never-go-dark — every RACH in the gNB ground-truth log has a
//!     matching MSG 4 C-RNTI discovery, including the two UEs that
//!     attached while the sniffer was broadcast-only.

use gnb_sim::{CellConfig, Gnb};
use nr_mac::RoundRobin;
use nr_phy::channel::ChannelProfile;
use nr_phy::pdcch::AggregationLevel;
use nr_phy::types::{Rnti, RntiType};
use nrscope::observe::Observer;
use nrscope::{GovernorConfig, LoadModel, LoadRung, NrScope, ScopeConfig};
use std::collections::BTreeSet;
use std::time::Duration;
use ue_sim::traffic::{TrafficKind, TrafficSource};
use ue_sim::{MobilityScenario, SimUe};

fn backlogged_ue(id: u64) -> SimUe {
    SimUe::new(
        id,
        ChannelProfile::Awgn,
        MobilityScenario::Static,
        TrafficSource::new(
            TrafficKind::FileDownload {
                total_bytes: usize::MAX / 2,
            },
            id,
        ),
        0.0,
        600.0,
        id,
    )
}

fn governor_cfg() -> GovernorConfig {
    GovernorConfig {
        enabled: true,
        budget_us_override: Some(500.0),
        demote_after_slots: 8,
        promote_after_slots: 40,
        promote_margin: 0.8,
        flap_window_slots: 300,
        max_backoff_exp: 3,
        pruned_min_level: AggregationLevel::L1,
        pruned_max_ue_candidates: 2,
        ..GovernorConfig::default()
    }
}

fn load(per_ue_hypothesis_us: u64) -> LoadModel {
    LoadModel {
        base: Duration::from_micros(60),
        per_candidate: Duration::from_micros(10),
        per_ue_hypothesis: Duration::from_micros(per_ue_hypothesis_us),
    }
}

fn main() {
    let cell = CellConfig::srsran_n41();
    let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
    for id in 1..=16u64 {
        gnb.ue_arrives(backlogged_ue(id));
    }
    let mut obs = Observer::new(&cell, 35.0, false, 5);
    let mut scope = NrScope::new(
        ScopeConfig {
            ue_expiry_slots: 100_000,
            governor: governor_cfg(),
            ..ScopeConfig::default()
        },
        Some(cell.pci),
    );
    let slot_s = cell.slot_s();

    // Phase boundaries mirror tests/overload.rs: moderate overload,
    // cost spike (with two arrivals while blind), then a load drop.
    let mut max_ewma_us = 0.0f64;
    let mut spike_max_ewma_us = 0.0f64;
    let mut misses_at_3700 = 0u64;
    let mut recovery_monotone = true;
    let mut prev_recovery_rung = LoadRung::Shedding as usize;
    let mut failures: Vec<String> = Vec::new();

    scope.set_load_model(Some(load(14)));
    for s in 0..3800u64 {
        match s {
            1200 => scope.set_load_model(Some(load(24))),
            1400 => {
                gnb.ue_arrives(backlogged_ue(17));
                gnb.ue_arrives(backlogged_ue(18));
            }
            2000 => scope.set_load_model(Some(load(5))),
            _ => {}
        }
        let out = gnb.step();
        scope.process(&obs.observe(&out, s as f64 * slot_s));
        let ewma = scope.governor().ewma_us();
        max_ewma_us = max_ewma_us.max(ewma);
        if (1200..2000).contains(&s) {
            spike_max_ewma_us = spike_max_ewma_us.max(ewma);
        }
        if s == 3700 {
            misses_at_3700 = scope.stats.deadline_misses;
        }
        if s >= 2000 {
            let rung = scope.load_rung() as usize;
            if rung > prev_recovery_rung {
                recovery_monotone = false;
            }
            prev_recovery_rung = rung;
        }
    }

    let truth_rach: BTreeSet<Rnti> = gnb
        .truth()
        .records()
        .iter()
        .filter(|r| r.rnti_type == RntiType::Tc)
        .map(|r| r.rnti)
        .collect();

    if spike_max_ewma_us >= 1000.0 {
        failures.push(format!(
            "unbounded latency: spike-phase EWMA peaked at {spike_max_ewma_us:.1} us (2x budget)"
        ));
    }
    if scope.stats.deadline_misses != misses_at_3700 {
        failures.push(format!(
            "{} deadline misses in the final 100 slots after recovery",
            scope.stats.deadline_misses - misses_at_3700
        ));
    }
    if !recovery_monotone {
        failures.push("rung recovery was not monotone after the load dropped".into());
    }
    if scope.load_rung() != LoadRung::Full {
        failures.push(format!(
            "ladder finished at {:?}, not Full",
            scope.load_rung()
        ));
    }
    if scope.total_discovered() != truth_rach.len() as u64 {
        failures.push(format!(
            "MSG 4 discovery went dark: {} discovered vs {} RACHs in truth log",
            scope.total_discovered(),
            truth_rach.len()
        ));
    }

    let stats = &scope.stats;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"overload\",\n",
            "  \"slots\": 3800,\n",
            "  \"budget_us\": 500.0,\n",
            "  \"max_ewma_us\": {max_ewma:.1},\n",
            "  \"spike_max_ewma_us\": {spike:.1},\n",
            "  \"final_rung\": \"{rung}\",\n",
            "  \"recovery_monotone\": {mono},\n",
            "  \"deadline_misses\": {misses},\n",
            "  \"rung_demotions\": {dem},\n",
            "  \"rung_promotions\": {pro},\n",
            "  \"pruned_candidates\": {pruned},\n",
            "  \"slots_at_rung\": {{\"full\": {r0}, \"pruned_search\": {r1}, ",
            "\"broadcast_only\": {r2}, \"shedding\": {r3}}},\n",
            "  \"discovered\": {disc},\n",
            "  \"truth_rachs\": {truth},\n",
            "  \"failures\": [{fails}]\n",
            "}}\n"
        ),
        max_ewma = max_ewma_us,
        spike = spike_max_ewma_us,
        rung = scope.load_rung().name(),
        mono = recovery_monotone,
        misses = stats.deadline_misses,
        dem = stats.rung_demotions,
        pro = stats.rung_promotions,
        pruned = stats.pruned_candidates,
        r0 = stats.slots_at_rung[0],
        r1 = stats.slots_at_rung[1],
        r2 = stats.slots_at_rung[2],
        r3 = stats.slots_at_rung[3],
        disc = scope.total_discovered(),
        truth = truth_rach.len(),
        fails = failures
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");

    println!("overload soak (3800 slots, 18 UEs, budget 500 us)");
    println!("  max EWMA           {max_ewma_us:>10.1} us  (spike phase {spike_max_ewma_us:.1})");
    println!(
        "  final rung         {:>10}  (demotions {}, promotions {}, monotone recovery {})",
        scope.load_rung().name(),
        stats.rung_demotions,
        stats.rung_promotions,
        recovery_monotone
    );
    println!(
        "  deadline misses    {:>10}  (pruned candidates {})",
        stats.deadline_misses, stats.pruned_candidates
    );
    println!(
        "  slots at rung      full {} / pruned {} / broadcast {} / shedding {}",
        stats.slots_at_rung[0],
        stats.slots_at_rung[1],
        stats.slots_at_rung[2],
        stats.slots_at_rung[3]
    );
    println!(
        "  discovery          {:>10}  of {} truth RACHs",
        scope.total_discovered(),
        truth_rach.len()
    );
    println!("wrote BENCH_overload.json");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all smoke invariants held");
}
