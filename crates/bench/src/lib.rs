//! Shared harness for the figure-reproduction binaries.
//!
//! Every `fig*` binary builds one or more telemetry sessions with this
//! module, then prints the same series/scalars the corresponding figure in
//! the paper plots. Durations are scaled down from the paper's 10-minute
//! captures by default; set `NRSCOPE_SECONDS` to lengthen runs (the
//! statistics converge quickly because the simulation is deterministic per
//! seed).

use gnb_sim::{CellConfig, Gnb, Population};
use nr_mac::{ProportionalFair, RoundRobin, Scheduler};
use nr_phy::channel::ChannelProfile;
use nr_phy::types::Rnti;
use nrscope::observe::Observer;
use nrscope::{Fidelity, NrScope, ScopeConfig};
use ue_sim::arrival::ArrivalConfig;
use ue_sim::traffic::{TrafficKind, TrafficSource};
use ue_sim::{MobilityScenario, SimUe};

/// Simulated capture duration in seconds (paper: 600 s), overridable via
/// the `NRSCOPE_SECONDS` environment variable.
pub fn capture_seconds(default_s: f64) -> f64 {
    std::env::var("NRSCOPE_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_s)
}

/// Scheduler choice by name.
pub fn scheduler(name: &str) -> Box<dyn Scheduler + Send> {
    match name {
        "pf" => Box::new(ProportionalFair::new()),
        _ => Box::new(RoundRobin::new()),
    }
}

/// A complete telemetry session: cell + sniffer run in lock-step.
pub struct Session {
    /// The cell (with its ground truth).
    pub gnb: Gnb,
    /// The sniffer.
    pub scope: NrScope,
    /// Slots simulated.
    pub slots: u64,
}

/// Configuration of one session run.
pub struct SessionSpec {
    /// Cell preset.
    pub cell: CellConfig,
    /// Number of long-lived UEs attached at start.
    pub n_ues: usize,
    /// Channel profile for those UEs.
    pub profile: ChannelProfile,
    /// Mobility scenario for those UEs.
    pub scenario: MobilityScenario,
    /// Traffic model for those UEs.
    pub traffic: TrafficKind,
    /// Sniffer receive SNR in dB.
    pub sniffer_snr_db: f64,
    /// Capture length in seconds.
    pub seconds: f64,
    /// Observation fidelity.
    pub fidelity: Fidelity,
    /// RNG seed (repetition index).
    pub seed: u64,
}

impl SessionSpec {
    /// A sensible default spec on the given cell.
    pub fn new(cell: CellConfig) -> SessionSpec {
        SessionSpec {
            cell,
            n_ues: 1,
            profile: ChannelProfile::Awgn,
            scenario: MobilityScenario::Static,
            traffic: TrafficKind::FileDownload {
                total_bytes: usize::MAX / 2,
            },
            sniffer_snr_db: 30.0,
            seconds: 30.0,
            fidelity: Fidelity::Message,
            seed: 1,
        }
    }

    /// Run the session to completion.
    pub fn run(self) -> Session {
        let slot_s = self.cell.slot_s();
        let slots = (self.seconds / slot_s).round() as u64;
        let mut gnb = Gnb::new(self.cell.clone(), scheduler("rr"), self.seed);
        for i in 0..self.n_ues {
            // Spread placements a little, deterministic per seed.
            let offset = -(i as f64 % 5.0);
            gnb.ue_arrives(SimUe::new(
                i as u64 + 1,
                self.profile,
                self.scenario,
                TrafficSource::new(self.traffic, self.seed * 1000 + i as u64),
                offset,
                self.seconds,
                self.seed * 7777 + i as u64,
            ));
        }
        let mut observer = Observer::new(
            &self.cell,
            self.sniffer_snr_db,
            self.fidelity == Fidelity::Iq,
            self.seed ^ 0xC0FFEE,
        );
        let mut scope = NrScope::new(
            ScopeConfig {
                fidelity: self.fidelity,
                ..ScopeConfig::default()
            },
            Some(self.cell.pci),
        );
        for s in 0..slots {
            let out = gnb.step();
            let observed = observer.observe(&out, s as f64 * slot_s);
            scope.process(&observed);
        }
        Session { gnb, scope, slots }
    }
}

/// A session driven by a come-and-go population instead of fixed UEs.
pub struct PopulationSession {
    /// The cell.
    pub gnb: Gnb,
    /// The sniffer.
    pub scope: NrScope,
    /// The population driver (holds departed UEs and session stats).
    pub population: Population,
    /// Slots simulated.
    pub slots: u64,
}

/// Run a come-and-go population session (Figs 10/11 machinery).
pub fn run_population(
    cell: CellConfig,
    arrivals: ArrivalConfig,
    seconds: f64,
    seed: u64,
) -> PopulationSession {
    let slot_s = cell.slot_s();
    let slots = (seconds / slot_s).round() as u64;
    let mut gnb = Gnb::new(cell.clone(), scheduler("rr"), seed);
    let mut population = Population::new(arrivals, ChannelProfile::Awgn, seconds, seed);
    let mut observer = Observer::new(&cell, 30.0, false, seed ^ 0xFACE);
    let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
    for s in 0..slots {
        population.step(&mut gnb, s as f64 * slot_s);
        let out = gnb.step();
        let observed = observer.observe(&out, s as f64 * slot_s);
        scope.process(&observed);
    }
    PopulationSession {
        gnb,
        scope,
        population,
        slots,
    }
}

/// First connected RNTI of a session (convenience for single-UE figures).
pub fn first_rnti(session: &Session) -> Option<Rnti> {
    session.gnb.connected_rntis().first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_session_runs_and_tracks() {
        let mut spec = SessionSpec::new(CellConfig::srsran_n41());
        spec.seconds = 2.0;
        let session = spec.run();
        assert_eq!(session.slots, 4000);
        assert!(!session.scope.tracked_rntis().is_empty());
    }

    #[test]
    fn population_session_runs() {
        let cfg = ArrivalConfig {
            arrivals_per_s: 1.0,
            median_active_s: 3.0,
            sigma: 0.8,
        };
        let p = run_population(CellConfig::tmobile_n25(), cfg, 10.0, 2);
        assert!(p.population.total_sessions() > 3);
        assert!(p.scope.stats.slots > 0);
    }
}
