//! Criterion micro-benchmarks for the PHY hot paths the paper's §5.3.2
//! cost model names: the per-slot FFT (`O(n log n)`), polar decoding and
//! CRC checking per DCI candidate (`O(m)` across UEs), TBS computation,
//! and the ablation between SC and SC-list decoding (DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nr_phy::complex::Cf32;
use nr_phy::crc::{dci_attach_crc, dci_check_crc};
use nr_phy::fft::Fft;
use nr_phy::mcs::McsTable;
use nr_phy::modulation::{demodulate_llr, modulate, Modulation};
use nr_phy::polar::PolarCode;
use nr_phy::tbs::{transport_block_size, TbsParams};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for size in [256usize, 1024, 2048] {
        let fft = Fft::new(size);
        let data: Vec<Cf32> = (0..size)
            .map(|i| Cf32::from_angle(i as f32 * 0.1))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut x = data.clone();
                fft.forward(&mut x);
                x
            })
        });
    }
    group.finish();
}

fn bench_polar(c: &mut Criterion) {
    let mut group = c.benchmark_group("polar");
    let payload: Vec<u8> = (0..69).map(|i| (i % 2) as u8).collect();
    for e in [108usize, 216, 432] {
        let code = PolarCode::new(69, e);
        let tx = code.encode(&payload);
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 4.0 } else { -4.0 })
            .collect();
        group.bench_with_input(BenchmarkId::new("sc_decode", e), &e, |b, _| {
            b.iter(|| code.decode_sc(&llrs))
        });
    }
    // Ablation: SC vs list decoding at the common L2 size.
    let code = PolarCode::new(69, 216);
    let tx = code.encode(&payload);
    let llrs: Vec<f32> = tx
        .iter()
        .map(|&b| if b == 0 { 4.0 } else { -4.0 })
        .collect();
    for list in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("scl_decode", list), &list, |b, &l| {
            b.iter(|| code.decode_scl(&llrs, l, |_| true))
        });
    }
    group.finish();
}

fn bench_crc_rnti_check(c: &mut Criterion) {
    // The per-(candidate × UE) cost of blind decoding at message level.
    let payload: Vec<u8> = (0..45).map(|i| (i % 2) as u8).collect();
    let cw = dci_attach_crc(&payload, 0x4601);
    c.bench_function("dci_crc_check", |b| b.iter(|| dci_check_crc(&cw, 0x4601)));
}

fn bench_tbs(c: &mut Criterion) {
    let entry = McsTable::Qam256.entry(27).unwrap();
    c.bench_function("tbs_compute", |b| {
        b.iter(|| {
            transport_block_size(&TbsParams {
                n_prb: 51,
                n_symbols: 12,
                dmrs_per_prb: 12,
                overhead_per_prb: 0,
                mcs: entry,
                layers: 2,
            })
        })
    });
}

fn bench_qpsk_demod(c: &mut Criterion) {
    let bits: Vec<u8> = (0..216).map(|i| (i % 2) as u8).collect();
    let syms = modulate(&bits, Modulation::Qpsk);
    c.bench_function("qpsk_llr_demod_108sym", |b| {
        b.iter(|| demodulate_llr(&syms, Modulation::Qpsk, 0.1))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_polar,
    bench_crc_rnti_check,
    bench_tbs,
    bench_qpsk_demod
);
criterion_main!(benches);
