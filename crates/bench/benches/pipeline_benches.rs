//! Criterion benchmarks for the telemetry pipeline: per-slot processing at
//! message and IQ fidelity with varying UE-hypothesis counts and DCI
//! thread counts — the Criterion counterpart of Fig 12 — plus the
//! sliding-window ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnb_sim::CellConfig;
use nr_phy::dci::DciSizing;
use nr_phy::pdcch::SearchBudget;
use nr_phy::types::Rnti;
use nrscope::decoder::{DecoderContext, Hypotheses};
use nrscope::observe::{ObservedSlot, Observer};
use nrscope::throughput::RateWindow;
use nrscope::worker::{process_slot, JobPriority, SlotJob};
use nrscope_bench::SessionSpec;
use ue_sim::traffic::TrafficKind;

fn capture_slot(iq: bool) -> (ObservedSlot, usize, DecoderContext) {
    let cell = CellConfig::amarisoft_n78();
    let mut spec = SessionSpec::new(cell.clone());
    spec.n_ues = 4;
    spec.seconds = 0.5;
    spec.traffic = TrafficKind::Cbr {
        rate_bps: 4e6,
        packet_bytes: 1200,
    };
    let mut gnb = spec.run().gnb;
    let mut obs = Observer::new(&cell, 28.0, iq, 3);
    loop {
        let out = gnb.step();
        if !out.dcis.is_empty() {
            let ctx = DecoderContext {
                coreset: cell.coreset,
                pci: cell.pci.0,
                common_sizing: DciSizing {
                    bwp_prbs: cell.coreset.n_prb,
                },
                ue_sizing: Some(DciSizing {
                    bwp_prbs: cell.carrier_prbs,
                }),
            };
            let sif = out.slot_in_frame;
            return (obs.observe(&out, 0.0), sif, ctx);
        }
    }
}

fn job(
    observed: &ObservedSlot,
    sif: usize,
    ctx: &DecoderContext,
    ues: usize,
    threads: usize,
) -> SlotJob {
    SlotJob {
        slot: 0,
        slot_in_frame: sif,
        observed: observed.clone(),
        ctx: ctx.clone(),
        hyp: Hypotheses {
            c_rntis: (0..ues).map(|i| Rnti(0x4601 + i as u16)).collect(),
            allow_recovery: true,
            ..Hypotheses::default()
        },
        dci_threads: threads,
        fault: None,
        priority: JobPriority::Data,
        budget: SearchBudget::unlimited(),
    }
}

fn bench_message_slot(c: &mut Criterion) {
    let (observed, sif, ctx) = capture_slot(false);
    let mut group = c.benchmark_group("slot_message");
    for ues in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("1thread", ues), &ues, |b, &u| {
            let j = job(&observed, sif, &ctx, u, 1);
            b.iter(|| process_slot(&j))
        });
    }
    group.finish();
}

fn bench_iq_slot(c: &mut Criterion) {
    let (observed, sif, ctx) = capture_slot(true);
    let mut group = c.benchmark_group("slot_iq");
    group.sample_size(20);
    for (ues, threads) in [(4usize, 1usize), (64, 1), (64, 4)] {
        group.bench_with_input(
            BenchmarkId::new(format!("{threads}thread"), ues),
            &ues,
            |b, &u| {
                let j = job(&observed, sif, &ctx, u, threads);
                b.iter(|| process_slot(&j))
            },
        );
    }
    group.finish();
}

fn bench_rate_window(c: &mut Criterion) {
    // Sliding-window ablation: push cost at different window lengths.
    let mut group = c.benchmark_group("rate_window");
    for window in [500u64, 2000, 8000] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let mut rw = RateWindow::default();
                for s in 0..10_000u64 {
                    rw.push(s, 1000, w);
                }
                rw.bits()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_message_slot,
    bench_iq_slot,
    bench_rate_window
);
criterion_main!(benches);
