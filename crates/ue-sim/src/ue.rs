//! The simulated UE: traffic + channel + the ground-truth delivery log.
//!
//! The delivery log plays the role of `tcpdump` on the paper's phones
//! (§5.2.2): it records exactly when how many bytes reached the UE, so the
//! evaluation can compare NR-Scope's estimates against what the UE really
//! received — including HARQ retransmission and packet aggregation effects.
//!
//! Byte life cycle: application packets enter `dl_buffer`; when the gNB
//! transmits a transport block it calls [`SimUe::dequeue_for_tx`] (bytes
//! move into the HARQ process, leaving the buffer so the scheduler can't
//! double-schedule them); when the block is finally ACKed the gNB calls
//! [`SimUe::record_delivery`], which appends the tcpdump-equivalent record.

use crate::mobility::{MobilityScenario, MobilityTrace};
use crate::traffic::{Packet, TrafficSource};
use nr_phy::channel::{ChannelProfile, UeChannel};
use nr_phy::mcs::snr_db_to_cqi;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One ground-truth delivery record (the tcpdump equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Slot in which the transport block was (finally) decoded.
    pub slot: u64,
    /// Bytes delivered.
    pub bytes: usize,
    /// Application packets completed in this block.
    pub packets: usize,
    /// Whether HARQ retransmission preceded delivery.
    pub was_retransmitted: bool,
}

/// A simulated UE attached (or attaching) to the cell.
#[derive(Debug, Clone)]
pub struct SimUe {
    /// Stable simulation-side identity (not the RNTI).
    pub id: u64,
    /// Radio channel (profile + fading + placement offset).
    pub channel: UeChannel,
    /// Mobility overlay on the channel.
    pub mobility: MobilityTrace,
    /// Application traffic source.
    pub traffic: TrafficSource,
    /// Bytes queued at the gNB for this UE (downlink buffer, excluding
    /// bytes already in flight in a HARQ process).
    pub dl_buffer: usize,
    /// Pending packet boundaries inside the buffer (for aggregation stats).
    pending_packets: VecDeque<Packet>,
    /// Uplink demand in bytes (drives UL grants).
    pub ul_buffer: usize,
    /// Ground-truth deliveries.
    pub deliveries: Vec<Delivery>,
    /// Exponentially averaged served rate (bits/s) for PF scheduling.
    pub avg_rate: f64,
}

impl SimUe {
    /// Create a UE with the given channel profile, mobility scenario and
    /// traffic model.
    pub fn new(
        id: u64,
        profile: ChannelProfile,
        scenario: MobilityScenario,
        traffic: TrafficSource,
        placement_offset_db: f64,
        horizon_s: f64,
        seed: u64,
    ) -> SimUe {
        SimUe {
            id,
            channel: UeChannel::new(profile, placement_offset_db, seed),
            mobility: MobilityTrace::new(scenario, horizon_s, seed.wrapping_mul(31)),
            traffic,
            dl_buffer: 0,
            pending_packets: VecDeque::new(),
            ul_buffer: 0,
            deliveries: Vec::new(),
            avg_rate: 1.0,
        }
    }

    /// Effective SNR at time `t`: channel plus mobility offset.
    pub fn snr_db_at(&self, t: f64) -> f64 {
        self.channel.snr_db_at(t) + self.mobility.offset_db_at(t)
    }

    /// The CQI the UE would report at time `t`.
    pub fn cqi_at(&self, t: f64) -> u8 {
        snr_db_to_cqi(self.snr_db_at(t))
    }

    /// Advance traffic generation by one slot of `dt` seconds: new packets
    /// enter the downlink buffer. A small uplink echo (ACK traffic, ~3% of
    /// DL) accrues too, so UL grants exist like in the paper's cells.
    pub fn generate_traffic(&mut self, dt: f64) {
        let pkts = self.traffic.tick(dt);
        for p in &pkts {
            self.dl_buffer += p.bytes;
            self.ul_buffer += (p.bytes / 30).max(2);
        }
        self.pending_packets.extend(pkts);
    }

    /// Move up to `bytes` from the buffer into a HARQ process at
    /// transmission time. Returns `(actual_bytes, whole_packets_covered)`.
    pub fn dequeue_for_tx(&mut self, bytes: usize) -> (usize, usize) {
        let bytes = bytes.min(self.dl_buffer);
        self.dl_buffer -= bytes;
        let mut covered = 0usize;
        let mut packets = 0usize;
        while let Some(p) = self.pending_packets.front() {
            if covered + p.bytes > bytes {
                break;
            }
            covered += p.bytes;
            packets += 1;
            self.pending_packets.pop_front();
        }
        // Partial head packet: shrink it (rest goes in a later block).
        if covered < bytes {
            if let Some(p) = self.pending_packets.front_mut() {
                p.bytes -= bytes - covered;
            }
        }
        (bytes, packets)
    }

    /// Record the final (ACKed) delivery of a transport block and update
    /// the PF average rate.
    pub fn record_delivery(
        &mut self,
        slot: u64,
        bytes: usize,
        packets: usize,
        was_retransmitted: bool,
        slot_s: f64,
    ) {
        self.deliveries.push(Delivery {
            slot,
            bytes,
            packets,
            was_retransmitted,
        });
        let inst = bytes as f64 * 8.0 / slot_s;
        self.avg_rate = 0.99 * self.avg_rate + 0.01 * inst;
    }

    /// Consume `bytes` of uplink demand (the gNB granted a PUSCH).
    pub fn consume_uplink(&mut self, bytes: usize) {
        self.ul_buffer = self.ul_buffer.saturating_sub(bytes);
    }

    /// Total ground-truth bytes delivered in a slot range — the quantity a
    /// tcpdump-based bitrate computation would produce.
    pub fn delivered_bytes_in(&self, slots: std::ops::Range<u64>) -> usize {
        self.deliveries
            .iter()
            .filter(|d| slots.contains(&d.slot))
            .map(|d| d.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficKind;

    fn test_ue() -> SimUe {
        SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 1e6,
                    packet_bytes: 1000,
                },
                7,
            ),
            0.0,
            60.0,
            7,
        )
    }

    #[test]
    fn traffic_fills_buffer() {
        let mut ue = test_ue();
        for _ in 0..2000 {
            ue.generate_traffic(0.0005);
        }
        // 1 Mbit/s over 1 s = 125 kB.
        assert!((ue.dl_buffer as f64 - 125_000.0).abs() < 5_000.0);
        assert!(ue.ul_buffer > 0, "uplink echo demand exists");
    }

    #[test]
    fn dequeue_moves_bytes_out_of_buffer() {
        let mut ue = test_ue();
        for _ in 0..200 {
            ue.generate_traffic(0.0005);
        }
        let before = ue.dl_buffer;
        let (bytes, packets) = ue.dequeue_for_tx(2500);
        assert_eq!(bytes, 2500);
        assert_eq!(ue.dl_buffer, before - 2500);
        // 2.5 kB at 1 kB packets → 2 whole packets.
        assert_eq!(packets, 2);
        // Nothing delivered yet.
        assert!(ue.deliveries.is_empty());
    }

    #[test]
    fn dequeue_caps_at_buffer() {
        let mut ue = test_ue();
        ue.generate_traffic(0.0005);
        let buffered = ue.dl_buffer;
        let (bytes, _) = ue.dequeue_for_tx(buffered + 10_000);
        assert_eq!(bytes, buffered);
        assert_eq!(ue.dl_buffer, 0);
    }

    #[test]
    fn partial_packet_is_split_across_blocks() {
        let mut ue = test_ue();
        for _ in 0..200 {
            ue.generate_traffic(0.0005);
        }
        // Take 1.5 packets.
        let (_, p1) = ue.dequeue_for_tx(1500);
        assert_eq!(p1, 1);
        // The next kilobyte completes the split packet.
        let (_, p2) = ue.dequeue_for_tx(500);
        assert_eq!(p2, 1, "remainder of the split packet completes");
    }

    #[test]
    fn delivered_bytes_window_query() {
        let mut ue = test_ue();
        for _ in 0..2000 {
            ue.generate_traffic(0.0005);
        }
        ue.record_delivery(10, 1000, 1, false, 0.0005);
        ue.record_delivery(20, 2000, 2, true, 0.0005);
        ue.record_delivery(30, 4000, 3, false, 0.0005);
        assert_eq!(ue.delivered_bytes_in(0..25), 3000);
        assert_eq!(ue.delivered_bytes_in(20..31), 6000);
    }

    #[test]
    fn cqi_tracks_snr() {
        let good = SimUe::new(
            1,
            ChannelProfile::Normal,
            MobilityScenario::Static,
            TrafficSource::new(TrafficKind::FileDownload { total_bytes: 1 }, 1),
            0.0,
            10.0,
            1,
        );
        let bad = SimUe::new(
            2,
            ChannelProfile::Urban,
            MobilityScenario::Static,
            TrafficSource::new(TrafficKind::FileDownload { total_bytes: 1 }, 2),
            -5.0,
            10.0,
            2,
        );
        assert!(good.cqi_at(1.0) > bad.cqi_at(1.0));
    }

    #[test]
    fn pf_average_rises_with_service() {
        let mut ue = test_ue();
        let before = ue.avg_rate;
        for s in 0..50 {
            ue.record_delivery(s, 1000, 1, false, 0.0005);
        }
        assert!(ue.avg_rate > before);
    }
}
