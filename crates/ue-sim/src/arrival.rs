//! The "come-and-go" UE population process (paper §5.3.1, Figs 10–11).
//!
//! The paper measures 400–600 distinct UEs per 10 minutes in T-Mobile
//! cell 1 (100–200 in cell 2), with 90% of UEs staying under 35 seconds —
//! "an unique come-and-go cellular network pattern". We model arrivals as
//! Poisson and active times as log-normal fitted to those observations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Population process parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Mean UE arrivals per second.
    pub arrivals_per_s: f64,
    /// Median active time in seconds (log-normal median `e^µ`).
    pub median_active_s: f64,
    /// Log-normal shape σ. With the default median 8 s, σ = 1.15 puts the
    /// 90th percentile at ≈ 35 s — the paper's headline number.
    pub sigma: f64,
}

impl ArrivalConfig {
    /// Fit for T-Mobile cell 1 (≈500 UEs / 10 min → 0.83 arrivals/s).
    pub fn tmobile_cell1() -> ArrivalConfig {
        ArrivalConfig {
            arrivals_per_s: 0.83,
            median_active_s: 8.0,
            sigma: 1.15,
        }
    }

    /// Fit for T-Mobile cell 2 (≈150 UEs / 10 min → 0.25 arrivals/s).
    pub fn tmobile_cell2() -> ArrivalConfig {
        ArrivalConfig {
            arrivals_per_s: 0.25,
            median_active_s: 8.0,
            sigma: 1.15,
        }
    }
}

/// One generated UE session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Arrival time in seconds from trace start.
    pub arrival_s: f64,
    /// Active duration in seconds.
    pub duration_s: f64,
}

impl Session {
    /// Departure time.
    pub fn departure_s(&self) -> f64 {
        self.arrival_s + self.duration_s
    }

    /// Whether the session is active at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.arrival_s && t < self.departure_s()
    }
}

/// Poisson-arrival, log-normal-holding-time session generator.
#[derive(Debug, Clone)]
pub struct ComeAndGo {
    cfg: ArrivalConfig,
    rng: StdRng,
}

impl ComeAndGo {
    /// New generator.
    pub fn new(cfg: ArrivalConfig, seed: u64) -> ComeAndGo {
        ComeAndGo {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Standard normal via Box–Muller.
    fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    }

    /// Draw one active duration (log-normal).
    pub fn draw_duration(&mut self) -> f64 {
        let mu = self.cfg.median_active_s.ln();
        (mu + self.cfg.sigma * self.std_normal()).exp()
    }

    /// Generate all sessions arriving within `[0, horizon_s)`.
    pub fn generate(&mut self, horizon_s: f64) -> Vec<Session> {
        let mut sessions = Vec::new();
        let mut t = 0.0;
        loop {
            // Exponential inter-arrival.
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / self.cfg.arrivals_per_s;
            if t >= horizon_s {
                break;
            }
            let duration_s = self.draw_duration();
            sessions.push(Session {
                arrival_s: t,
                duration_s,
            });
        }
        sessions
    }
}

/// Count distinct sessions active in each window of `window_s` over
/// `[0, horizon_s)` — the statistic behind Fig 11 ("number of active UEs
/// per second or minute").
pub fn active_per_window(sessions: &[Session], horizon_s: f64, window_s: f64) -> Vec<usize> {
    let n = (horizon_s / window_s).ceil() as usize;
    (0..n)
        .map(|w| {
            let lo = w as f64 * window_s;
            let hi = lo + window_s;
            sessions
                .iter()
                .filter(|s| s.arrival_s < hi && s.departure_s() > lo)
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_count_matches_paper_scale() {
        // Cell 1: 400–600 distinct UEs in 10 minutes.
        let mut g = ComeAndGo::new(ArrivalConfig::tmobile_cell1(), 1);
        let sessions = g.generate(600.0);
        assert!(
            (380..=650).contains(&sessions.len()),
            "{} sessions",
            sessions.len()
        );
    }

    #[test]
    fn ninety_percent_under_35s() {
        // The paper's headline: 90% of UEs stay < 35 s.
        let mut g = ComeAndGo::new(ArrivalConfig::tmobile_cell1(), 2);
        let mut durations: Vec<f64> = (0..20_000).map(|_| g.draw_duration()).collect();
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p90 = durations[(durations.len() as f64 * 0.9) as usize];
        assert!((25.0..=45.0).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn tail_reaches_hundreds_of_seconds() {
        // Fig 10's x-axis runs to 400 s: the tail must exist but be rare.
        let mut g = ComeAndGo::new(ArrivalConfig::tmobile_cell1(), 3);
        let durations: Vec<f64> = (0..50_000).map(|_| g.draw_duration()).collect();
        let long = durations.iter().filter(|&&d| d > 300.0).count();
        assert!(long > 0, "some sessions exceed 300 s");
        assert!(
            (long as f64) < 0.01 * durations.len() as f64,
            "but under 1%"
        );
    }

    #[test]
    fn arrivals_are_ordered_and_within_horizon() {
        let mut g = ComeAndGo::new(ArrivalConfig::tmobile_cell2(), 4);
        let sessions = g.generate(600.0);
        assert!(sessions
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(sessions.iter().all(|s| s.arrival_s < 600.0));
        // Cell 2 scale: 100–200 UEs.
        assert!((100..=220).contains(&sessions.len()), "{}", sessions.len());
    }

    #[test]
    fn active_window_counts_are_sane() {
        let mut g = ComeAndGo::new(ArrivalConfig::tmobile_cell1(), 5);
        let sessions = g.generate(600.0);
        let per_sec = active_per_window(&sessions, 600.0, 1.0);
        let per_min = active_per_window(&sessions, 600.0, 60.0);
        assert_eq!(per_sec.len(), 600);
        assert_eq!(per_min.len(), 10);
        // A minute window can only see at least as many as any of its
        // seconds.
        let max_sec = *per_sec.iter().max().unwrap();
        let max_min = *per_min.iter().max().unwrap();
        assert!(max_min >= max_sec);
        // Fig 11: under ~60 distinct UEs per minute (it's a statistical
        // bound — allow headroom).
        assert!(max_min < 90, "max per minute {max_min}");
    }

    #[test]
    fn session_active_at_boundaries() {
        let s = Session {
            arrival_s: 10.0,
            duration_s: 5.0,
        };
        assert!(s.active_at(10.0));
        assert!(s.active_at(14.999));
        assert!(!s.active_at(15.0));
        assert!(!s.active_at(9.999));
    }
}
