//! # ue-sim — the UE population substrate
//!
//! Stands in for the paper's Motorola phones and the Amarisoft UE emulator:
//!
//! * [`traffic`] — downlink/uplink traffic models (file download, video
//!   streaming, CBR, Poisson packet arrivals) with per-packet boundaries so
//!   the packet-aggregation analysis (paper Fig 16d) has real packets,
//! * [`arrival`] — the "come-and-go" population process behind Figs 10/11
//!   (Poisson arrivals, heavy-tailed active times, 90% < 35 s),
//! * [`mobility`] — static / blocked / moving placement scenarios (Fig 9c,
//!   Fig 16a–c),
//! * [`ue`] — the simulated UE tying traffic, channel and ground-truth
//!   delivery log (the tcpdump equivalent) together.

pub mod arrival;
pub mod mobility;
pub mod traffic;
pub mod ue;

pub use arrival::{ArrivalConfig, ComeAndGo};
pub use mobility::MobilityScenario;
pub use traffic::{Packet, TrafficKind, TrafficSource};
pub use ue::SimUe;
