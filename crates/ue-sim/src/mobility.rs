//! UE placement/mobility scenarios: static, blocked, moving (paper Fig 9c,
//! Fig 16a–c) plus a floor-position model for the coverage experiment
//! (Fig 13).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three UE usage scenarios the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobilityScenario {
    /// Stationary UE with a clear path.
    Static,
    /// Stationary UE with intermittent body/furniture blockage episodes.
    Blocked,
    /// Walking UE: slow SNR random walk plus extra Doppler.
    Moving,
}

impl MobilityScenario {
    /// All scenarios in the paper's order.
    pub fn all() -> [MobilityScenario; 3] {
        [
            MobilityScenario::Static,
            MobilityScenario::Blocked,
            MobilityScenario::Moving,
        ]
    }

    /// Legend name.
    pub fn name(self) -> &'static str {
        match self {
            MobilityScenario::Static => "Static",
            MobilityScenario::Blocked => "Blocked",
            MobilityScenario::Moving => "Moving",
        }
    }

    /// Doppler the scenario adds to the fading process (Hz).
    pub fn doppler_hz(self) -> f64 {
        match self {
            MobilityScenario::Static => 1.0,
            MobilityScenario::Blocked => 1.0,
            MobilityScenario::Moving => 10.0,
        }
    }
}

impl std::fmt::Display for MobilityScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Time-varying SNR offset (dB) produced by a mobility scenario.
#[derive(Debug, Clone)]
pub struct MobilityTrace {
    scenario: MobilityScenario,
    /// Blockage episode boundaries: (start_s, end_s, depth_db).
    episodes: Vec<(f64, f64, f64)>,
    /// Random-walk samples at 10 Hz for the moving case.
    walk: Vec<f64>,
}

/// Walk sampling rate (samples per second).
const WALK_HZ: f64 = 10.0;

impl MobilityTrace {
    /// Build a trace covering `horizon_s` seconds.
    pub fn new(scenario: MobilityScenario, horizon_s: f64, seed: u64) -> MobilityTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut episodes = Vec::new();
        let mut walk = Vec::new();
        match scenario {
            MobilityScenario::Static => {}
            MobilityScenario::Blocked => {
                // Blockage episodes: every ~8 s on average, 1–4 s long,
                // 6–15 dB deep (hand/body blockage magnitudes).
                let mut t = 0.0;
                while t < horizon_s {
                    t += rng.gen_range(4.0..12.0);
                    let dur = rng.gen_range(1.0..4.0);
                    let depth = rng.gen_range(6.0..15.0);
                    episodes.push((t, t + dur, depth));
                    t += dur;
                }
            }
            MobilityScenario::Moving => {
                // Bounded random walk, ±6 dB around the mean, step σ 0.3 dB
                // per 100 ms.
                let n = (horizon_s * WALK_HZ).ceil() as usize + 1;
                let mut x = 0.0f64;
                for _ in 0..n {
                    x += rng.gen_range(-0.3..0.3);
                    x = x.clamp(-6.0, 6.0);
                    walk.push(x);
                }
            }
        }
        MobilityTrace {
            scenario,
            episodes,
            walk,
        }
    }

    /// Scenario of this trace.
    pub fn scenario(&self) -> MobilityScenario {
        self.scenario
    }

    /// SNR offset at time `t` (dB, ≤ 0 for blockage, ±6 for movement).
    pub fn offset_db_at(&self, t: f64) -> f64 {
        match self.scenario {
            MobilityScenario::Static => 0.0,
            MobilityScenario::Blocked => self
                .episodes
                .iter()
                .find(|(s, e, _)| t >= *s && t < *e)
                .map(|(_, _, d)| -d)
                .unwrap_or(0.0),
            MobilityScenario::Moving => {
                let idx = ((t * WALK_HZ) as usize).min(self.walk.len().saturating_sub(1));
                self.walk.get(idx).copied().unwrap_or(0.0)
            }
        }
    }
}

/// A floor position for the coverage experiment (paper Fig 13): distance
/// from the gNB plus wall obstructions determine the sniffer's receive SNR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloorPosition {
    /// Metres from the gNB.
    pub distance_m: f64,
    /// Intervening walls.
    pub walls: u32,
}

impl FloorPosition {
    /// Receive SNR (dB) at this position for a small-cell transmit power:
    /// log-distance path loss (n = 2.2 indoors LoS) + 4 dB per wall,
    /// referenced to ~34 dB SNR at 1 m.
    pub fn snr_db(&self) -> f64 {
        let d = self.distance_m.max(0.5);
        34.0 - 22.0 * d.log10() - 4.0 * self.walls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_offset_is_zero() {
        let t = MobilityTrace::new(MobilityScenario::Static, 60.0, 1);
        for i in 0..600 {
            assert_eq!(t.offset_db_at(i as f64 * 0.1), 0.0);
        }
    }

    #[test]
    fn blocked_has_deep_episodes_and_clear_gaps() {
        let t = MobilityTrace::new(MobilityScenario::Blocked, 120.0, 2);
        let offsets: Vec<f64> = (0..1200).map(|i| t.offset_db_at(i as f64 * 0.1)).collect();
        let blocked = offsets.iter().filter(|&&o| o < -5.0).count();
        let clear = offsets.iter().filter(|&&o| o == 0.0).count();
        assert!(blocked > 50, "blockage occurs ({blocked})");
        assert!(clear > 500, "mostly clear ({clear})");
    }

    #[test]
    fn moving_walk_is_bounded_and_varies() {
        let t = MobilityTrace::new(MobilityScenario::Moving, 60.0, 3);
        let offsets: Vec<f64> = (0..600).map(|i| t.offset_db_at(i as f64 * 0.1)).collect();
        assert!(offsets.iter().all(|o| o.abs() <= 6.0));
        let range = offsets.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - offsets.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(range > 1.0, "walk moves ({range} dB)");
    }

    #[test]
    fn walk_is_piecewise_continuous() {
        let t = MobilityTrace::new(MobilityScenario::Moving, 10.0, 4);
        for i in 0..99 {
            let a = t.offset_db_at(i as f64 * 0.1);
            let b = t.offset_db_at((i + 1) as f64 * 0.1);
            assert!((a - b).abs() <= 0.3 + 1e-9, "step too large");
        }
    }

    #[test]
    fn floor_positions_order_by_distance_and_walls() {
        let near = FloorPosition {
            distance_m: 1.0,
            walls: 0,
        };
        let far = FloorPosition {
            distance_m: 10.0,
            walls: 0,
        };
        let far_walled = FloorPosition {
            distance_m: 10.0,
            walls: 2,
        };
        assert!(near.snr_db() > far.snr_db());
        assert!(far.snr_db() > far_walled.snr_db());
        // 1 m no walls ≈ 34 dB; 10 m + 2 walls ≈ 4 dB.
        assert!((near.snr_db() - 34.0).abs() < 1.0);
        assert!(far_walled.snr_db() < 10.0);
    }
}
