//! Application traffic models feeding the downlink (and uplink) buffers.
//!
//! The paper's UEs "use the data to watch videos or download files"
//! (§5.2.2). Each model emits discrete packets with sizes and arrival
//! times; packet boundaries matter because Fig 16d measures how many
//! packets the RAN aggregates into one TTI.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One application packet arriving at the gNB for a UE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Which application the UE is running.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficKind {
    /// Bulk file download: the sender keeps the pipe full (backlogged).
    FileDownload {
        /// Total file size in bytes (`usize::MAX`-ish for endless).
        total_bytes: usize,
    },
    /// Chunked adaptive video: a burst of segment data every chunk period.
    Video {
        /// Mean video bitrate, bits/s.
        bitrate_bps: f64,
        /// Segment duration in seconds (chunk cadence).
        chunk_s: f64,
    },
    /// Constant bit rate (e.g. voice/gaming): evenly spaced packets.
    Cbr {
        /// Rate in bits/s.
        rate_bps: f64,
        /// Packet size in bytes.
        packet_bytes: usize,
    },
    /// Poisson packet arrivals (background/web-ish traffic).
    Poisson {
        /// Mean packet rate, packets/s.
        pkts_per_s: f64,
        /// Mean packet size, bytes (exponential-ish sizes).
        mean_bytes: usize,
    },
}

/// A stateful traffic source producing packets per tick.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    kind: TrafficKind,
    rng: StdRng,
    /// Bytes already generated (for finite downloads).
    generated: usize,
    /// Time carry-over for periodic emission.
    accum_s: f64,
}

/// MTU-ish packetisation used to split bursts into packets.
const PACKET_BYTES: usize = 1400;

impl TrafficSource {
    /// New source for a model; `seed` decorrelates UEs.
    pub fn new(kind: TrafficKind, seed: u64) -> TrafficSource {
        TrafficSource {
            kind,
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
            accum_s: 0.0,
        }
    }

    /// The model this source runs.
    pub fn kind(&self) -> TrafficKind {
        self.kind
    }

    /// Whether the source has produced all it ever will.
    pub fn finished(&self) -> bool {
        match self.kind {
            TrafficKind::FileDownload { total_bytes } => self.generated >= total_bytes,
            _ => false,
        }
    }

    /// Advance by `dt` seconds, returning the packets that arrived.
    pub fn tick(&mut self, dt: f64) -> Vec<Packet> {
        match self.kind {
            TrafficKind::FileDownload { total_bytes } => {
                // Backlogged source: models a sender that always has ~a
                // congestion window outstanding. Emit up to 64 kB per tick
                // until the file is done (the RAN, not the source, is the
                // bottleneck).
                let burst = 65_536.min(total_bytes - self.generated);
                self.generated += burst;
                packetise(burst)
            }
            TrafficKind::Video {
                bitrate_bps,
                chunk_s,
            } => {
                self.accum_s += dt;
                if self.accum_s >= chunk_s {
                    self.accum_s -= chunk_s;
                    // One segment: bitrate × chunk duration, ±20% encoder
                    // variance.
                    let nominal = bitrate_bps * chunk_s / 8.0;
                    let scale = self.rng.gen_range(0.8..1.2);
                    let bytes = (nominal * scale) as usize;
                    self.generated += bytes;
                    packetise(bytes)
                } else {
                    Vec::new()
                }
            }
            TrafficKind::Cbr {
                rate_bps,
                packet_bytes,
            } => {
                self.accum_s += dt;
                let interval = packet_bytes as f64 * 8.0 / rate_bps;
                let mut out = Vec::new();
                while self.accum_s >= interval {
                    self.accum_s -= interval;
                    out.push(Packet {
                        bytes: packet_bytes,
                    });
                    self.generated += packet_bytes;
                }
                out
            }
            TrafficKind::Poisson {
                pkts_per_s,
                mean_bytes,
            } => {
                // Number of arrivals in dt ~ Poisson(λ·dt); λ·dt is small
                // per slot so Bernoulli splitting is adequate and cheap.
                let mut out = Vec::new();
                let mut p = pkts_per_s * dt;
                while p > 0.0 {
                    let draw: f64 = self.rng.gen();
                    if draw < p.min(1.0) {
                        let size = ((mean_bytes as f64) * (-(1.0 - self.rng.gen::<f64>()).ln()))
                            .clamp(40.0, 9000.0) as usize;
                        self.generated += size;
                        out.push(Packet { bytes: size });
                    }
                    p -= 1.0;
                }
                out
            }
        }
    }
}

/// Split a burst into MTU-sized packets (last one short).
fn packetise(bytes: usize) -> Vec<Packet> {
    let mut out = Vec::with_capacity(bytes / PACKET_BYTES + 1);
    let mut left = bytes;
    while left > 0 {
        let take = left.min(PACKET_BYTES);
        out.push(Packet { bytes: take });
        left -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_download_finishes_exactly() {
        let mut s = TrafficSource::new(
            TrafficKind::FileDownload {
                total_bytes: 150_000,
            },
            1,
        );
        let mut total = 0usize;
        let mut ticks = 0;
        while !s.finished() {
            total += s.tick(0.0005).iter().map(|p| p.bytes).sum::<usize>();
            ticks += 1;
            assert!(ticks < 100, "download should complete quickly");
        }
        assert_eq!(total, 150_000);
        assert!(s.tick(0.0005).is_empty(), "no data after completion");
    }

    #[test]
    fn cbr_rate_is_accurate() {
        let mut s = TrafficSource::new(
            TrafficKind::Cbr {
                rate_bps: 1_000_000.0,
                packet_bytes: 1250,
            },
            2,
        );
        let mut bytes = 0usize;
        for _ in 0..2000 {
            bytes += s.tick(0.0005).iter().map(|p| p.bytes).sum::<usize>();
        }
        // 1 Mbit/s over 1 s = 125 000 bytes.
        assert!((bytes as f64 - 125_000.0).abs() < 2500.0, "{bytes}");
    }

    #[test]
    fn video_emits_chunks_at_cadence() {
        let mut s = TrafficSource::new(
            TrafficKind::Video {
                bitrate_bps: 4_000_000.0,
                chunk_s: 1.0,
            },
            3,
        );
        let mut chunk_ticks = 0;
        // 3 s of slots plus a couple of ticks of float-accumulation slack.
        for _ in 0..6010 {
            if !s.tick(0.0005).is_empty() {
                chunk_ticks += 1;
            }
        }
        assert_eq!(chunk_ticks, 3, "one chunk per second");
    }

    #[test]
    fn poisson_rate_is_approximately_right() {
        let mut s = TrafficSource::new(
            TrafficKind::Poisson {
                pkts_per_s: 200.0,
                mean_bytes: 500,
            },
            4,
        );
        let mut pkts = 0usize;
        for _ in 0..20_000 {
            pkts += s.tick(0.0005).len();
        }
        // 10 s at 200 pkt/s → ~2000.
        assert!((pkts as f64 - 2000.0).abs() < 200.0, "{pkts}");
    }

    #[test]
    fn packets_respect_mtu() {
        let pkts = packetise(10_000);
        assert!(pkts.iter().all(|p| p.bytes <= PACKET_BYTES));
        assert_eq!(pkts.iter().map(|p| p.bytes).sum::<usize>(), 10_000);
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        let run = |seed| {
            let mut s = TrafficSource::new(
                TrafficKind::Poisson {
                    pkts_per_s: 100.0,
                    mean_bytes: 700,
                },
                seed,
            );
            (0..1000).flat_map(|_| s.tick(0.0005)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
