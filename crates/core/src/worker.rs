//! The Fig 4 processing pipeline: scheduler → worker pool → result queue.
//!
//! "The scheduler copies the data and its state (known UE list, cell's
//! configurations) to an idle worker. For each slot data, the worker
//! spawns SIBs thread, RACH thread and DCI threads for SIBs decoding, UE
//! discovery and DCIs extraction, and then put the slot result into the
//! result queue." — paper §4.
//!
//! The DCI workload shards the known-UE list across `dci_threads`
//! (paper §4: "UE list is sharded among threads, and the final results are
//! gathered from the threads"); the common search space (SIB + RACH
//! hypotheses) runs as its own shard, standing in for the SIBs/RACH
//! threads.

use crate::decoder::{
    decode_candidates_budgeted, decode_message_slot_budgeted, extract_all_candidates, DecodeWork,
    DecodedDci, DecoderContext, ExtractedCandidate, Hypotheses,
};
use crate::metrics::{Counter, Gauge, Metrics, Stage};
use crate::observe::ObservedSlot;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};
use nr_phy::pdcch::SearchBudget;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A scripted fault a test can plant inside one job (chaos testing of the
/// pool's supervision and backpressure paths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// `process_slot` panics on this job.
    Panic,
    /// `process_slot` sleeps this long first (a pathologically slow slot,
    /// used to force queue backpressure deterministically).
    Delay(Duration),
}

/// Priority class for queued slot jobs. The pool keeps one bounded queue
/// per class and workers drain broadcast-first, so SIB/RACH-critical slots
/// are never shed behind per-UE telemetry — the queue-level half of the
/// governor's never-go-dark invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobPriority {
    /// Carries broadcast/RACH-critical decoding (SIB1, RAR, MSG 4):
    /// never shed under backpressure.
    Broadcast,
    /// Ordinary per-UE telemetry slot: sheddable under `ShedOldest`.
    #[default]
    Data,
}

/// One slot of work, self-contained (the "copy of data and state").
#[derive(Debug, Clone)]
pub struct SlotJob {
    /// Sniffer slot counter.
    pub slot: u64,
    /// Slot-in-frame for candidate hashing and OFDM timing.
    pub slot_in_frame: usize,
    /// The captured slot.
    pub observed: ObservedSlot,
    /// Decoder configuration snapshot.
    pub ctx: DecoderContext,
    /// RNTI hypothesis sets snapshot.
    pub hyp: Hypotheses,
    /// How many DCI threads to shard across.
    pub dci_threads: usize,
    /// Queue-priority class (broadcast jobs are never shed).
    pub priority: JobPriority,
    /// PDCCH search budget from the overload governor (gates only the
    /// UE-specific pass; unlimited by default).
    pub budget: SearchBudget,
    /// Scripted fault (tests only; `None` in production paths).
    pub fault: Option<InjectedFault>,
}

/// A processed slot.
#[derive(Debug)]
pub struct SlotResult {
    /// Sniffer slot counter.
    pub slot: u64,
    /// All DCIs decoded in the slot.
    pub decoded: Vec<DecodedDci>,
    /// Wall-clock processing time (the Fig 12 metric).
    pub processing: Duration,
    /// Offered-work counts (for the governor's load model).
    pub work: DecodeWork,
    /// The IQ buffer matched no known carrier layout (truncated capture
    /// or a reconfigured cell) — nothing could be demodulated.
    pub layout_mismatch: bool,
}

/// Process one slot, sharding the known-UE list across `dci_threads`
/// OS threads (scoped). Returns the decoded DCIs and the processing time.
pub fn process_slot(job: &SlotJob) -> SlotResult {
    process_slot_metered(job, None)
}

/// Spawn a named auxiliary thread outside the decode pool. Housekeeping
/// work (e.g. the persist checkpoint writer) goes through here rather
/// than [`WorkerPool`]: it must never occupy a decode worker slot, and a
/// panic in it must not trip the pool's quarantine machinery.
pub fn spawn_background<F>(name: &str, f: F) -> JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("nrscope-{name}"))
        .spawn(f)
        .expect("spawn background thread")
}

/// [`process_slot`] with pipeline instrumentation: OFDM demod, PDCCH
/// candidate extraction, per-candidate DCI decoding, and the whole-slot
/// envelope all record into `metrics` (atomic adds commute, so shards can
/// share the registry).
pub fn process_slot_metered(job: &SlotJob, metrics: Option<&Arc<Metrics>>) -> SlotResult {
    let start = Instant::now();
    match job.fault {
        Some(InjectedFault::Panic) => panic!("injected fault in slot {}", job.slot),
        Some(InjectedFault::Delay(d)) => std::thread::sleep(d),
        None => {}
    }
    let threads = job.dci_threads.max(1);
    // Shard the C-RNTI list; the common hypotheses ride with shard 0
    // (the SIBs/RACH thread role).
    let shards: Vec<Hypotheses> = (0..threads)
        .map(|i| {
            let c_rntis: Vec<_> = job
                .hyp
                .c_rntis
                .iter()
                .enumerate()
                .filter(|(j, _)| j % threads == i)
                .map(|(_, r)| *r)
                .collect();
            if i == 0 {
                Hypotheses {
                    ra_rntis: job.hyp.ra_rntis.clone(),
                    tc_rntis: job.hyp.tc_rntis.clone(),
                    c_rntis,
                    allow_recovery: job.hyp.allow_recovery,
                    skip_common: false,
                }
            } else {
                Hypotheses {
                    ra_rntis: Vec::new(),
                    tc_rntis: Vec::new(),
                    c_rntis,
                    allow_recovery: false,
                    skip_common: true,
                }
            }
        })
        .collect();
    // Signal processing (the O(n log n) term of §5.3.2 — OFDM demod plus
    // candidate extraction/equalisation) runs once per slot; only the
    // per-UE DCI hypothesis testing (the O(m) term) is sharded across
    // threads — exactly the Fig 4 division of labour.
    let candidates: Option<Vec<ExtractedCandidate>> = match &job.observed {
        ObservedSlot::Iq { samples, .. } => {
            match ofdm_for(&job.ctx, samples.len(), job.slot_in_frame) {
                Some(o) => {
                    let grid = {
                        let _t = Metrics::maybe_start(metrics, Stage::Demod);
                        o.demodulate(samples, job.slot_in_frame)
                    };
                    let _t = Metrics::maybe_start(metrics, Stage::PdcchSearch);
                    Some(extract_all_candidates(&job.ctx, &grid, job.slot_in_frame))
                }
                None => {
                    if let Some(m) = metrics {
                        m.inc(Counter::LayoutMismatches);
                    }
                    return SlotResult {
                        slot: job.slot,
                        decoded: Vec::new(),
                        processing: start.elapsed(),
                        work: DecodeWork::default(),
                        layout_mismatch: true,
                    };
                }
            }
        }
        ObservedSlot::Message { .. } => None,
    };
    let mut decoded: Vec<DecodedDci> = Vec::new();
    let mut work = DecodeWork::default();
    if threads == 1 {
        // Single-thread path avoids spawn overhead entirely.
        let (d, w) = run_shard(job, candidates.as_deref(), &shards[0], metrics);
        decoded = d;
        work = w;
    } else {
        std::thread::scope(|scope| {
            let candidates = candidates.as_deref();
            let handles: Vec<_> = shards
                .iter()
                .map(|hyp| scope.spawn(move || run_shard(job, candidates, hyp, metrics)))
                .collect();
            for h in handles {
                // Re-raise shard panics so the pool's per-job supervision
                // (catch_unwind in the worker loop) owns the failure.
                match h.join() {
                    Ok((part, w)) => {
                        decoded.extend(part);
                        work.absorb(&w);
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
    }
    let processing = start.elapsed();
    if let Some(m) = metrics {
        m.observe(Stage::SlotTotal, processing);
        m.inc(Counter::SlotsProcessed);
    }
    SlotResult {
        slot: job.slot,
        decoded,
        processing,
        work,
        layout_mismatch: false,
    }
}

/// Run one hypothesis shard against the pre-processed slot under the
/// job's search budget.
fn run_shard(
    job: &SlotJob,
    candidates: Option<&[ExtractedCandidate]>,
    hyp: &Hypotheses,
    metrics: Option<&Arc<Metrics>>,
) -> (Vec<DecodedDci>, DecodeWork) {
    match (&job.observed, candidates) {
        (ObservedSlot::Message { dcis, .. }, _) => {
            decode_message_slot_budgeted(&job.ctx, dcis, hyp, job.budget, metrics)
        }
        (ObservedSlot::Iq { .. }, Some(c)) => {
            decode_candidates_budgeted(&job.ctx, c, hyp, job.budget, metrics)
        }
        (ObservedSlot::Iq { .. }, None) => (Vec::new(), DecodeWork::default()),
    }
}

/// Pick the OFDM layout matching a sample count (workers bootstrap the
/// same way the live scope does). Candidate carrier widths come from the
/// decoder context — the SIB1-derived carrier BWP first, then the
/// CORESET 0 width the MIB guarantees — before falling back to the
/// paper's preset carrier widths for a cold bootstrap. Returns `None`
/// when no layout fits (a truncated buffer or an unknown carrier), which
/// the result reports as a layout mismatch.
fn ofdm_for(
    ctx: &DecoderContext,
    n_samples: usize,
    slot_in_frame: usize,
) -> Option<nr_phy::ofdm::Ofdm> {
    let mut widths = Vec::with_capacity(6);
    if let Some(s) = ctx.ue_sizing {
        widths.push(s.bwp_prbs);
    }
    widths.push(ctx.common_sizing.bwp_prbs);
    for fallback in [51usize, 52, 79, 24] {
        if !widths.contains(&fallback) {
            widths.push(fallback);
        }
    }
    for numer in [nr_phy::Numerology::Mu1, nr_phy::Numerology::Mu0] {
        for &prbs in &widths {
            let o = nr_phy::ofdm::Ofdm::new(numer, prbs);
            if o.samples_per_slot(slot_in_frame) == n_samples {
                return Some(o);
            }
        }
    }
    None
}

/// What `submit` does when the bounded job queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Wait for a worker to free a slot (lossless, adds latency) —
    /// offline re-processing of a recording.
    #[default]
    Block,
    /// Drop the oldest queued job to make room (bounded latency, sheds
    /// load) — live capture, where a late slot is a useless slot.
    ShedOldest,
}

/// Worker-pool sizing and backpressure configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Bounded job-queue depth (slots waiting for a worker), per priority
    /// class.
    pub job_queue_depth: usize,
    /// What to do when the job queue is full.
    pub policy: BackpressurePolicy,
    /// Watchdog deadline for a single job: a worker busy on one job for
    /// longer is abandoned (its eventual result is still collected) and a
    /// replacement spawned. `None` disables the watchdog — offline replay
    /// has no deadline.
    pub watchdog: Option<Duration>,
    /// Upper bound on how long shutdown (`finish`/drop) waits for workers
    /// to drain. Workers still running at the deadline are abandoned and
    /// counted in [`PoolStats::stuck_workers`] instead of hanging the
    /// caller forever.
    pub join_timeout: Duration,
}

impl PoolConfig {
    /// Defaults: `workers` threads, 256-deep queues, blocking
    /// backpressure, no watchdog, 10 s bounded shutdown.
    pub fn new(workers: usize) -> PoolConfig {
        PoolConfig {
            workers: workers.max(1),
            job_queue_depth: 256,
            policy: BackpressurePolicy::Block,
            watchdog: None,
            join_timeout: Duration::from_secs(10),
        }
    }
}

/// Pool health counters (fed into `ScopeStats` by the session driver).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs shed under `BackpressurePolicy::ShedOldest`.
    pub shed_jobs: u64,
    /// Data jobs shed while broadcast jobs were pending (the priority
    /// queues visibly protected broadcast work).
    pub priority_sheds: u64,
    /// Worker panics caught and supervised.
    pub worker_panics: u64,
    /// Replacement workers spawned after panics or stalls.
    pub respawns: u64,
    /// Workers abandoned by the per-job watchdog.
    pub worker_stalls: u64,
    /// Workers still running when the bounded shutdown gave up on them.
    pub stuck_workers: u64,
}

/// `submit` failed and hands the job back (the queue disconnected — only
/// possible once the pool is torn down).
#[derive(Debug)]
pub struct SubmitError(pub Box<SlotJob>);

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue disconnected (slot {})", self.0.slot)
    }
}

impl std::error::Error for SubmitError {}

/// A worker died; the supervisor learns which job killed it.
struct WorkerEvent {
    job: Box<SlotJob>,
    panic_msg: String,
}

/// A job plus its enqueue timestamp (taken only when metrics record, so
/// the disabled path never reads the clock at submit time).
struct QueuedJob {
    job: SlotJob,
    enqueued: Option<Instant>,
}

/// Shared per-worker state the supervisor's watchdog reads.
#[derive(Debug, Default)]
struct WorkerState {
    /// Nanoseconds since the pool epoch when the current job started,
    /// plus 1 (0 = idle).
    busy_since_ns: AtomicU64,
    /// Set by the watchdog or bounded shutdown: the worker must exit as
    /// soon as it regains control instead of taking another job.
    abandoned: AtomicBool,
}

/// The asynchronous worker pool of Fig 4: jobs in, results out, processed
/// by `n_workers` OS threads. "The worker pool design enables
/// asynchronous, on-demand slot data processing" (§4).
///
/// Supervised: each job runs under `catch_unwind`; a panicking worker
/// reports the offending job (quarantined, not retried — a poison slot
/// would kill every worker in turn) and dies, and the supervisor spawns a
/// replacement on the next `submit`/`poll`/`finish` call.
///
/// Priority-aware: jobs queue per [`JobPriority`] class in bounded
/// channels and workers drain broadcast-first; under `ShedOldest`
/// backpressure only data jobs are ever shed. A configurable watchdog
/// abandons workers stuck on one job past a deadline and respawns a
/// replacement, and shutdown joins with a bounded timeout, quarantining
/// (counting) workers that never return.
pub struct WorkerPool {
    /// `(broadcast, data)` senders; dropped together to close the pool.
    job_tx: Option<(Sender<QueuedJob>, Sender<QueuedJob>)>,
    /// Kept for shed-oldest (popping the data-queue head) and so respawned
    /// workers can be handed the shared queues.
    bcast_rx: Receiver<QueuedJob>,
    data_rx: Receiver<QueuedJob>,
    result_tx: Sender<SlotResult>,
    result_rx: Receiver<SlotResult>,
    event_tx: Sender<WorkerEvent>,
    event_rx: Receiver<WorkerEvent>,
    handles: Vec<(JoinHandle<()>, Arc<WorkerState>)>,
    /// Workers abandoned by the watchdog, awaiting a (bounded) join.
    stalled: Vec<(JoinHandle<()>, Arc<WorkerState>)>,
    /// Reference instant for the `busy_since_ns` encoding.
    epoch: Instant,
    cfg: PoolConfig,
    stats: PoolStats,
    quarantined: Vec<SlotJob>,
    /// Shared pipeline metrics (queue wait, stage latencies, shed counts).
    metrics: Option<Arc<Metrics>>,
}

/// Receive the next job, broadcast queue first. Blocks (with a periodic
/// abandoned-flag check) while both queues are empty; returns `None` when
/// the worker should exit (abandoned, or both queues drained and closed).
fn recv_prioritised(
    bcast: &Receiver<QueuedJob>,
    data: &Receiver<QueuedJob>,
    state: &WorkerState,
) -> Option<QueuedJob> {
    loop {
        if state.abandoned.load(Relaxed) {
            return None;
        }
        let b = bcast.try_recv();
        if let Ok(q) = b {
            return Some(q);
        }
        let d = data.try_recv();
        if let Ok(q) = d {
            return Some(q);
        }
        if matches!(b, Err(TryRecvError::Disconnected))
            && matches!(d, Err(TryRecvError::Disconnected))
        {
            return None;
        }
        // Both queues empty and at least one still open: nap briefly, then
        // re-poll (also re-checking the abandoned flag). The vendored
        // channel has no multi-queue select, and a sub-millisecond poll is
        // far below the 500 µs slot cadence the pool serves.
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn worker_loop(
    bcast: Receiver<QueuedJob>,
    data: Receiver<QueuedJob>,
    tx: Sender<SlotResult>,
    events: Sender<WorkerEvent>,
    metrics: Option<Arc<Metrics>>,
    state: Arc<WorkerState>,
    epoch: Instant,
) {
    while let Some(q) = recv_prioritised(&bcast, &data, &state) {
        if let (Some(m), Some(t)) = (metrics.as_ref(), q.enqueued) {
            m.observe(Stage::WorkerQueue, t.elapsed());
        }
        let job = q.job;
        state
            .busy_since_ns
            .store(epoch.elapsed().as_nanos() as u64 + 1, Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            process_slot_metered(&job, metrics.as_ref())
        }));
        state.busy_since_ns.store(0, Relaxed);
        match outcome {
            Ok(result) => {
                if tx.send(result).is_err() {
                    return;
                }
            }
            Err(payload) => {
                let panic_msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_string());
                let _ = events.send(WorkerEvent {
                    job: Box::new(job),
                    panic_msg,
                });
                // Die; the supervisor respawns a clean replacement.
                return;
            }
        }
    }
}

impl WorkerPool {
    /// Spawn a pool with `n_workers` workers and default queueing.
    pub fn new(n_workers: usize) -> WorkerPool {
        WorkerPool::with_config(PoolConfig::new(n_workers))
    }

    /// Spawn a pool with explicit queue depth and backpressure policy.
    pub fn with_config(cfg: PoolConfig) -> WorkerPool {
        WorkerPool::build(cfg, None)
    }

    /// Spawn a pool recording into a shared metrics registry: queue wait
    /// (`worker_queue` stage), queue depth, shed/quarantine counts, and
    /// all per-stage decode latencies from inside the workers.
    pub fn with_metrics(cfg: PoolConfig, metrics: Arc<Metrics>) -> WorkerPool {
        WorkerPool::build(cfg, Some(metrics))
    }

    fn build(cfg: PoolConfig, metrics: Option<Arc<Metrics>>) -> WorkerPool {
        let (bcast_tx, bcast_rx) = bounded::<QueuedJob>(cfg.job_queue_depth);
        let (data_tx, data_rx) = bounded::<QueuedJob>(cfg.job_queue_depth);
        let (result_tx, result_rx) = unbounded::<SlotResult>();
        let (event_tx, event_rx) = unbounded::<WorkerEvent>();
        let mut pool = WorkerPool {
            job_tx: Some((bcast_tx, data_tx)),
            bcast_rx,
            data_rx,
            result_tx,
            result_rx,
            event_tx,
            event_rx,
            handles: Vec::with_capacity(cfg.workers),
            stalled: Vec::new(),
            epoch: Instant::now(),
            cfg,
            stats: PoolStats::default(),
            quarantined: Vec::new(),
            metrics,
        };
        for _ in 0..cfg.workers {
            pool.spawn_worker();
        }
        pool.gauge_workers_alive();
        pool
    }

    fn spawn_worker(&mut self) {
        let bcast = self.bcast_rx.clone();
        let data = self.data_rx.clone();
        let tx = self.result_tx.clone();
        let events = self.event_tx.clone();
        let metrics = self.metrics.clone();
        let state = Arc::new(WorkerState::default());
        let worker_state = Arc::clone(&state);
        let epoch = self.epoch;
        self.handles.push((
            std::thread::spawn(move || {
                worker_loop(bcast, data, tx, events, metrics, worker_state, epoch)
            }),
            state,
        ));
    }

    fn gauge_workers_alive(&self) {
        if let Some(m) = &self.metrics {
            let alive = self
                .handles
                .iter()
                .filter(|(h, _)| !h.is_finished())
                .count();
            m.gauge_set(Gauge::WorkersAlive, alive as u64);
        }
    }

    fn queue_len(&self) -> usize {
        self.bcast_rx.len() + self.data_rx.len()
    }

    /// Reap death reports (count and quarantine the poison jobs, spawn
    /// replacements) and run the stall watchdog: a worker busy on one job
    /// past the deadline is abandoned — its eventual result is still
    /// collected, but a fresh worker takes its queue slot immediately.
    fn supervise(&mut self) {
        let events: Vec<WorkerEvent> = self.event_rx.try_iter().collect();
        for ev in events {
            self.stats.worker_panics += 1;
            if let Some(m) = &self.metrics {
                m.inc(Counter::WorkerPanics);
                m.inc(Counter::JobsQuarantined);
                m.inc(Counter::RestartsTotal);
            }
            self.quarantined.push(*ev.job);
            let _ = ev.panic_msg; // kept for debugging via quarantined jobs
            self.stats.respawns += 1;
            self.spawn_worker();
        }
        if let Some(deadline) = self.cfg.watchdog {
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            let deadline_ns = deadline.as_nanos().min(u64::MAX as u128) as u64;
            let mut stalled_idx = Vec::new();
            for (i, (_, state)) in self.handles.iter().enumerate() {
                let busy = state.busy_since_ns.load(Relaxed);
                if busy != 0 && now_ns.saturating_sub(busy - 1) > deadline_ns {
                    stalled_idx.push(i);
                }
            }
            // Back-to-front so indices stay valid while we remove.
            for &i in stalled_idx.iter().rev() {
                let (handle, state) = self.handles.swap_remove(i);
                state.abandoned.store(true, Relaxed);
                self.stalled.push((handle, state));
                self.stats.worker_stalls += 1;
                self.stats.respawns += 1;
                if let Some(m) = &self.metrics {
                    m.inc(Counter::WorkerStalls);
                    // A stall past the watchdog deadline IS a detected
                    // hang — same class the supervise-layer counts.
                    m.inc(Counter::HangsDetected);
                    m.inc(Counter::RestartsTotal);
                }
                self.spawn_worker();
            }
        }
        // Reap stalled workers that eventually came back.
        self.stalled.retain(|(h, _)| !h.is_finished());
        self.gauge_workers_alive();
    }

    /// Submit a slot job to its priority queue. Applies the configured
    /// backpressure policy when that queue is full — broadcast jobs are
    /// never shed (and never shed other broadcast jobs: they block) —
    /// and returns the job on a disconnected queue instead of panicking.
    pub fn submit(&mut self, job: SlotJob) -> Result<(), SubmitError> {
        self.supervise();
        let Some((bcast_tx, data_tx)) = self.job_tx.clone() else {
            return Err(SubmitError(Box::new(job)));
        };
        let priority = job.priority;
        let tx = match priority {
            JobPriority::Broadcast => bcast_tx,
            JobPriority::Data => data_tx,
        };
        let enqueued = self
            .metrics
            .as_ref()
            .filter(|m| m.is_enabled())
            .map(|_| Instant::now());
        let mut queued = QueuedJob { job, enqueued };
        loop {
            match tx.try_send(queued) {
                Ok(()) => {
                    self.stats.submitted += 1;
                    if let Some(m) = &self.metrics {
                        m.gauge_set(Gauge::QueueDepth, self.queue_len() as u64);
                    }
                    return Ok(());
                }
                Err(TrySendError::Full(q)) => match (self.cfg.policy, priority) {
                    (BackpressurePolicy::ShedOldest, JobPriority::Data) => {
                        if self.data_rx.try_recv().is_ok() {
                            self.stats.shed_jobs += 1;
                            if let Some(m) = &self.metrics {
                                m.inc(Counter::JobsShed);
                            }
                            if !self.bcast_rx.is_empty() {
                                // The shed demonstrably protected pending
                                // broadcast work.
                                self.stats.priority_sheds += 1;
                                if let Some(m) = &self.metrics {
                                    m.inc(Counter::PrioritySheds);
                                }
                            }
                        }
                        queued = q;
                    }
                    // Broadcast jobs are never shed: a full broadcast
                    // queue blocks regardless of policy.
                    (BackpressurePolicy::ShedOldest, JobPriority::Broadcast)
                    | (BackpressurePolicy::Block, _) => {
                        // Block, but keep supervising so a worker death
                        // while we wait cannot deadlock the queue.
                        queued = q;
                        self.supervise();
                        std::thread::yield_now();
                    }
                },
                Err(TrySendError::Disconnected(q)) => return Err(SubmitError(Box::new(q.job))),
            }
        }
    }

    /// Drain any results already finished (non-blocking).
    pub fn poll(&mut self) -> Vec<SlotResult> {
        self.supervise();
        self.result_rx.try_iter().collect()
    }

    /// Pool health counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Jobs that killed a worker (quarantined, never retried).
    pub fn quarantined(&self) -> &[SlotJob] {
        &self.quarantined
    }

    /// Close the job queue and wait for all in-flight work; returns the
    /// remaining results. Worker panics during the drain are supervised
    /// like any other: counted, quarantined, and the queue is drained by
    /// replacements.
    pub fn finish(mut self) -> Vec<SlotResult> {
        self.run_down()
    }

    /// Like [`WorkerPool::finish`], but also returns the final health
    /// counters and the quarantined jobs — the numbers `finish` consumes.
    pub fn finish_with_stats(mut self) -> (Vec<SlotResult>, PoolStats, Vec<SlotJob>) {
        let out = self.run_down();
        (out, self.stats, std::mem::take(&mut self.quarantined))
    }

    fn run_down(&mut self) -> Vec<SlotResult> {
        drop(self.job_tx.take());
        let deadline = Instant::now() + self.cfg.join_timeout;
        let mut out = Vec::new();
        loop {
            self.supervise();
            out.extend(self.result_rx.try_iter());
            // Wait for live workers AND watchdog-abandoned ones: a stalled
            // worker that wakes inside the join timeout still delivers its
            // result (supervise drops stalled entries once finished).
            if self.handles.iter().all(|(h, _)| h.is_finished()) && self.stalled.is_empty() {
                // Final reap: a worker may have died at the very end.
                self.supervise();
                if self.handles.iter().all(|(h, _)| h.is_finished()) && self.stalled.is_empty() {
                    break;
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
        self.reap_with_deadline();
        out.extend(self.result_rx.try_iter());
        out
    }

    /// Join every finished worker; abandon (and count) the rest instead of
    /// hanging shutdown on a stuck thread. Abandoned workers carry the
    /// flag, so they exit on their own if their job ever completes.
    fn reap_with_deadline(&mut self) {
        for (h, state) in self.handles.drain(..).chain(self.stalled.drain(..)) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                state.abandoned.store(true, Relaxed);
                self.stats.stuck_workers += 1;
            }
        }
        self.gauge_workers_alive();
        // The queue is drained (or abandoned) once the pool shuts down;
        // leaving the gauge at its last enqueue value would report phantom
        // backlog with zero workers alive in post-shutdown snapshots.
        if let Some(m) = &self.metrics {
            m.gauge_set(Gauge::QueueDepth, 0);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        let deadline = Instant::now() + self.cfg.join_timeout;
        while !self.handles.iter().all(|(h, _)| h.is_finished()) && Instant::now() < deadline {
            std::thread::yield_now();
        }
        self.reap_with_deadline();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::Observer;
    use gnb_sim::{CellConfig, Gnb};
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use nr_phy::dci::DciSizing;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn make_job(dci_threads: usize) -> (SlotJob, usize) {
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 9);
        for i in 1..=4u64 {
            gnb.ue_arrives(SimUe::new(
                i,
                ChannelProfile::Awgn,
                MobilityScenario::Static,
                TrafficSource::new(
                    TrafficKind::Cbr {
                        rate_bps: 3e6,
                        packet_bytes: 1200,
                    },
                    i,
                ),
                0.0,
                10.0,
                i,
            ));
        }
        let mut obs = Observer::new(&cell, 35.0, false, 2);
        // Run until a slot with multiple C-RNTI DCIs.
        for s in 0..4000u64 {
            let out = gnb.step();
            let n_c = out
                .dcis
                .iter()
                .filter(|d| d.rnti_type == nr_phy::types::RntiType::C)
                .count();
            let observed = obs.observe(&out, s as f64 * 0.0005);
            if n_c >= 2 {
                let ctx = DecoderContext {
                    coreset: cell.coreset,
                    pci: cell.pci.0,
                    common_sizing: DciSizing {
                        bwp_prbs: cell.coreset.n_prb,
                    },
                    ue_sizing: Some(DciSizing {
                        bwp_prbs: cell.carrier_prbs,
                    }),
                };
                let hyp = Hypotheses {
                    c_rntis: gnb.connected_rntis(),
                    allow_recovery: true,
                    ..Hypotheses::default()
                };
                return (
                    SlotJob {
                        slot: s,
                        slot_in_frame: out.slot_in_frame,
                        observed,
                        ctx,
                        hyp,
                        dci_threads,
                        priority: JobPriority::Data,
                        budget: SearchBudget::unlimited(),
                        fault: None,
                    },
                    n_c,
                );
            }
        }
        panic!("no multi-DCI slot found");
    }

    #[test]
    fn sharded_decode_finds_everything_single_and_multi_thread() {
        let (job1, n_c) = make_job(1);
        let r1 = process_slot(&job1);
        let mut job4 = job1.clone();
        job4.dci_threads = 4;
        let r4 = process_slot(&job4);
        let count = |r: &SlotResult| {
            r.decoded
                .iter()
                .filter(|d| d.rnti_type == nr_phy::types::RntiType::C)
                .count()
        };
        assert_eq!(count(&r1), n_c);
        assert_eq!(count(&r4), n_c, "sharding must not lose DCIs");
    }

    #[test]
    fn pool_processes_jobs_asynchronously() {
        let (job, _) = make_job(2);
        let mut pool = WorkerPool::new(3);
        for i in 0..12 {
            let mut j = job.clone();
            j.slot = i;
            pool.submit(j).expect("queue open");
        }
        let results = pool.finish();
        assert_eq!(results.len(), 12);
        let mut slots: Vec<u64> = results.iter().map(|r| r.slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_worker_panic_and_quarantines_the_job() {
        let (job, _) = make_job(1);
        let mut pool = WorkerPool::new(2);
        for i in 0..9 {
            let mut j = job.clone();
            j.slot = i;
            if i == 4 {
                j.fault = Some(InjectedFault::Panic);
            }
            pool.submit(j).expect("queue open");
        }
        let results = pool.finish();
        // Every healthy job produced a result; the poison one did not.
        let mut slots: Vec<u64> = results.iter().map(|r| r.slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3, 5, 6, 7, 8]);
    }

    #[test]
    fn supervisor_respawns_after_panic_and_reports_the_poison_slot() {
        let (job, _) = make_job(1);
        // One worker: the poison job kills it; only a respawned
        // replacement can process the healthy job queued behind it.
        let mut pool = WorkerPool::new(1);
        let mut poison = job.clone();
        poison.slot = 99;
        poison.fault = Some(InjectedFault::Panic);
        pool.submit(poison).expect("queue open");
        pool.submit(job.clone()).expect("queue open");
        let mut results = Vec::new();
        for _ in 0..2000 {
            results.extend(pool.poll());
            if !results.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(results.len(), 1, "respawned worker drained the queue");
        assert_eq!(results[0].slot, job.slot);
        let stats = pool.stats();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.respawns, 1);
        assert_eq!(pool.quarantined().len(), 1);
        assert_eq!(pool.quarantined()[0].slot, 99);
    }

    #[test]
    fn shed_oldest_policy_drops_queue_head_and_counts() {
        let (job, _) = make_job(1);
        let mut pool = WorkerPool::with_config(PoolConfig {
            job_queue_depth: 2,
            policy: BackpressurePolicy::ShedOldest,
            ..PoolConfig::new(1)
        });
        // Jam the single worker so the queue actually fills.
        let mut slow = job.clone();
        slow.slot = 1000;
        slow.fault = Some(InjectedFault::Delay(Duration::from_millis(300)));
        pool.submit(slow).expect("queue open");
        std::thread::sleep(Duration::from_millis(50)); // worker picks it up
        for i in 0..6 {
            let mut j = job.clone();
            j.slot = i;
            pool.submit(j).expect("queue open");
        }
        let stats = pool.stats();
        assert_eq!(stats.submitted, 7);
        assert_eq!(stats.shed_jobs, 4, "queue of 2 kept the newest 2 of 6");
        let results = pool.finish();
        let mut slots: Vec<u64> = results.iter().map(|r| r.slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![4, 5, 1000], "newest jobs survive the shed");
    }

    #[test]
    fn block_policy_is_lossless_under_backpressure() {
        let (job, _) = make_job(1);
        let mut pool = WorkerPool::with_config(PoolConfig {
            job_queue_depth: 2,
            policy: BackpressurePolicy::Block,
            ..PoolConfig::new(1)
        });
        for i in 0..6 {
            let mut j = job.clone();
            j.slot = i;
            j.fault = Some(InjectedFault::Delay(Duration::from_millis(10)));
            pool.submit(j).expect("queue open");
        }
        let stats = pool.stats();
        let results = pool.finish();
        assert_eq!(results.len(), 6, "blocking backpressure loses nothing");
        assert_eq!(stats.shed_jobs, 0);
    }

    #[test]
    fn broadcast_jobs_survive_shedding_and_drain_first() {
        let (job, _) = make_job(1);
        let mut pool = WorkerPool::with_config(PoolConfig {
            job_queue_depth: 2,
            policy: BackpressurePolicy::ShedOldest,
            ..PoolConfig::new(1)
        });
        // Jam the single worker so both queues actually fill.
        let mut slow = job.clone();
        slow.slot = 1000;
        slow.fault = Some(InjectedFault::Delay(Duration::from_millis(300)));
        pool.submit(slow).expect("queue open");
        std::thread::sleep(Duration::from_millis(50)); // worker picks it up
        for i in 0..2u64 {
            let mut b = job.clone();
            b.slot = 100 + i;
            b.priority = JobPriority::Broadcast;
            pool.submit(b).expect("queue open");
        }
        // Six data jobs through a depth-2 data queue: four shed, and the
        // sheds happened while broadcast jobs sat protected in their queue.
        for i in 0..6u64 {
            let mut j = job.clone();
            j.slot = i;
            pool.submit(j).expect("queue open");
        }
        let stats = pool.stats();
        assert_eq!(stats.shed_jobs, 4, "data sheds unchanged by priority");
        assert_eq!(
            stats.priority_sheds, 4,
            "every shed protected pending broadcast work"
        );
        let results = pool.finish();
        let mut slots: Vec<u64> = results.iter().map(|r| r.slot).collect();
        slots.sort_unstable();
        assert_eq!(
            slots,
            vec![4, 5, 100, 101, 1000],
            "both broadcast jobs survived; only data was shed"
        );
    }

    #[test]
    fn watchdog_abandons_stalled_worker_and_respawns() {
        let (job, _) = make_job(1);
        let mut pool = WorkerPool::with_config(PoolConfig {
            watchdog: Some(Duration::from_millis(40)),
            ..PoolConfig::new(1)
        });
        // Stall the lone worker far past the watchdog deadline, then queue
        // a healthy job behind it: only a respawned replacement can run it
        // before the stalled worker wakes.
        let mut stuck = job.clone();
        stuck.slot = 77;
        stuck.fault = Some(InjectedFault::Delay(Duration::from_millis(400)));
        pool.submit(stuck).expect("queue open");
        std::thread::sleep(Duration::from_millis(20)); // worker picks it up
        pool.submit(job.clone()).expect("queue open");
        let mut results = Vec::new();
        let start = Instant::now();
        while results.is_empty() && start.elapsed() < Duration::from_millis(300) {
            std::thread::sleep(Duration::from_millis(10));
            results.extend(pool.poll());
        }
        assert_eq!(results.len(), 1, "replacement ran the queued job");
        assert_eq!(results[0].slot, job.slot);
        let stats = pool.stats();
        assert_eq!(stats.worker_stalls, 1, "stall detected");
        assert!(stats.respawns >= 1, "replacement spawned");
        // The abandoned worker's slot still completes; nothing is lost.
        let rest = pool.finish();
        assert!(rest.iter().any(|r| r.slot == 77), "stalled result arrives");
    }

    #[test]
    fn shutdown_join_is_bounded_and_counts_stuck_workers() {
        let (job, _) = make_job(1);
        let mut pool = WorkerPool::with_config(PoolConfig {
            join_timeout: Duration::from_millis(50),
            ..PoolConfig::new(1)
        });
        let mut stuck = job.clone();
        stuck.fault = Some(InjectedFault::Delay(Duration::from_secs(30)));
        pool.submit(stuck).expect("queue open");
        std::thread::sleep(Duration::from_millis(20)); // worker picks it up
        let start = Instant::now();
        let (results, stats, _) = pool.finish_with_stats();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "finish returned without waiting the full 30 s stall"
        );
        assert!(results.is_empty());
        assert_eq!(stats.stuck_workers, 1, "the hung worker was abandoned");
    }

    #[test]
    fn budgeted_job_prunes_ue_decodes_in_the_pool() {
        let (job, n_c) = make_job(2);
        let full = process_slot(&job);
        assert_eq!(
            full.decoded
                .iter()
                .filter(|d| d.rnti_type == nr_phy::types::RntiType::C)
                .count(),
            n_c
        );
        assert_eq!(full.work.pruned, 0);
        let mut capped = job.clone();
        capped.budget = SearchBudget::broadcast_only();
        let r = process_slot(&capped);
        assert!(
            r.decoded
                .iter()
                .all(|d| d.rnti_type != nr_phy::types::RntiType::C),
            "broadcast-only budget reaches the shards"
        );
        assert!(r.work.pruned > 0, "pruned work reported to the governor");
    }

    #[test]
    fn truncated_iq_buffer_reports_layout_mismatch() {
        let (job, _) = make_job(1);
        // Synthesize an IQ job with a buffer no layout matches.
        let mut j = job.clone();
        j.observed = crate::observe::ObservedSlot::Iq {
            samples: vec![nr_phy::complex::Cf32::ZERO; 1234],
            pdsch: Vec::new(),
        };
        let r = process_slot(&j);
        assert!(r.layout_mismatch);
        assert!(r.decoded.is_empty());
    }

    #[test]
    fn processing_time_is_measured() {
        let (job, _) = make_job(1);
        let r = process_slot(&job);
        assert!(r.processing > Duration::ZERO);
    }
}
