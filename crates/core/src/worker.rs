//! The Fig 4 processing pipeline: scheduler → worker pool → result queue.
//!
//! "The scheduler copies the data and its state (known UE list, cell's
//! configurations) to an idle worker. For each slot data, the worker
//! spawns SIBs thread, RACH thread and DCI threads for SIBs decoding, UE
//! discovery and DCIs extraction, and then put the slot result into the
//! result queue." — paper §4.
//!
//! The DCI workload shards the known-UE list across `dci_threads`
//! (paper §4: "UE list is sharded among threads, and the final results are
//! gathered from the threads"); the common search space (SIB + RACH
//! hypotheses) runs as its own shard, standing in for the SIBs/RACH
//! threads.

use crate::decoder::{decode_candidates, decode_message_slot, extract_all_candidates, DecodedDci, DecoderContext, ExtractedCandidate, Hypotheses};
use crate::observe::ObservedSlot;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One slot of work, self-contained (the "copy of data and state").
#[derive(Debug, Clone)]
pub struct SlotJob {
    /// Sniffer slot counter.
    pub slot: u64,
    /// Slot-in-frame for candidate hashing and OFDM timing.
    pub slot_in_frame: usize,
    /// The captured slot.
    pub observed: ObservedSlot,
    /// Decoder configuration snapshot.
    pub ctx: DecoderContext,
    /// RNTI hypothesis sets snapshot.
    pub hyp: Hypotheses,
    /// How many DCI threads to shard across.
    pub dci_threads: usize,
}

/// A processed slot.
#[derive(Debug)]
pub struct SlotResult {
    /// Sniffer slot counter.
    pub slot: u64,
    /// All DCIs decoded in the slot.
    pub decoded: Vec<DecodedDci>,
    /// Wall-clock processing time (the Fig 12 metric).
    pub processing: Duration,
}

/// Process one slot, sharding the known-UE list across `dci_threads`
/// OS threads (scoped). Returns the decoded DCIs and the processing time.
pub fn process_slot(job: &SlotJob) -> SlotResult {
    let start = Instant::now();
    let threads = job.dci_threads.max(1);
    // Shard the C-RNTI list; the common hypotheses ride with shard 0
    // (the SIBs/RACH thread role).
    let shards: Vec<Hypotheses> = (0..threads)
        .map(|i| {
            let c_rntis: Vec<_> = job
                .hyp
                .c_rntis
                .iter()
                .enumerate()
                .filter(|(j, _)| j % threads == i)
                .map(|(_, r)| *r)
                .collect();
            if i == 0 {
                Hypotheses {
                    ra_rntis: job.hyp.ra_rntis.clone(),
                    tc_rntis: job.hyp.tc_rntis.clone(),
                    c_rntis,
                    allow_recovery: job.hyp.allow_recovery,
                    skip_common: false,
                }
            } else {
                Hypotheses {
                    ra_rntis: Vec::new(),
                    tc_rntis: Vec::new(),
                    c_rntis,
                    allow_recovery: false,
                    skip_common: true,
                }
            }
        })
        .collect();
    // Signal processing (the O(n log n) term of §5.3.2 — OFDM demod plus
    // candidate extraction/equalisation) runs once per slot; only the
    // per-UE DCI hypothesis testing (the O(m) term) is sharded across
    // threads — exactly the Fig 4 division of labour.
    let candidates: Option<Vec<ExtractedCandidate>> = match &job.observed {
        ObservedSlot::Iq { samples, .. } => {
            match ofdm_for(&job.ctx, samples.len(), job.slot_in_frame) {
                Some(o) => {
                    let grid = o.demodulate(samples, job.slot_in_frame);
                    Some(extract_all_candidates(&job.ctx, &grid, job.slot_in_frame))
                }
                None => {
                    return SlotResult {
                        slot: job.slot,
                        decoded: Vec::new(),
                        processing: start.elapsed(),
                    }
                }
            }
        }
        ObservedSlot::Message { .. } => None,
    };
    let mut decoded: Vec<DecodedDci> = Vec::new();
    if threads == 1 {
        // Single-thread path avoids spawn overhead entirely.
        decoded = run_shard(job, candidates.as_deref(), &shards[0]);
    } else {
        std::thread::scope(|scope| {
            let candidates = candidates.as_deref();
            let handles: Vec<_> = shards
                .iter()
                .map(|hyp| scope.spawn(move || run_shard(job, candidates, hyp)))
                .collect();
            for h in handles {
                decoded.extend(h.join().expect("decoder shard panicked"));
            }
        });
    }
    SlotResult {
        slot: job.slot,
        decoded,
        processing: start.elapsed(),
    }
}

/// Run one hypothesis shard against the pre-processed slot.
fn run_shard(
    job: &SlotJob,
    candidates: Option<&[ExtractedCandidate]>,
    hyp: &Hypotheses,
) -> Vec<DecodedDci> {
    match (&job.observed, candidates) {
        (ObservedSlot::Message { dcis, .. }, _) => decode_message_slot(&job.ctx, dcis, hyp),
        (ObservedSlot::Iq { .. }, Some(c)) => decode_candidates(&job.ctx, c, hyp),
        (ObservedSlot::Iq { .. }, None) => Vec::new(),
    }
}

/// Pick the OFDM layout matching a sample count (workers bootstrap the
/// same way the live scope does).
fn ofdm_for(
    ctx: &DecoderContext,
    n_samples: usize,
    slot_in_frame: usize,
) -> Option<nr_phy::ofdm::Ofdm> {
    let widths = [
        ctx.ue_sizing.map(|s| s.bwp_prbs).unwrap_or(51),
        51,
        52,
        79,
        24,
    ];
    for numer in [nr_phy::Numerology::Mu1, nr_phy::Numerology::Mu0] {
        for prbs in widths {
            let o = nr_phy::ofdm::Ofdm::new(numer, prbs);
            if o.samples_per_slot(slot_in_frame) == n_samples {
                return Some(o);
            }
        }
    }
    None
}

/// The asynchronous worker pool of Fig 4: jobs in, results out, processed
/// by `n_workers` OS threads. "The worker pool design enables
/// asynchronous, on-demand slot data processing" (§4).
pub struct WorkerPool {
    job_tx: Option<Sender<SlotJob>>,
    result_rx: Receiver<SlotResult>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool with `n_workers` workers.
    pub fn new(n_workers: usize) -> WorkerPool {
        let (job_tx, job_rx) = unbounded::<SlotJob>();
        let (result_tx, result_rx) = unbounded::<SlotResult>();
        let handles = (0..n_workers.max(1))
            .map(|_| {
                let rx = job_rx.clone();
                let tx = result_tx.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let result = process_slot(&job);
                        if tx.send(result).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            result_rx,
            handles,
        }
    }

    /// Submit a slot job (non-blocking).
    pub fn submit(&self, job: SlotJob) {
        self.job_tx
            .as_ref()
            .expect("pool open")
            .send(job)
            .expect("workers alive");
    }

    /// Drain any results already finished (non-blocking).
    pub fn poll(&self) -> Vec<SlotResult> {
        self.result_rx.try_iter().collect()
    }

    /// Close the job queue and wait for all in-flight work; returns the
    /// remaining results.
    pub fn finish(mut self) -> Vec<SlotResult> {
        drop(self.job_tx.take());
        for h in self.handles.drain(..) {
            h.join().expect("worker panicked");
        }
        self.result_rx.try_iter().collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::Observer;
    use gnb_sim::{CellConfig, Gnb};
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use nr_phy::dci::DciSizing;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn make_job(dci_threads: usize) -> (SlotJob, usize) {
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 9);
        for i in 1..=4u64 {
            gnb.ue_arrives(SimUe::new(
                i,
                ChannelProfile::Awgn,
                MobilityScenario::Static,
                TrafficSource::new(
                    TrafficKind::Cbr {
                        rate_bps: 3e6,
                        packet_bytes: 1200,
                    },
                    i,
                ),
                0.0,
                10.0,
                i,
            ));
        }
        let mut obs = Observer::new(&cell, 35.0, false, 2);
        // Run until a slot with multiple C-RNTI DCIs.
        for s in 0..4000u64 {
            let out = gnb.step();
            let n_c = out
                .dcis
                .iter()
                .filter(|d| d.rnti_type == nr_phy::types::RntiType::C)
                .count();
            let observed = obs.observe(&out, s as f64 * 0.0005);
            if n_c >= 2 {
                let ctx = DecoderContext {
                    coreset: cell.coreset,
                    pci: cell.pci.0,
                    common_sizing: DciSizing {
                        bwp_prbs: cell.coreset.n_prb,
                    },
                    ue_sizing: Some(DciSizing {
                        bwp_prbs: cell.carrier_prbs,
                    }),
                };
                let hyp = Hypotheses {
                    c_rntis: gnb.connected_rntis(),
                    allow_recovery: true,
                    ..Hypotheses::default()
                };
                return (
                    SlotJob {
                        slot: s,
                        slot_in_frame: out.slot_in_frame,
                        observed,
                        ctx,
                        hyp,
                        dci_threads,
                    },
                    n_c,
                );
            }
        }
        panic!("no multi-DCI slot found");
    }

    #[test]
    fn sharded_decode_finds_everything_single_and_multi_thread() {
        let (job1, n_c) = make_job(1);
        let r1 = process_slot(&job1);
        let mut job4 = job1.clone();
        job4.dci_threads = 4;
        let r4 = process_slot(&job4);
        let count =
            |r: &SlotResult| r.decoded.iter().filter(|d| d.rnti_type == nr_phy::types::RntiType::C).count();
        assert_eq!(count(&r1), n_c);
        assert_eq!(count(&r4), n_c, "sharding must not lose DCIs");
    }

    #[test]
    fn pool_processes_jobs_asynchronously() {
        let (job, _) = make_job(2);
        let pool = WorkerPool::new(3);
        for i in 0..12 {
            let mut j = job.clone();
            j.slot = i;
            pool.submit(j);
        }
        let results = pool.finish();
        assert_eq!(results.len(), 12);
        let mut slots: Vec<u64> = results.iter().map(|r| r.slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn processing_time_is_measured() {
        let (job, _) = make_job(1);
        let r = process_slot(&job);
        assert!(r.processing > Duration::ZERO);
    }
}
