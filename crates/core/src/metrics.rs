//! Pipeline observability: counters, gauges, and fixed-bucket latency
//! histograms for every stage of the decode pipeline (PR 2 tentpole).
//!
//! The ROADMAP's "as fast as the hardware allows" goal needs the pipeline
//! to be *measurable* before it is optimisable — the way platform studies
//! instrument srsRAN/OAI. This registry is designed for the hot path:
//!
//! * every instrument is a plain `AtomicU64` updated with `Relaxed`
//!   ordering — no locks, no allocation, shardable across the worker pool
//!   by construction (atomic adds commute);
//! * when disabled (the `enabled` flag), timers skip even the
//!   `Instant::now()` call, so the cost is one relaxed atomic load per
//!   stage entry — the bench (`BENCH_pipeline.json`) verifies the enabled
//!   overhead stays under 5%;
//! * histograms use fixed log-linear buckets (8 linear sub-buckets per
//!   power-of-two octave from 64 ns to ~17 s, plus an explicit overflow
//!   bucket), so recording is a bit-length computation plus one atomic
//!   increment, and p50/p99 are reconstructed from the cumulative bucket
//!   counts with linear interpolation inside the landing bucket.
//!
//! [`MetricsSnapshot`] freezes the registry into plain serde-serialisable
//! structs with JSON export ([`MetricsSnapshot::to_json`]) and a
//! human-readable table ([`MetricsSnapshot::summary`]).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bound on the keyed diagnostic-note ledger ([`Metrics::note`]): one slot
/// per distinct key, oldest key evicted beyond this.
const NOTES_MAX: usize = 16;

/// Pipeline stages with latency histograms. The order is the pipeline
/// order (Fig 4): radio capture → OFDM demod → PDCCH search → DCI decode →
/// RNTI classification → UE tracking, plus the worker-queue wait and the
/// whole-slot envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Radio front end: rendering/receiving one slot (nr-radio + observer).
    Capture,
    /// OFDM demodulation (FFT + CP removal) of an IQ slot.
    Demod,
    /// PDCCH blind search: candidate extraction/equalisation, or the
    /// whole-slot codeword scan at message fidelity.
    PdcchSearch,
    /// One candidate's DCI hypothesis testing (descramble + polar + CRC).
    DciDecode,
    /// RNTI classification and telemetry production for a decoded slot.
    Classify,
    /// UE tracking housekeeping: expiry, RACH state, throughput pruning.
    Tracking,
    /// Time a job spent queued before a worker picked it up.
    WorkerQueue,
    /// Whole-slot processing envelope (everything except capture).
    SlotTotal,
    /// Slot latency while the load governor sat at the `Full` rung.
    RungFull,
    /// Slot latency at the `PrunedSearch` rung.
    RungPruned,
    /// Slot latency at the `BroadcastOnly` rung.
    RungBroadcast,
    /// Slot latency at the `Shedding` rung.
    RungShedding,
    /// Clock-lock reacquisition time (air time from leaving `Locked` to
    /// re-entering it), all governor rungs.
    ClockReacquire,
    /// Reacquisition time while the governor sat at the `Full` rung.
    ClockReacquireFull,
    /// Reacquisition time at the `PrunedSearch` rung.
    ClockReacquirePruned,
    /// Reacquisition time at the `BroadcastOnly` rung.
    ClockReacquireBroadcast,
    /// Reacquisition time at the `Shedding` rung.
    ClockReacquireShedding,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 17] = [
        Stage::Capture,
        Stage::Demod,
        Stage::PdcchSearch,
        Stage::DciDecode,
        Stage::Classify,
        Stage::Tracking,
        Stage::WorkerQueue,
        Stage::SlotTotal,
        Stage::RungFull,
        Stage::RungPruned,
        Stage::RungBroadcast,
        Stage::RungShedding,
        Stage::ClockReacquire,
        Stage::ClockReacquireFull,
        Stage::ClockReacquirePruned,
        Stage::ClockReacquireBroadcast,
        Stage::ClockReacquireShedding,
    ];

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Capture => "capture",
            Stage::Demod => "demod",
            Stage::PdcchSearch => "pdcch_search",
            Stage::DciDecode => "dci_decode",
            Stage::Classify => "classify",
            Stage::Tracking => "tracking",
            Stage::WorkerQueue => "worker_queue",
            Stage::SlotTotal => "slot_total",
            Stage::RungFull => "rung_full",
            Stage::RungPruned => "rung_pruned_search",
            Stage::RungBroadcast => "rung_broadcast_only",
            Stage::RungShedding => "rung_shedding",
            Stage::ClockReacquire => "clock_reacquire",
            Stage::ClockReacquireFull => "clock_reacquire_full",
            Stage::ClockReacquirePruned => "clock_reacquire_pruned_search",
            Stage::ClockReacquireBroadcast => "clock_reacquire_broadcast_only",
            Stage::ClockReacquireShedding => "clock_reacquire_shedding",
        }
    }
}

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Slots processed by the scope.
    SlotsProcessed,
    /// Slots the front end dropped (overflow/stall markers).
    SlotsDropped,
    /// Slots whose sample layout matched no known carrier configuration.
    LayoutMismatches,
    /// PDCCH candidates scanned (codewords or grid candidates).
    CandidatesScanned,
    /// DCIs decoded, all RNTI classes.
    DcisDecoded,
    /// Transitions back to `Synced` after degradation.
    Resyncs,
    /// Slots received by the radio front end.
    RadioSlots,
    /// IQ samples through the virtual USRP.
    RadioSamples,
    /// AGC transients injected/observed at the front end.
    AgcKicks,
    /// Interference bursts (SNR penalties) at the front end.
    InterferenceBursts,
    /// Jobs shed by the worker pool under backpressure.
    JobsShed,
    /// Jobs quarantined after killing a worker.
    JobsQuarantined,
    /// Worker panics supervised by the pool.
    WorkerPanics,
    /// Slots whose processing latency exceeded the TTI budget.
    DeadlineMisses,
    /// UE-specific PDCCH candidates skipped by the search budget.
    CandidatesPruned,
    /// Data-priority jobs shed while broadcast jobs were protected.
    PrioritySheds,
    /// Workers abandoned by the watchdog after stalling past the deadline.
    WorkerStalls,
    /// Decode steps that failed gracefully (malformed fields, missing
    /// context) instead of crashing the worker.
    DecodeFailures,
    /// Telemetry log writes that failed (sink error) without aborting
    /// capture.
    LogWriteFailures,
    /// Journal appends that failed (sink error) without aborting capture.
    JournalWriteFailures,
    /// Group-commit journal batches handed to the OS by the writer thread.
    JournalBatches,
    /// Delta-encoded snapshots written between full checkpoints.
    SnapshotDeltasWritten,
    /// Checkpoints written durably by the background writer.
    CheckpointsWritten,
    /// Checkpoint writes that failed (I/O error in the background writer).
    CheckpointFailures,
    /// Checkpoint requests skipped because the previous write was still in
    /// flight (the hot path never blocks on the writer).
    CheckpointsSkipped,
    /// Broadcast payloads (MIB/SIB1/RRC Setup) rejected by the bounded
    /// parsers (truncated, oversized, or invalid fields).
    ParseRejects,
    /// CRC-passing DCIs rejected by stage-1 plausibility validation
    /// (RIV out of BWP, unknown TDRA row, reserved bits set, illegal
    /// MCS/RV combination).
    ValidationRejects,
    /// Never-corroborated C-RNTIs moved from probation to the quarantine
    /// ledger by stage-2 admission control.
    GhostRntisQuarantined,
    /// Journal writes retried after a transient storage error (the retry
    /// runs on the writer thread with exponential backoff — never the
    /// capture hot path).
    StorageRetries,
    /// Demotions to `NonDurable` after retries were exhausted, `ENOSPC`
    /// survived the emergency prune, or the journal writer died.
    StorageDemotions,
    /// Emergency checkpoint/journal prunes triggered by `ENOSPC`.
    EmergencyPrunes,
    /// Integer sample slips commanded by the timing-recovery loop.
    TimingSlips,
    /// Clock-lock losses (transitions out of `Locked`).
    ClockLockLosses,
    /// Clock step discontinuities detected (timing jumps beyond the
    /// tracking loop's fine range, including reported overrun gaps).
    ClockSteps,
    /// Hangs detected by liveness supervision: a supervised child silent
    /// past its hang deadline, or a worker abandoned by a watchdog while
    /// still holding a slot.
    HangsDetected,
    /// Warm restarts completed by any supervisor (child respawns, shard
    /// engine rebuilds, worker-pool respawns).
    RestartsTotal,
}

impl Counter {
    /// All counters.
    pub const ALL: [Counter; 36] = [
        Counter::SlotsProcessed,
        Counter::SlotsDropped,
        Counter::LayoutMismatches,
        Counter::CandidatesScanned,
        Counter::DcisDecoded,
        Counter::Resyncs,
        Counter::RadioSlots,
        Counter::RadioSamples,
        Counter::AgcKicks,
        Counter::InterferenceBursts,
        Counter::JobsShed,
        Counter::JobsQuarantined,
        Counter::WorkerPanics,
        Counter::DeadlineMisses,
        Counter::CandidatesPruned,
        Counter::PrioritySheds,
        Counter::WorkerStalls,
        Counter::DecodeFailures,
        Counter::LogWriteFailures,
        Counter::JournalWriteFailures,
        Counter::JournalBatches,
        Counter::SnapshotDeltasWritten,
        Counter::CheckpointsWritten,
        Counter::CheckpointFailures,
        Counter::CheckpointsSkipped,
        Counter::ParseRejects,
        Counter::ValidationRejects,
        Counter::GhostRntisQuarantined,
        Counter::StorageRetries,
        Counter::StorageDemotions,
        Counter::EmergencyPrunes,
        Counter::TimingSlips,
        Counter::ClockLockLosses,
        Counter::ClockSteps,
        Counter::HangsDetected,
        Counter::RestartsTotal,
    ];

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SlotsProcessed => "slots_processed",
            Counter::SlotsDropped => "slots_dropped",
            Counter::LayoutMismatches => "layout_mismatches",
            Counter::CandidatesScanned => "candidates_scanned",
            Counter::DcisDecoded => "dcis_decoded",
            Counter::Resyncs => "resyncs",
            Counter::RadioSlots => "radio_slots",
            Counter::RadioSamples => "radio_samples",
            Counter::AgcKicks => "agc_kicks",
            Counter::InterferenceBursts => "interference_bursts",
            Counter::JobsShed => "jobs_shed",
            Counter::JobsQuarantined => "jobs_quarantined",
            Counter::WorkerPanics => "worker_panics",
            Counter::DeadlineMisses => "deadline_misses",
            Counter::CandidatesPruned => "candidates_pruned",
            Counter::PrioritySheds => "priority_sheds",
            Counter::WorkerStalls => "worker_stalls",
            Counter::DecodeFailures => "decode_failures",
            Counter::LogWriteFailures => "log_write_failures",
            Counter::JournalWriteFailures => "journal_write_failures",
            Counter::JournalBatches => "journal_batches",
            Counter::SnapshotDeltasWritten => "snapshot_deltas_written",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::CheckpointFailures => "checkpoint_failures",
            Counter::CheckpointsSkipped => "checkpoints_skipped",
            Counter::ParseRejects => "parse_rejects",
            Counter::ValidationRejects => "validation_rejects",
            Counter::GhostRntisQuarantined => "ghost_rntis_quarantined",
            Counter::StorageRetries => "storage_retries",
            Counter::StorageDemotions => "storage_demotions",
            Counter::EmergencyPrunes => "emergency_prunes",
            Counter::TimingSlips => "timing_slips",
            Counter::ClockLockLosses => "clock_lock_losses",
            Counter::ClockSteps => "clock_steps",
            Counter::HangsDetected => "hangs_detected",
            Counter::RestartsTotal => "restarts_total",
        }
    }
}

/// Last-value gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Jobs waiting in the worker pool's bounded queue.
    QueueDepth,
    /// C-RNTIs currently tracked.
    TrackedUes,
    /// Live worker threads.
    WorkersAlive,
    /// Current load-governor rung (0 = Full … 3 = Shedding).
    LoadRung,
    /// Ghost RNTIs currently held in the quarantine ledger.
    QuarantineSize,
    /// Current durability-ladder rung (0 = Durable, 1 = DurableDegraded,
    /// 2 = NonDurable).
    DurabilityRung,
    /// Magnitude of the estimated sniffer clock drift, in parts-per-
    /// billion (gauges are unsigned; the signed value lives in
    /// [`crate::scope::NrScope::clock`] state and the fleet rollup).
    ClockDriftPpb,
    /// Current clock-lock rung (0 = Locked, 1 = Pulling, 2 = Unlocked).
    ClockLockState,
    /// 1 while a restart-storm circuit breaker is open (the child/shard is
    /// parked in lame-duck mode), 0 otherwise.
    RestartBreakerOpen,
    /// Microseconds of pipe silence a child heartbeat (or ack) ended — how
    /// close the supervised child last came to its hang deadline.
    HeartbeatLagUs,
}

impl Gauge {
    /// All gauges.
    pub const ALL: [Gauge; 10] = [
        Gauge::QueueDepth,
        Gauge::TrackedUes,
        Gauge::WorkersAlive,
        Gauge::LoadRung,
        Gauge::QuarantineSize,
        Gauge::DurabilityRung,
        Gauge::ClockDriftPpb,
        Gauge::ClockLockState,
        Gauge::RestartBreakerOpen,
        Gauge::HeartbeatLagUs,
    ];

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "queue_depth",
            Gauge::TrackedUes => "tracked_ues",
            Gauge::WorkersAlive => "workers_alive",
            Gauge::LoadRung => "load_rung",
            Gauge::QuarantineSize => "quarantine_size",
            Gauge::DurabilityRung => "durability_rung",
            Gauge::ClockDriftPpb => "clock_drift_ppb",
            Gauge::ClockLockState => "clock_lock_state",
            Gauge::RestartBreakerOpen => "restart_breaker_open",
            Gauge::HeartbeatLagUs => "heartbeat_lag_us",
        }
    }
}

/// Octaves (power-of-two ranges) covered by the histogram: 64 ns up to
/// `64·2^28` ≈ 17 s, which brackets everything from a single atomic to a
/// watchdog-length stall without saturating.
pub const HISTO_OCTAVES: usize = 28;

/// Linear sub-buckets per octave. Eight sub-buckets bound the quantile
/// quantisation error at 12.5% of the value (vs. the ×2 of pure log2
/// buckets, which collapsed p50 and p99 whenever a stage's samples
/// concentrated in one octave).
pub const HISTO_SUB_BUCKETS: usize = 8;

/// Number of histogram buckets: log-linear buckets plus one explicit
/// overflow bucket for samples at or beyond the top edge.
pub const HISTO_BUCKETS: usize = HISTO_OCTAVES * HISTO_SUB_BUCKETS + 1;

/// Smallest histogram bucket lower bound, ns (`64·2^0`).
pub const HISTO_BASE_NS: u64 = 64;

/// Lower edge of the overflow bucket, ns (`64·2^28`).
pub const HISTO_OVERFLOW_NS: u64 = HISTO_BASE_NS << HISTO_OCTAVES;

fn bucket_for(ns: u64) -> usize {
    if ns < HISTO_BASE_NS {
        return 0;
    }
    if ns >= HISTO_OVERFLOW_NS {
        return HISTO_BUCKETS - 1;
    }
    // ⌊log2⌋ via bit length gives the octave; the sub-bucket is the linear
    // position within it (octave width == octave lower bound, so the
    // division is by `lo`).
    let octave = (ns.ilog2() as usize) - 6;
    let lo = HISTO_BASE_NS << octave;
    let sub = (((ns - lo) as u128 * HISTO_SUB_BUCKETS as u128) / lo as u128) as usize;
    octave * HISTO_SUB_BUCKETS + sub.min(HISTO_SUB_BUCKETS - 1)
}

/// `[lo, hi)` bounds of bucket `i` in ns (`hi == u64::MAX` for overflow).
fn bucket_bounds_ns(i: usize) -> (u64, u64) {
    if i >= HISTO_OCTAVES * HISTO_SUB_BUCKETS {
        return (HISTO_OVERFLOW_NS, u64::MAX);
    }
    let octave = i / HISTO_SUB_BUCKETS;
    let sub = (i % HISTO_SUB_BUCKETS) as u64;
    let lo = HISTO_BASE_NS << octave;
    let step = lo / HISTO_SUB_BUCKETS as u64;
    (lo + sub * step, lo + (sub + 1) * step)
}

/// One stage's latency accumulator: lock-free fixed-bucket histogram.
#[derive(Debug)]
struct StageHisto {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTO_BUCKETS],
}

impl Default for StageHisto {
    fn default() -> Self {
        StageHisto {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StageHisto {
    fn observe_ns(&self, ns: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
        self.buckets[bucket_for(ns)].fetch_add(1, Relaxed);
    }

    /// Reconstruct the q-quantile (0..=1) from the bucket counts, in µs,
    /// interpolating linearly inside the landing bucket. Ranks landing in
    /// the overflow bucket interpolate toward the recorded maximum instead
    /// of a fabricated midpoint, so an out-of-range tail still reports a
    /// truthful magnitude.
    fn quantile_us(&self, counts: &[u64; HISTO_BUCKETS], max_ns: u64, q: f64) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds_ns(i);
                let hi = if hi == u64::MAX { max_ns.max(lo) } else { hi };
                let frac = (rank - seen) as f64 / c as f64;
                return (lo as f64 + frac * (hi - lo) as f64) / 1_000.0;
            }
            seen += c;
        }
        max_ns as f64 / 1_000.0
    }
}

/// The metrics registry: one per telemetry session, shared by `Arc` across
/// the scope, the observer, the radio front end, and the worker pool.
#[derive(Debug)]
pub struct Metrics {
    enabled: AtomicBool,
    stages: [StageHisto; Stage::ALL.len()],
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    /// Keyed free-text diagnostics (last checkpoint error, last storage
    /// error, demotion reason): a counter says *how often*, a note says
    /// *why*. Off the hot path — written only on error/transition edges.
    notes: Mutex<Vec<(String, String)>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new(true)
    }
}

impl Metrics {
    /// New registry; `enabled` controls whether instruments record.
    pub fn new(enabled: bool) -> Metrics {
        Metrics {
            enabled: AtomicBool::new(enabled),
            stages: Default::default(),
            // `Default` for arrays stops at 32 elements; build in place.
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: Default::default(),
            notes: Mutex::new(Vec::new()),
        }
    }

    /// New shared registry (the usual way to construct one).
    pub fn shared(enabled: bool) -> Arc<Metrics> {
        Arc::new(Metrics::new(enabled))
    }

    /// Whether instruments currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Enable or disable recording at runtime (existing values are kept).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Relaxed);
    }

    /// Increment a counter by 1.
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a counter by `n`.
    pub fn add(&self, c: Counter, n: u64) {
        if self.is_enabled() {
            self.counters[c as usize].fetch_add(n, Relaxed);
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Relaxed)
    }

    /// Set a gauge to `v`.
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        if self.is_enabled() {
            self.gauges[g as usize].store(v, Relaxed);
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Relaxed)
    }

    /// Record a keyed diagnostic note (latest detail wins per key).
    /// Recorded even when the registry is disabled: an operator who turned
    /// instrumentation off still wants to know *why* durability degraded.
    pub fn note(&self, key: &str, detail: impl Into<String>) {
        let mut notes = match self.notes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(slot) = notes.iter_mut().find(|(k, _)| k == key) {
            slot.1 = detail.into();
            return;
        }
        if notes.len() >= NOTES_MAX {
            notes.remove(0);
        }
        notes.push((key.to_string(), detail.into()));
    }

    /// Latest detail recorded for a note key, if any.
    pub fn note_detail(&self, key: &str) -> Option<String> {
        let notes = match self.notes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        notes.iter().find(|(k, _)| k == key).map(|(_, d)| d.clone())
    }

    /// Record a duration observation for a stage.
    pub fn observe(&self, stage: Stage, d: std::time::Duration) {
        if self.is_enabled() {
            self.observe_ns(stage, d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    fn observe_ns(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].observe_ns(ns);
    }

    /// Start timing a stage. Recording happens when the returned guard
    /// drops; when the registry is disabled, no clock is read at all.
    pub fn start(self: &Arc<Metrics>, stage: Stage) -> StageTimer {
        StageTimer {
            inner: self
                .is_enabled()
                .then(|| (Arc::clone(self), stage, Instant::now())),
        }
    }

    /// Like [`Metrics::start`] but usable through an `Option<&Arc<_>>`
    /// (the idiom for plumbed-through optional registries).
    pub fn maybe_start(metrics: Option<&Arc<Metrics>>, stage: Stage) -> StageTimer {
        match metrics {
            Some(m) => m.start(stage),
            None => StageTimer { inner: None },
        }
    }

    /// Freeze every instrument into a serialisable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let h = &self.stages[s as usize];
                let counts: [u64; HISTO_BUCKETS] =
                    std::array::from_fn(|i| h.buckets[i].load(Relaxed));
                let count = h.count.load(Relaxed);
                let sum_ns = h.sum_ns.load(Relaxed);
                let max_ns = h.max_ns.load(Relaxed);
                StageSnapshot {
                    stage: s.name().to_string(),
                    count,
                    total_ms: sum_ns as f64 / 1e6,
                    mean_us: if count == 0 {
                        0.0
                    } else {
                        sum_ns as f64 / count as f64 / 1e3
                    },
                    p50_us: h.quantile_us(&counts, max_ns, 0.50),
                    p99_us: h.quantile_us(&counts, max_ns, 0.99),
                    max_us: max_ns as f64 / 1e3,
                }
            })
            .collect();
        let counters = Counter::ALL
            .iter()
            .map(|&c| CounterSnapshot {
                name: c.name().to_string(),
                value: self.counter(c),
            })
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| GaugeSnapshot {
                name: g.name().to_string(),
                value: self.gauge(g),
            })
            .collect();
        let notes = match self.notes.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        MetricsSnapshot {
            schema_version: crate::SCHEMA_VERSION,
            enabled: self.is_enabled(),
            counters,
            gauges,
            stages,
            notes,
        }
    }

    /// Restore counter values from a frozen snapshot (crash-safe session
    /// recovery). Counters whose names the snapshot does not carry are left
    /// untouched; unknown snapshot names are ignored. Histograms and gauges
    /// are not restorable — snapshots keep only their aggregates — so the
    /// restarted registry's latency view starts fresh.
    pub fn restore_counters(&self, snap: &MetricsSnapshot) {
        for c in Counter::ALL {
            if let Some(v) = snap.counter(c.name()) {
                self.counters[c as usize].store(v, Relaxed);
            }
        }
    }
}

/// RAII stage timer from [`Metrics::start`]; records on drop.
#[derive(Debug)]
pub struct StageTimer {
    inner: Option<(Arc<Metrics>, Stage, Instant)>,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some((m, stage, start)) = self.inner.take() {
            m.observe(stage, start.elapsed());
        }
    }
}

/// One stage's frozen latency statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name ([`Stage::name`]).
    pub stage: String,
    /// Observations recorded.
    pub count: u64,
    /// Total time in the stage, ms.
    pub total_ms: f64,
    /// Mean observation, µs.
    pub mean_us: f64,
    /// Median (p50) from the histogram buckets, µs.
    pub p50_us: f64,
    /// 99th percentile from the histogram buckets, µs.
    pub p99_us: f64,
    /// Largest single observation, µs.
    pub max_us: f64,
}

/// One counter's frozen value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Counter name ([`Counter::name`]).
    pub name: String,
    /// Value.
    pub value: u64,
}

/// One gauge's frozen value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Gauge name ([`Gauge::name`]).
    pub name: String,
    /// Value.
    pub value: u64,
}

/// A frozen view of the whole registry (JSON schema of
/// `BENCH_pipeline.json`'s `stages`/`counters` arrays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Serialisation schema version ([`crate::SCHEMA_VERSION`]); snapshots
    /// from a future schema are rejected by [`MetricsSnapshot::from_json`].
    pub schema_version: u32,
    /// Whether the registry was recording when frozen.
    pub enabled: bool,
    /// All counters, in [`Counter::ALL`] order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, in [`Gauge::ALL`] order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All stages, in [`Stage::ALL`] (pipeline) order.
    pub stages: Vec<StageSnapshot>,
    /// Keyed diagnostic notes ([`Metrics::note`]), insertion order.
    /// Defaulted so snapshots written before the storage-fault work parse.
    #[serde(default)]
    pub notes: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Serialise to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialises")
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_json`] output.
    /// Rejects snapshots written by a future schema version — their field
    /// semantics are unknowable, so loading them would silently misread.
    pub fn from_json(s: &str) -> Result<MetricsSnapshot, serde_json::Error> {
        let snap: MetricsSnapshot = serde_json::from_str(s)?;
        if snap.schema_version > crate::SCHEMA_VERSION {
            return Err(serde_json::Error::from(serde::DeError(format!(
                "metrics snapshot schema v{} is newer than supported v{}",
                snap.schema_version,
                crate::SCHEMA_VERSION
            ))));
        }
        Ok(snap)
    }

    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Look up a diagnostic note by key.
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, d)| d.as_str())
    }

    /// Human-readable summary table (the examples print this).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline metrics ({})\n",
            if self.enabled { "enabled" } else { "disabled" }
        ));
        out.push_str(&format!(
            "  {:<14} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "count", "mean_us", "p50_us", "p99_us", "max_us"
        ));
        for s in &self.stages {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<14} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                s.stage, s.count, s.mean_us, s.p50_us, s.p99_us, s.max_us
            ));
        }
        for c in &self.counters {
            if c.value != 0 {
                out.push_str(&format!("  {:<30} {}\n", c.name, c.value));
            }
        }
        for g in &self.gauges {
            if g.value != 0 {
                out.push_str(&format!("  {:<30} {}\n", g.name, g.value));
            }
        }
        for (key, detail) in &self.notes {
            out.push_str(&format!("  note {key}: {detail}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn buckets_are_log_linear_from_64ns() {
        // Below base: bucket 0. First octave [64, 128) splits into 8
        // linear sub-buckets of 8 ns each.
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(63), 0);
        assert_eq!(bucket_for(64), 0);
        assert_eq!(bucket_for(71), 0);
        assert_eq!(bucket_for(72), 1);
        assert_eq!(bucket_for(127), 7);
        // Octave 1 starts at bucket 8.
        assert_eq!(bucket_for(128), 8);
        assert_eq!(bucket_for((64 << 10) as u64), 10 * HISTO_SUB_BUCKETS);
        // Top edge and beyond land in the explicit overflow bucket.
        assert_eq!(bucket_for(HISTO_OVERFLOW_NS - 1), HISTO_BUCKETS - 2);
        assert_eq!(bucket_for(HISTO_OVERFLOW_NS), HISTO_BUCKETS - 1);
        assert_eq!(bucket_for(u64::MAX), HISTO_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_monotonic() {
        let mut prev_hi = HISTO_BASE_NS;
        for i in 0..HISTO_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds_ns(i);
            if i > 0 {
                assert_eq!(lo, prev_hi, "bucket {i} not contiguous");
            }
            assert!(hi > lo, "bucket {i} empty");
            // Every representative value maps back to its own bucket.
            assert_eq!(bucket_for(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_for(hi - 1), i, "upper edge of bucket {i}");
            prev_hi = hi;
        }
        assert_eq!(prev_hi, HISTO_OVERFLOW_NS);
    }

    #[test]
    fn quantiles_resolve_within_one_octave() {
        // Regression for the p50 == p99 saturation bug: spread samples
        // across one octave (all in old-style bucket 19, [33.5 ms, 67 ms))
        // and the percentiles must still separate.
        let m = Metrics::new(true);
        for i in 0..100u64 {
            m.observe(Stage::WorkerQueue, Duration::from_micros(34_000 + 300 * i));
        }
        let snap = m.snapshot();
        let s = snap.stage("worker_queue").unwrap();
        assert!(
            s.p99_us > s.p50_us * 1.2,
            "p50 {} and p99 {} collapsed",
            s.p50_us,
            s.p99_us
        );
        // Interpolated quantiles stay within ~13% of the true values.
        assert!((s.p50_us - 49_000.0).abs() < 6_500.0, "p50 {}", s.p50_us);
        assert!((s.p99_us - 63_700.0).abs() < 8_300.0, "p99 {}", s.p99_us);
    }

    #[test]
    fn overflow_bucket_reports_true_magnitude() {
        // Samples beyond the top edge must not collapse to a fabricated
        // bucket midpoint: the overflow bucket interpolates toward the
        // recorded maximum.
        let m = Metrics::new(true);
        for _ in 0..10 {
            m.observe(Stage::WorkerQueue, Duration::from_secs(30));
        }
        let snap = m.snapshot();
        let s = snap.stage("worker_queue").unwrap();
        let overflow_lo_us = HISTO_OVERFLOW_NS as f64 / 1e3;
        assert!(s.p50_us >= overflow_lo_us, "p50 {}", s.p50_us);
        assert!(
            s.p99_us <= s.max_us + 1.0,
            "p99 {} max {}",
            s.p99_us,
            s.max_us
        );
        assert!(s.max_us >= 29.9e6, "max {}", s.max_us);
    }

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        let m = Metrics::shared(true);
        m.inc(Counter::DcisDecoded);
        m.add(Counter::DcisDecoded, 4);
        m.gauge_set(Gauge::QueueDepth, 17);
        assert_eq!(m.counter(Counter::DcisDecoded), 5);
        assert_eq!(m.gauge(Gauge::QueueDepth), 17);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = Metrics::shared(false);
        m.inc(Counter::DcisDecoded);
        m.gauge_set(Gauge::QueueDepth, 9);
        m.observe(Stage::DciDecode, Duration::from_micros(10));
        {
            let _t = m.start(Stage::Capture);
        }
        let snap = m.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.iter().all(|c| c.value == 0));
        assert!(snap.gauges.iter().all(|g| g.value == 0));
        assert!(snap.stages.iter().all(|s| s.count == 0));
    }

    #[test]
    fn timer_guard_populates_stage_histogram() {
        let m = Metrics::shared(true);
        for _ in 0..50 {
            let _t = m.start(Stage::PdcchSearch);
            std::hint::black_box(0u64);
        }
        let snap = m.snapshot();
        let s = snap.stage("pdcch_search").unwrap();
        assert_eq!(s.count, 50);
        assert!(s.p99_us >= s.p50_us);
        assert!(s.max_us > 0.0);
    }

    #[test]
    fn percentiles_come_from_the_right_buckets() {
        let m = Metrics::new(true);
        // 99 fast observations (~1 µs), 1 slow (~1 ms).
        for _ in 0..99 {
            m.observe(Stage::Demod, Duration::from_micros(1));
        }
        m.observe(Stage::Demod, Duration::from_millis(1));
        let snap = m.snapshot();
        let s = snap.stage("demod").unwrap();
        assert_eq!(s.count, 100);
        assert!(s.p50_us < 3.0, "p50 {}", s.p50_us);
        assert!(s.p99_us < 3.0, "p99 is still in the fast bucket");
        assert!(s.max_us > 900.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::new(true);
        m.add(Counter::SlotsProcessed, 123);
        m.observe(Stage::SlotTotal, Duration::from_micros(250));
        let snap = m.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parses");
        assert_eq!(snap, back);
        assert_eq!(back.counter("slots_processed"), Some(123));
    }

    #[test]
    fn summary_lists_active_stages_only() {
        let m = Metrics::new(true);
        m.observe(Stage::Capture, Duration::from_micros(5));
        let text = m.snapshot().summary();
        assert!(text.contains("capture"));
        assert!(
            !text.contains("worker_queue"),
            "idle stages omitted:\n{text}"
        );
    }

    #[test]
    fn notes_replace_by_key_and_survive_snapshots() {
        let m = Metrics::new(false); // recorded even while disabled
        m.note("checkpoint_error", "disk on fire");
        m.note("checkpoint_error", "disk merely smouldering");
        m.note("storage_demotion", "retries exhausted");
        assert_eq!(
            m.note_detail("checkpoint_error").as_deref(),
            Some("disk merely smouldering")
        );
        let snap = m.snapshot();
        assert_eq!(
            snap.note("checkpoint_error"),
            Some("disk merely smouldering")
        );
        assert_eq!(snap.note("storage_demotion"), Some("retries exhausted"));
        assert!(snap.summary().contains("note checkpoint_error"));
        // Round-trips (and pre-notes snapshots still parse via default).
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(snap, back);
        // The ledger is bounded: flooding distinct keys evicts the oldest.
        for i in 0..(NOTES_MAX * 2) {
            m.note(&format!("k{i}"), "x");
        }
        assert!(m.snapshot().notes.len() <= NOTES_MAX);
    }

    #[test]
    fn maybe_start_is_inert_without_a_registry() {
        let _t = Metrics::maybe_start(None, Stage::DciDecode);
        // Dropping must not panic or record anywhere.
    }
}
