//! Compact binary codec for the serde [`Content`] model.
//!
//! The journal and snapshot fast paths (see [`crate::persist`]) need a
//! serialisation format that is cheap to *write* per slot: JSON spends
//! most of its time formatting integers into decimal text and escaping
//! strings. This codec writes the same self-describing value tree as a
//! tagged byte stream — LEB128 varints for integers, raw LE bytes for
//! floats, length-prefixed UTF-8 for strings — so encoding is a handful
//! of byte pushes per field and decoding is a single forward scan.
//!
//! The format is self-describing (every value carries its tag), so the
//! normal serde `Serialize`/`Deserialize` impls work unchanged on top:
//! `encode_value(v)` is `encode(&v.serialize_content())` and decoding
//! reverses it. Decoding is hardened against corrupt or hostile bytes:
//! every length is validated against the remaining input, nesting depth
//! is capped, and malformed input returns `None` — never a panic, never
//! an attempt to allocate a length the input cannot back.

use serde::{Content, Deserialize, Serialize};

/// Value-tree nesting bound: deeper input is rejected as corrupt (the
/// deepest real artefact — a `SessionState` — nests about six levels).
const MAX_DEPTH: u32 = 64;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

/// Append `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Read an LEB128 varint at `*pos`, advancing it. `None` on truncation
/// or a varint longer than 10 bytes (which cannot encode a `u64`).
pub fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in 0..10u32 {
        let b = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << (7 * shift).min(63);
        if b & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append one [`Content`] tree to `buf`.
pub fn put_content(buf: &mut Vec<u8>, c: &Content) {
    match c {
        Content::Null => buf.push(TAG_NULL),
        Content::Bool(false) => buf.push(TAG_FALSE),
        Content::Bool(true) => buf.push(TAG_TRUE),
        Content::U64(v) => {
            buf.push(TAG_U64);
            put_varint(buf, *v);
        }
        Content::I64(v) => {
            buf.push(TAG_I64);
            put_varint(buf, zigzag(*v));
        }
        Content::F64(v) => {
            buf.push(TAG_F64);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Content::Str(s) => {
            buf.push(TAG_STR);
            put_varint(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
        Content::Seq(items) => {
            buf.push(TAG_SEQ);
            put_varint(buf, items.len() as u64);
            for item in items {
                put_content(buf, item);
            }
        }
        Content::Map(entries) => {
            buf.push(TAG_MAP);
            put_varint(buf, entries.len() as u64);
            for (k, v) in entries {
                put_varint(buf, k.len() as u64);
                buf.extend_from_slice(k.as_bytes());
                put_content(buf, v);
            }
        }
    }
}

/// Read one [`Content`] tree at `*pos`, advancing it. `None` on any
/// truncation, bad tag, bad UTF-8, over-long length, or excessive depth.
pub fn get_content(data: &[u8], pos: &mut usize) -> Option<Content> {
    get_content_depth(data, pos, 0)
}

fn get_str(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = get_varint(data, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > data.len() {
        return None;
    }
    let s = std::str::from_utf8(&data[*pos..end]).ok()?.to_string();
    *pos = end;
    Some(s)
}

fn get_content_depth(data: &[u8], pos: &mut usize, depth: u32) -> Option<Content> {
    if depth > MAX_DEPTH {
        return None;
    }
    let tag = *data.get(*pos)?;
    *pos += 1;
    Some(match tag {
        TAG_NULL => Content::Null,
        TAG_FALSE => Content::Bool(false),
        TAG_TRUE => Content::Bool(true),
        TAG_U64 => Content::U64(get_varint(data, pos)?),
        TAG_I64 => Content::I64(unzigzag(get_varint(data, pos)?)),
        TAG_F64 => {
            let end = pos.checked_add(8)?;
            let bytes: [u8; 8] = data.get(*pos..end)?.try_into().ok()?;
            *pos = end;
            Content::F64(f64::from_le_bytes(bytes))
        }
        TAG_STR => Content::Str(get_str(data, pos)?.into()),
        TAG_SEQ => {
            let n = get_varint(data, pos)? as usize;
            // Every element costs at least one tag byte, so a count the
            // remaining input cannot back is corrupt — reject before
            // allocating.
            if n > data.len() - (*pos).min(data.len()) {
                return None;
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_content_depth(data, pos, depth + 1)?);
            }
            Content::Seq(items)
        }
        TAG_MAP => {
            let n = get_varint(data, pos)? as usize;
            if n > data.len() - (*pos).min(data.len()) {
                return None;
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_str(data, pos)?;
                let v = get_content_depth(data, pos, depth + 1)?;
                entries.push((k.into(), v));
            }
            Content::Map(entries)
        }
        _ => return None,
    })
}

// Wire-format building blocks for hand-rolled encoders. A caller that
// writes a value with these MUST emit exactly what `put_value` would for
// the same data (pin it with an equality test) — decoding is always the
// generic tree walk and has no idea who produced the bytes.

/// Append a map header; must be followed by exactly `n` key/value pairs
/// ([`put_key`] then one value each).
pub fn put_map_header(buf: &mut Vec<u8>, n: usize) {
    buf.push(TAG_MAP);
    put_varint(buf, n as u64);
}

/// Append a map key (length-prefixed, no tag — map keys are always
/// strings and carry none).
pub fn put_key(buf: &mut Vec<u8>, k: &str) {
    put_varint(buf, k.len() as u64);
    buf.extend_from_slice(k.as_bytes());
}

/// Append a string value.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.push(TAG_STR);
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Append an unsigned integer value.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.push(TAG_U64);
    put_varint(buf, v);
}

/// Append a boolean value.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(if v { TAG_TRUE } else { TAG_FALSE });
}

/// Encode any serialisable value to bytes.
pub fn encode_value<T: Serialize>(v: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    put_content(&mut buf, &v.serialize_content());
    buf
}

/// Append any serialisable value to an existing buffer.
pub fn put_value<T: Serialize>(buf: &mut Vec<u8>, v: &T) {
    put_content(buf, &v.serialize_content());
}

/// Decode a value at `*pos`, advancing it. `None` on malformed bytes or
/// a tree the type cannot be built from.
pub fn get_value<T: Deserialize>(data: &[u8], pos: &mut usize) -> Option<T> {
    let c = get_content(data, pos)?;
    T::deserialize_content(&c).ok()
}

/// Decode a value from exactly `data` (trailing bytes are an error:
/// a fixed-size artefact with slack is a framing bug, not a value).
pub fn decode_value<T: Deserialize>(data: &[u8]) -> Option<T> {
    let mut pos = 0;
    let v = get_value(data, &mut pos)?;
    (pos == data.len()).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn content_round_trips() {
        let c = Content::Map(vec![
            ("a".into(), Content::U64(42)),
            ("b".into(), Content::I64(-7)),
            ("c".into(), Content::F64(1.5)),
            (
                "d".into(),
                Content::Seq(vec![
                    Content::Null,
                    Content::Bool(true),
                    Content::Str("hello".into()),
                ]),
            ),
        ]);
        let mut buf = Vec::new();
        put_content(&mut buf, &c);
        let mut pos = 0;
        assert_eq!(get_content(&buf, &mut pos), Some(c));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncation_and_corruption_never_panic() {
        let c = Content::Seq(vec![
            Content::Str("abc".into()),
            Content::U64(1 << 40),
            Content::Map(vec![("k".into(), Content::F64(2.5))]),
        ]);
        let mut buf = Vec::new();
        put_content(&mut buf, &c);
        // Every truncation point decodes to None or a valid prefix value.
        for cut in 0..buf.len() {
            let mut pos = 0;
            let _ = get_content(&buf[..cut], &mut pos);
        }
        // Every single-byte corruption either still parses or returns None.
        for i in 0..buf.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = buf.clone();
                bad[i] ^= mask;
                let mut pos = 0;
                let _ = get_content(&bad, &mut pos);
            }
        }
    }

    #[test]
    fn oversized_collection_count_is_rejected() {
        // Seq claiming 2^40 elements with 2 bytes of input.
        let mut buf = vec![TAG_SEQ];
        put_varint(&mut buf, 1 << 40);
        let mut pos = 0;
        assert_eq!(get_content(&buf, &mut pos), None);
    }

    #[test]
    fn depth_bomb_is_rejected() {
        // 200 nested single-element sequences.
        let mut buf = Vec::new();
        for _ in 0..200 {
            buf.push(TAG_SEQ);
            buf.push(1);
        }
        buf.push(TAG_NULL);
        let mut pos = 0;
        assert_eq!(get_content(&buf, &mut pos), None);
    }

    #[test]
    fn typed_values_round_trip() {
        let v: Vec<(u64, String)> = vec![(1, "x".into()), (2, "y".into())];
        let bytes = encode_value(&v);
        assert_eq!(decode_value::<Vec<(u64, String)>>(&bytes), Some(v));
        assert_eq!(decode_value::<Vec<(u64, String)>>(&bytes[..3]), None);
    }
}
