//! Fault-isolated multi-cell fleet: N per-cell pipelines ("shards") share
//! one worker pool while remaining independent failure domains.
//!
//! The paper monitors a single cell, but its evaluation spans four
//! testbeds and the ROADMAP's north star is a carrier-scale deployment
//! watching hundreds of cells at once. The robustness requirement at that
//! scale is *between* cells: a wedged, panicking, or overloaded cell
//! pipeline must never stall or starve its siblings. This module applies
//! the bulkhead pattern:
//!
//! * **Per-shard everything.** Each shard owns a full [`NrScope`] (or a
//!   durable [`PersistentSession`]) — its own governor, sync-health
//!   machine, tracker, and persistence directory. Nothing decode-related
//!   is shared, so no shard can corrupt another's state.
//! * **Per-shard bounded queues.** A slow shard sheds its *own* oldest
//!   slots ([`FeedOutcome::ShedOldest`]); backpressure never crosses a
//!   bulkhead. Shed and gap-filled slots are processed as
//!   [`Capture::Dropped`], so the shard's governor and sync health see
//!   honest accounting.
//! * **One worker at a time per shard.** Workers `try_lock` a shard's
//!   engine before touching its queue, which guarantees per-shard FIFO
//!   order *and* caps the blast radius of a wedge: a stuck shard can
//!   consume at most one worker, and the supervisor spawns a replacement
//!   so fleet capacity is restored while the stuck thread drains.
//! * **Supervised warm restarts.** Panics are caught per slot
//!   (`catch_unwind`, as in [`crate::worker`]); wedges are detected by a
//!   watchdog (busy-timestamp fencing, as in [`crate::worker`]'s pool)
//!   and the engine generation is bumped so the stuck worker discards its
//!   fenced engine on wake. Either way the shard's engine is quarantined
//!   and rebuilt — durable shards resume from their own checkpoint +
//!   journal at the exact slot they had journalled (missed slots are
//!   gap-filled as drops, the [`crate::supervise`] watermark rule, so
//!   nothing is double-counted) — with exponential backoff between
//!   consecutive faults and calm-window decay.
//! * **Cross-cell UE continuity.** Shards emit [`UeEvent`]s from the
//!   existing probation/admission machinery; the fleet matches a C-RNTI
//!   that went quiet on cell A against a fresh admission on cell B within
//!   [`FleetConfig::continuity_window_slots`] of the activity edge and
//!   counts the pair as one user handed over, not two.

use crate::config::{FleetConfig, ScopeConfig};
use crate::governor::LoadModel;
use crate::metrics::{Counter, Gauge};
use crate::observe::{Capture, DropReason};
use crate::persist::{
    DurabilityRung, JournalWriter, PersistConfig, PersistentSession, RecoveryReport,
};
use crate::scope::{NrScope, SyncState, UeEvent};
use crate::supervise::{BreakerState, RestartBreaker};
use crate::worker::{spawn_background, InjectedFault};
use nr_phy::types::{Pci, Rnti};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Entries a worker processes per engine acquisition before releasing the
/// shard — bounds how long one hot shard can monopolise a worker.
const MAX_BATCH: usize = 16;

/// Bound on buffered per-shard latency samples (enqueue → slot done).
const LATENCY_BUF_MAX: usize = 1 << 17;

/// Bound on unmatched continuity edges kept for cross-cell matching.
const CONTINUITY_PENDING_MAX: usize = 1024;

/// One cell pipeline's static description.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Display name (cell preset name, typically).
    pub name: String,
    /// Assumed PCI (message fidelity) — `None` lets IQ cell search run.
    pub pci: Option<Pci>,
    /// The shard's scope configuration.
    pub scope: ScopeConfig,
    /// When set, the shard is durable: journalled per slot and
    /// warm-restarted from its own checkpoint directory.
    pub persist: Option<PersistConfig>,
    /// Deterministic latency model fed to the shard's governor.
    pub load_model: Option<LoadModel>,
}

impl ShardSpec {
    /// An in-memory (volatile) shard: restarts are cold.
    pub fn volatile(name: impl Into<String>, pci: Option<Pci>, scope: ScopeConfig) -> ShardSpec {
        ShardSpec {
            name: name.into(),
            pci,
            scope,
            persist: None,
            load_model: None,
        }
    }

    /// A durable shard: checkpoint + journal under its own directory.
    pub fn durable(
        name: impl Into<String>,
        pci: Option<Pci>,
        scope: ScopeConfig,
        persist: PersistConfig,
    ) -> ShardSpec {
        ShardSpec {
            name: name.into(),
            pci,
            scope,
            persist: Some(persist),
            load_model: None,
        }
    }
}

/// A shard's decode engine: the bulkheaded unit that is quarantined and
/// rebuilt on fault.
enum ShardEngine {
    /// Durable: journalled, checkpointed, warm-restartable.
    Durable(Box<PersistentSession>),
    /// Volatile: plain scope, cold restart.
    Volatile(Box<NrScope>),
}

impl ShardEngine {
    fn build(
        spec: &ShardSpec,
        writer: Option<&JournalWriter>,
    ) -> io::Result<(ShardEngine, Option<RecoveryReport>)> {
        match &spec.persist {
            Some(p) => {
                let (mut session, report) = match writer {
                    // Fleet default: every shard's journal batches flow
                    // through one shared group-commit thread.
                    Some(w) => {
                        PersistentSession::open_with_writer(p.clone(), spec.scope, spec.pci, w)?
                    }
                    None => PersistentSession::open(p.clone(), spec.scope, spec.pci)?,
                };
                session.scope_mut().set_load_model(spec.load_model);
                Ok((ShardEngine::Durable(Box::new(session)), Some(report)))
            }
            None => {
                let mut scope = NrScope::new(spec.scope, spec.pci);
                scope.set_load_model(spec.load_model);
                Ok((ShardEngine::Volatile(Box::new(scope)), None))
            }
        }
    }

    fn scope(&self) -> &NrScope {
        match self {
            ShardEngine::Durable(s) => s.scope(),
            ShardEngine::Volatile(s) => s,
        }
    }

    fn scope_mut(&mut self) -> &mut NrScope {
        match self {
            ShardEngine::Durable(s) => s.scope_mut(),
            ShardEngine::Volatile(s) => s,
        }
    }

    fn process(&mut self, cap: &Capture) {
        match self {
            ShardEngine::Durable(s) => {
                s.process_capture(cap);
            }
            ShardEngine::Volatile(s) => {
                s.process_capture(cap);
            }
        }
    }
}

/// Shard health as the supervisor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardHealth {
    /// Processing normally.
    Healthy,
    /// Engine lost to a panic; restart pending.
    Faulted,
    /// Engine fenced off by the watchdog; restart pending.
    Wedged,
}

impl ShardHealth {
    /// Stable snake_case name for snapshots.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Faulted => "faulted",
            ShardHealth::Wedged => "wedged",
        }
    }
}

/// Chaos hook: what to do to a shard's next slot(s).
#[derive(Debug, Clone, Copy)]
pub enum FaultPlan {
    /// No injected fault.
    None,
    /// Apply once to the next processed slot, then clear.
    OneShot(InjectedFault),
    /// Delay every processed slot by this much (sustained overload).
    EverySlot(Duration),
}

/// Outcome of [`Fleet::feed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// Enqueued within bounds.
    Queued,
    /// The queue was full: this shard's *own* oldest entry was shed to
    /// make room (the bulkhead never pushes back on siblings).
    ShedOldest,
}

/// A queued observation awaiting a worker.
struct QueueEntry {
    seq: u64,
    cap: Capture,
    enqueued: Instant,
}

/// The engine cell: the generation fences a wedged holder's engine.
struct EngineCell {
    gen: u64,
    engine: Option<ShardEngine>,
}

/// Mutable supervisor-side state of one shard.
struct ShardControl {
    health: ShardHealth,
    restart_due: Option<Instant>,
    backoff_exp: u32,
    last_fault_at: Option<Instant>,
    /// Recovery report of the most recent warm restart.
    last_recovery: Option<RecoveryReport>,
}

/// Rollup stats refreshed by whichever worker holds the engine — read by
/// [`Fleet::rollup`] without blocking on a possibly-wedged engine lock.
#[derive(Debug, Clone, Default)]
struct CachedStats {
    slots: u64,
    dcis: u64,
    tracked_ues: u64,
    discovered: u64,
    sync: &'static str,
    load_rung: &'static str,
    watermark: u64,
    durability: &'static str,
    loss_window: Option<u64>,
    clock_lock: &'static str,
    clock_drift_ppb: i64,
    timing_slips: u64,
}

/// One shard's runtime.
struct Shard {
    spec: ShardSpec,
    queue: Mutex<VecDeque<QueueEntry>>,
    engine: Mutex<EngineCell>,
    /// Epoch-relative ns + 1 while a worker is processing; 0 when idle.
    busy_since_ns: AtomicU64,
    /// Fence generation: bumped by the watchdog to invalidate the engine
    /// held by a stuck worker.
    gen: AtomicU64,
    control: Mutex<ShardControl>,
    fault: Mutex<FaultPlan>,
    cache: Mutex<CachedStats>,
    latencies: Mutex<Vec<u64>>,
    highest_fed: AtomicU64,
    sheds: AtomicU64,
    panics: AtomicU64,
    wedges: AtomicU64,
    restarts: AtomicU64,
    /// A durable shard whose disk died and whose engine was replaced by a
    /// volatile fallback (restart can't fix a disk). Cleared if a later
    /// rebuild gets the durable engine back.
    degraded: AtomicBool,
    /// Token-bucket restart budget; exhaustion parks the shard lame-duck
    /// instead of hot-looping rebuilds. Slot clock = `highest_fed`.
    breaker: Mutex<RestartBreaker>,
    /// Parked behind an open breaker on a volatile fallback engine.
    lame_duck: AtomicBool,
}

/// An unmatched continuity edge.
struct PendingDiscovery {
    shard: usize,
    rnti: Rnti,
    seq: u64,
}

struct PendingExpiry {
    shard: usize,
    rnti: Rnti,
    last_active_slot: u64,
}

/// One matched cross-cell handover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContinuityMatch {
    /// Shard the UE expired on.
    pub from_shard: usize,
    /// Shard the UE was admitted on.
    pub to_shard: usize,
    /// C-RNTI on the old cell.
    pub expired_rnti: Rnti,
    /// C-RNTI assigned by the new cell.
    pub new_rnti: Rnti,
    /// Last slot the UE was active on the old cell.
    pub last_active_slot: u64,
    /// Slot the UE was admitted on the new cell.
    pub discovered_slot: u64,
}

struct ContinuityState {
    pending_discoveries: VecDeque<PendingDiscovery>,
    pending_expiries: VecDeque<PendingExpiry>,
    continuations: u64,
    matches: Vec<ContinuityMatch>,
}

/// Shared fleet state (workers + supervisor).
struct FleetShared {
    cfg: FleetConfig,
    shards: Vec<Shard>,
    continuity: Mutex<ContinuityState>,
    shutdown: AtomicBool,
    epoch: Instant,
    live_workers: AtomicUsize,
    target_workers: usize,
    /// Shared group-commit journal writer for durable shards (absent when
    /// there are none, or when
    /// [`FleetConfig::per_shard_journal_writers`] opts out). Restarted
    /// shards re-register with the same writer so a rebuild never spawns
    /// a second thread.
    journal_writer: Option<JournalWriter>,
}

/// Point-in-time status of one shard ([`Fleet::shard_status`]).
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Supervisor-visible health.
    pub health: ShardHealth,
    /// Completed warm restarts.
    pub restarts: u64,
    /// Panics caught and quarantined.
    pub panics: u64,
    /// Watchdog fences.
    pub wedges: u64,
    /// Own-queue sheds.
    pub sheds: u64,
    /// Entries currently queued.
    pub queue_len: usize,
    /// Recovery report of the latest warm restart, if any.
    pub last_recovery: Option<RecoveryReport>,
    /// Restart-breaker position.
    pub breaker: BreakerState,
    /// Parked lame-duck behind an open breaker (serving on a volatile
    /// fallback engine, rebuilds withheld until the half-open probe).
    pub lame_duck: bool,
}

/// One cell's rollup row ([`FleetSnapshot::cells`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRollup {
    /// Shard name.
    pub name: String,
    /// PCI, when known.
    pub pci: Option<u16>,
    /// Supervisor health (`healthy` / `faulted` / `wedged`).
    pub health: String,
    /// Sync-health state name.
    pub sync: String,
    /// Governor rung name (the per-shard `load_rung` gauge).
    pub load_rung: String,
    /// Slots processed by the shard's scope.
    pub slots: u64,
    /// DCIs decoded, all classes.
    pub dcis: u64,
    /// C-RNTIs currently tracked.
    pub tracked_ues: u64,
    /// Distinct UEs ever admitted on this cell.
    pub discovered: u64,
    /// Own-queue sheds.
    pub sheds: u64,
    /// Panics quarantined.
    pub panics: u64,
    /// Watchdog fences.
    pub wedges: u64,
    /// Completed warm restarts.
    pub restarts: u64,
    /// Hangs detected on this cell (watchdog fences — every wedge is a
    /// detected hang). Defaulted so pre-liveness rollups parse.
    #[serde(default)]
    pub hangs_detected: u64,
    /// Restart-breaker position name (`closed` / `open` / `half_open`).
    #[serde(default)]
    pub breaker: String,
    /// Times this cell's breaker has opened.
    #[serde(default)]
    pub breaker_openings: u64,
    /// Durability rung name: `durable` / `durable_degraded` /
    /// `non_durable` for durable shards, `volatile` for shards configured
    /// without persistence. Defaulted so pre-storage-fault rollups parse.
    #[serde(default)]
    pub durability: String,
    /// Honest loss window in slots (`None` = unbounded: the shard is
    /// `NonDurable` or volatile).
    #[serde(default)]
    pub loss_window_slots: Option<u64>,
    /// Timing-recovery lock rung name (`locked` / `pulling` / `unlocked`),
    /// or `ideal` when the shard's front end has no oscillator model.
    /// Defaulted so pre-clock rollups parse.
    #[serde(default)]
    pub clock_lock: String,
    /// Signed clock-drift estimate (ppb) from the shard's recovery loop.
    #[serde(default)]
    pub clock_drift_ppb: i64,
    /// Integer sample slips commanded by the shard's recovery loop.
    #[serde(default)]
    pub timing_slips: u64,
}

/// Fleet-wide rollup: per-cell rows plus the aggregate, including the
/// continuity-corrected distinct-user count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-cell rows.
    pub cells: Vec<CellRollup>,
    /// Σ slots across cells.
    pub total_slots: u64,
    /// Σ DCIs across cells.
    pub total_dcis: u64,
    /// Σ per-cell admissions (counts a handed-over UE once per cell).
    pub total_discovered: u64,
    /// Cross-cell handovers matched by the continuity window.
    pub continuations: u64,
    /// Distinct users: `total_discovered − continuations`.
    pub distinct_users: u64,
    /// Cells configured durable that are currently *not* fully durable
    /// (rung below `Durable`, or running on a volatile fallback after
    /// their disk died). Defaulted so pre-storage-fault rollups parse.
    #[serde(default)]
    pub durability_degraded_cells: u64,
    /// Cells whose timing-recovery loop is currently out of `Locked`
    /// (`pulling`/`unlocked`; ideal-clock cells don't count). Defaulted
    /// so pre-clock rollups parse.
    #[serde(default)]
    pub clock_unlocked_cells: u64,
    /// Σ integer sample slips across cells.
    #[serde(default)]
    pub total_timing_slips: u64,
    /// Cells currently parked behind an open restart breaker. Defaulted
    /// so pre-liveness rollups parse.
    #[serde(default)]
    pub breaker_open_cells: u64,
    /// The matched handover pairs.
    pub matches: Vec<ContinuityMatch>,
}

/// The fleet: N shards over one shared worker pool, with bulkhead
/// supervision. Construct with [`Fleet::new`], drive with
/// [`Fleet::feed`] + periodic [`Fleet::supervise`] calls, and tear down
/// with [`Fleet::finish`].
pub struct Fleet {
    shared: Arc<FleetShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Lock that never gives up on poisoning: the protected state is either
/// rebuilt wholesale (engines) or monotonic counters, and a panic inside
/// a worker is already quarantined by `catch_unwind` before any fleet
/// lock unwinds.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn now_ns(epoch: Instant) -> u64 {
    Instant::now().duration_since(epoch).as_nanos() as u64
}

impl Fleet {
    /// Build every shard's engine (durable shards recover from their own
    /// directories) and start the shared worker pool.
    pub fn new(cfg: FleetConfig, specs: Vec<ShardSpec>) -> io::Result<Fleet> {
        let journal_writer =
            if !cfg.per_shard_journal_writers && specs.iter().any(|s| s.persist.is_some()) {
                Some(JournalWriter::spawn())
            } else {
                None
            };
        let mut shards = Vec::with_capacity(specs.len());
        for spec in specs {
            let (engine, recovery) = ShardEngine::build(&spec, journal_writer.as_ref())?;
            let mut cache = CachedStats::default();
            refresh_cache_from(&mut cache, &engine, false);
            shards.push(Shard {
                spec,
                queue: Mutex::new(VecDeque::new()),
                engine: Mutex::new(EngineCell {
                    gen: 0,
                    engine: Some(engine),
                }),
                busy_since_ns: AtomicU64::new(0),
                gen: AtomicU64::new(0),
                control: Mutex::new(ShardControl {
                    health: ShardHealth::Healthy,
                    restart_due: None,
                    backoff_exp: 0,
                    last_fault_at: None,
                    last_recovery: recovery,
                }),
                fault: Mutex::new(FaultPlan::None),
                cache: Mutex::new(cache),
                latencies: Mutex::new(Vec::new()),
                highest_fed: AtomicU64::new(0),
                sheds: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                wedges: AtomicU64::new(0),
                restarts: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                breaker: Mutex::new(RestartBreaker::new(
                    cfg.restart_budget,
                    cfg.restart_budget_window_slots,
                    cfg.breaker_halfopen_after_slots,
                )),
                lame_duck: AtomicBool::new(false),
            });
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let target_workers = if cfg.workers == 0 {
            cores.min(shards.len()).max(1)
        } else {
            cfg.workers.max(1)
        };
        let shared = Arc::new(FleetShared {
            cfg,
            shards,
            continuity: Mutex::new(ContinuityState {
                pending_discoveries: VecDeque::new(),
                pending_expiries: VecDeque::new(),
                continuations: 0,
                matches: Vec::new(),
            }),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            live_workers: AtomicUsize::new(target_workers),
            target_workers,
            journal_writer,
        });
        let mut workers = Vec::with_capacity(target_workers);
        for w in 0..target_workers {
            let s = Arc::clone(&shared);
            workers.push(spawn_background(&format!("fleet-{w}"), move || {
                worker_loop(&s, w)
            }));
        }
        Ok(Fleet {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shared.shards.len()
    }

    /// Whether the fleet has no shards.
    pub fn is_empty(&self) -> bool {
        self.shared.shards.is_empty()
    }

    /// Enqueue one observation for a shard. `seq` is the shard's absolute
    /// slot index (gap-filled as dropped slots if observations are
    /// skipped). A full queue sheds the shard's own oldest entry.
    pub fn feed(&self, shard: usize, seq: u64, cap: Capture) -> FeedOutcome {
        let s = &self.shared.shards[shard];
        s.highest_fed.fetch_max(seq, Relaxed);
        let mut q = lock_clean(&s.queue);
        let mut out = FeedOutcome::Queued;
        if q.len() >= self.shared.cfg.shard_queue_depth.max(1) {
            q.pop_front();
            s.sheds.fetch_add(1, Relaxed);
            out = FeedOutcome::ShedOldest;
        }
        q.push_back(QueueEntry {
            seq,
            cap,
            enqueued: Instant::now(),
        });
        out
    }

    /// One supervision pass: watchdog wedged shards, run due restarts.
    /// The driver calls this periodically (every few fed slots, or on a
    /// timer); it never blocks on a wedged engine.
    pub fn supervise(&self) {
        let shared = &self.shared;
        let now = Instant::now();
        let tick_ns = now_ns(shared.epoch);
        for shard in &shared.shards {
            // Watchdog: a slot in flight past the deadline means the
            // worker is stuck (infinite loop, pathological slot, hostile
            // input). Fence the engine so the stuck worker discards it on
            // wake, and spawn a replacement worker so fleet capacity is
            // restored immediately.
            let wd_ms = shared.cfg.watchdog_ms;
            if wd_ms > 0 {
                let busy = shard.busy_since_ns.load(SeqCst);
                if busy != 0 && tick_ns.saturating_sub(busy - 1) > wd_ms.saturating_mul(1_000_000) {
                    shard.gen.fetch_add(1, SeqCst);
                    shard.busy_since_ns.store(0, SeqCst);
                    shard.wedges.fetch_add(1, Relaxed);
                    schedule_restart(shared, shard, ShardHealth::Wedged, now);
                    shared.live_workers.fetch_add(1, SeqCst);
                    let s = Arc::clone(shared);
                    let handle = spawn_background("fleet-replacement", move || {
                        worker_loop(&s, 0);
                    });
                    lock_clean(&self.workers).push(handle);
                }
            }
            // Due restarts, metered by the per-shard breaker. `try_lock`:
            // if a stuck worker still holds the engine, postpone without
            // charging the backoff — the fault already paid its delay.
            let due = {
                let c = lock_clean(&shard.control);
                c.restart_due.is_some_and(|d| now >= d)
            };
            if due {
                match shard.engine.try_lock() {
                    Ok(mut cell) => {
                        let now_slot = shard.highest_fed.load(Relaxed);
                        let granted = lock_clean(&shard.breaker).try_acquire(now_slot);
                        if !granted {
                            // Budget exhausted: park lame-duck instead of
                            // hot-looping rebuilds, and keep the due flag
                            // set so the half-open probe fires once the
                            // backoff elapses.
                            park_lame_duck(shared, shard, &mut cell);
                            let mut c = lock_clean(&shard.control);
                            c.restart_due = Some(now + Duration::from_millis(1));
                        } else {
                            let probing =
                                lock_clean(&shard.breaker).state() == BreakerState::HalfOpen;
                            let ok = restart_shard(shared, shard, &mut cell);
                            lock_clean(&shard.breaker).probe_result(ok, now_slot);
                            if ok && (probing || shard.lame_duck.swap(false, Relaxed)) {
                                shard.lame_duck.store(false, Relaxed);
                                if let Some(engine) = cell.engine.as_ref() {
                                    let m = engine.scope().metrics();
                                    m.gauge_set(Gauge::RestartBreakerOpen, 0);
                                    m.note(
                                        "restart_breaker",
                                        "closed: half-open probe rebuild succeeded",
                                    );
                                }
                            }
                        }
                    }
                    Err(_) => {
                        let mut c = lock_clean(&shard.control);
                        c.restart_due = Some(now + Duration::from_millis(1));
                    }
                }
            }
        }
    }

    /// Run `f` against a shard's live scope. `None` while the shard is
    /// between engines (quarantined, restart pending).
    pub fn with_scope<R>(&self, shard: usize, f: impl FnOnce(&NrScope) -> R) -> Option<R> {
        let cell = lock_clean(&self.shared.shards[shard].engine);
        cell.engine.as_ref().map(|e| f(e.scope()))
    }

    /// Inject a fault plan into a shard (chaos testing: kill, wedge, or
    /// overload exactly one bulkhead).
    pub fn inject_fault(&self, shard: usize, plan: FaultPlan) {
        *lock_clean(&self.shared.shards[shard].fault) = plan;
    }

    /// Drain a shard's enqueue→completion latency samples (ns).
    pub fn take_latencies(&self, shard: usize) -> Vec<u64> {
        std::mem::take(&mut *lock_clean(&self.shared.shards[shard].latencies))
    }

    /// Point-in-time status of one shard.
    pub fn shard_status(&self, shard: usize) -> ShardStatus {
        let s = &self.shared.shards[shard];
        let c = lock_clean(&s.control);
        ShardStatus {
            health: c.health,
            restarts: s.restarts.load(Relaxed),
            panics: s.panics.load(Relaxed),
            wedges: s.wedges.load(Relaxed),
            sheds: s.sheds.load(Relaxed),
            queue_len: lock_clean(&s.queue).len(),
            last_recovery: c.last_recovery.clone(),
            breaker: lock_clean(&s.breaker).state(),
            lame_duck: s.lame_duck.load(Relaxed),
        }
    }

    /// Wait until every queue is drained and every worker idle (pumping
    /// supervision while waiting). Returns false on timeout — which a
    /// wedged-and-not-yet-recovered shard will cause by design.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.supervise();
            let busy = self
                .shared
                .shards
                .iter()
                .any(|s| !lock_clean(&s.queue).is_empty() || s.busy_since_ns.load(SeqCst) != 0);
            if !busy {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Fleet-wide rollup: per-cell rows + aggregate + continuity-corrected
    /// distinct users. Never blocks on a wedged engine — rows fall back to
    /// the last worker-refreshed cache.
    pub fn rollup(&self) -> FleetSnapshot {
        let mut cells = Vec::with_capacity(self.shared.shards.len());
        for s in &self.shared.shards {
            // Refresh from the live scope when the engine is free.
            if let Ok(cell) = s.engine.try_lock() {
                if let Some(engine) = cell.engine.as_ref() {
                    refresh_cache_from(&mut lock_clean(&s.cache), engine, s.degraded.load(Relaxed));
                }
            }
            let cache = lock_clean(&s.cache).clone();
            let health = lock_clean(&s.control).health;
            let (breaker, breaker_openings) = {
                let b = lock_clean(&s.breaker);
                (b.state().name().to_string(), b.openings())
            };
            cells.push(CellRollup {
                name: s.spec.name.clone(),
                pci: s.spec.pci.map(|p| p.0),
                health: health.name().to_string(),
                sync: cache.sync.to_string(),
                load_rung: cache.load_rung.to_string(),
                slots: cache.slots,
                dcis: cache.dcis,
                tracked_ues: cache.tracked_ues,
                discovered: cache.discovered,
                sheds: s.sheds.load(Relaxed),
                panics: s.panics.load(Relaxed),
                wedges: s.wedges.load(Relaxed),
                restarts: s.restarts.load(Relaxed),
                hangs_detected: s.wedges.load(Relaxed),
                breaker,
                breaker_openings,
                durability: cache.durability.to_string(),
                loss_window_slots: cache.loss_window,
                clock_lock: cache.clock_lock.to_string(),
                clock_drift_ppb: cache.clock_drift_ppb,
                timing_slips: cache.timing_slips,
            });
        }
        let (continuations, matches) = {
            let c = lock_clean(&self.shared.continuity);
            (c.continuations, c.matches.clone())
        };
        let total_discovered: u64 = cells.iter().map(|c| c.discovered).sum();
        let durability_degraded_cells = self
            .shared
            .shards
            .iter()
            .zip(&cells)
            .filter(|(s, c)| {
                s.spec.persist.is_some()
                    && (c.durability == "durable_degraded" || c.durability == "non_durable")
            })
            .count() as u64;
        let clock_unlocked_cells = cells
            .iter()
            .filter(|c| c.clock_lock == "pulling" || c.clock_lock == "unlocked")
            .count() as u64;
        let breaker_open_cells = cells.iter().filter(|c| c.breaker != "closed").count() as u64;
        FleetSnapshot {
            total_slots: cells.iter().map(|c| c.slots).sum(),
            total_dcis: cells.iter().map(|c| c.dcis).sum(),
            total_discovered,
            continuations,
            distinct_users: total_discovered.saturating_sub(continuations),
            durability_degraded_cells,
            clock_unlocked_cells,
            total_timing_slips: cells.iter().map(|c| c.timing_slips).sum(),
            breaker_open_cells,
            matches,
            cells,
        }
    }

    /// Shut the pool down, finalise durable shards (flush + final
    /// checkpoint), and return the closing rollup.
    pub fn finish(self) -> FleetSnapshot {
        self.shared.shutdown.store(true, SeqCst);
        let deadline = Instant::now() + Duration::from_secs(5);
        let handles = std::mem::take(&mut *lock_clean(&self.workers));
        for h in handles {
            while !h.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if h.is_finished() {
                let _ = h.join();
            }
            // A still-stuck worker is abandoned, exactly like the slot
            // pool's bounded shutdown join.
        }
        for s in &self.shared.shards {
            if let Ok(mut cell) = s.engine.try_lock() {
                if let Some(engine) = cell.engine.take() {
                    refresh_cache_from(
                        &mut lock_clean(&s.cache),
                        &engine,
                        s.degraded.load(Relaxed),
                    );
                    // The shard's queue is done for — zero its depth gauge
                    // so a post-shutdown snapshot never reports phantom
                    // backlog (the worker-pool shutdown rule).
                    engine.scope().metrics().gauge_set(Gauge::QueueDepth, 0);
                    if let ShardEngine::Durable(session) = engine {
                        let _ = session.finalize();
                    }
                }
            }
        }
        self.rollup()
    }
}

/// Update a shard's cached rollup row from its live scope.
fn refresh_cache_from(cache: &mut CachedStats, engine: &ShardEngine, disk_degraded: bool) {
    let scope = engine.scope();
    let st = &scope.stats;
    cache.slots = st.slots;
    cache.dcis = st.si_dcis + st.ra_dcis + st.tc_dcis + st.dl_dcis + st.ul_dcis;
    cache.tracked_ues = scope.tracked_rntis().len() as u64;
    cache.discovered = scope.total_discovered();
    cache.sync = match scope.sync_state() {
        SyncState::Synced => "synced",
        SyncState::Degraded => "degraded",
        SyncState::Lost => "lost",
        SyncState::Reacquiring => "reacquiring",
    };
    cache.load_rung = scope.governor().rung().name();
    cache.watermark = scope.slot_watermark();
    cache.clock_lock = match scope.clock_lock() {
        None => "ideal",
        Some(crate::ClockLock::Locked) => "locked",
        Some(crate::ClockLock::Pulling) => "pulling",
        Some(crate::ClockLock::Unlocked) => "unlocked",
    };
    cache.clock_drift_ppb = scope.clock_drift_ppb();
    cache.timing_slips = st.timing_slips;
    match engine {
        ShardEngine::Durable(s) => {
            cache.durability = s.durability_rung().name();
            cache.loss_window = s.reported_loss_window();
        }
        ShardEngine::Volatile(_) => {
            // A volatile fallback after a dead disk is `non_durable` —
            // spec said durable, the disk disagreed; an always-volatile
            // shard never promised durability in the first place.
            cache.durability = if disk_degraded {
                "non_durable"
            } else {
                "volatile"
            };
            cache.loss_window = None;
        }
    }
}

/// Schedule a warm restart after the current backoff, growing the backoff
/// for consecutive faults and resetting it after a calm stretch.
fn schedule_restart(shared: &FleetShared, shard: &Shard, health: ShardHealth, now: Instant) {
    let mut c = lock_clean(&shard.control);
    if let Some(last) = c.last_fault_at {
        if now.duration_since(last) >= Duration::from_millis(shared.cfg.backoff_calm_ms) {
            c.backoff_exp = 0;
        }
    }
    let exp = c.backoff_exp.min(shared.cfg.max_restart_backoff_exp);
    let delay = Duration::from_millis(
        shared
            .cfg
            .restart_backoff_ms
            .saturating_mul(1u64 << exp.min(32)),
    );
    c.backoff_exp = (c.backoff_exp + 1).min(shared.cfg.max_restart_backoff_exp);
    c.health = health;
    c.restart_due = Some(now + delay);
    c.last_fault_at = Some(now);
}

/// Park a shard in lame-duck mode behind an open restart breaker: the
/// rebuild budget is exhausted, so instead of hot-looping respawns the
/// shard gets one volatile fallback engine (degraded but still decoding)
/// and real rebuilds wait for the breaker's half-open probe.
fn park_lame_duck(shared: &FleetShared, shard: &Shard, cell: &mut EngineCell) {
    let was_parked = shard.lame_duck.swap(true, Relaxed);
    if was_parked && cell.engine.is_some() {
        return; // already parked and still serving
    }
    let mut scope = NrScope::new(shard.spec.scope, shard.spec.pci);
    scope.set_load_model(shard.spec.load_model);
    let adopt = lock_clean(&shard.queue)
        .front()
        .map(|e| e.seq)
        .unwrap_or_else(|| shard.highest_fed.load(Relaxed).saturating_add(1));
    scope.fast_forward(adopt);
    {
        let m = scope.metrics();
        m.gauge_set(Gauge::RestartBreakerOpen, 1);
        m.note(
            "restart_breaker",
            format!(
                "restart budget exhausted ({} per {} slots): shard parked \
                 lame-duck on a volatile fallback until the half-open probe",
                shared.cfg.restart_budget, shared.cfg.restart_budget_window_slots
            ),
        );
        if shard.spec.persist.is_some() {
            m.gauge_set(Gauge::DurabilityRung, DurabilityRung::NonDurable as u64);
        }
    }
    if shard.spec.persist.is_some() {
        shard.degraded.store(true, Relaxed);
    }
    cell.engine = Some(ShardEngine::Volatile(Box::new(scope)));
    cell.gen = shard.gen.load(SeqCst);
    let mut c = lock_clean(&shard.control);
    c.health = ShardHealth::Healthy;
}

/// Rebuild a shard's engine in place (the caller holds the engine lock).
/// Returns true when an engine was installed (including the volatile
/// fallback after a dead disk), false when the rebuild failed and another
/// attempt was scheduled.
fn restart_shard(shared: &FleetShared, shard: &Shard, cell: &mut EngineCell) -> bool {
    match ShardEngine::build(&shard.spec, shared.journal_writer.as_ref()) {
        Ok((mut engine, recovery)) => {
            if shard.spec.persist.is_none() {
                // Volatile cold restart: adopt the live feed position —
                // resume at the oldest still-queued slot (or just past
                // the newest fed one when the queue is empty).
                let adopt = lock_clean(&shard.queue)
                    .front()
                    .map(|e| e.seq)
                    .unwrap_or_else(|| shard.highest_fed.load(Relaxed).saturating_add(1));
                engine.scope_mut().fast_forward(adopt);
            }
            engine.scope().metrics().inc(Counter::RestartsTotal);
            cell.engine = Some(engine);
            cell.gen = shard.gen.load(SeqCst);
            shard.restarts.fetch_add(1, Relaxed);
            // The durable engine is back — if this shard had fallen to a
            // volatile fallback, it has its disk again.
            if shard.spec.persist.is_some() {
                shard.degraded.store(false, Relaxed);
            }
            let mut c = lock_clean(&shard.control);
            c.health = ShardHealth::Healthy;
            c.restart_due = None;
            if recovery.is_some() {
                c.last_recovery = recovery;
            }
            true
        }
        Err(e) => {
            let backoff_exhausted =
                lock_clean(&shard.control).backoff_exp >= shared.cfg.max_restart_backoff_exp;
            if backoff_exhausted && shard.spec.persist.is_some() {
                // The disk under a durable shard is dead and restart
                // can't fix a disk: stop burning restarts and install a
                // volatile fallback engine instead. The shard keeps
                // decoding, reported durability-degraded (`non_durable`,
                // unbounded loss window) rather than endlessly Faulted.
                let mut scope = NrScope::new(shard.spec.scope, shard.spec.pci);
                scope.set_load_model(shard.spec.load_model);
                let adopt = lock_clean(&shard.queue)
                    .front()
                    .map(|e| e.seq)
                    .unwrap_or_else(|| shard.highest_fed.load(Relaxed).saturating_add(1));
                scope.fast_forward(adopt);
                scope
                    .metrics()
                    .gauge_set(Gauge::DurabilityRung, DurabilityRung::NonDurable as u64);
                scope.metrics().inc(Counter::StorageDemotions);
                scope.metrics().note("storage_demotion", e.to_string());
                shard.degraded.store(true, Relaxed);
                cell.engine = Some(ShardEngine::Volatile(Box::new(scope)));
                cell.gen = shard.gen.load(SeqCst);
                shard.restarts.fetch_add(1, Relaxed);
                let mut c = lock_clean(&shard.control);
                c.health = ShardHealth::Healthy;
                c.restart_due = None;
                true
            } else {
                // Rebuild failed (I/O): treat as another fault — back off
                // and try again rather than spinning.
                schedule_restart(shared, shard, ShardHealth::Faulted, Instant::now());
                false
            }
        }
    }
}

/// Absorb one shard's drained UE events into the continuity matcher.
fn absorb_events(shared: &FleetShared, shard_idx: usize, events: &[UeEvent]) {
    let window = shared.cfg.continuity_window_slots;
    let mut c = lock_clean(&shared.continuity);
    for ev in events {
        match *ev {
            UeEvent::Discovered { rnti, slot } => {
                // A discovery can also close an expiry that arrived first
                // (the old cell's pipeline ran ahead of the new one).
                let hit = c
                    .pending_expiries
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        p.shard != shard_idx
                            && slot >= p.last_active_slot.saturating_sub(window)
                            && slot <= p.last_active_slot.saturating_add(window)
                    })
                    .min_by_key(|(_, p)| (p.rnti != rnti, p.last_active_slot))
                    .map(|(i, _)| i);
                if let Some(i) = hit {
                    if let Some(exp) = c.pending_expiries.remove(i) {
                        c.continuations += 1;
                        c.matches.push(ContinuityMatch {
                            from_shard: exp.shard,
                            to_shard: shard_idx,
                            expired_rnti: exp.rnti,
                            new_rnti: rnti,
                            last_active_slot: exp.last_active_slot,
                            discovered_slot: slot,
                        });
                    }
                    continue;
                }
                if c.pending_discoveries.len() >= CONTINUITY_PENDING_MAX {
                    c.pending_discoveries.pop_front();
                }
                c.pending_discoveries.push_back(PendingDiscovery {
                    shard: shard_idx,
                    rnti,
                    seq: slot,
                });
            }
            UeEvent::Expired {
                rnti,
                slot: _,
                last_active_slot,
            } => {
                // The usual order: the UE was already admitted on the new
                // cell (a RACH takes milliseconds; expiry takes seconds).
                let lo = last_active_slot.saturating_sub(window);
                let hi = last_active_slot.saturating_add(window);
                let hit = c
                    .pending_discoveries
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.shard != shard_idx && p.seq >= lo && p.seq <= hi)
                    .min_by_key(|(_, p)| (p.rnti != rnti, p.seq))
                    .map(|(i, _)| i);
                if let Some(i) = hit {
                    if let Some(disc) = c.pending_discoveries.remove(i) {
                        c.continuations += 1;
                        c.matches.push(ContinuityMatch {
                            from_shard: shard_idx,
                            to_shard: disc.shard,
                            expired_rnti: rnti,
                            new_rnti: disc.rnti,
                            last_active_slot,
                            discovered_slot: disc.seq,
                        });
                    }
                } else {
                    if c.pending_expiries.len() >= CONTINUITY_PENDING_MAX {
                        c.pending_expiries.pop_front();
                    }
                    c.pending_expiries.push_back(PendingExpiry {
                        shard: shard_idx,
                        rnti,
                        last_active_slot,
                    });
                }
            }
        }
    }
}

/// Outcome of one shard-service attempt.
enum Service {
    /// Nothing to do (empty queue, engine busy or absent).
    Idle,
    /// Processed at least one entry.
    Worked,
    /// This worker's engine was fenced mid-slot: the thread should retire
    /// if a replacement was spawned.
    Fenced,
}

/// One worker's attempt to service shard `i`: acquire the engine (one
/// worker per shard at a time), drain up to [`MAX_BATCH`] entries with
/// watermark gap-fill, catch panics, honour injected faults.
fn service_shard(shared: &FleetShared, i: usize) -> Service {
    let shard = &shared.shards[i];
    if lock_clean(&shard.queue).is_empty() {
        return Service::Idle;
    }
    let Ok(mut cell) = shard.engine.try_lock() else {
        return Service::Idle;
    };
    let my_gen = shard.gen.load(SeqCst);
    if cell.gen != my_gen {
        // A previous holder was fenced and discarded the engine; adopt
        // the new generation (the supervisor rebuilds the engine).
        cell.engine = None;
        cell.gen = my_gen;
    }
    if cell.engine.is_none() {
        // Quarantined: leave the queue intact for the restarted engine
        // (bounded — feed sheds this shard's own oldest when full).
        return Service::Idle;
    }
    let mut worked = false;
    for _ in 0..MAX_BATCH {
        let Some(entry) = lock_clean(&shard.queue).pop_front() else {
            break;
        };
        let fault = {
            let mut f = lock_clean(&shard.fault);
            match *f {
                FaultPlan::None => None,
                FaultPlan::OneShot(x) => {
                    *f = FaultPlan::None;
                    Some(x)
                }
                FaultPlan::EverySlot(d) => Some(InjectedFault::Delay(d)),
            }
        };
        shard.busy_since_ns.store(now_ns(shared.epoch) + 1, SeqCst);
        let engine = match cell.engine.as_mut() {
            Some(e) => e,
            None => break,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(InjectedFault::Panic) => panic!("injected shard fault"),
                Some(InjectedFault::Delay(d)) => std::thread::sleep(d),
                None => {}
            }
            let watermark = engine.scope().slot_watermark();
            if entry.seq < watermark {
                // Below the watermark: already folded into the restored
                // state — never reprocess (the supervise-module rule), so
                // nothing is double-counted.
                return false;
            }
            // Gap-fill skipped slots as honest drops, then the real one.
            for _ in watermark..entry.seq {
                engine.process(&Capture::Dropped(DropReason::Stall));
            }
            engine.process(&entry.cap);
            true
        }));
        shard.busy_since_ns.store(0, SeqCst);
        if shard.gen.load(SeqCst) != my_gen {
            // The watchdog fenced this shard while we were inside the
            // slot: our engine is presumed wedged — discard it and let
            // the supervisor's scheduled restart rebuild from disk.
            cell.engine = None;
            cell.gen = shard.gen.load(SeqCst);
            return Service::Fenced;
        }
        match outcome {
            Ok(processed) => {
                worked = true;
                if processed {
                    if let Some(engine) = cell.engine.as_mut() {
                        let events = engine.scope_mut().drain_ue_events();
                        if !events.is_empty() {
                            absorb_events(shared, i, &events);
                        }
                    }
                    let lat = entry.enqueued.elapsed().as_nanos() as u64;
                    let mut buf = lock_clean(&shard.latencies);
                    if buf.len() < LATENCY_BUF_MAX {
                        buf.push(lat);
                    }
                }
            }
            Err(_) => {
                // The shard panicked mid-slot: quarantine its engine (its
                // state is suspect) and warm-restart from its own
                // checkpoint. Siblings never notice.
                cell.engine = None;
                shard.panics.fetch_add(1, Relaxed);
                schedule_restart(shared, shard, ShardHealth::Faulted, Instant::now());
                return Service::Worked;
            }
        }
    }
    if let Some(engine) = cell.engine.as_ref() {
        refresh_cache_from(
            &mut lock_clean(&shard.cache),
            engine,
            shard.degraded.load(Relaxed),
        );
    }
    if worked {
        Service::Worked
    } else {
        Service::Idle
    }
}

/// Retire this worker if the pool is over target (a replacement was
/// spawned for a wedge this thread was stuck in).
fn maybe_retire(shared: &FleetShared) -> bool {
    let mut live = shared.live_workers.load(SeqCst);
    while live > shared.target_workers {
        match shared
            .live_workers
            .compare_exchange(live, live - 1, SeqCst, SeqCst)
        {
            Ok(_) => return true,
            Err(l) => live = l,
        }
    }
    false
}

fn worker_loop(shared: &Arc<FleetShared>, start: usize) {
    let n = shared.shards.len().max(1);
    loop {
        if shared.shutdown.load(Relaxed) {
            break;
        }
        let mut did_work = false;
        let mut fenced = false;
        for k in 0..n {
            match service_shard(shared, (start + k) % n) {
                Service::Worked => did_work = true,
                Service::Fenced => {
                    did_work = true;
                    fenced = true;
                }
                Service::Idle => {}
            }
        }
        if fenced && maybe_retire(shared) {
            return;
        }
        if !did_work {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    shared.live_workers.fetch_sub(1, SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScopeConfig;

    fn spec(name: &str) -> ShardSpec {
        ShardSpec::volatile(name, Some(Pci(1)), ScopeConfig::default())
    }

    fn cfg() -> FleetConfig {
        FleetConfig {
            workers: 2,
            shard_queue_depth: 1024,
            watchdog_ms: 50,
            restart_backoff_ms: 1,
            ..FleetConfig::default()
        }
    }

    fn empty_slot() -> Capture {
        Capture::Slot(crate::observe::ObservedSlot::Message {
            mib_bits: None,
            dcis: vec![],
            pdsch: vec![],
        })
    }

    #[test]
    fn feeds_process_and_rollup_counts_slots() {
        let fleet = Fleet::new(cfg(), vec![spec("a"), spec("b")]).unwrap();
        for s in 0..100u64 {
            fleet.feed(0, s, empty_slot());
            fleet.feed(1, s, empty_slot());
        }
        assert!(fleet.quiesce(Duration::from_secs(5)));
        let snap = fleet.finish();
        assert_eq!(snap.cells.len(), 2);
        assert_eq!(snap.cells[0].slots, 100);
        assert_eq!(snap.cells[1].slots, 100);
        assert_eq!(snap.total_slots, 200);
    }

    #[test]
    fn full_queue_sheds_own_oldest_only() {
        let mut c = cfg();
        c.shard_queue_depth = 4;
        let fleet = Fleet::new(c, vec![spec("a"), spec("b")]).unwrap();
        // Wedge shard 0's engine lock indirectly: inject a long delay so
        // its queue backs up while shard 1 drains freely.
        fleet.inject_fault(0, FaultPlan::EverySlot(Duration::from_millis(20)));
        let mut sheds = 0;
        for s in 0..64u64 {
            if fleet.feed(0, s, empty_slot()) == FeedOutcome::ShedOldest {
                sheds += 1;
            }
            assert_eq!(fleet.feed(1, s, empty_slot()), FeedOutcome::Queued);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(sheds > 0, "slow shard shed its own slots");
        let status = fleet.shard_status(1);
        assert_eq!(status.sheds, 0, "sibling never shed");
        fleet.inject_fault(0, FaultPlan::None);
        assert!(fleet.quiesce(Duration::from_secs(10)));
        fleet.finish();
    }

    #[test]
    fn panic_quarantines_one_shard_and_restarts_it() {
        let fleet = Fleet::new(cfg(), vec![spec("a"), spec("b")]).unwrap();
        fleet.inject_fault(0, FaultPlan::OneShot(InjectedFault::Panic));
        for s in 0..200u64 {
            fleet.feed(0, s, empty_slot());
            fleet.feed(1, s, empty_slot());
            if s.is_multiple_of(16) {
                fleet.supervise();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(fleet.quiesce(Duration::from_secs(10)));
        let a = fleet.shard_status(0);
        assert_eq!(a.panics, 1, "panic caught");
        assert!(a.restarts >= 1, "warm-restarted");
        assert_eq!(a.health, ShardHealth::Healthy);
        let snap = fleet.finish();
        assert_eq!(snap.cells[1].slots, 200, "sibling unperturbed");
        assert_eq!(snap.cells[1].panics, 0);
    }

    #[test]
    fn wedge_is_fenced_and_the_shard_recovers() {
        let fleet = Fleet::new(cfg(), vec![spec("a"), spec("b")]).unwrap();
        fleet.inject_fault(
            0,
            FaultPlan::OneShot(InjectedFault::Delay(Duration::from_millis(400))),
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut s = 0u64;
        while Instant::now() < deadline {
            fleet.feed(0, s, empty_slot());
            fleet.feed(1, s, empty_slot());
            s += 1;
            fleet.supervise();
            if fleet.shard_status(0).restarts >= 1 && fleet.shard_status(0).wedges >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let a = fleet.shard_status(0);
        assert!(a.wedges >= 1, "watchdog fenced the wedged shard");
        assert!(a.restarts >= 1, "and it was restarted");
        assert_eq!(fleet.shard_status(1).wedges, 0);
        assert!(fleet.quiesce(Duration::from_secs(10)));
        fleet.finish();
    }

    #[test]
    fn breaker_parks_storming_shard_and_halfopen_probe_recovers() {
        let mut c = cfg();
        c.restart_budget = 2;
        c.restart_budget_window_slots = 1_000_000; // no meaningful refill
        c.breaker_halfopen_after_slots = 50;
        let fleet = Fleet::new(c, vec![spec("storm"), spec("calm")]).unwrap();
        // Keep panicking the shard until the restart budget runs dry and
        // the breaker parks it lame-duck.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut s = 0u64;
        while Instant::now() < deadline {
            fleet.inject_fault(0, FaultPlan::OneShot(InjectedFault::Panic));
            for _ in 0..8 {
                fleet.feed(0, s, empty_slot());
                fleet.feed(1, s, empty_slot());
                s += 1;
            }
            fleet.supervise();
            std::thread::sleep(Duration::from_millis(2));
            if fleet.shard_status(0).lame_duck {
                break;
            }
        }
        let st = fleet.shard_status(0);
        assert!(st.lame_duck, "breaker parked the storming shard");
        assert_ne!(st.breaker, BreakerState::Closed);
        let snap = fleet.rollup();
        assert_eq!(snap.breaker_open_cells, 1);
        assert!(snap.cells[0].breaker_openings >= 1);
        assert_eq!(snap.cells[1].breaker, "closed", "sibling unaffected");
        // Stop injecting and advance the feed past the half-open backoff:
        // the probe rebuild succeeds and the breaker closes.
        fleet.inject_fault(0, FaultPlan::None);
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            for _ in 0..16 {
                fleet.feed(0, s, empty_slot());
                s += 1;
            }
            fleet.supervise();
            std::thread::sleep(Duration::from_millis(2));
            let st = fleet.shard_status(0);
            if !st.lame_duck && st.breaker == BreakerState::Closed {
                break;
            }
        }
        let st = fleet.shard_status(0);
        assert_eq!(
            st.breaker,
            BreakerState::Closed,
            "half-open probe closed the breaker"
        );
        assert!(!st.lame_duck);
        assert!(fleet.quiesce(Duration::from_secs(10)));
        fleet.finish();
    }

    #[test]
    fn continuity_matches_one_handover_as_one_user() {
        let shared = FleetShared {
            cfg: FleetConfig::default(),
            shards: Vec::new(),
            continuity: Mutex::new(ContinuityState {
                pending_discoveries: VecDeque::new(),
                pending_expiries: VecDeque::new(),
                continuations: 0,
                matches: Vec::new(),
            }),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            live_workers: AtomicUsize::new(0),
            target_workers: 0,
            journal_writer: None,
        };
        // Cell B admits the UE at slot 5000; cell A expires it later with
        // last activity at slot 4980 — one user.
        absorb_events(
            &shared,
            1,
            &[UeEvent::Discovered {
                rnti: Rnti(0x4700),
                slot: 5000,
            }],
        );
        absorb_events(
            &shared,
            0,
            &[UeEvent::Expired {
                rnti: Rnti(0x4601),
                slot: 24_980,
                last_active_slot: 4980,
            }],
        );
        let c = lock_clean(&shared.continuity);
        assert_eq!(c.continuations, 1);
        assert_eq!(c.matches.len(), 1);
        assert_eq!(c.matches[0].from_shard, 0);
        assert_eq!(c.matches[0].to_shard, 1);
    }

    #[test]
    fn continuity_ignores_out_of_window_and_same_shard_events() {
        let shared = FleetShared {
            cfg: FleetConfig::default(),
            shards: Vec::new(),
            continuity: Mutex::new(ContinuityState {
                pending_discoveries: VecDeque::new(),
                pending_expiries: VecDeque::new(),
                continuations: 0,
                matches: Vec::new(),
            }),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            live_workers: AtomicUsize::new(0),
            target_workers: 0,
            journal_writer: None,
        };
        // Same shard: a re-RACH on the same cell is recovery, not handover.
        absorb_events(
            &shared,
            0,
            &[UeEvent::Discovered {
                rnti: Rnti(100),
                slot: 1000,
            }],
        );
        absorb_events(
            &shared,
            0,
            &[UeEvent::Expired {
                rnti: Rnti(100),
                slot: 21_000,
                last_active_slot: 1000,
            }],
        );
        // Different shard but far outside the window.
        absorb_events(
            &shared,
            1,
            &[UeEvent::Discovered {
                rnti: Rnti(200),
                slot: 90_000,
            }],
        );
        absorb_events(
            &shared,
            0,
            &[UeEvent::Expired {
                rnti: Rnti(201),
                slot: 30_000,
                last_active_slot: 10_000,
            }],
        );
        let c = lock_clean(&shared.continuity);
        assert_eq!(c.continuations, 0, "no false continuity matches");
    }

    #[test]
    fn discovery_first_and_expiry_first_orders_both_match() {
        let shared = FleetShared {
            cfg: FleetConfig::default(),
            shards: Vec::new(),
            continuity: Mutex::new(ContinuityState {
                pending_discoveries: VecDeque::new(),
                pending_expiries: VecDeque::new(),
                continuations: 0,
                matches: Vec::new(),
            }),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            live_workers: AtomicUsize::new(0),
            target_workers: 0,
            journal_writer: None,
        };
        // Expiry report arrives before the discovery (cell A's pipeline
        // ran ahead): the pending expiry is closed by the discovery.
        absorb_events(
            &shared,
            0,
            &[UeEvent::Expired {
                rnti: Rnti(300),
                slot: 25_000,
                last_active_slot: 5000,
            }],
        );
        absorb_events(
            &shared,
            1,
            &[UeEvent::Discovered {
                rnti: Rnti(301),
                slot: 5030,
            }],
        );
        let c = lock_clean(&shared.continuity);
        assert_eq!(c.continuations, 1);
        assert_eq!(c.matches[0].expired_rnti, Rnti(300));
        assert_eq!(c.matches[0].new_rnti, Rnti(301));
    }
}
